"""Edge-case and failure-injection tests across module boundaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import default_methods
from repro.core import HCacheEngine
from repro.core.profiler import build_storage_array
from repro.engine import ServingSimulator
from repro.engine.request import RequestSpec
from repro.errors import AllocationError
from repro.models import Transformer, model_preset
from repro.storage import StorageManager


class TestPublicAPI:
    def test_quickstart_demo_runs(self, capsys):
        import repro

        repro.quickstart_demo()
        out = capsys.readouterr().out
        assert "lossless restore: True" in out
        assert "hcache" in out

    def test_version_exposed(self):
        import repro

        assert repro.__version__


class TestServingEdgeCases:
    def test_single_token_output(self, seven_b, default_platform):
        """A request generating exactly one token finishes at its first
        token; TBT is zero."""
        sim = ServingSimulator(
            seven_b, default_platform, default_methods(seven_b, default_platform)["hcache"]
        )
        report = sim.run(
            [RequestSpec("r", "s", 0.0, history_tokens=500, input_tokens=8, output_tokens=1)]
        )
        assert report.n_requests == 1
        assert report.mean_tbt == 0.0

    def test_burst_arrivals_all_served(self, seven_b, default_platform):
        """Many simultaneous arrivals queue on memory and all complete."""
        specs = [
            RequestSpec(f"r{i}", f"s{i}", 0.0, 2000, 32, 8) for i in range(24)
        ]
        sim = ServingSimulator(
            seven_b, default_platform, default_methods(seven_b, default_platform)["hcache"]
        )
        report = sim.run(specs)
        assert report.n_requests == 24

    def test_late_arrival_idles_engine(self, seven_b, default_platform):
        """The engine fast-forwards over idle gaps instead of spinning."""
        specs = [
            RequestSpec("early", "a", 0.0, 0, 16, 4),
            RequestSpec("late", "b", 500.0, 0, 16, 4),
        ]
        sim = ServingSimulator(
            seven_b, default_platform, default_methods(seven_b, default_platform)["ideal"]
        )
        report = sim.run(specs)
        assert report.n_requests == 2
        # Duration spans the gap; TTFTs stay small.
        assert report.duration > 499
        assert report.mean_ttft < 0.1

    def test_queue_delay_counted_in_ttft(self, thirteen_b, default_platform):
        """When memory admits one request at a time, the second's TTFT
        includes waiting for the first to release its KV."""
        specs = [
            RequestSpec("a", "sa", 0.0, 12000, 64, 64),
            RequestSpec("b", "sb", 0.0, 12000, 64, 64),
        ]
        sim = ServingSimulator(
            thirteen_b,
            default_platform,
            default_methods(thirteen_b, default_platform)["ideal"],
        )
        sim.run(specs)
        records = {r.request_id: r for r in sim.metrics.records}
        assert records["b"].queue_delay > 0.5 * records["a"].ttft

    def test_recompute_history_dominates_budget(self, seven_b, default_platform):
        """A 12K-token recomputation chunked through SplitFuse takes many
        iterations; its TTFT reflects the full history prefill."""
        methods = default_methods(seven_b, default_platform)
        rec = ServingSimulator(seven_b, default_platform, methods["recompute"]).run(
            [RequestSpec("r", "s", 0.0, 12000, 64, 8)]
        )
        ideal = ServingSimulator(seven_b, default_platform, methods["ideal"]).run(
            [RequestSpec("r", "s", 0.0, 12000, 64, 8)]
        )
        assert rec.mean_ttft > 5 * ideal.mean_ttft


class TestStorageFailureInjection:
    def test_capacity_exhaustion_surfaces_cleanly(self, tiny_model, default_platform):
        """Filling host storage raises AllocationError without corrupting
        already-saved state."""
        tiny_capacity = 64 * 1024  # bytes — a few chunks only
        storage = StorageManager(
            build_storage_array(default_platform), capacity_bytes=tiny_capacity
        )
        engine = HCacheEngine(tiny_model, storage)
        engine.register_context("c")
        config = tiny_model.config
        tokens = np.arange(10) % config.vocab_size
        result, cache = tiny_model.prefill(tokens, capture_hidden=True)
        engine.save_states("c", result.hidden_states, tokens, kv_cache=cache)
        saved_before = engine.saved_tokens("c")
        big = np.arange(200) % config.vocab_size
        big_result, big_cache = tiny_model.prefill(big, capture_hidden=True)
        with pytest.raises(AllocationError):
            fresh = StorageManager(
                build_storage_array(default_platform), capacity_bytes=tiny_capacity
            )
            fresh.register_context("d", config.n_layers, config.hidden_size)
            for layer in range(config.n_layers):
                fresh.append("d", layer, big_result.hidden_states[layer])
        # The original engine's context is intact and still restorable.
        assert engine.saved_tokens("c") == saved_before
        assert cache.equals(engine.restore("c"))

    def test_free_context_mid_generation(self, tiny_model, default_platform):
        """Dropping a context invalidates restores but leaves others."""
        storage = StorageManager(build_storage_array(default_platform))
        engine = HCacheEngine(tiny_model, storage)
        config = tiny_model.config
        for name in ("keep", "drop"):
            engine.register_context(name)
            tokens = (np.arange(12) + hash(name) % 7) % config.vocab_size
            result, cache = tiny_model.prefill(tokens, capture_hidden=True)
            engine.save_states(name, result.hidden_states, tokens, kv_cache=cache)
        engine.drop_context("drop")
        assert engine.has_context("keep")
        assert len(engine.restore("keep")) == 12


class TestCrossModelConsistency:
    @pytest.mark.parametrize("model_name", ["tiny-llama", "tiny-opt"])
    def test_full_stack_for_both_architectures(self, model_name, default_platform):
        """The whole save/evict/restore stack works for RoPE+RMSNorm and
        for no-RoPE+LayerNorm architectures alike."""
        config = model_preset(model_name)
        model = Transformer.from_seed(config, seed=9)
        storage = StorageManager(build_storage_array(default_platform))
        engine = HCacheEngine(model, storage, platform=default_platform)
        engine.register_context("c")
        tokens = np.arange(30) % config.vocab_size
        result, cache = model.prefill(tokens, capture_hidden=True)
        engine.save_states("c", result.hidden_states, tokens, kv_cache=cache)
        engine.seal("c")
        assert cache.equals(engine.restore("c"), atol=1e-6)
