"""Crash recovery x prefix sharing: the block pool after a hard drop.

The block pool is DRAM — a crash destroys it along with every refcount
and block table.  Durability lives entirely in the journaled storage
tier, so recovery hands the engine a *fresh, empty* store, and the pool
repopulates through the completely ordinary restore path: the first
restore streams from storage and publishes its blocks; later restores
admit the now-committed shared prefix and read only their suffix.

These tests pin down that interaction:

- recovered shared restores are bit-exact against pre-crash state;
- refcounts and block tables rebuilt by restore-driven admission satisfy
  the refcount == referencing-tables invariant (``debug_validate``);
- releasing one recovered session never orphans or double-frees blocks a
  surviving session still references.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hcache import HCacheEngine, RestoreBreakdown
from repro.models.config import model_preset
from repro.models.transformer import Transformer
from repro.simulator.hardware import GB, SSDSpec
from repro.state import BlockPool, BlockStateStore
from repro.storage import ManifestJournal, StorageArray, StorageManager

CHUNK_TOKENS = 8
BLOCK_TOKENS = 16
SYSTEM_PROMPT = 48  # three shared blocks, chunk- and block-aligned
N_SESSIONS = 3

SPEC = SSDSpec(
    "t-ssd", read_bandwidth=3 * GB, write_bandwidth=1 * GB, capacity_bytes=1 * GB
)


@pytest.fixture(scope="module")
def model():
    return Transformer.from_seed(model_preset("tiny-llama"), seed=11)


@pytest.fixture
def journal_factory(tmp_path):
    journals = []

    def make(name="j"):
        journal = ManifestJournal(tmp_path / name)
        journals.append(journal)
        return journal

    yield make
    for journal in journals:
        journal.close()


def make_store(config) -> BlockStateStore:
    pool = BlockPool(
        n_layers=config.n_layers,
        block_tokens=BLOCK_TOKENS,
        n_kv_heads=config.n_kv_heads,
        head_dim=config.head_dim,
        hidden_width=config.hidden_size,
        capacity_blocks=64,
    )
    return BlockStateStore(pool)


def session_tokens(config, index: int) -> np.ndarray:
    system = np.random.default_rng(21).integers(
        0, config.vocab_size, size=SYSTEM_PROMPT
    )
    suffix = np.random.default_rng(500 + index).integers(
        0, config.vocab_size, size=17 + 8 * index
    )
    return np.concatenate([system, suffix])


def build_saved_stack(model, journal):
    """An engine with a shared store, three sealed shared-prefix sessions."""
    config = model.config
    array = StorageArray([SPEC, SPEC], link_bandwidth=8 * GB)
    manager = StorageManager(array, tokens_per_chunk=CHUNK_TOKENS, journal=journal)
    store = make_store(config)
    engine = HCacheEngine(model, manager, shared_store=store)
    for index in range(N_SESSIONS):
        tokens = session_tokens(config, index)
        context_id = f"s{index}"
        engine.register_context(context_id)
        result, cache = model.prefill(tokens, capture_hidden=True)
        engine.save_states(context_id, result.hidden_states, tokens, kv_cache=cache)
        engine.seal(context_id)
    return array, engine, store


class TestSharedRecovery:
    def test_restore_driven_repopulation_is_bit_exact(self, model, journal_factory):
        array, victim, store = build_saved_stack(model, journal_factory("a"))
        assert store.dedup_ratio() > 1.0
        references = {
            f"s{i}": victim.restore(f"s{i}") for i in range(N_SESSIONS)
        }

        # KILL: engine, store, pool, refcounts — everything in DRAM.
        victim.storage.journal.close()
        del victim, store

        manager = StorageManager.recover(
            array, journal_factory("a"), tokens_per_chunk=CHUNK_TOKENS
        )
        fresh_store = make_store(model.config)
        resumed = HCacheEngine.recover(model, manager, shared_store=fresh_store)

        # First restore: full stream from storage, publishes the pool.
        seed_stats = RestoreBreakdown()
        assert resumed.restore("s0", stats=seed_stats).equals(references["s0"])
        assert seed_stats.device_reads > 0
        assert seed_stats.shared_tokens == 0
        assert fresh_store.resident_tokens("s0") == len(references["s0"])

        # Later restores admit the republished shared prefix: bit-exact,
        # strictly fewer device reads than the seeding restore.
        for index in (1, 2):
            context_id = f"s{index}"
            stats = RestoreBreakdown()
            assert resumed.restore(context_id, stats=stats).equals(
                references[context_id]
            )
            # Admission shares whole blocks but the restore serves a
            # granule-aligned floor of them (the suffix stream must stay
            # on the private path's granule grid for bit-exactness).
            granule = resumed.stream_granule_chunks * CHUNK_TOKENS
            assert stats.shared_tokens >= SYSTEM_PROMPT // granule * granule
            assert 0 < stats.device_reads < seed_stats.device_reads
            # Gap-close: the session is now fully pool-resident.
            assert fresh_store.resident_tokens(context_id) == len(
                references[context_id]
            )
        fresh_store.debug_validate()

    def test_recovered_refcounts_match_tables(self, model, journal_factory):
        array, victim, _ = build_saved_stack(model, journal_factory("b"))
        victim.storage.journal.close()
        del victim

        manager = StorageManager.recover(
            array, journal_factory("b"), tokens_per_chunk=CHUNK_TOKENS
        )
        fresh_store = make_store(model.config)
        resumed = HCacheEngine.recover(model, manager, shared_store=fresh_store)
        for index in range(N_SESSIONS):
            resumed.restore(f"s{index}")
        # All three tables reference the shared system-prompt blocks.
        shared_blocks = fresh_store.table("s0").blocks[: SYSTEM_PROMPT // BLOCK_TOKENS]
        for block_id in shared_blocks:
            assert fresh_store.pool.refcount(block_id) == N_SESSIONS
        assert fresh_store.dedup_ratio() > 1.0
        fresh_store.debug_validate()

    def test_post_recovery_release_never_orphans_survivors(
        self, model, journal_factory
    ):
        array, victim, _ = build_saved_stack(model, journal_factory("c"))
        references = {
            f"s{i}": victim.restore(f"s{i}") for i in range(N_SESSIONS)
        }
        victim.storage.journal.close()
        del victim

        manager = StorageManager.recover(
            array, journal_factory("c"), tokens_per_chunk=CHUNK_TOKENS
        )
        fresh_store = make_store(model.config)
        resumed = HCacheEngine.recover(model, manager, shared_store=fresh_store)
        for index in range(N_SESSIONS):
            resumed.restore(f"s{index}")
        shared_blocks = fresh_store.table("s1").blocks[: SYSTEM_PROMPT // BLOCK_TOKENS]

        # Dropping s0 releases its references but must not free blocks the
        # survivors still pin — nor double-free anything on later drops.
        resumed.drop_context("s0")
        assert not fresh_store.is_tracked("s0")
        for block_id in shared_blocks:
            assert fresh_store.pool.refcount(block_id) == N_SESSIONS - 1
        fresh_store.debug_validate()

        # Survivors still restore bit-exact from the pool, zero reads.
        for index in (1, 2):
            stats = RestoreBreakdown()
            assert resumed.restore(f"s{index}", stats=stats).equals(
                references[f"s{index}"]
            )
            assert stats.device_reads == 0
        fresh_store.debug_validate()

        # Dropping the remaining sessions unwinds cleanly to zero refs;
        # the shared blocks stay resident as committed eviction candidates.
        resumed.drop_context("s1")
        resumed.drop_context("s2")
        assert fresh_store.pool.live_blocks == 0
        assert len(fresh_store.pool.evictable_blocks()) > 0
        fresh_store.debug_validate()
