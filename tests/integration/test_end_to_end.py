"""Full-stack integration tests crossing every package boundary."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import KVOffloadMethod, RecomputationMethod, default_methods
from repro.core import HCacheEngine
from repro.core.profiler import build_storage_array
from repro.engine import NumericServingEngine, simulate_methods
from repro.models import KVCache
from repro.storage import StorageManager
from repro.traces import ShareGPTGenerator, build_workload


class TestAllRestorationPathsAgree:
    """HCache, KV offload, and recomputation must all restore the same
    numeric state — they differ only in cost."""

    def test_three_way_equivalence(self, tiny_model, tiny_config, default_platform):
        tokens = np.random.default_rng(1).integers(0, tiny_config.vocab_size, size=25)
        result, reference = tiny_model.prefill(tokens, capture_hidden=True)

        # HCache path.
        storage = StorageManager(build_storage_array(default_platform))
        hcache = HCacheEngine(tiny_model, storage)
        hcache.register_context("c")
        hcache.save_states("c", result.hidden_states, tokens, kv_cache=reference)
        hcache.seal("c")
        via_hidden = hcache.restore("c")

        # KV offload path.
        kv_storage = StorageManager(build_storage_array(default_platform))
        KVOffloadMethod.save_numeric(kv_storage, "c", reference)
        via_kv = KVOffloadMethod.restore_numeric(kv_storage, "c", tiny_config)

        # Recomputation path.
        via_recompute = RecomputationMethod.restore_numeric(tiny_model, tokens)

        assert reference.equals(via_hidden)
        assert reference.equals(via_kv)
        assert reference.equals(via_recompute)

    def test_continuations_agree_across_paths(self, tiny_model, tiny_config, default_platform):
        tokens = np.random.default_rng(2).integers(0, tiny_config.vocab_size, size=15)
        result, reference = tiny_model.prefill(tokens, capture_hidden=True)
        storage = StorageManager(build_storage_array(default_platform))
        hcache = HCacheEngine(tiny_model, storage)
        hcache.register_context("c")
        hcache.save_states("c", result.hidden_states, tokens, kv_cache=reference)
        restored = hcache.restore("c")

        def continue_greedy(cache: KVCache, n: int) -> list[int]:
            out = []
            logits = result.logits[-1]
            for _ in range(n):
                token = int(np.argmax(logits))
                out.append(token)
                logits = tiny_model.decode_step(token, cache).logits[-1]
            return out

        assert continue_greedy(reference, 8) == continue_greedy(restored, 8)


class TestServingPipeline:
    @pytest.fixture(scope="class")
    def workload(self):
        convs = ShareGPTGenerator(seed=42, mean_rounds=5).sample_many(12)
        return build_workload(convs, rate_per_second=0.3, seed=43)

    def test_full_serving_comparison(self, seven_b, default_platform, workload):
        reports = simulate_methods(
            seven_b, default_platform, default_methods(seven_b, default_platform), workload
        )
        assert set(reports) == {"recompute", "kv-offload", "hcache", "ideal"}
        for report in reports.values():
            assert report.n_requests == len(workload)
            assert report.mean_ttft > 0

    def test_throughput_similar_across_methods(self, seven_b, default_platform, workload):
        """§6.1.1: sustainable throughput differs by ~11% at most when the
        system is not overloaded."""
        reports = simulate_methods(
            seven_b, default_platform, default_methods(seven_b, default_platform), workload
        )
        rates = [r.tokens_per_second for r in reports.values()]
        assert max(rates) / min(rates) < 1.2

    def test_13b_serving_works(self, thirteen_b, default_platform):
        convs = ShareGPTGenerator(seed=44, mean_rounds=3, max_history=8192).sample_many(5)
        workload = build_workload(convs, rate_per_second=0.2, seed=45)
        reports = simulate_methods(
            thirteen_b,
            default_platform,
            default_methods(thirteen_b, default_platform),
            workload,
        )
        assert reports["hcache"].mean_ttft < reports["kv-offload"].mean_ttft


class TestNumericServingAtScale:
    def test_many_sessions_interleaved(self, tiny_model, tiny_config, default_platform):
        """Several conversations with interleaved rounds and evictions all
        stay consistent."""
        storage = StorageManager(build_storage_array(default_platform))
        engine = NumericServingEngine(tiny_model, HCacheEngine(tiny_model, storage))
        rng = np.random.default_rng(46)
        n_sessions = 4
        transcripts: dict[str, list[list[int]]] = {}
        for s in range(n_sessions):
            engine.open_session(f"s{s}")
            transcripts[f"s{s}"] = []
        for round_idx in range(3):
            for s in range(n_sessions):
                sid = f"s{s}"
                prompt = rng.integers(0, tiny_config.vocab_size, size=5 + s)
                transcripts[sid].append(engine.chat_round(sid, prompt, 3))
                engine.evict(sid)
        # Each session produced three rounds of three tokens.
        for sid, rounds in transcripts.items():
            assert len(rounds) == 3
            assert all(len(r) == 3 for r in rounds)

    def test_storage_freed_after_close(self, tiny_model, tiny_config, default_platform):
        storage = StorageManager(build_storage_array(default_platform))
        engine = NumericServingEngine(tiny_model, HCacheEngine(tiny_model, storage))
        engine.open_session("s")
        engine.chat_round("s", np.arange(8) % tiny_config.vocab_size, 4)
        engine.evict("s")
        assert storage.array.total_used_bytes > 0
        engine.close_session("s")
        assert storage.array.total_used_bytes == 0
