"""Kill-and-resume: the tentpole crash-recovery test.

A numeric engine serves multi-round conversations; mid-conversation the
whole in-memory stack is dropped (engine, HCache engine, storage manager,
tail buffers — everything a process crash destroys).  Recovery rebuilds
the stack from the journal directory and the device chunks alone, every
session restores through the completely ordinary ``HCacheEngine.restore``
path, and decoding continues:

- the recovered saved-prefix KV state is **bit-exact** against the
  pre-kill state (sealed sessions entirely; unsealed sessions up to the
  durable chunk boundary);
- a recovered session's continued greedy token stream is identical to a
  control stack that never crashed.

Token streams are compared for equality outright: the restore path is
bit-exact, and the serial decode path is deterministic.  (The batched
continuation at the end exercises ``chat_rounds`` post-recovery, whose
values sit within the pinned ``BATCHED_DECODE_ATOL`` of the serial path
as documented on the numeric engine.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hcache import HCacheEngine
from repro.engine.numeric_engine import NumericServingEngine
from repro.models.config import model_preset
from repro.models.transformer import Transformer
from repro.simulator.hardware import GB, SSDSpec
from repro.storage import ManifestJournal, StorageArray, StorageManager

CPC = 64

SPEC = SSDSpec("t-ssd", read_bandwidth=3 * GB, write_bandwidth=1 * GB,
               capacity_bytes=1 * GB)


@pytest.fixture(scope="module")
def model():
    return Transformer.from_seed(model_preset("tiny-llama"), seed=11)


@pytest.fixture
def journal_factory(tmp_path):
    """Opens (and re-opens) journal directories, closing every handle at
    teardown — the tests deliberately abandon journals mid-"crash"."""
    journals = []

    def make(name="j"):
        journal = ManifestJournal(tmp_path / name)
        journals.append(journal)
        return journal

    yield make
    for journal in journals:
        journal.close()


def build_stack(model, journal=None):
    array = StorageArray([SPEC, SPEC], link_bandwidth=8 * GB)
    manager = StorageManager(array, journal=journal)
    engine = NumericServingEngine(model, HCacheEngine(model, manager))
    return array, engine


def prompts(model, seed):
    rng = np.random.default_rng(seed)
    return lambda n: rng.integers(0, model.config.vocab_size, size=n)


def snapshot_prefix(cache, n_layers, n_tokens):
    """Copy the first ``n_tokens`` KV rows of every layer out of a cache."""
    return {
        layer: tuple(np.array(t[:n_tokens]) for t in cache.get(layer))
        for layer in range(n_layers)
    }


def assert_cache_prefix(cache, reference, n_layers):
    for layer in range(n_layers):
        k_ref, v_ref = reference[layer]
        k, v = cache.get(layer)
        assert np.array_equal(k[: len(k_ref)], k_ref)
        assert np.array_equal(v[: len(v_ref)], v_ref)


def recover_stack(model, array, journal):
    manager = StorageManager.recover(array, journal)
    hcache = HCacheEngine.recover(model, manager)
    return NumericServingEngine.recover(model, hcache)


class TestKillAndResume:
    def test_hard_kill_mid_conversation(self, model, journal_factory):
        n_layers = model.config.n_layers
        array, victim = build_stack(model, journal_factory("victim"))
        _, control = build_stack(model)
        make = prompts(model, seed=42)
        p1, p2, p3, p4 = make(40), make(30), make(54), make(25)

        # Round 1 on both stacks, identically; evict both sessions (seal).
        for engine in (victim, control):
            engine.open_session("s1")
            engine.open_session("s2")
            engine.chat_round("s1", p1, 8)       # 48 tokens, sealed below
            engine.chat_round("s2", p2, 18)      # 48 tokens, sealed below
            engine.evict("s1")
            engine.evict("s2")

        # Round 2 on the victim's s1 only — and no eviction: the round's
        # trailing rows live in unsealed host tail buffers when we kill.
        victim.chat_round("s1", p3, 16)          # 118 tokens, 64 durable
        s1_history = list(victim.session("s1").tokens)
        assert len(s1_history) == 118

        # Pre-kill references for the durable prefixes.
        live_s1 = victim.session("s1").kv_cache
        ref_s1 = snapshot_prefix(live_s1, n_layers, CPC)
        ref_s2 = snapshot_prefix(victim.hcache.restore("s2"), n_layers, 48)

        # KILL: drop every in-memory structure.  The devices (the durable
        # chunk store) and the journal directory are all that survive.
        victim.hcache.storage.journal.close()
        del victim, live_s1

        resumed = recover_stack(model, array, journal_factory("victim"))

        # Durable token counts: s2 fully sealed, s1 cut at its chunk
        # boundary (the unsealed 54-row tail died with the process).
        assert resumed.hcache.saved_tokens("s2") == 48
        assert resumed.hcache.saved_tokens("s1") == CPC
        assert resumed.session("s1").tokens == s1_history[:CPC]
        assert resumed.session("s2").tokens == list(control.session("s2").tokens)

        # Saved-prefix state restores bit-exact through the normal path.
        assert_cache_prefix(resumed.hcache.restore("s1"), ref_s1, n_layers)
        assert_cache_prefix(resumed.hcache.restore("s2"), ref_s2, n_layers)

        # The recovered s2 continues exactly like the never-crashed control.
        resumed_stream = resumed.chat_round("s2", p4, 12)
        control_stream = control.chat_round("s2", p4, 12)
        assert resumed_stream == control_stream

        # s1 continues from its truncated durable history.
        generated = resumed.chat_round("s1", make(10), 6)
        assert len(generated) == 6
        assert resumed.hcache.saved_tokens("s1") == CPC + 10 + 6
        assert resumed.session("s1").tokens == s1_history[:CPC] + list(
            resumed.session("s1").tokens[CPC:]
        )

    def test_clean_kill_preserves_everything(self, model, journal_factory):
        """All sessions sealed before the crash: recovery is lossless and
        both sessions' continued streams match the control exactly."""
        n_layers = model.config.n_layers
        array, victim = build_stack(model, journal_factory("clean"))
        _, control = build_stack(model)
        make = prompts(model, seed=7)
        p1, p2, p3 = make(70), make(33), make(20)

        for engine in (victim, control):
            engine.open_session("s1")
            engine.open_session("s2")
            engine.chat_round("s1", p1, 10)
            engine.chat_round("s2", p2, 5)
            engine.evict("s1")
            engine.evict("s2")
        ref = {
            sid: snapshot_prefix(
                victim.hcache.restore(sid), n_layers, victim.hcache.saved_tokens(sid)
            )
            for sid in ("s1", "s2")
        }

        victim.hcache.storage.journal.close()
        del victim

        resumed = recover_stack(model, array, journal_factory("clean"))
        for sid, expect in (("s1", 80), ("s2", 38)):
            assert resumed.hcache.saved_tokens(sid) == expect
            assert resumed.session(sid).tokens == list(control.session(sid).tokens)
            assert_cache_prefix(resumed.hcache.restore(sid), ref[sid], n_layers)

        for sid in ("s1", "s2"):
            assert resumed.chat_round(sid, p3, 9) == control.chat_round(sid, p3, 9)

        # And the recovered engine's *batched* round still holds together
        # (values within the documented BATCHED_DECODE_ATOL of serial).
        resumed.evict("s1")
        resumed.evict("s2")
        streams = resumed.chat_rounds([("s1", make(12)), ("s2", make(12))], 4)
        assert set(streams) == {"s1", "s2"}
        for sid in ("s1", "s2"):
            assert len(streams[sid]) == 4
            state = resumed.session(sid)
            assert len(state.kv_cache) == len(state.tokens)
            assert resumed.hcache.saved_tokens(sid) == len(state.tokens)

    def test_second_crash_after_resume(self, model, journal_factory):
        """Crash, resume, serve, crash again: the re-attached journal keeps
        journaling, so recovery composes."""
        array, victim = build_stack(model, journal_factory("twice"))
        make = prompts(model, seed=3)
        victim.open_session("s1")
        first_round = victim.chat_round("s1", make(50), 6)
        victim.evict("s1")
        victim.hcache.storage.journal.close()
        del victim

        middle = recover_stack(model, array, journal_factory("twice"))
        assert middle.hcache.saved_tokens("s1") == 56
        middle.chat_round("s1", make(30), 8)
        middle.evict("s1")
        history = list(middle.session("s1").tokens)
        middle.hcache.storage.journal.close()
        del middle

        final = recover_stack(model, array, journal_factory("twice"))
        assert final.hcache.saved_tokens("s1") == 94
        assert final.session("s1").tokens == history
        assert len(first_round) == 6
        generated = final.chat_round("s1", make(5), 3)
        assert len(generated) == 3
