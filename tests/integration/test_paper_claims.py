"""Integration tests asserting the paper's headline claims hold in shape.

Each test corresponds to a numbered claim from the evaluation (§6); the
benchmark harness regenerates the full tables, while these tests gate the
qualitative results: who wins, by roughly what factor, and where the
crossovers sit.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    HCacheMethod,
    HCacheOnlyMethod,
    KVOffloadMethod,
    NaiveHybridMethod,
    RecomputationMethod,
    default_methods,
)
from repro.core import hcache_timing
from repro.models import model_preset
from repro.simulator import platform_preset
from repro.simulator.costs import theoretical_compute_speedup


MODEL_PLATFORMS = [
    ("llama2-7b", "a100-4ssd"),
    ("llama2-13b", "a100-4ssd"),
    ("opt-30b", "a100x4-4ssd"),
]


class TestAbstractClaims:
    def test_fig1_resource_budget(self):
        """Fig. 1: HCache needs ~1/6 the compute and 1/2 the IO."""
        for name in ("llama2-7b", "llama2-13b", "opt-30b"):
            config = model_preset(name)
            assert theoretical_compute_speedup(config, 2048) >= 6.0
            assert config.kv_bytes_per_token == 2 * config.hidden_bytes_per_token

    @pytest.mark.parametrize("model,platform", MODEL_PLATFORMS)
    def test_fig4_restoration_overhead(self, model, platform):
        """Fig. 4: recompute TTFT 20-26x ideal; KV offload 6.5-13x
        (10K-token L-Eval-style history)."""
        methods = default_methods(model_preset(model), platform_preset(platform))
        ttft = {name: m.ttft(10_000, 100) for name, m in methods.items()}
        assert 15 < ttft["recompute"] / ttft["ideal"] < 45
        assert 5 < ttft["kv-offload"] / ttft["ideal"] < 18


class TestEndToEndSpeedups:
    @pytest.mark.parametrize("model,platform", MODEL_PLATFORMS)
    def test_fig10_ttft_speedups(self, model, platform):
        """Fig. 10: HCache TTFT beats KV offload by 1.62-1.93x and
        recomputation by 2.66-5.73x on long contexts (bands widened to
        accommodate the simulated substrate)."""
        methods = default_methods(model_preset(model), platform_preset(platform))
        ttft = {name: m.ttft(10_000, 100) for name, m in methods.items()}
        assert 1.4 < ttft["kv-offload"] / ttft["hcache"] < 2.3
        assert 2.5 < ttft["recompute"] / ttft["hcache"] < 9.0

    @pytest.mark.parametrize("model,platform", MODEL_PLATFORMS)
    def test_tab3_storage_saving(self, model, platform):
        """Table 3: per-token storage 1.92-2.40x below KV offload."""
        config = model_preset(model)
        hcache = HCacheMethod(config, platform_preset(platform))
        ratio = config.kv_bytes_per_token / hcache.storage_bytes_per_token()
        assert 1.7 <= ratio <= 2.5

    @pytest.mark.parametrize(
        "gpu_platform", ["a100-dram", "4090-dram", "a30-dram", "h800-dram", "l20-dram"]
    )
    def test_fig11_gpu_sweep(self, gpu_platform):
        """Fig. 11a-c: HCache beats KV offload by 1.2-1.9x on every GPU,
        with weaker GPUs at the low end (A30/L20)."""
        config = model_preset("llama2-7b")
        platform = platform_preset(gpu_platform)
        h = HCacheMethod(config, platform).restoration_speed(1024)
        kv = KVOffloadMethod(config, platform).restoration_speed(1024)
        assert 1.15 < h / kv < 2.0

    def test_fig11_weak_gpu_smaller_gain(self):
        """§6.2.1: low compute capability shrinks HCache's lead."""
        config = model_preset("llama2-7b")
        gains = {}
        for name in ("a100-dram", "a30-dram"):
            platform = platform_preset(name)
            h = HCacheMethod(config, platform).restoration_speed(1024)
            kv = KVOffloadMethod(config, platform).restoration_speed(1024)
            gains[name] = h / kv
        assert gains["a30-dram"] < gains["a100-dram"]

    @pytest.mark.parametrize("n_ssds,band", [(1, (2.0, 2.9)), (4, (1.6, 2.1))])
    def test_fig11_ssd_sweep(self, n_ssds, band):
        """Fig. 11d-f: 2.09-2.66x with one SSD per GPU, shrinking toward
        <2x as disks multiply."""
        config = model_preset("llama2-7b")
        platform = platform_preset("default").with_ssds(n_ssds)
        h = HCacheMethod(config, platform).restoration_speed(1024)
        kv = KVOffloadMethod(config, platform).restoration_speed(1024)
        assert band[0] < h / kv < band[1]

    def test_fig11_context_scaling(self):
        """Fig. 11g-i: recompute speed decays with history; HCache and
        KV offload stay roughly flat.

        The paper measured -28% for 7B from 1K to 16K; its own §3.2 cost
        model (which we implement) predicts -13% — the gap is attention's
        memory traffic, which the FLOP model does not charge.  We assert
        the decay direction and the model-implied magnitude.
        """
        config = model_preset("llama2-7b")
        platform = platform_preset("default")
        rec = RecomputationMethod(config, platform)
        h = HCacheMethod(config, platform)
        rec_drop = rec.restoration_speed(16384) / rec.restoration_speed(1024)
        h_drop = h.restoration_speed(16384) / h.restoration_speed(1024)
        assert rec_drop < 0.92
        assert h_drop > 0.85
        assert rec_drop < h_drop


class TestAblations:
    def test_fig12_hcache_beats_naive_hybrid(self):
        """§6.3.1: HCache outperforms the best hidden-state-free hybrid by
        1.28-1.42x (compute-sufficient shown; others in the bench)."""
        config = model_preset("llama2-7b")
        platform = platform_preset("compute-sufficient")
        h = HCacheMethod(config, platform).restoration_speed(1024)
        nh = NaiveHybridMethod(config, platform).restoration_speed(1024)
        assert 1.15 < h / nh < 1.6

    def test_fig12_hcache_o_loses_on_io_sufficient(self):
        """§6.3.1: without the scheduler, HCache-O falls behind KV offload
        when IO is plentiful but compute is not."""
        config = model_preset("llama2-7b")
        platform = platform_preset("io-sufficient")
        ho = HCacheOnlyMethod(config, platform).restoration_speed(1024)
        kv = KVOffloadMethod(config, platform).restoration_speed(1024)
        assert ho < kv

    def test_fig12_scheduler_rescues_hcache(self):
        """§6.3.1: the bubble-free scheduler lifts HCache past KV offload
        on every regime (1.45-2.66x in the paper)."""
        config = model_preset("llama2-7b")
        for regime in ("io-sufficient", "compute-sufficient", "balanced"):
            platform = platform_preset(regime)
            h = HCacheMethod(config, platform).restoration_speed(1024)
            kv = KVOffloadMethod(config, platform).restoration_speed(1024)
            assert h / kv > 1.25, regime

    def test_fig13_layerwise_beats_tokenwise(self, thirteen_b):
        """§6.3.2: token-wise partition is ~12% slower (13B, 1 SSD)."""
        from repro.core import best_tokenwise_partition

        platform = platform_preset("compute-sufficient")
        layer, _ = hcache_timing(thirteen_b, platform, 1024)
        token, _ = best_tokenwise_partition(thirteen_b, platform, 1024, step=64)
        slowdown = token.makespan / layer.makespan
        assert 1.02 < slowdown < 1.5


class TestSchedules:
    def test_tab3_7b_schedule(self, seven_b):
        _, decision = hcache_timing(seven_b, platform_preset("default"), 1024)
        assert decision.scheme.n_hidden >= 30

    def test_tab3_13b_schedule_uses_kv(self, thirteen_b):
        _, decision = hcache_timing(thirteen_b, platform_preset("default"), 1024)
        assert decision.scheme.n_kv >= 1

    def test_tab3_30b_schedule_uses_recompute(self, opt_30b):
        _, decision = hcache_timing(opt_30b, platform_preset("a100x4-4ssd"), 1024)
        assert decision.scheme.n_recompute >= 1
