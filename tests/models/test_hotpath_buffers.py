"""Property-style equivalence tests for the amortized-growth hot path.

Every optimized buffer (KVCache backing store, HiddenCapture, batched
restoration projection) must be **bit-exact** against the preserved naive
reference implementations in :mod:`repro.models.reference` under
interleaved append/truncate/install sequences, generation with capture,
and save -> seal -> append -> restore round-trips.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hcache import HCacheEngine
from repro.errors import ConfigError, StateError
from repro.models.hidden_capture import HiddenCapture
from repro.models.kv_cache import KVCache
from repro.models.reference import (
    NaiveKVCache,
    naive_generate_capture,
    naive_restore_cache_from_hidden,
)


def kv_rows(config, n, rng):
    shape = (n, config.n_kv_heads, config.head_dim)
    return (
        rng.normal(size=shape).astype(np.float32),
        rng.normal(size=shape).astype(np.float32),
    )


def prompt(config, n, seed=0):
    return np.random.default_rng(seed).integers(0, config.vocab_size, size=n)


class TestInterleavedOpsMatchNaive:
    def test_random_interleavings_bit_exact(self, tiny_config):
        """append/truncate/install/clear in any order match the naive cache."""
        rng = np.random.default_rng(42)
        for _trial in range(8):
            fast, naive = KVCache(tiny_config), NaiveKVCache(tiny_config)
            for _step in range(40):
                op = int(rng.integers(0, 6))
                if op <= 2:  # bias towards the hot-path append
                    k, v = kv_rows(tiny_config, int(rng.integers(1, 9)), rng)
                    for layer in range(tiny_config.n_layers):
                        fast.append(layer, k, v)
                        naive.append(layer, k, v)
                elif op == 3:
                    n_t = int(rng.integers(0, len(naive) + 1))
                    fast.truncate(n_t)
                    naive.truncate(n_t)
                elif op == 4:
                    m = int(rng.integers(0, 12))
                    for layer in range(tiny_config.n_layers):
                        k, v = kv_rows(tiny_config, m, rng)
                        fast.install(layer, k, v)
                        naive.install(layer, k, v)
                else:
                    fast.clear()
                    naive.clear()
                assert len(fast) == len(naive)
                fast.debug_validate()
            assert fast.equals(naive, atol=0.0)
            assert naive.equals(fast, atol=0.0)
            assert fast.nbytes() == naive.nbytes()

    def test_packed_roundtrip_matches_naive(self, tiny_config):
        rng = np.random.default_rng(7)
        fast, naive = KVCache(tiny_config), NaiveKVCache(tiny_config)
        k, v = kv_rows(tiny_config, 77, rng)
        fast.append(1, k, v)
        naive.append(1, k, v)
        assert np.array_equal(fast.packed_layer(1), naive.packed_layer(1))
        other_fast, other_naive = KVCache(tiny_config), NaiveKVCache(tiny_config)
        other_fast.install_packed(1, naive.packed_layer(1))
        other_naive.install_packed(1, fast.packed_layer(1))
        assert other_fast.equals(other_naive, atol=0.0)

    def test_packed_rows_match_packed_layer_slices(self, tiny_config):
        rng = np.random.default_rng(8)
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 50, rng)
        cache.append(0, k, v)
        full = cache.packed_layer(0)
        for start, stop in ((0, 50), (10, 30), (49, 50), (20, 20)):
            assert np.array_equal(cache.packed_rows(0, start, stop), full[start:stop])
        with pytest.raises(ConfigError):
            cache.packed_rows(0, 10, 51)
        with pytest.raises(ConfigError):
            cache.packed_rows(0, -1, 5)

    def test_mismatched_layers_still_detected(self, tiny_config):
        """The O(1) length invariant preserves the disagreement check."""
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 2, np.random.default_rng(0))
        cache.append(0, k, v)
        with pytest.raises(StateError):
            len(cache)
        cache.debug_validate()  # the histogram itself stays consistent

    def test_views_stable_across_append(self, tiny_config):
        """Views returned before an in-capacity append keep their content."""
        rng = np.random.default_rng(9)
        cache = KVCache(tiny_config)
        cache.reserve(64)
        k1, v1 = kv_rows(tiny_config, 5, rng)
        cache.append(0, k1, v1)
        view_k, _ = cache.get(0)
        snapshot = view_k.copy()
        k2, v2 = kv_rows(tiny_config, 7, rng)
        cache.append(0, k2, v2)
        assert view_k.shape == (5, tiny_config.n_kv_heads, tiny_config.head_dim)
        assert np.array_equal(view_k, snapshot)

    def test_views_detach_on_growth_reallocation(self, tiny_config):
        """The documented caveat: growth reallocations leave old views as
        stale snapshots of the pre-growth buffer."""
        rng = np.random.default_rng(19)
        cache = KVCache(tiny_config)
        k1, v1 = kv_rows(tiny_config, 4, rng)
        cache.append(0, k1, v1)
        view_k, _ = cache.get(0)
        k2, v2 = kv_rows(tiny_config, cache.capacity + 1, rng)
        cache.append(0, k2, v2)  # forces a reallocation
        assert np.array_equal(view_k, k1)  # stale snapshot, old content
        assert not np.shares_memory(view_k, cache.get(0)[0])

    def test_reserve_preserves_content(self, tiny_config):
        rng = np.random.default_rng(10)
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 3, rng)
        for layer in range(tiny_config.n_layers):
            cache.append(layer, k, v)
        cache.reserve(500)
        assert cache.capacity >= 500
        got_k, got_v = cache.get(0)
        assert np.array_equal(got_k, k)
        assert np.array_equal(got_v, v)


class TestInstallFastPaths:
    def test_install_all_adopts_fresh_arrays(self, tiny_config):
        """A fresh contiguous projection result becomes cache storage
        without a defensive copy."""
        L = tiny_config.n_layers
        shape = (L, 9, tiny_config.n_kv_heads, tiny_config.head_dim)
        rng = np.random.default_rng(11)
        keys = rng.normal(size=shape).astype(np.float32)
        values = rng.normal(size=shape).astype(np.float32)
        cache = KVCache(tiny_config)
        cache.install_all(keys, values)
        assert len(cache) == 9
        assert np.shares_memory(keys, cache.get(0)[0])
        assert np.array_equal(cache.get(2)[0], keys[2])

    def test_install_all_copies_strided_input(self, tiny_config):
        L = tiny_config.n_layers
        shape = (L, 20, tiny_config.n_kv_heads, tiny_config.head_dim)
        rng = np.random.default_rng(12)
        keys = rng.normal(size=shape).astype(np.float32)[:, ::2]
        values = rng.normal(size=shape).astype(np.float32)[:, ::2]
        cache = KVCache(tiny_config)
        cache.install_all(keys, values)
        assert not np.shares_memory(keys, cache.get(0)[0])
        assert np.array_equal(cache.get(1)[0], keys[1])

    def test_install_view_writes_into_storage(self, tiny_config):
        rng = np.random.default_rng(13)
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 6, rng)
        k_view, v_view = cache.install_view(0, 6)
        k_view[...] = k
        v_view[...] = v
        got_k, got_v = cache.get(0)
        assert np.array_equal(got_k, k)
        assert np.array_equal(got_v, v)
        assert cache.layer_len(0) == 6

    def test_install_from_own_views_is_safe(self, tiny_config):
        rng = np.random.default_rng(14)
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 4, rng)
        cache.append(0, k, v)
        cache.install(1, *cache.get(0))
        assert np.array_equal(cache.get(1)[0], k)


class TestHiddenCapture:
    def test_growth_and_views(self):
        cap = HiddenCapture(3, 8)
        rng = np.random.default_rng(15)
        blocks = [rng.normal(size=(m, 8)).astype(np.float32) for m in (5, 1, 1, 30)]
        for block in blocks:
            start = cap.extend(block.shape[0])
            for layer in range(3):
                cap.write(layer, start, block + layer)
        expected = np.concatenate(blocks, axis=0)
        assert len(cap) == expected.shape[0]
        for layer in range(3):
            assert np.array_equal(cap.layer_view(layer), expected + layer)
        assert cap.stacked().shape == (3, expected.shape[0], 8)
        tail = cap.block_views(expected.shape[0] - 2, expected.shape[0])
        assert np.array_equal(tail[1], expected[-2:] + 1)

    def test_reserve_skips_reallocation(self):
        cap = HiddenCapture(2, 4)
        cap.reserve(100)
        buf_before = cap.stacked().base
        for _ in range(100):
            start = cap.extend(1)
            cap.write(0, start, np.zeros((1, 4), dtype=np.float32))
            cap.write(1, start, np.zeros((1, 4), dtype=np.float32))
        assert cap.stacked().base is buf_before

    def test_bounds_checked(self):
        cap = HiddenCapture(2, 4)
        cap.extend(3)
        with pytest.raises(ConfigError):
            cap.write(5, 0, np.zeros((1, 4), dtype=np.float32))
        with pytest.raises(ConfigError):
            cap.write(0, 2, np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(ConfigError):
            cap.block_views(0, 9)


class TestGenerateCaptureEquivalence:
    def test_generate_matches_naive_accumulation(self, tiny_model, tiny_config):
        p = prompt(tiny_config, 6, seed=21)
        fast_tokens, fast_cache, fast_cap = tiny_model.generate(
            p, 12, capture_hidden=True
        )
        naive_tokens, naive_cache, naive_cap = naive_generate_capture(
            tiny_model, p, 12
        )
        assert fast_tokens == naive_tokens
        assert fast_cache.equals(naive_cache, atol=0.0)
        assert len(fast_cap) == len(naive_cap) == tiny_config.n_layers
        for a, b in zip(fast_cap, naive_cap):
            assert np.array_equal(a, b)

    def test_forward_capture_views_match_copies(self, tiny_model, tiny_config):
        p = prompt(tiny_config, 9, seed=22)
        result, _ = tiny_model.prefill(p, capture_hidden=True)
        cap = HiddenCapture(tiny_config.n_layers, tiny_config.hidden_size)
        result2 = tiny_model.forward(p, KVCache(tiny_config), capture=cap)
        for a, b in zip(result.hidden_states, result2.hidden_states):
            assert np.array_equal(a, b)
        for layer in range(tiny_config.n_layers):
            assert np.array_equal(cap.layer_view(layer), result.hidden_states[layer])


class TestBatchedRestore:
    def test_restore_matches_naive_bit_exact(self, tiny_model, tiny_config):
        result, cache = tiny_model.prefill(prompt(tiny_config, 33, seed=23), capture_hidden=True)
        fast = tiny_model.restore_cache_from_hidden(result.hidden_states)
        naive = naive_restore_cache_from_hidden(tiny_model, result.hidden_states)
        assert fast.equals(naive, atol=0.0)
        assert fast.equals(cache, atol=0.0)

    def test_restore_opt_architecture_matches_naive(self, tiny_opt_model, tiny_opt_config):
        """LayerNorm + no-RoPE models take the non-rotating branch."""
        result, cache = tiny_opt_model.prefill(
            prompt(tiny_opt_config, 21, seed=24), capture_hidden=True
        )
        fast = tiny_opt_model.restore_cache_from_hidden(result.hidden_states)
        naive = naive_restore_cache_from_hidden(tiny_opt_model, result.hidden_states)
        assert fast.equals(naive, atol=0.0)
        assert fast.equals(cache, atol=0.0)

    def test_project_kv_all_matches_per_layer(self, tiny_model, tiny_config):
        result, _ = tiny_model.prefill(prompt(tiny_config, 17, seed=25), capture_hidden=True)
        pos = np.arange(17)
        k_all, v_all = tiny_model.project_kv_all(result.hidden_states, pos)
        for layer in range(tiny_config.n_layers):
            k, v = tiny_model.project_kv(layer, result.hidden_states[layer], pos)
            assert np.array_equal(k_all[layer], k)
            assert np.array_equal(v_all[layer], v)

    def test_project_kv_all_layer_subset(self, tiny_model, tiny_config):
        result, _ = tiny_model.prefill(prompt(tiny_config, 11, seed=26), capture_hidden=True)
        pos = np.arange(11)
        subset = [1, 3]
        k_all, v_all = tiny_model.project_kv_all(
            [result.hidden_states[layer] for layer in subset], pos, layers=subset
        )
        for i, layer in enumerate(subset):
            k, v = tiny_model.project_kv(layer, result.hidden_states[layer], pos)
            assert np.array_equal(k_all[i], k)
            assert np.array_equal(v_all[i], v)

    def test_project_kv_into_matches_project_kv_all(self, tiny_model, tiny_config):
        result, _ = tiny_model.prefill(prompt(tiny_config, 13, seed=31), capture_hidden=True)
        pos = np.arange(13)
        k_all, v_all = tiny_model.project_kv_all(result.hidden_states, pos)
        cache = KVCache(tiny_config)
        cache.reserve(64)
        tiny_model.project_kv_into(result.hidden_states, pos, cache)
        assert cache.capacity == 64  # projected into the reserved buffer
        for layer in range(tiny_config.n_layers):
            got_k, got_v = cache.get(layer)
            assert np.array_equal(got_k, k_all[layer])
            assert np.array_equal(got_v, v_all[layer])

    def test_restore_accepts_capture_and_stacked(self, tiny_model, tiny_config):
        p = prompt(tiny_config, 8, seed=27)
        _, cache, captured = tiny_model.generate(p, 4, capture_hidden=True)
        stacked = np.stack(captured)
        from_list = tiny_model.restore_cache_from_hidden(captured)
        from_array = tiny_model.restore_cache_from_hidden(stacked)
        # List, stacked-array, and naive inputs all take the same math.
        assert from_list.equals(from_array, atol=0.0)
        assert from_list.equals(
            naive_restore_cache_from_hidden(tiny_model, captured), atol=0.0
        )
        # Decode-step KV was produced by M=1 GEMVs, restoration by one
        # M=n GEMM — identical up to BLAS kernel rounding (the seed's
        # guarantee for post-generation restores).
        assert from_list.equals(cache, atol=1e-5)

    def test_layer_count_checked(self, tiny_model):
        with pytest.raises(ConfigError):
            tiny_model.restore_cache_from_hidden([np.zeros((3, 64), dtype=np.float32)])


class TestSaveSealAppendRestore:
    """Multi-round save -> seal -> append -> restore with partial tail chunks."""

    @pytest.fixture
    def engine(self, tiny_model, storage_manager):
        return HCacheEngine(tiny_model, storage_manager)

    def test_drop_context_with_pure_recompute_scheme(self, tiny_model, tiny_config, storage_manager):
        """A pure-recompute partition stores nothing; dropping the context
        must not trip over the allocator having no runs."""
        from repro.core.partition import PartitionScheme

        engine = HCacheEngine(
            tiny_model, storage_manager,
            scheme=PartitionScheme.pure_recompute(tiny_config.n_layers),
        )
        engine.register_context("re")
        tokens = prompt(tiny_config, 12, seed=33)
        cache = KVCache(tiny_config)
        result = tiny_model.forward(tokens, cache, capture_hidden=True)
        engine.save_states("re", result.hidden_states, tokens, kv_cache=cache)
        engine.seal("re")
        assert engine.restore("re").equals(cache, atol=0.0)
        engine.drop_context("re")
        assert not engine.has_context("re")

    def test_partial_tail_roundtrip_bit_exact(self, tiny_model, tiny_config, engine):
        engine.register_context("chat")
        cache = KVCache(tiny_config)
        all_tokens = prompt(tiny_config, 30 + 50 + 7, seed=28)
        # Round sizes straddle the 64-token chunk boundary so the tail
        # chunk is sealed partially filled, grown, and resealed.
        start = 0
        for round_len in (30, 50, 7):
            block = all_tokens[start : start + round_len]
            result = tiny_model.forward(block, cache, capture_hidden=True)
            engine.save_states("chat", result.hidden_states, block)
            engine.seal("chat")
            start += round_len
        restored = engine.restore("chat")
        assert restored.equals(cache, atol=0.0)

    def test_restore_with_reserve_sizes_cache_for_round(self, tiny_model, tiny_config, engine):
        engine.register_context("r")
        cache = KVCache(tiny_config)
        block = prompt(tiny_config, 20, seed=30)
        result = tiny_model.forward(block, cache, capture_hidden=True)
        engine.save_states("r", result.hidden_states, block)
        engine.seal("r")
        restored = engine.restore("r", reserve_tokens=100)
        assert restored.capacity >= 100  # no post-restore growth copy needed
        assert restored.equals(cache, atol=0.0)

    def test_single_token_appends_then_restore(self, tiny_model, tiny_config, engine):
        """The decode pattern: one-row saves, sealed mid-stream."""
        engine.register_context("decode")
        cache = KVCache(tiny_config)
        tokens = prompt(tiny_config, 70, seed=29)
        for i, token in enumerate(tokens):
            result = tiny_model.forward(tokens[i : i + 1], cache, capture_hidden=True)
            engine.save_states("decode", result.hidden_states, tokens[i : i + 1])
            if i in (3, 63, 64):
                engine.seal("decode")
        restored = engine.restore("decode")
        # Decode-step KV came from M=1 GEMVs; the batched restore runs one
        # M=70 GEMM — the seed's guarantee for post-decode restores is
        # tolerance-level, and the batched path must match the naive
        # restore bit-for-bit on the same stored states.
        assert restored.equals(cache, atol=1e-5)
        stored = [
            engine.storage.load_layer("decode", layer)
            for layer in range(tiny_config.n_layers)
        ]
        assert restored.equals(
            naive_restore_cache_from_hidden(tiny_model, stored), atol=0.0
        )
