"""Batched multi-session decode vs the serial per-session loop.

``Transformer.decode_batch`` must reproduce the serial decode path for
every session of the batch — unequal lengths, GQA, layernorm/no-rope —
within the documented batched-GEMM tolerance
(:data:`repro.models.transformer.BATCHED_DECODE_ATOL`), with identical
post-step cache contents, and the stacked-block and gather flavors of
the batched path must agree bit for bit.  The stacked block itself has
adoption/growth/repointing invariants tested here too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, StateError
from repro.models.config import ModelConfig, model_preset
from repro.models.hidden_capture import HiddenCapture
from repro.models.kv_cache import KVCache, StackedKVCacheBlock
from repro.models.transformer import BATCHED_DECODE_ATOL, Transformer

GQA_CONFIG = ModelConfig(
    name="tiny-gqa",
    n_layers=3,
    hidden_size=48,
    n_heads=6,
    n_kv_heads=2,
    ffn_hidden_size=96,
    n_ffn_mats=3,
    vocab_size=64,
    max_context=256,
)

CONFIGS = {
    "tiny-llama": model_preset("tiny-llama"),
    "tiny-opt": model_preset("tiny-opt"),
    "tiny-gqa": GQA_CONFIG,
}

_MODELS: dict[str, Transformer] = {}


def get_model(name: str) -> Transformer:
    if name not in _MODELS:
        _MODELS[name] = Transformer.from_seed(CONFIGS[name], seed=11)
    return _MODELS[name]


def prefilled_caches(model, lengths, seed, copies=1):
    """``copies`` independent-but-identical cache sets for the given lengths."""
    config = model.config
    rng = np.random.default_rng(seed)
    prompts = [rng.integers(0, config.vocab_size, size=n) for n in lengths]
    sets = [[] for _ in range(copies)]
    for prompt in prompts:
        for group in sets:
            cache = KVCache(config)
            model.forward(prompt, cache)
            group.append(cache)
    return prompts, sets


def serial_decode(model, tokens, caches, captures=None):
    """Per-session single-token forwards; logits stacked like decode_batch."""
    rows = []
    for b, cache in enumerate(caches):
        capture = captures[b] if captures is not None else None
        result = model.forward(np.array([tokens[b]]), cache, capture=capture)
        rows.append(result.logits[-1])
    return np.stack(rows)


def caches_close(a, b, atol):
    assert len(a) == len(b)
    for ca, cb in zip(a, b):
        assert ca.equals(cb, atol=atol)


class TestEquivalence:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_matches_serial_loop(self, name):
        """Batched == serial decode outputs and post-step cache contents."""
        model = get_model(name)
        config = model.config
        lengths = [3, 17, 9, 1]
        _, (serial, batched) = prefilled_caches(model, lengths, seed=1, copies=2)
        StackedKVCacheBlock.adopt(batched, reserve_tokens=max(lengths) + 8)
        rng = np.random.default_rng(2)
        tokens = rng.integers(0, config.vocab_size, size=len(lengths))
        for _ in range(6):
            ref = serial_decode(model, tokens, serial)
            got = model.decode_batch(tokens, batched)
            assert got.shape == (len(lengths), config.vocab_size)
            np.testing.assert_allclose(got, ref, atol=BATCHED_DECODE_ATOL, rtol=0)
            assert np.array_equal(np.argmax(got, 1), np.argmax(ref, 1))
            tokens = np.argmax(ref, axis=1)
        caches_close(batched, serial, BATCHED_DECODE_ATOL)
        for cache in batched:
            assert len(cache) == lengths[batched.index(cache)] + 6

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_stacked_and_gather_paths_bit_identical(self, name):
        model = get_model(name)
        lengths = [5, 2, 11]
        _, (stacked, gather) = prefilled_caches(model, lengths, seed=3, copies=2)
        StackedKVCacheBlock.adopt(stacked)
        assert StackedKVCacheBlock.of(stacked) is not None
        assert StackedKVCacheBlock.of(gather) is None
        tokens = np.array([4, 9, 0])
        for _ in range(4):
            a = model.decode_batch(tokens, stacked)
            b = model.decode_batch(tokens, gather)
            assert np.array_equal(a, b)
            tokens = np.argmax(a, axis=1)
        for cs, cg in zip(stacked, gather):
            assert cs.equals(cg, atol=0.0)

    def test_capture_rows_match_serial_capture(self):
        model = get_model("tiny-llama")
        config = model.config
        lengths = [4, 8]
        _, (serial, batched) = prefilled_caches(model, lengths, seed=4, copies=2)
        StackedKVCacheBlock.adopt(batched)

        def fresh_captures():
            captures = []
            for _ in lengths:
                capture = HiddenCapture(config.n_layers, config.hidden_size)
                capture.reserve(3)
                captures.append(capture)
            return captures

        serial_caps = fresh_captures()
        batched_caps = fresh_captures()
        tokens = np.array([1, 2])
        for _ in range(3):
            ref = serial_decode(model, tokens, serial, captures=serial_caps)
            model.decode_batch(tokens, batched, captures=batched_caps)
            tokens = np.argmax(ref, axis=1)
        for cs, cb in zip(serial_caps, batched_caps):
            assert len(cs) == len(cb) == 3
            for layer in range(config.n_layers):
                # Layer 0's input is the embedding (pre-GEMM): bit-equal.
                # Deeper layers differ only within the GEMM tolerance.
                np.testing.assert_allclose(
                    cb.layer_view(layer),
                    cs.layer_view(layer),
                    atol=BATCHED_DECODE_ATOL,
                    rtol=0,
                )
            assert np.array_equal(cb.layer_view(0), cs.layer_view(0))

    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        name=st.sampled_from(sorted(CONFIGS)),
        lengths=st.lists(st.integers(min_value=1, max_value=24), min_size=1, max_size=5),
        seed=st.integers(min_value=0, max_value=2**16),
        stack=st.booleans(),
    )
    def test_property_random_batches(self, name, lengths, seed, stack):
        """Random batch sizes, unequal lengths, all config families."""
        model = get_model(name)
        config = model.config
        _, (serial, batched) = prefilled_caches(model, lengths, seed=seed, copies=2)
        if stack:
            StackedKVCacheBlock.adopt(batched)
        rng = np.random.default_rng(seed + 1)
        tokens = rng.integers(0, config.vocab_size, size=len(lengths))
        for _ in range(2):
            ref = serial_decode(model, tokens, serial)
            got = model.decode_batch(tokens, batched)
            np.testing.assert_allclose(got, ref, atol=BATCHED_DECODE_ATOL, rtol=0)
            tokens = np.argmax(ref, axis=1)
        caches_close(batched, serial, BATCHED_DECODE_ATOL)


class TestValidation:
    def test_token_cache_count_mismatch(self):
        model = get_model("tiny-llama")
        _, (caches,) = prefilled_caches(model, [2, 2], seed=0)
        with pytest.raises(ConfigError):
            model.decode_batch(np.array([1]), caches)

    def test_empty_batch_rejected(self):
        model = get_model("tiny-llama")
        with pytest.raises(ConfigError):
            model.decode_batch(np.array([], dtype=int), [])

    def test_foreign_config_rejected(self):
        model = get_model("tiny-llama")
        with pytest.raises(ConfigError):
            model.decode_batch(np.array([1]), [KVCache(CONFIGS["tiny-opt"])])

    def test_duplicate_cache_rejected(self):
        model = get_model("tiny-llama")
        _, (caches,) = prefilled_caches(model, [3], seed=0)
        with pytest.raises(ConfigError):
            model.decode_batch(np.array([1, 2]), [caches[0], caches[0]])
        # fail-fast: the cache must not have been mutated
        assert len(caches[0]) == 3

    def test_capture_count_mismatch(self):
        model = get_model("tiny-llama")
        _, (caches,) = prefilled_caches(model, [2], seed=0)
        with pytest.raises(ConfigError):
            model.decode_batch(np.array([1]), caches, captures=[])

    def test_context_overflow_rejected(self):
        model = get_model("tiny-llama")
        cache = KVCache(model.config)
        rng = np.random.default_rng(0)
        model.forward(rng.integers(0, model.config.vocab_size, size=model.config.max_context), cache)
        with pytest.raises(ConfigError):
            model.decode_batch(np.array([1]), [cache])


class TestStackedBlock:
    def test_adopt_preserves_content_and_repoints(self):
        model = get_model("tiny-llama")
        _, (caches, reference) = prefilled_caches(model, [3, 7], seed=5, copies=2)
        block = StackedKVCacheBlock.adopt(caches)
        for cache, ref in zip(caches, reference):
            assert cache.block is block
            assert cache.equals(ref, atol=0.0)
        k, v = block.stacked_kv(0, 7)
        assert k.shape == (2, 7, model.config.n_kv_heads, model.config.head_dim)
        k0, _ = caches[0].get(0)
        assert np.shares_memory(k, k0)

    def test_append_token_advances_every_slot(self):
        config = CONFIGS["tiny-llama"]
        caches = [KVCache(config) for _ in range(3)]
        rng = np.random.default_rng(6)
        rows = rng.normal(size=(3, config.n_kv_heads, config.head_dim)).astype(np.float32)
        block = StackedKVCacheBlock.adopt(caches)
        for layer in range(config.n_layers):
            block.append_token(layer, rows, rows + 1)
        assert [len(c) for c in caches] == [1, 1, 1]
        for b, cache in enumerate(caches):
            k, v = cache.get(1)
            assert np.array_equal(k[0], rows[b])
            assert np.array_equal(v[0], rows[b] + 1)
        assert np.array_equal(block.layer_lengths(0), [1, 1, 1])

    def test_growth_repoints_all_adopted_caches(self):
        config = CONFIGS["tiny-llama"]
        caches = [KVCache(config) for _ in range(2)]
        block = StackedKVCacheBlock.adopt(caches, reserve_tokens=4)
        rng = np.random.default_rng(7)
        rows = rng.normal(size=(2, config.n_kv_heads, config.head_dim)).astype(np.float32)
        for step in range(40):  # forces several doublings
            for layer in range(config.n_layers):
                block.append_token(layer, rows + step, rows - step)
        assert block.capacity >= 40
        for cache in caches:
            assert len(cache) == 40
            assert cache.block is block
            k, _ = cache.get(0)
            assert np.shares_memory(k, block.stacked_kv(0, 40)[0])

    def test_per_cache_append_goes_through_block(self):
        """A plain append on an adopted cache writes into block storage
        and block growth is triggered transparently."""
        config = CONFIGS["tiny-llama"]
        caches = [KVCache(config) for _ in range(2)]
        block = StackedKVCacheBlock.adopt(caches)
        rng = np.random.default_rng(8)
        rows = rng.normal(size=(20, config.n_kv_heads, config.head_dim)).astype(np.float32)
        for layer in range(config.n_layers):
            caches[0].append(layer, rows, rows)
        assert len(caches[0]) == 20
        assert len(caches[1]) == 0
        assert caches[0].block is block and caches[1].block is block
        k, _ = block.stacked_kv(0, 20)
        assert np.array_equal(k[0], rows)

    def test_of_requires_exact_slot_order(self):
        config = CONFIGS["tiny-llama"]
        caches = [KVCache(config) for _ in range(3)]
        block = StackedKVCacheBlock.adopt(caches)
        assert StackedKVCacheBlock.of(caches) is block
        assert StackedKVCacheBlock.of(caches[::-1]) is None
        assert StackedKVCacheBlock.of(caches[:2]) is None
        assert StackedKVCacheBlock.of([]) is None

    def test_ensure_stacked_reuses_and_restacks(self):
        config = CONFIGS["tiny-llama"]
        caches = [KVCache(config) for _ in range(2)]
        block = StackedKVCacheBlock.ensure_stacked(caches)
        assert StackedKVCacheBlock.ensure_stacked(caches) is block
        reordered = caches[::-1]
        block2 = StackedKVCacheBlock.ensure_stacked(reordered)
        assert block2 is not block
        assert StackedKVCacheBlock.of(reordered) is block2

    def test_migration_releases_old_slot(self):
        config = CONFIGS["tiny-llama"]
        caches = [KVCache(config) for _ in range(2)]
        old = StackedKVCacheBlock.adopt(caches)
        StackedKVCacheBlock.adopt([caches[0]])
        with pytest.raises(StateError):
            old.layer_lengths(0)  # slot 0 was released

    def test_detach_copies_out(self):
        model = get_model("tiny-llama")
        _, (caches, reference) = prefilled_caches(model, [5, 5], seed=9, copies=2)
        block = StackedKVCacheBlock.adopt(caches)
        caches[0].detach()
        assert caches[0].block is None
        assert caches[0].equals(reference[0], atol=0.0)
        k_block, _ = block.stacked_kv(0, 5)
        k_detached, _ = caches[0].get(0)
        assert not np.shares_memory(k_block, k_detached)

    def test_install_all_on_block_backed_cache_copies(self):
        config = CONFIGS["tiny-llama"]
        caches = [KVCache(config) for _ in range(2)]
        block = StackedKVCacheBlock.adopt(caches)
        rng = np.random.default_rng(10)
        shape = (config.n_layers, 6, config.n_kv_heads, config.head_dim)
        k = rng.normal(size=shape).astype(np.float32)
        v = rng.normal(size=shape).astype(np.float32)
        caches[0].install_all(k, v)
        assert caches[0].block is block  # still block-backed
        got_k, got_v = caches[0].get(0)
        assert np.array_equal(got_k, k[0])
        assert np.array_equal(got_v, v[0])

    def test_adopt_rejects_mixed_configs_and_duplicates(self):
        a = KVCache(CONFIGS["tiny-llama"])
        b = KVCache(CONFIGS["tiny-opt"])
        with pytest.raises(ConfigError):
            StackedKVCacheBlock.adopt([a, b])
        with pytest.raises(ConfigError):
            StackedKVCacheBlock.adopt([a, a])
        with pytest.raises(ConfigError):
            StackedKVCacheBlock.adopt([])
