"""Tests for rotary position embeddings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models.rope import apply_rope, rope_angles, rope_frequencies


class TestFrequencies:
    def test_shape(self):
        assert rope_frequencies(16).shape == (8,)

    def test_decreasing(self):
        freqs = rope_frequencies(32)
        assert np.all(np.diff(freqs) < 0)

    def test_first_frequency_is_one(self):
        assert rope_frequencies(8)[0] == pytest.approx(1.0)

    def test_odd_dim_rejected(self):
        with pytest.raises(ConfigError):
            rope_frequencies(7)


class TestApplyRope:
    def test_position_zero_identity(self):
        x = np.random.default_rng(0).normal(size=(1, 2, 16)).astype(np.float32)
        out = apply_rope(x, np.array([0]))
        assert np.allclose(out, x, atol=1e-6)

    def test_preserves_norm(self):
        """Rotations preserve vector length."""
        x = np.random.default_rng(1).normal(size=(5, 4, 32)).astype(np.float32)
        out = apply_rope(x, np.arange(5))
        assert np.allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-4
        )

    def test_position_dependence(self):
        x = np.ones((2, 1, 8), dtype=np.float32)
        out = apply_rope(x, np.array([1, 2]))
        assert not np.allclose(out[0], out[1])

    def test_relative_property(self):
        """RoPE encodes relative positions: <R(p)q, R(p+k)v> depends only
        on k.  Check via inner products of rotated vectors."""
        rng = np.random.default_rng(2)
        q = rng.normal(size=(1, 1, 16)).astype(np.float32)
        k = rng.normal(size=(1, 1, 16)).astype(np.float32)
        def dot_at(p_q, p_k):
            rq = apply_rope(q, np.array([p_q]))
            rk = apply_rope(k, np.array([p_k]))
            return float(np.sum(rq * rk))
        assert dot_at(3, 7) == pytest.approx(dot_at(13, 17), abs=1e-4)

    def test_deterministic_per_position(self):
        """The same token vector at the same absolute position rotates
        identically — the property HCache restoration relies on (§5)."""
        x = np.random.default_rng(3).normal(size=(1, 2, 16)).astype(np.float32)
        block = np.concatenate([x, x, x], axis=0)
        rotated_block = apply_rope(block, np.array([5, 6, 5]))
        assert np.allclose(rotated_block[0], rotated_block[2], atol=0)
        single = apply_rope(x, np.array([5]))
        assert np.allclose(rotated_block[0], single[0], atol=1e-7)

    def test_shape_validation(self):
        with pytest.raises(ConfigError):
            apply_rope(np.zeros((2, 8)), np.array([0, 1]))
        with pytest.raises(ConfigError):
            apply_rope(np.zeros((2, 1, 8)), np.array([0]))

    def test_angles_shape(self):
        angles = rope_angles(np.arange(5), 16)
        assert angles.shape == (5, 8)


class TestFusedRotations:
    """The restoration pipeline's allocation-free rotation variants must
    stay bit-identical to apply_rope."""

    def _inputs(self, n=97, heads=4, head_dim=16, seed=4):
        from repro.models.rope import rope_cos_sin

        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, heads, head_dim)).astype(np.float32)
        positions = np.arange(n)
        cos, sin = rope_cos_sin(positions, head_dim)
        return x, positions, cos, sin

    def test_rotate_into_bit_exact(self):
        from repro.models.rope import rope_rotate_into

        x, positions, cos, sin = self._inputs()
        plain = np.empty_like(x)
        rope_rotate_into(x, cos, sin, out=plain)
        assert np.array_equal(plain, apply_rope(x, positions))

    def test_fullwidth_rotation_bit_exact(self):
        from repro.models.rope import rope_rotate_fullwidth_into, rope_rotation_tables

        x, positions, _, _ = self._inputs()
        c, s = rope_rotation_tables(positions, 16, n_heads=4)
        assert c.shape == (97, 4, 16) and s.shape == (97, 4, 16)
        out = np.empty_like(x)
        rope_rotate_fullwidth_into(x, c, s, out=out, swap=np.empty_like(x))
        assert np.array_equal(out, apply_rope(x, positions))

    def test_fullwidth_sliced_chunks_bit_exact(self):
        from repro.models.rope import rope_rotate_fullwidth_into, rope_rotation_tables

        x, positions, _, _ = self._inputs()
        c, s = rope_rotation_tables(positions, 16, n_heads=4)
        out = np.empty_like(x)
        swap = np.empty((32, 4, 16), np.float32)
        for start in range(0, 97, 32):
            stop = min(start + 32, 97)
            rope_rotate_fullwidth_into(
                x[start:stop], c[start:stop], s[start:stop],
                out=out[start:stop], swap=swap[: stop - start],
            )
        assert np.array_equal(out, apply_rope(x, positions))

    def test_fullwidth_rejects_aliasing_and_bad_shapes(self):
        from repro.models.rope import rope_rotate_fullwidth_into, rope_rotation_tables

        x, positions, _, _ = self._inputs(n=8)
        c, s = rope_rotation_tables(positions[:8], 16, n_heads=4)
        with pytest.raises(ConfigError):
            rope_rotate_fullwidth_into(x, c, s, out=x, swap=np.empty_like(x))
        with pytest.raises(ConfigError):
            rope_rotate_fullwidth_into(
                x, c, s, out=np.empty_like(x), swap=np.empty((2, 4, 16), np.float32)
            )

    def test_rotation_tables_reject_bad_heads(self):
        from repro.models.rope import rope_rotation_tables

        with pytest.raises(ConfigError):
            rope_rotation_tables(np.arange(4), 16, n_heads=0)
