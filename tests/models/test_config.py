"""Tests for model configurations."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.models.config import MODELS, ModelConfig, model_preset


class TestPresets:
    def test_evaluated_models_present(self):
        for name in ("llama2-7b", "llama2-13b", "opt-30b"):
            assert name in MODELS

    def test_llama2_7b_architecture(self, seven_b):
        assert seven_b.n_layers == 32
        assert seven_b.hidden_size == 4096
        assert seven_b.n_heads == 32

    def test_llama2_13b_architecture(self, thirteen_b):
        assert thirteen_b.n_layers == 40
        assert thirteen_b.hidden_size == 5120

    def test_opt_30b_architecture(self, opt_30b):
        assert opt_30b.n_layers == 48
        assert opt_30b.hidden_size == 7168
        assert opt_30b.norm == "layernorm"
        assert not opt_30b.rope

    def test_context_expanded_to_16k(self, seven_b):
        """§6: "We expand the maximum context length ... to 16K"."""
        assert seven_b.max_context >= 16384

    def test_unknown_preset(self):
        with pytest.raises(ConfigError):
            model_preset("gpt-5")

    def test_preset_case_insensitive(self):
        assert model_preset("LLAMA2-7B").name == "llama2-7b"


class TestDerivedSizes:
    def test_hidden_half_of_kv(self, seven_b, thirteen_b, opt_30b):
        """§3.2: the 2x transmission saving for MHA models."""
        for config in (seven_b, thirteen_b, opt_30b):
            assert config.kv_bytes_per_token_layer == 2 * config.hidden_bytes_per_token_layer

    def test_7b_per_token_kv_512kib(self, seven_b):
        # 32 layers * 2 * 4096 * 2 bytes = 512 KiB per token.
        assert seven_b.kv_bytes_per_token == 512 * 1024

    def test_param_counts_plausible(self, seven_b, thirteen_b, opt_30b):
        assert 6.0e9 < seven_b.param_count < 7.5e9
        assert 12.5e9 < thirteen_b.param_count < 14.0e9
        assert 28e9 < opt_30b.param_count < 32e9

    def test_weight_bytes_fp16(self, seven_b):
        assert seven_b.weight_bytes == 2 * seven_b.param_count

    def test_head_dim(self, seven_b):
        assert seven_b.head_dim == 128

    def test_gqa_config_supported(self):
        gqa = ModelConfig(
            name="gqa-test",
            n_layers=2,
            hidden_size=64,
            n_heads=8,
            n_kv_heads=2,
            ffn_hidden_size=128,
            n_ffn_mats=3,
            vocab_size=100,
        )
        assert gqa.kv_size == 16
        # GQA shrinks the KV cache relative to the hidden state.
        assert gqa.kv_bytes_per_token_layer < gqa.hidden_bytes_per_token_layer


class TestValidation:
    def test_heads_must_divide_hidden(self):
        with pytest.raises(ConfigError):
            ModelConfig("bad", 2, 100, 3, 3, 100, 2, 10)

    def test_kv_heads_must_divide_heads(self):
        with pytest.raises(ConfigError):
            ModelConfig("bad", 2, 64, 8, 3, 100, 2, 10)

    def test_bad_norm(self):
        with pytest.raises(ConfigError):
            ModelConfig("bad", 2, 64, 8, 8, 100, 2, 10, norm="batchnorm")

    def test_bad_ffn_mats(self):
        with pytest.raises(ConfigError):
            ModelConfig("bad", 2, 64, 8, 8, 100, 4, 10)

    def test_zero_layers(self):
        with pytest.raises(ConfigError):
            ModelConfig("bad", 0, 64, 8, 8, 100, 2, 10)
