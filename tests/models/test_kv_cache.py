"""Tests for the KV cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, StateError
from repro.models.kv_cache import KVCache


def kv_rows(config, n, seed=0):
    rng = np.random.default_rng(seed)
    shape = (n, config.n_kv_heads, config.head_dim)
    return (
        rng.normal(size=shape).astype(np.float32),
        rng.normal(size=shape).astype(np.float32),
    )


class TestAppendAndGet:
    def test_empty_cache(self, tiny_config):
        cache = KVCache(tiny_config)
        assert len(cache) == 0

    def test_append_grows(self, tiny_config):
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 3)
        for layer in range(tiny_config.n_layers):
            cache.append(layer, k, v)
        assert len(cache) == 3

    def test_inconsistent_layers_detected(self, tiny_config):
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 2)
        cache.append(0, k, v)
        with pytest.raises(StateError):
            len(cache)

    def test_get_returns_appended(self, tiny_config):
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 4, seed=9)
        cache.append(1, k, v)
        got_k, got_v = cache.get(1)
        assert np.array_equal(got_k, k)
        assert np.array_equal(got_v, v)

    def test_bad_shape_rejected(self, tiny_config):
        cache = KVCache(tiny_config)
        with pytest.raises(ConfigError):
            cache.append(0, np.zeros((2, 3)), np.zeros((2, 3)))

    def test_mismatched_kv_counts_rejected(self, tiny_config):
        cache = KVCache(tiny_config)
        k, _ = kv_rows(tiny_config, 2)
        _, v = kv_rows(tiny_config, 3)
        with pytest.raises(ConfigError):
            cache.append(0, k, v)

    def test_layer_out_of_range(self, tiny_config):
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 1)
        with pytest.raises(ConfigError):
            cache.append(99, k, v)


class TestInstallAndPacking:
    def test_install_replaces(self, tiny_config):
        cache = KVCache(tiny_config)
        k1, v1 = kv_rows(tiny_config, 2, seed=1)
        k2, v2 = kv_rows(tiny_config, 5, seed=2)
        cache.append(0, k1, v1)
        cache.install(0, k2, v2)
        got_k, _ = cache.get(0)
        assert got_k.shape[0] == 5

    def test_packed_roundtrip(self, tiny_config):
        """The on-storage packed format restores bit-exactly."""
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 7, seed=3)
        cache.append(2, k, v)
        packed = cache.packed_layer(2)
        other = KVCache(tiny_config)
        other.install_packed(2, packed)
        got_k, got_v = other.get(2)
        assert np.array_equal(got_k, k)
        assert np.array_equal(got_v, v)

    def test_packed_width(self, tiny_config):
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 3)
        cache.append(0, k, v)
        assert cache.packed_layer(0).shape == (3, 2 * tiny_config.kv_size)

    def test_install_packed_bad_width(self, tiny_config):
        cache = KVCache(tiny_config)
        with pytest.raises(ConfigError):
            cache.install_packed(0, np.zeros((3, 7)))

    def test_install_packed_rows_chunked_roundtrip(self, tiny_config):
        """Chunk-granular packed installs equal one whole-layer install."""
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 11, seed=4)
        cache.append(1, k, v)
        packed = cache.packed_layer(1)
        other = KVCache(tiny_config)
        other.install_view(1, 11)
        for start in range(0, 11, 4):
            stop = min(start + 4, 11)
            other.install_packed_rows(1, start, packed[start:stop])
        got_k, got_v = other.get(1)
        assert np.array_equal(got_k, k)
        assert np.array_equal(got_v, v)

    def test_install_packed_rows_outside_live_region_rejected(self, tiny_config):
        cache = KVCache(tiny_config)
        cache.install_view(0, 4)
        packed = np.zeros((3, 2 * tiny_config.kv_size), dtype=np.float32)
        with pytest.raises(ConfigError):
            cache.install_packed_rows(0, 2, packed)


class TestEvictionAndComparison:
    def test_truncate(self, tiny_config):
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 10)
        for layer in range(tiny_config.n_layers):
            cache.append(layer, k, v)
        cache.truncate(4)
        assert len(cache) == 4

    def test_clear(self, tiny_config):
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 10)
        for layer in range(tiny_config.n_layers):
            cache.append(layer, k, v)
        cache.clear()
        assert len(cache) == 0

    def test_truncate_negative_rejected(self, tiny_config):
        with pytest.raises(ConfigError):
            KVCache(tiny_config).truncate(-1)

    def test_equals_exact(self, tiny_config):
        a, b = KVCache(tiny_config), KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 3)
        for layer in range(tiny_config.n_layers):
            a.append(layer, k, v)
            b.append(layer, k, v)
        assert a.equals(b)

    def test_equals_detects_difference(self, tiny_config):
        a, b = KVCache(tiny_config), KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 3)
        for layer in range(tiny_config.n_layers):
            a.append(layer, k, v)
            b.append(layer, k + 1e-3, v)
        assert not a.equals(b)
        assert a.equals(b, atol=1e-2)

    def test_equals_shape_mismatch(self, tiny_config):
        a, b = KVCache(tiny_config), KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 3)
        a.append(0, k, v)
        assert not a.equals(b)

    def test_nbytes(self, tiny_config):
        cache = KVCache(tiny_config)
        k, v = kv_rows(tiny_config, 8)
        for layer in range(tiny_config.n_layers):
            cache.append(layer, k, v)
        expected = tiny_config.n_layers * (k.nbytes + v.nbytes)
        assert cache.nbytes() == expected
