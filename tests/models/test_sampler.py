"""Tests for sampling strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models.sampler import greedy, sample_temperature, sample_top_k


class TestGreedy:
    def test_picks_argmax(self):
        assert greedy(np.array([0.1, 5.0, 2.0])) == 1

    def test_deterministic(self):
        logits = np.random.default_rng(0).normal(size=100)
        assert greedy(logits) == greedy(logits)


class TestTemperature:
    def test_low_temperature_approaches_greedy(self):
        logits = np.array([0.0, 10.0, 0.0])
        rng = np.random.default_rng(0)
        samples = {sample_temperature(logits, 0.01, rng) for _ in range(20)}
        assert samples == {1}

    def test_high_temperature_spreads(self):
        logits = np.array([0.0, 1.0, 0.0, 0.5])
        rng = np.random.default_rng(1)
        samples = {sample_temperature(logits, 100.0, rng) for _ in range(200)}
        assert len(samples) == 4

    def test_zero_temperature_rejected(self):
        with pytest.raises(ConfigError):
            sample_temperature(np.array([1.0]), 0.0, np.random.default_rng(0))

    def test_reproducible_with_seed(self):
        logits = np.random.default_rng(2).normal(size=50)
        a = [sample_temperature(logits, 1.0, np.random.default_rng(7)) for _ in range(1)]
        b = [sample_temperature(logits, 1.0, np.random.default_rng(7)) for _ in range(1)]
        assert a == b


class TestTopK:
    def test_restricts_to_top_k(self):
        logits = np.array([10.0, 9.0, -50.0, -50.0])
        rng = np.random.default_rng(3)
        samples = {sample_top_k(logits, 2, 1.0, rng) for _ in range(50)}
        assert samples <= {0, 1}

    def test_k_one_is_greedy(self):
        logits = np.array([1.0, 3.0, 2.0])
        rng = np.random.default_rng(4)
        assert sample_top_k(logits, 1, 1.0, rng) == 1

    def test_k_larger_than_vocab_ok(self):
        logits = np.array([1.0, 2.0])
        rng = np.random.default_rng(5)
        assert sample_top_k(logits, 10, 1.0, rng) in (0, 1)

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigError):
            sample_top_k(np.array([1.0]), 0, 1.0, np.random.default_rng(0))
