"""Tests for tensor primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models.tensor_ops import causal_mask, gelu, layernorm, rmsnorm, silu, softmax


class TestSoftmax:
    def test_sums_to_one(self):
        x = np.random.default_rng(0).normal(size=(4, 9)).astype(np.float32)
        out = softmax(x)
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-6)

    def test_stable_for_large_values(self):
        x = np.array([1e4, 1e4 + 1.0], dtype=np.float32)
        out = softmax(x)
        assert np.all(np.isfinite(out))
        assert out[1] > out[0]

    def test_invariant_to_shift(self):
        x = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        assert np.allclose(softmax(x), softmax(x + 100.0), atol=1e-6)

    def test_axis_argument(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        out = softmax(x, axis=0)
        assert np.allclose(out.sum(axis=0), 1.0)


class TestNorms:
    def test_rmsnorm_unit_scale(self):
        x = np.random.default_rng(2).normal(size=(10, 16)).astype(np.float32)
        out = rmsnorm(x, np.ones(16, dtype=np.float32))
        rms = np.sqrt(np.mean(np.square(out), axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_rmsnorm_weight_applied(self):
        x = np.ones((1, 4), dtype=np.float32)
        out = rmsnorm(x, np.array([2.0, 2.0, 2.0, 2.0], dtype=np.float32))
        assert np.allclose(out, 2.0, atol=1e-4)

    def test_rmsnorm_shape_mismatch(self):
        with pytest.raises(ConfigError):
            rmsnorm(np.ones((2, 4)), np.ones(8))

    def test_layernorm_zero_mean_unit_var(self):
        x = np.random.default_rng(3).normal(loc=5.0, size=(8, 32)).astype(np.float32)
        out = layernorm(x, np.ones(32, dtype=np.float32))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.var(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_bias(self):
        x = np.random.default_rng(4).normal(size=(2, 8)).astype(np.float32)
        bias = np.full(8, 3.0, dtype=np.float32)
        out = layernorm(x, np.ones(8, dtype=np.float32), bias=bias)
        assert np.allclose(out.mean(axis=-1), 3.0, atol=1e-4)

    def test_layernorm_shape_mismatch(self):
        with pytest.raises(ConfigError):
            layernorm(np.ones((2, 4)), np.ones(5))


class TestActivations:
    def test_silu_at_zero(self):
        assert silu(np.array([0.0]))[0] == 0.0

    def test_silu_positive_limit(self):
        x = np.array([20.0])
        assert silu(x)[0] == pytest.approx(20.0, rel=1e-4)

    def test_gelu_at_zero(self):
        assert gelu(np.array([0.0]))[0] == 0.0

    def test_gelu_monotone_region(self):
        x = np.linspace(0, 5, 50)
        y = gelu(x)
        assert np.all(np.diff(y) > 0)


class TestCausalMask:
    def test_prefill_mask_lower_triangular(self):
        mask = causal_mask(3, 3, 0)
        expected = np.tril(np.ones((3, 3), dtype=bool))
        assert np.array_equal(mask, expected)

    def test_decode_mask_sees_all_history(self):
        mask = causal_mask(1, 10, 9)
        assert mask.all()

    def test_offset_blocks_future(self):
        mask = causal_mask(2, 5, 2)
        assert mask[0].tolist() == [True, True, True, False, False]
        assert mask[1].tolist() == [True, True, True, True, False]

    def test_negative_dims_rejected(self):
        with pytest.raises(ConfigError):
            causal_mask(-1, 3, 0)
