"""Tests for the attention module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models.attention import (
    merge_heads,
    repeat_kv,
    scaled_dot_product_attention,
    split_heads,
)


class TestHeadReshaping:
    def test_split_merge_roundtrip(self):
        x = np.random.default_rng(0).normal(size=(6, 32)).astype(np.float32)
        assert np.array_equal(merge_heads(split_heads(x, 4)), x)

    def test_split_shape(self):
        assert split_heads(np.zeros((3, 32)), 8).shape == (3, 8, 4)

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigError):
            split_heads(np.zeros((3, 30)), 8)

    def test_repeat_kv_identity(self):
        x = np.zeros((2, 4, 8))
        assert repeat_kv(x, 1) is x

    def test_repeat_kv_gqa(self):
        x = np.random.default_rng(1).normal(size=(2, 2, 4))
        out = repeat_kv(x, 3)
        assert out.shape == (2, 6, 4)
        assert np.array_equal(out[:, 0], out[:, 1])
        assert np.array_equal(out[:, 0], out[:, 2])


class TestScaledDotProductAttention:
    def test_single_token_attends_to_itself(self):
        rng = np.random.default_rng(2)
        q = rng.normal(size=(1, 2, 8)).astype(np.float32)
        kv = rng.normal(size=(1, 2, 8)).astype(np.float32)
        out = scaled_dot_product_attention(q, kv, kv, query_offset=0)
        # With one key, the output is exactly the value.
        assert np.allclose(out, kv, atol=1e-6)

    def test_causality(self):
        """Changing a future key/value must not affect earlier outputs."""
        rng = np.random.default_rng(3)
        q = rng.normal(size=(3, 2, 8)).astype(np.float32)
        k = rng.normal(size=(3, 2, 8)).astype(np.float32)
        v = rng.normal(size=(3, 2, 8)).astype(np.float32)
        out1 = scaled_dot_product_attention(q, k, v, query_offset=0)
        k2, v2 = k.copy(), v.copy()
        k2[2] += 10.0
        v2[2] -= 10.0
        out2 = scaled_dot_product_attention(q, k2, v2, query_offset=0)
        assert np.allclose(out1[0], out2[0], atol=1e-6)
        assert np.allclose(out1[1], out2[1], atol=1e-6)
        assert not np.allclose(out1[2], out2[2])

    def test_decode_equals_prefill_row(self):
        """Decoding the last token against the cache reproduces the same
        output as computing it inside a full prefill — the consistency
        KV caching is built on (§2.1)."""
        rng = np.random.default_rng(4)
        n, heads, dim = 6, 2, 8
        q = rng.normal(size=(n, heads, dim)).astype(np.float32)
        k = rng.normal(size=(n, heads, dim)).astype(np.float32)
        v = rng.normal(size=(n, heads, dim)).astype(np.float32)
        full = scaled_dot_product_attention(q, k, v, query_offset=0)
        last = scaled_dot_product_attention(q[-1:], k, v, query_offset=n - 1)
        assert np.allclose(full[-1], last[0], atol=1e-5)

    def test_uniform_scores_average_values(self):
        q = np.zeros((1, 1, 4), dtype=np.float32)
        k = np.random.default_rng(5).normal(size=(5, 1, 4)).astype(np.float32)
        v = np.stack([np.full((1, 4), float(i), dtype=np.float32) for i in range(5)])
        out = scaled_dot_product_attention(q, k, v, query_offset=4)
        assert np.allclose(out, 2.0, atol=1e-5)

    def test_shape_mismatch_rejected(self):
        q = np.zeros((1, 2, 8), dtype=np.float32)
        k = np.zeros((3, 2, 8), dtype=np.float32)
        v = np.zeros((4, 2, 8), dtype=np.float32)
        with pytest.raises(ConfigError):
            scaled_dot_product_attention(q, k, v, query_offset=0)

    def test_head_mismatch_rejected(self):
        q = np.zeros((1, 2, 8), dtype=np.float32)
        kv = np.zeros((3, 4, 8), dtype=np.float32)
        with pytest.raises(ConfigError):
            scaled_dot_product_attention(q, kv, kv, query_offset=0)
