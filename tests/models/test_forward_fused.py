"""Fused variable-length forward vs the serial per-session path.

``forward_fused`` packs prefill chunks and decode tokens of many
sessions into one model call; it must stay inside the
``BATCHED_DECODE_ATOL`` band of running each segment through a serial
``forward`` (and produce identical greedy tokens), because the serving
front end substitutes it for ``chat_rounds``'s serial prefill loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models.hidden_capture import HiddenCapture
from repro.models.kv_cache import KVCache
from repro.models.transformer import BATCHED_DECODE_ATOL


def _prompts(config, sizes, seed):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, config.vocab_size, size=size) for size in sizes]


class TestEquivalence:
    def test_packed_prefill_matches_serial_forward(self, tiny_model, tiny_config):
        segments = _prompts(tiny_config, [9, 1, 5, 13], seed=41)
        serial_caches = [KVCache(tiny_config) for _ in segments]
        expected_logits = []
        for seg, cache in zip(segments, serial_caches):
            result = tiny_model.forward(seg, cache)
            expected_logits.append(result.logits[-1])
        fused_caches = [KVCache(tiny_config) for _ in segments]
        logits = tiny_model.forward_fused(segments, fused_caches)
        assert logits.shape == (len(segments), tiny_config.vocab_size)
        for s in range(len(segments)):
            np.testing.assert_allclose(
                logits[s], expected_logits[s], atol=BATCHED_DECODE_ATOL
            )
            assert int(np.argmax(logits[s])) == int(np.argmax(expected_logits[s]))
            assert fused_caches[s].equals(
                serial_caches[s], atol=BATCHED_DECODE_ATOL
            )

    def test_mixed_prefill_and_decode_segments(self, tiny_model, tiny_config):
        """Chunked prefill folded into the decode batch — one call."""
        history = _prompts(tiny_config, [6, 4], seed=42)
        serial_caches = [KVCache(tiny_config) for _ in range(3)]
        fused_caches = [KVCache(tiny_config) for _ in range(3)]
        for caches in (serial_caches, fused_caches):
            for i, h in enumerate(history):
                tiny_model.forward(h, caches[i])
        # Segments: two single-token decodes continuing history + one
        # fresh prefill chunk.
        segments = [np.array([3]), np.array([5]), _prompts(tiny_config, [7], 43)[0]]
        expected = [
            tiny_model.forward(seg, cache).logits[-1]
            for seg, cache in zip(segments, serial_caches)
        ]
        logits = tiny_model.forward_fused(segments, fused_caches)
        for s in range(3):
            np.testing.assert_allclose(logits[s], expected[s], atol=BATCHED_DECODE_ATOL)
            assert fused_caches[s].equals(serial_caches[s], atol=BATCHED_DECODE_ATOL)

    def test_captured_hidden_states_match_serial_capture(
        self, tiny_model, tiny_config
    ):
        """The HCache saving path sees identical per-segment hidden states."""
        segments = _prompts(tiny_config, [5, 3], seed=44)
        serial = []
        for seg in segments:
            cache = KVCache(tiny_config)
            result = tiny_model.forward(seg, cache, capture_hidden=True)
            serial.append(result.hidden_states)
        captures = [
            HiddenCapture(tiny_config.n_layers, tiny_config.hidden_size)
            for _ in segments
        ]
        tiny_model.forward_fused(
            segments, [KVCache(tiny_config) for _ in segments], captures=captures
        )
        for s, capture in enumerate(captures):
            got = capture.block_views(0, segments[s].size)
            for layer in range(tiny_config.n_layers):
                np.testing.assert_allclose(
                    got[layer], serial[s][layer], atol=BATCHED_DECODE_ATOL
                )


class TestValidation:
    def test_rejects_bad_inputs(self, tiny_model, tiny_config):
        cache = KVCache(tiny_config)
        other = KVCache(tiny_config)
        with pytest.raises(ConfigError):
            tiny_model.forward_fused([], [])
        with pytest.raises(ConfigError):
            tiny_model.forward_fused([np.array([1])], [cache, other])
        with pytest.raises(ConfigError):
            tiny_model.forward_fused([np.array([])], [cache])
        with pytest.raises(ConfigError):
            tiny_model.forward_fused([np.array([[1]])], [cache])
        with pytest.raises(ConfigError):
            tiny_model.forward_fused([np.array([1]), np.array([2])], [cache, cache])
        with pytest.raises(ConfigError):
            tiny_model.forward_fused(
                [np.array([1]), np.array([2])], [cache, other], captures=[None]
            )

    def test_rejects_context_overflow(self, tiny_model, tiny_config):
        cache = KVCache(tiny_config)
        too_long = np.zeros(tiny_config.max_context + 1, dtype=np.int64)
        with pytest.raises(ConfigError):
            tiny_model.forward_fused([too_long], [cache])
