"""Tests for the numpy transformer — including the paper's core
losslessness property (§3.1): KV restored from hidden states equals the
original KV cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models.config import model_preset
from repro.models.kv_cache import KVCache
from repro.models.transformer import Transformer


def prompt(config, n, seed=0):
    return np.random.default_rng(seed).integers(0, config.vocab_size, size=n)


class TestForward:
    def test_prefill_shapes(self, tiny_model, tiny_config):
        result, cache = tiny_model.prefill(prompt(tiny_config, 12))
        assert result.logits.shape == (12, tiny_config.vocab_size)
        assert len(cache) == 12

    def test_capture_hidden_shapes(self, tiny_model, tiny_config):
        result, _ = tiny_model.prefill(prompt(tiny_config, 9), capture_hidden=True)
        assert result.hidden_states is not None
        assert len(result.hidden_states) == tiny_config.n_layers
        assert all(h.shape == (9, tiny_config.hidden_size) for h in result.hidden_states)

    def test_no_capture_by_default(self, tiny_model, tiny_config):
        result, _ = tiny_model.prefill(prompt(tiny_config, 4))
        assert result.hidden_states is None

    def test_decode_step_extends_cache(self, tiny_model, tiny_config):
        _, cache = tiny_model.prefill(prompt(tiny_config, 5))
        tiny_model.decode_step(3, cache)
        assert len(cache) == 6

    def test_chunked_prefill_matches_single_shot(self, tiny_model, tiny_config):
        """SplitFuse-style chunking must not change the computation."""
        tokens = prompt(tiny_config, 20, seed=3)
        full_result, full_cache = tiny_model.prefill(tokens)
        chunk_cache = KVCache(tiny_config)
        logits = None
        for start in range(0, 20, 7):
            out = tiny_model.forward(tokens[start : start + 7], chunk_cache)
            logits = out.logits
        assert full_cache.equals(chunk_cache, atol=1e-5)
        assert np.allclose(full_result.logits[-1], logits[-1], atol=1e-4)

    def test_context_limit_enforced(self, tiny_config):
        model = Transformer.from_seed(tiny_config)
        too_long = prompt(tiny_config, tiny_config.max_context + 1)
        with pytest.raises(ConfigError):
            model.prefill(too_long)

    def test_out_of_vocab_rejected(self, tiny_model, tiny_config):
        with pytest.raises(ConfigError):
            tiny_model.prefill(np.array([tiny_config.vocab_size]))

    def test_deterministic_weights(self, tiny_config):
        a = Transformer.from_seed(tiny_config, seed=42)
        b = Transformer.from_seed(tiny_config, seed=42)
        tokens = prompt(tiny_config, 6)
        ra, _ = a.prefill(tokens)
        rb, _ = b.prefill(tokens)
        assert np.array_equal(ra.logits, rb.logits)

    def test_different_seeds_differ(self, tiny_config):
        a = Transformer.from_seed(tiny_config, seed=1)
        b = Transformer.from_seed(tiny_config, seed=2)
        tokens = prompt(tiny_config, 6)
        assert not np.allclose(a.prefill(tokens)[0].logits, b.prefill(tokens)[0].logits)


class TestLosslessRestoration:
    """The heart of the paper: K = W_k . norm(H), V = W_v . norm(H)."""

    def test_prefill_restore_exact(self, tiny_model, tiny_config):
        result, cache = tiny_model.prefill(prompt(tiny_config, 17), capture_hidden=True)
        restored = tiny_model.restore_cache_from_hidden(result.hidden_states)
        assert cache.equals(restored)  # bit-exact

    def test_restore_after_generation(self, tiny_model, tiny_config):
        _, cache, hidden = tiny_model.generate(
            prompt(tiny_config, 8), 10, capture_hidden=True
        )
        restored = tiny_model.restore_cache_from_hidden(hidden)
        assert cache.equals(restored, atol=1e-5)

    def test_restore_opt_architecture(self, tiny_opt_model, tiny_opt_config):
        """LayerNorm + no-RoPE models restore exactly too."""
        result, cache = tiny_opt_model.prefill(
            prompt(tiny_opt_config, 11), capture_hidden=True
        )
        restored = tiny_opt_model.restore_cache_from_hidden(result.hidden_states)
        assert cache.equals(restored)

    def test_project_kv_single_layer(self, tiny_model, tiny_config):
        result, cache = tiny_model.prefill(prompt(tiny_config, 6), capture_hidden=True)
        k, v = tiny_model.project_kv(1, result.hidden_states[1], np.arange(6))
        orig_k, orig_v = cache.get(1)
        assert np.allclose(k, orig_k, atol=0)
        assert np.allclose(v, orig_v, atol=0)

    def test_rope_positions_matter(self, tiny_model, tiny_config):
        """Restoring with wrong positions corrupts keys — RoPE replay is
        mandatory (§5's custom kernel)."""
        result, cache = tiny_model.prefill(prompt(tiny_config, 6), capture_hidden=True)
        k_wrong, _ = tiny_model.project_kv(0, result.hidden_states[0], np.arange(6) + 3)
        orig_k, _ = cache.get(0)
        assert not np.allclose(k_wrong, orig_k, atol=1e-3)

    def test_restore_layer_count_checked(self, tiny_model):
        with pytest.raises(ConfigError):
            tiny_model.restore_cache_from_hidden([np.zeros((3, 64))])

    def test_decode_continuation_identical(self, tiny_model, tiny_config):
        """Greedy continuation from a restored cache matches the original."""
        tokens = prompt(tiny_config, 10, seed=5)
        result, cache = tiny_model.prefill(tokens, capture_hidden=True)
        restored = tiny_model.restore_cache_from_hidden(result.hidden_states)
        next_tok = int(np.argmax(result.logits[-1]))
        a = tiny_model.decode_step(next_tok, cache)
        b = tiny_model.decode_step(next_tok, restored)
        assert int(np.argmax(a.logits[-1])) == int(np.argmax(b.logits[-1]))
        assert np.allclose(a.logits, b.logits, atol=1e-5)


class TestPrefixRecompute:
    def test_prefix_kv_matches_full(self, tiny_model, tiny_config):
        tokens = prompt(tiny_config, 14, seed=6)
        _, full_cache = tiny_model.prefill(tokens)
        prefix_cache, _ = tiny_model.recompute_prefix(tokens, 2)
        for layer in range(2):
            fk, fv = full_cache.get(layer)
            pk, pv = prefix_cache.get(layer)
            assert np.allclose(fk, pk, atol=1e-6)
            assert np.allclose(fv, pv, atol=1e-6)

    def test_boundary_hidden_matches_capture(self, tiny_model, tiny_config):
        tokens = prompt(tiny_config, 9, seed=7)
        result, _ = tiny_model.prefill(tokens, capture_hidden=True)
        _, boundary = tiny_model.recompute_prefix(tokens, 2)
        assert np.allclose(boundary, result.hidden_states[2], atol=1e-6)

    def test_zero_prefix(self, tiny_model, tiny_config):
        cache, hidden = tiny_model.recompute_prefix(prompt(tiny_config, 5), 0)
        assert cache.layer_len(0) == 0
        assert hidden.shape == (5, tiny_config.hidden_size)

    def test_out_of_range_prefix_rejected(self, tiny_model, tiny_config):
        with pytest.raises(ConfigError):
            tiny_model.recompute_prefix(prompt(tiny_config, 5), 99)


class TestGenerate:
    def test_generate_token_count(self, tiny_model, tiny_config):
        tokens, cache, _ = tiny_model.generate(prompt(tiny_config, 4), 7)
        assert len(tokens) == 7
        assert len(cache) == 4 + 7

    def test_capture_covers_all_positions(self, tiny_model, tiny_config):
        _, cache, hidden = tiny_model.generate(prompt(tiny_config, 4), 5, capture_hidden=True)
        assert hidden is not None
        assert all(h.shape[0] == len(cache) for h in hidden)

    def test_generation_deterministic(self, tiny_model, tiny_config):
        p = prompt(tiny_config, 6, seed=8)
        t1, _, _ = tiny_model.generate(p, 8)
        t2, _, _ = tiny_model.generate(p, 8)
        assert t1 == t2


class TestWeightsMismatch:
    def test_layer_count_mismatch_rejected(self, tiny_config):
        other = model_preset("tiny-opt")
        from repro.models.weights import init_weights

        with pytest.raises(ConfigError):
            Transformer(tiny_config, init_weights(other, 0))
