"""Sharded parallel restoration tests (PR 9).

The headline contract: a restoration partitioned across any
``(pipeline x tensor)`` grid of simulated GPUs restores bytes
bit-identical to the single-shard path and the naive whole-layer
reference — across norm/rope flavors, GQA configs, mixed hidden+KV
schemes, partial tail chunks, and non-divisible layer/head counts.  Plus
the shard planners' invariants (GQA groups are never split), executor
resolution plumbing, the multi-channel latency emulator the benchmarks
lean on, and the executor-overhead satellites (``dispatch_s`` counters,
the ``lookahead`` serialization regression).
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core.gqa import partition_kv_heads
from repro.core.hcache import HCacheEngine, RestoreBreakdown
from repro.core.partition import PartitionScheme
from repro.core.profiler import build_storage_array
from repro.engine.numeric_engine import NumericServingEngine
from repro.errors import ConfigError
from repro.models.config import model_preset
from repro.models.reference import NaiveKVCache
from repro.models.transformer import Transformer
from repro.runtime import IOWorkerPool, RestoreExecutor, ShardedRestoreExecutor, partition_layers
from repro.simulator import platform_preset
from repro.simulator.hardware import GPUS, GB, Platform, SSDSpec
from repro.simulator.pipeline import LayerMethod
from repro.storage import LatencyEmulator, StorageManager

SHARD_SHAPES = [(1, 1), (2, 1), (1, 2), (2, 2), (3, 2), (8, 1)]

GQA_CONFIG = replace(
    model_preset("tiny-llama"), name="tiny-gqa", n_kv_heads=2, n_heads=4
)


def build_engine(config, scheme=None, granule_chunks=4):
    model = Transformer.from_seed(config, seed=11)
    manager = StorageManager(build_storage_array(platform_preset("default")))
    engine = HCacheEngine(
        model, manager, scheme=scheme, stream_granule_chunks=granule_chunks
    )
    return model, engine


def save_context(engine, model, config, n_tokens, context_id="c", seal=True, block=37):
    rng = np.random.default_rng(hash(context_id) % 2**32)
    tokens = rng.integers(0, config.vocab_size, size=n_tokens)
    engine.register_context(context_id)
    result, cache = model.prefill(tokens, capture_hidden=True)
    hidden = result.hidden_states
    for start in range(0, n_tokens, block):
        stop = min(start + block, n_tokens)
        engine.save_states(
            context_id,
            [h[start:stop] for h in hidden],
            tokens[start:stop],
            kv_cache=cache,
        )
    if seal:
        engine.seal(context_id)
    return cache


def reference_restore(model, engine, context_id, n_tokens):
    """The naive whole-layer oracle, fed from the same stored state."""
    config = model.config
    scheme = engine.scheme
    cache = NaiveKVCache(config)
    for layer in range(config.n_layers):
        if scheme.methods[layer] is LayerMethod.HIDDEN:
            h = engine.storage.load_layer(context_id, layer, kind="hidden")
            k, v = model.project_kv(layer, h, np.arange(n_tokens))
            cache.install(layer, k, v)
        elif scheme.methods[layer] is LayerMethod.KV:
            cache.install_packed(
                layer, engine.storage.load_layer(context_id, layer, kind="kv")
            )
    return cache


def assert_bit_equal(restored, reference, layers):
    for layer in layers:
        k1, v1 = restored.get(layer)
        k2, v2 = reference.get(layer)
        assert np.array_equal(k1, k2), f"layer {layer} keys differ"
        assert np.array_equal(v1, v2), f"layer {layer} values differ"


# ---------------------------------------------------------------------------
# shard planners
# ---------------------------------------------------------------------------


class TestPartitionLayers:
    def test_balanced_contiguous_order_preserving(self):
        stages = partition_layers(range(7), 3)
        assert stages == ((0, 1, 2), (3, 4), (5, 6))
        assert [x for s in stages for x in s] == list(range(7))

    def test_divisible(self):
        assert partition_layers([0, 1, 2, 3], 2) == ((0, 1), (2, 3))

    def test_clamps_to_layer_count(self):
        """Extra pipeline stages would be empty — clamp, don't reject."""
        assert partition_layers([4, 5], 8) == ((4,), (5,))

    def test_single_stage_identity(self):
        assert partition_layers([2, 0, 5], 1) == ((2, 0, 5),)

    def test_empty_layers(self):
        assert partition_layers([], 3) == ()

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigError):
            partition_layers([0, 1], 0)


class TestPartitionKVHeads:
    def test_covers_contiguously(self):
        ranges = partition_kv_heads(8, 4)
        assert ranges == ((0, 2), (2, 4), (4, 6), (6, 8))

    def test_non_divisible_balanced_larger_first(self):
        assert partition_kv_heads(4, 3) == ((0, 2), (2, 3), (3, 4))

    def test_one_shard_per_head_allowed(self):
        assert partition_kv_heads(3, 3) == ((0, 1), (1, 2), (2, 3))

    def test_splitting_a_gqa_group_rejected(self):
        """More shards than KV heads would force a boundary through a GQA
        group (the naive split-by-query-heads mistake) — must raise, never
        silently misproject."""
        with pytest.raises(ConfigError, match="GQA group"):
            partition_kv_heads(2, 3)

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigError):
            partition_kv_heads(0, 1)
        with pytest.raises(ConfigError):
            partition_kv_heads(4, 0)


# ---------------------------------------------------------------------------
# bit-exactness across shard shapes
# ---------------------------------------------------------------------------


class TestShardedBitExactness:
    @pytest.mark.parametrize("shards", SHARD_SHAPES)
    @pytest.mark.parametrize("n_tokens", [100, 197, 256])
    def test_rmsnorm_rope_partial_tails(self, shards, n_tokens):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, n_tokens)
        single = engine.restore("c")
        reference = reference_restore(model, engine, "c", n_tokens)
        sharded = engine.restore("c", shards=shards)
        assert sharded.equals(single, atol=0.0)
        assert_bit_equal(sharded, reference, range(config.n_layers))

    @pytest.mark.parametrize("shards", SHARD_SHAPES)
    def test_layernorm_no_rope(self, shards):
        # tiny-opt: 3 layers (non-divisible by 2) and no rope.
        config = model_preset("tiny-opt")
        model, engine = build_engine(config)
        save_context(engine, model, config, 130)
        reference = reference_restore(model, engine, "c", 130)
        sharded = engine.restore("c", shards=shards)
        assert_bit_equal(sharded, reference, range(config.n_layers))

    @pytest.mark.parametrize("shards", [(1, 2), (2, 2), (4, 2)])
    def test_gqa_config(self, shards):
        """2 KV heads serving 4 query heads: legal tensor splits stay
        bit-exact (group boundaries only)."""
        model, engine = build_engine(GQA_CONFIG)
        save_context(engine, model, GQA_CONFIG, 150)
        reference = reference_restore(model, engine, "c", 150)
        sharded = engine.restore("c", shards=shards)
        assert_bit_equal(sharded, reference, range(GQA_CONFIG.n_layers))

    def test_gqa_oversplit_raises_before_restoring(self):
        model, engine = build_engine(GQA_CONFIG)
        save_context(engine, model, GQA_CONFIG, 64)
        with pytest.raises(ConfigError, match="GQA group"):
            engine.restore("c", shards=(1, 3))

    @pytest.mark.parametrize("shards", [(2, 2), (3, 3)])
    def test_non_divisible_head_split(self, shards):
        """4 KV heads over 3 shards exercises uneven head ranges."""
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, 197)
        reference = reference_restore(model, engine, "c", 197)
        sharded = engine.restore("c", shards=shards)
        assert_bit_equal(sharded, reference, range(config.n_layers))

    @pytest.mark.parametrize("shards", [(2, 1), (2, 2)])
    def test_mixed_hidden_kv_scheme(self, shards):
        config = model_preset("tiny-llama")
        scheme = PartitionScheme.with_kv_suffix(config.n_layers, 2)
        model, engine = build_engine(config, scheme=scheme)
        cache = save_context(engine, model, config, 145)
        reference = reference_restore(model, engine, "c", 145)
        sharded = engine.restore("c", shards=shards)
        assert_bit_equal(sharded, reference, range(config.n_layers))
        for layer in scheme.layers_with(LayerMethod.KV):
            k1, v1 = sharded.get(layer)
            k2, v2 = cache.get(layer)
            assert np.array_equal(k1, k2) and np.array_equal(v1, v2)

    def test_recompute_prefix_scheme(self):
        config = model_preset("tiny-llama")
        scheme = PartitionScheme.with_recompute_prefix(config.n_layers, 1)
        model, engine = build_engine(config, scheme=scheme)
        save_context(engine, model, config, 128)
        single = engine.restore("c")
        sharded = engine.restore("c", shards=(2, 2))
        assert sharded.equals(single, atol=0.0)

    @pytest.mark.parametrize("granule_chunks", [1, 2, 8])
    def test_granule_size_invariant(self, granule_chunks):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config, granule_chunks=granule_chunks)
        save_context(engine, model, config, 197)
        reference = reference_restore(model, engine, "c", 197)
        sharded = engine.restore("c", shards=(2, 2))
        assert_bit_equal(sharded, reference, range(config.n_layers))

    def test_repeated_runs_stable_through_shared_executor(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, 197)
        single = engine.restore("c")
        with ShardedRestoreExecutor((2, 2)) as executor:
            for _ in range(5):
                assert engine.restore("c", executor=executor).equals(single, atol=0.0)


# ---------------------------------------------------------------------------
# executor construction + shard resolution
# ---------------------------------------------------------------------------


class TestShardResolution:
    def test_int_shards_means_pipeline_only(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, 100)
        stats = RestoreBreakdown()
        engine.restore("c", stats=stats, shards=2)
        assert stats.shard_shape == (2, 1)

    def test_sharded_executor_shards_implicitly(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, 100)
        stats = RestoreBreakdown()
        with ShardedRestoreExecutor((2, 2)) as executor:
            engine.restore("c", stats=stats, executor=executor)
        assert stats.shard_shape == (2, 2)
        assert stats.modelled_sharded_s > 0.0

    def test_explicit_shards_override_executor_shape(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, 100)
        single = engine.restore("c")
        stats = RestoreBreakdown()
        with ShardedRestoreExecutor((2, 2)) as executor:
            before = executor.pool.tasks_submitted
            cache = engine.restore("c", stats=stats, executor=executor, shards=(4, 1))
            # The transient driver borrows the executor's pool...
            assert executor.pool.tasks_submitted > before
            # ...and that pool survives the transient's close.
            assert not executor.pool.closed
        assert stats.shard_shape == (4, 1)
        assert cache.equals(single, atol=0.0)

    def test_plain_executor_with_shards_borrows_pool(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, 100)
        single = engine.restore("c")
        with RestoreExecutor(2) as executor:
            before = executor.pool.tasks_submitted
            cache = engine.restore("c", executor=executor, shards=(2, 2))
            assert executor.pool.tasks_submitted > before
        assert cache.equals(single, atol=0.0)

    def test_unsharded_stats_have_no_shape(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, 100)
        stats = RestoreBreakdown()
        engine.restore("c", stats=stats)
        assert stats.shard_shape is None
        assert stats.modelled_sharded_s == 0.0

    def test_owned_pool_sized_to_grid(self):
        with ShardedRestoreExecutor((3, 2)) as executor:
            assert executor.pool.size == 6
            assert executor.shard_shape == (3, 2)

    def test_shared_pool_accepted(self):
        with IOWorkerPool(2) as pool:
            executor = ShardedRestoreExecutor((2, 2), pool=pool)
            executor.close()  # borrowed pool: close is a no-op
            assert not pool.closed

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ConfigError):
            ShardedRestoreExecutor((0, 1))
        with pytest.raises(ConfigError):
            ShardedRestoreExecutor((1, 0))
        with pytest.raises(ConfigError):
            ShardedRestoreExecutor((2, 2), inflight_per_shard=0)


# ---------------------------------------------------------------------------
# serving integration
# ---------------------------------------------------------------------------


class TestServingIntegration:
    def test_restore_contexts_forwards_shards(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        for cid in ("a", "b"):
            save_context(engine, model, config, 150, context_id=cid)
        singles = {cid: engine.restore(cid) for cid in ("a", "b")}
        with ShardedRestoreExecutor((2, 2)) as executor:
            caches = executor.restore_contexts(engine, ["a", "b"])
        for cid, cache in caches.items():
            assert cache.equals(singles[cid], atol=0.0)

    def test_restore_sessions_with_shards(self):
        config = model_preset("tiny-llama")
        model = Transformer.from_seed(config, seed=3)
        manager = StorageManager(build_storage_array(platform_preset("default")))
        hcache = HCacheEngine(model, manager)
        engine = NumericServingEngine(model, hcache)
        rng = np.random.default_rng(4)
        expected = {}
        for sid in ("s1", "s2"):
            engine.open_session(sid)
            prompt = rng.integers(0, config.vocab_size, size=23)
            engine.chat_round(sid, prompt, n_output_tokens=3)
            engine.evict(sid)
            expected[sid] = hcache.restore(sid)
        engine.restore_sessions(["s1", "s2"], shards=(2, 2))
        for sid, cache in expected.items():
            restored = engine.session(sid).kv_cache
            assert restored is not None
            assert restored.equals(cache, atol=0.0)

    def test_sharded_executor_shards_chat_round_restores(self):
        """A sharded executor configured on the engine shards the implicit
        chat_round restore with zero call-site changes — and the session's
        outputs still match the uninterrupted conversation."""
        config = model_preset("tiny-llama")
        model = Transformer.from_seed(config, seed=3)

        def run(executor=None):
            manager = StorageManager(build_storage_array(platform_preset("default")))
            engine = NumericServingEngine(
                model, HCacheEngine(model, manager), executor=executor
            )
            engine.open_session("s")
            rng = np.random.default_rng(7)
            outputs = []
            for _ in range(3):
                prompt = rng.integers(0, config.vocab_size, size=11)
                outputs.append(engine.chat_round(sid := "s", prompt, n_output_tokens=4))
                engine.evict(sid)
            return outputs

        baseline = run()
        with ShardedRestoreExecutor((2, 2)) as executor:
            assert run(executor) == baseline


# ---------------------------------------------------------------------------
# satellite: executor-overhead accounting (dispatch_s) + lookahead knob
# ---------------------------------------------------------------------------


class TestDispatchAccounting:
    def test_threaded_restore_fills_dispatch_counters(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, 197)
        stats = RestoreBreakdown()
        with RestoreExecutor(2) as executor:
            engine.restore("c", stats=stats, executor=executor)
            assert stats.dispatch_s > 0.0
            assert executor.pool.dispatch_s > 0.0
            # The pool-side handoff is part of the restore-side total's
            # scope (slot acquisition + handoff), measured per submit.
            assert stats.granules > 0

    def test_sharded_restore_fills_dispatch_counters(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, 197)
        stats = RestoreBreakdown()
        engine.restore("c", stats=stats, shards=(2, 2))
        assert stats.dispatch_s > 0.0

    def test_lookahead_knob_sets_inflight(self):
        with RestoreExecutor(2, lookahead=0) as executor:
            assert executor.inflight == executor.pool.size
        with RestoreExecutor(2, lookahead=3) as executor:
            assert executor.inflight == 5
        with RestoreExecutor(IOWorkerPool(1), inflight=9, lookahead=0) as executor:
            assert executor.inflight == 9  # explicit inflight wins
        with pytest.raises(ConfigError):
            RestoreExecutor(2, lookahead=-1)


class TestLookaheadSerialization:
    def test_zero_lookahead_serializes_under_bursty_completion(self):
        """Regression for the PR-3 executor-overhead gap: the lookahead is
        the runway that absorbs bursty IO completion.  Latency emulation
        with a coarse sleep quantum completes granules in bursts — cheap
        reads return instantly while debt accrues, then one read pays the
        whole accumulated sleep.  With the default lookahead the window
        holds enough granules that the burst sleep overlaps consumption;
        with ``lookahead=0`` on a one-worker pool the window is a single
        granule, the burst sleep lands with no runway banked, and the
        consumer stalls for it in full — the pipeline measurably
        serializes and the stall shows up in ``stats.read_s``."""
        config = model_preset("tiny-llama")
        # 20 MB/s: each 128-token granule (32 KiB of fp32 hidden) models
        # ~1.6 ms of device time; 8 granules accrue ~13 ms of debt that a
        # 10 ms sleep quantum releases as one late burst.
        slow_ssd = SSDSpec(
            name="slow", read_bandwidth=0.02 * GB, write_bandwidth=1.0 * GB
        )
        platform = Platform(GPUS["A100"]).with_ssds(4, slow_ssd)
        model = Transformer.from_seed(config, seed=11)
        manager = StorageManager(build_storage_array(platform))
        engine = HCacheEngine(model, manager, stream_granule_chunks=2)
        save_context(engine, model, config, 256)
        layers = list(range(config.n_layers))

        def timed_drain(lookahead):
            engine.storage.array.emulate_latency(min_sleep_s=10e-3)
            try:
                stats = RestoreBreakdown()
                with RestoreExecutor(1, lookahead=lookahead) as executor:
                    t0 = time.perf_counter()
                    executor.drain(
                        engine.storage, "c", layers, "hidden",
                        engine.stream_granule_chunks,
                        lambda chunk: time.sleep(2e-3),
                        stats=stats,
                    )
                    wall = time.perf_counter() - t0
                return wall, stats
            finally:
                engine.storage.array.stop_latency_emulation()

        serial_wall, serial_stats = timed_drain(lookahead=0)
        overlap_wall, overlap_stats = timed_drain(lookahead=6)
        assert serial_stats.granules == overlap_stats.granules > 0
        # Expected ≈1.6x (the ~11 ms burst sleep is fully exposed at
        # lookahead=0 and fully hidden at the default); 1.2x leaves slack
        # for scheduler noise without ever passing on a non-serialized run.
        assert serial_wall > 1.2 * overlap_wall, (serial_wall, overlap_wall)
        assert serial_stats.read_s > overlap_stats.read_s + 5e-3


# ---------------------------------------------------------------------------
# multi-channel latency emulation
# ---------------------------------------------------------------------------


class TestMultiChannelEmulator:
    def test_channels_validated(self):
        with pytest.raises(ConfigError):
            LatencyEmulator(channels=0)

    def test_channel_count_conflict_rejected(self):
        config = model_preset("tiny-llama")
        _, engine = build_engine(config)
        array = engine.storage.array
        first = array.emulate_latency(channels=2)
        assert array.emulate_latency(channels=2) is first  # idempotent
        with pytest.raises(ConfigError, match="channel"):
            array.emulate_latency(channels=4)
        array.stop_latency_emulation()
        assert array.emulate_latency(channels=4).channels == 4
        array.stop_latency_emulation()

    def test_concurrent_threads_overlap_across_channels(self):
        """Two threads charging one 2-channel emulator sleep on distinct
        channel locks, so the emulated wall clock floors near total/2 —
        the aggregated-bandwidth model the sharded benchmarks rely on."""
        emulator = LatencyEmulator(min_sleep_s=1e-3, channels=2)
        per_thread = 0.04

        def burn():
            for _ in range(40):
                emulator.charge(per_thread / 40)
            emulator.flush()

        threads = [threading.Thread(target=burn) for _ in range(2)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        # Overshoot credit means slept_s lands a touch under the 80ms
        # charged, but the debt must be nearly fully converted to sleeps.
        assert emulator.slept_s > 0.060
        assert emulator.pending_s <= 0.0
        # Serial would be ≥ 80ms; two channels should land well under —
        # but never below the 40ms single-channel share.
        assert 0.035 < wall < 0.070, wall

    def test_single_thread_still_pays_full_debt(self):
        """One thread cannot overlap with itself: channels only help
        concurrent chargers, so the single-shard baseline stays honest."""
        emulator = LatencyEmulator(min_sleep_s=1e-3, channels=4)
        t0 = time.perf_counter()
        for _ in range(40):
            emulator.charge(1e-3)
        emulator.flush()
        wall = time.perf_counter() - t0
        assert wall >= 0.037, wall
        # slept_s + residual debt accounts for the full 40ms charged,
        # minus whatever overshoot the emulator credited back.
        assert emulator.slept_s > 0.030
