"""Determinism and bit-exactness tests for the threaded restore executor.

The executor moves granule reads onto background IO workers; everything
it restores must stay bit-identical to the single-threaded streamed path
and to the naive whole-layer reference (:mod:`repro.models.reference`) —
for every pool size, across GQA / layernorm / mixed hidden+KV schemes and
partial tail chunks, and stably across repeated runs (ordering races
would show up as flaky mismatches).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.hcache import HCacheEngine, RestoreBreakdown
from repro.core.partition import PartitionScheme
from repro.core.profiler import build_storage_array
from repro.engine.numeric_engine import NumericServingEngine
from repro.errors import ConfigError, StateError
from repro.models.config import model_preset
from repro.models.reference import NaiveKVCache
from repro.models.transformer import Transformer
from repro.runtime import IOWorkerPool, RestoreExecutor
from repro.simulator import platform_preset
from repro.simulator.pipeline import LayerMethod
from repro.storage import LatencyEmulator, StorageManager

POOL_SIZES = [1, 2, 4]


def build_engine(config, scheme=None, granule_chunks=4):
    model = Transformer.from_seed(config, seed=11)
    manager = StorageManager(build_storage_array(platform_preset("default")))
    engine = HCacheEngine(
        model, manager, scheme=scheme, stream_granule_chunks=granule_chunks
    )
    return model, engine

def save_context(engine, model, config, n_tokens, context_id="c", seal=True, block=37):
    rng = np.random.default_rng(hash(context_id) % 2**32)
    tokens = rng.integers(0, config.vocab_size, size=n_tokens)
    engine.register_context(context_id)
    result, cache = model.prefill(tokens, capture_hidden=True)
    hidden = result.hidden_states
    for start in range(0, n_tokens, block):
        stop = min(start + block, n_tokens)
        engine.save_states(
            context_id,
            [h[start:stop] for h in hidden],
            tokens[start:stop],
            kv_cache=cache,
        )
    if seal:
        engine.seal(context_id)
    return cache


def reference_restore(model, engine, context_id, n_tokens):
    """The naive whole-layer oracle, fed from the same stored state."""
    config = model.config
    scheme = engine.scheme
    cache = NaiveKVCache(config)
    for layer in range(config.n_layers):
        if scheme.methods[layer] is LayerMethod.HIDDEN:
            h = engine.storage.load_layer(context_id, layer, kind="hidden")
            k, v = model.project_kv(layer, h, np.arange(n_tokens))
            cache.install(layer, k, v)
        elif scheme.methods[layer] is LayerMethod.KV:
            cache.install_packed(
                layer, engine.storage.load_layer(context_id, layer, kind="kv")
            )
    return cache


def assert_bit_equal(restored, reference, layers):
    for layer in layers:
        k1, v1 = restored.get(layer)
        k2, v2 = reference.get(layer)
        assert np.array_equal(k1, k2), f"layer {layer} keys differ"
        assert np.array_equal(v1, v2), f"layer {layer} values differ"


GQA_CONFIG = replace(
    model_preset("tiny-llama"), name="tiny-gqa", n_kv_heads=2, n_heads=4
)


class TestThreadedBitExactness:
    @pytest.mark.parametrize("pool_size", POOL_SIZES)
    @pytest.mark.parametrize("n_tokens", [5, 100, 197, 256])
    def test_partial_tails_match_single_threaded_and_reference(
        self, pool_size, n_tokens
    ):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, n_tokens)
        single = engine.restore("c")
        reference = reference_restore(model, engine, "c", n_tokens)
        with RestoreExecutor(pool_size) as executor:
            threaded = engine.restore("c", executor=executor)
        assert threaded.equals(single, atol=0.0)
        assert_bit_equal(threaded, reference, range(config.n_layers))

    @pytest.mark.parametrize("pool_size", POOL_SIZES)
    def test_gqa_config(self, pool_size):
        model, engine = build_engine(GQA_CONFIG)
        save_context(engine, model, GQA_CONFIG, 150)
        reference = reference_restore(model, engine, "c", 150)
        with RestoreExecutor(pool_size) as executor:
            threaded = engine.restore("c", executor=executor)
        assert_bit_equal(threaded, reference, range(GQA_CONFIG.n_layers))

    @pytest.mark.parametrize("pool_size", POOL_SIZES)
    def test_layernorm_no_rope_config(self, pool_size):
        config = model_preset("tiny-opt")
        model, engine = build_engine(config)
        save_context(engine, model, config, 130)
        reference = reference_restore(model, engine, "c", 130)
        with RestoreExecutor(pool_size) as executor:
            threaded = engine.restore("c", executor=executor)
        assert_bit_equal(threaded, reference, range(config.n_layers))

    @pytest.mark.parametrize("pool_size", POOL_SIZES)
    def test_mixed_hidden_kv_scheme(self, pool_size):
        config = model_preset("tiny-llama")
        scheme = PartitionScheme.with_kv_suffix(config.n_layers, 2)
        model, engine = build_engine(config, scheme=scheme)
        cache = save_context(engine, model, config, 145)
        reference = reference_restore(model, engine, "c", 145)
        with RestoreExecutor(pool_size) as executor:
            threaded = engine.restore("c", executor=executor)
        assert_bit_equal(threaded, reference, range(config.n_layers))
        for layer in scheme.layers_with(LayerMethod.KV):
            k1, v1 = threaded.get(layer)
            k2, v2 = cache.get(layer)
            assert np.array_equal(k1, k2) and np.array_equal(v1, v2)

    def test_recompute_prefix_scheme(self):
        config = model_preset("tiny-llama")
        scheme = PartitionScheme.with_recompute_prefix(config.n_layers, 1)
        model, engine = build_engine(config, scheme=scheme)
        save_context(engine, model, config, 128)
        single = engine.restore("c")
        with RestoreExecutor(2) as executor:
            threaded = engine.restore("c", executor=executor)
        assert threaded.equals(single, atol=0.0)

    def test_unsealed_tail_restores_from_host_buffer(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        cache = save_context(engine, model, config, 97, seal=False)
        with RestoreExecutor(2) as executor:
            threaded = engine.restore("c", executor=executor)
        assert threaded.equals(cache, atol=0.0)

    @pytest.mark.parametrize("pool_size", POOL_SIZES)
    def test_repeated_runs_are_stable(self, pool_size):
        """Shake out ordering races: repeated threaded restores through
        one shared executor must all produce identical bytes."""
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, 197)
        single = engine.restore("c")
        with RestoreExecutor(pool_size) as executor:
            for _ in range(5):
                assert engine.restore("c", executor=executor).equals(single, atol=0.0)

    @pytest.mark.parametrize("granule_chunks", [1, 2, 8])
    def test_granule_size_invariant(self, granule_chunks):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config, granule_chunks=granule_chunks)
        save_context(engine, model, config, 197)
        reference = reference_restore(model, engine, "c", 197)
        with RestoreExecutor(2) as executor:
            threaded = engine.restore("c", executor=executor)
        assert_bit_equal(threaded, reference, range(config.n_layers))


class TestDrainDirectUse:
    def test_drain_with_stats_but_default_lists(self):
        """The documented defaults (io_times/compute_times omitted) must
        work when stats is given — drain owns its own accumulators."""
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, 128)
        chunks = []
        stats = RestoreBreakdown()
        with RestoreExecutor(1) as executor:
            executor.drain(
                engine.storage, "c", list(range(config.n_layers)), "hidden",
                engine.stream_granule_chunks, chunks.append, stats=stats,
            )
        assert stats.granules == len(chunks) > 0


class TestBreakdownParity:
    def test_threaded_accounting_matches_single_threaded(self):
        """Granule/read counts and modelled makespans are identical; only
        the wall-clock split differs (threaded read_s is exposed stall)."""
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, 256)
        single_stats = RestoreBreakdown()
        engine.restore("c", stats=single_stats)
        threaded_stats = RestoreBreakdown()
        with RestoreExecutor(2) as executor:
            engine.restore("c", stats=threaded_stats, executor=executor)
        assert threaded_stats.granules == single_stats.granules
        assert threaded_stats.device_reads == single_stats.device_reads
        assert threaded_stats.n_tokens == single_stats.n_tokens
        assert threaded_stats.modelled_io_s == pytest.approx(
            single_stats.modelled_io_s
        )
        assert threaded_stats.projection.chunks == single_stats.projection.chunks
        assert threaded_stats.modelled_pipelined_s <= threaded_stats.modelled_serial_s


class TestConcurrentContexts:
    def test_concurrent_restores_match_sequential(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        lengths = {"a": 197, "b": 64, "c3": 130, "d": 5}
        for cid, n in lengths.items():
            save_context(engine, model, config, n, context_id=cid)
        sequential = {cid: engine.restore(cid) for cid in lengths}
        with RestoreExecutor(2) as executor:
            concurrent = executor.restore_contexts(engine, list(lengths))
        for cid in lengths:
            assert concurrent[cid].equals(sequential[cid], atol=0.0), cid

    def test_duplicate_context_ids_rejected(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, 64)
        with RestoreExecutor(1) as executor:
            with pytest.raises(ConfigError):
                executor.restore_contexts(engine, ["c", "c"])

    def test_empty_context_list(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        with RestoreExecutor(1) as executor:
            assert executor.restore_contexts(engine, []) == {}


class TestNumericServingEngineIntegration:
    def _run_session(self, executor):
        config = model_preset("tiny-llama")
        model = Transformer.from_seed(config, seed=3)
        manager = StorageManager(build_storage_array(platform_preset("default")))
        hcache = HCacheEngine(model, manager)
        engine = NumericServingEngine(model, hcache, executor=executor)
        engine.open_session("s")
        rng = np.random.default_rng(9)
        outputs = []
        for round_idx in range(3):
            prompt = rng.integers(0, config.vocab_size, size=17 + round_idx)
            outputs.append(engine.chat_round("s", prompt, n_output_tokens=4))
            engine.evict("s")
        return outputs

    def test_chat_rounds_identical_with_and_without_executor(self):
        baseline = self._run_session(None)
        with RestoreExecutor(2) as executor:
            threaded = self._run_session(executor)
        assert baseline == threaded

    def test_restore_sessions_concurrently(self):
        config = model_preset("tiny-llama")
        model = Transformer.from_seed(config, seed=3)
        manager = StorageManager(build_storage_array(platform_preset("default")))
        hcache = HCacheEngine(model, manager)
        with RestoreExecutor(2) as executor:
            engine = NumericServingEngine(model, hcache, executor=executor)
            rng = np.random.default_rng(4)
            expected = {}
            for sid in ("s1", "s2", "s3"):
                engine.open_session(sid)
                prompt = rng.integers(0, config.vocab_size, size=23)
                engine.chat_round(sid, prompt, n_output_tokens=3)
                engine.evict(sid)
                # Oracle: the single-threaded restore of the same stored
                # state.  (The *live* cache matches only to float rounding
                # for decode-produced rows — the GEMV-vs-GEMM caveat.)
                expected[sid] = hcache.restore(sid)
            engine.restore_sessions(["s1", "s2", "s3"])
            for sid, cache in expected.items():
                restored = engine.session(sid).kv_cache
                assert restored is not None
                assert restored.equals(cache, atol=0.0)

    def test_restore_sessions_rejects_resident_session(self):
        config = model_preset("tiny-llama")
        model = Transformer.from_seed(config, seed=3)
        manager = StorageManager(build_storage_array(platform_preset("default")))
        engine = NumericServingEngine(model, HCacheEngine(model, manager))
        engine.open_session("s")
        engine.chat_round("s", np.arange(5), n_output_tokens=2)
        with pytest.raises(StateError):
            engine.restore_sessions(["s"])


class TestLatencyEmulation:
    def test_emulator_batches_sub_quantum_charges(self):
        sleeps = []
        emulator = LatencyEmulator(min_sleep_s=1e-3, sleep_fn=sleeps.append)
        for _ in range(9):
            emulator.charge(1e-4)
        assert sleeps == []  # 0.9 ms of debt: below the quantum
        emulator.charge(1e-4)
        assert len(sleeps) == 1 and sleeps[0] == pytest.approx(1e-3)
        assert emulator.pending_s == 0.0
        assert emulator.slept_s == pytest.approx(1e-3)

    def test_emulator_flush_drains_remainder(self):
        sleeps = []
        emulator = LatencyEmulator(min_sleep_s=1.0, sleep_fn=sleeps.append)
        emulator.charge(0.25)
        emulator.flush()
        assert sleeps == [pytest.approx(0.25)]
        assert emulator.pending_s == 0.0

    def test_emulator_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            LatencyEmulator(min_sleep_s=0.0)
        emulator = LatencyEmulator(sleep_fn=lambda s: None)
        with pytest.raises(ConfigError):
            emulator.charge(-1.0)

    def test_concurrent_sleeps_serialize_like_one_io_stream(self):
        """Two workers charging at once must not halve emulated IO wall
        clock: sleeps serialize on the emulator's sleep lock, matching
        the single serial IO stream the makespan model costs."""
        import threading
        import time as _time

        emulator = LatencyEmulator(min_sleep_s=1e-4)
        def worker():
            emulator.charge(5e-3)
        threads = [threading.Thread(target=worker) for _ in range(2)]
        t0 = _time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = _time.perf_counter() - t0
        assert elapsed >= 9e-3  # ~10ms of modelled IO cannot run 2-parallel

    def test_array_emulation_charges_modelled_read_seconds(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_context(engine, model, config, 256)
        array = engine.storage.array
        emulator = array.emulate_latency()
        # Swap the real sleep for a recorder: totals must equal the
        # modelled device seconds of the restore's reads.
        charged = []
        emulator._sleep = charged.append
        stats = RestoreBreakdown()
        restored = engine.restore("c", stats=stats)
        emulator.flush()
        array.stop_latency_emulation()
        assert len(restored) == 256
        assert sum(charged) == pytest.approx(stats.modelled_io_s)

    def test_emulation_is_idempotent_and_detachable(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        array = engine.storage.array
        first = array.emulate_latency()
        assert array.emulate_latency() is first
        array.stop_latency_emulation()
        assert array.latency_emulator is None
        assert all(d.emulator is None for d in array.devices)


class TestPoolAndExecutorValidation:
    def test_pool_needs_positive_size(self):
        with pytest.raises(ConfigError):
            IOWorkerPool(0)

    def test_pool_rejects_submit_after_shutdown(self):
        pool = IOWorkerPool(1)
        pool.shutdown()
        with pytest.raises(StateError):
            pool.submit(lambda: None)

    def test_pool_counts_tasks(self):
        with IOWorkerPool(1) as pool:
            futures = [pool.submit(lambda x: x * 2, i) for i in range(5)]
            assert [f.result() for f in futures] == [0, 2, 4, 6, 8]
            assert pool.tasks_submitted == 5

    def test_executor_validates_inflight(self):
        with pytest.raises(ConfigError):
            RestoreExecutor(1, inflight=0)

    def test_executor_validates_max_concurrent(self):
        with pytest.raises(ConfigError):
            RestoreExecutor(1, max_concurrent_restores=0)

    def test_executor_shared_pool_not_closed(self):
        with IOWorkerPool(1) as pool:
            executor = RestoreExecutor(pool)
            executor.close()  # does not own the pool
            assert not pool.closed
