"""Threaded restores over a degraded replicated array (satellite of the
crash-safety PR): a primary failing mid-granule-stream must not change a
single restored byte, for every IO pool size, and a total device loss must
fail loudly without wedging the executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hcache import HCacheEngine
from repro.errors import DeviceFault
from repro.models.config import model_preset
from repro.models.transformer import Transformer
from repro.runtime import RestoreExecutor
from repro.simulator.hardware import GB, SSDSpec
from repro.storage import FaultPolicy, StorageArray, StorageManager

POOL_SIZES = [1, 2, 4]
N_TOKENS = 300  # several chunks per layer, with a partial tail

SPEC = SSDSpec("t-ssd", read_bandwidth=3 * GB, write_bandwidth=1 * GB,
               capacity_bytes=1 * GB)


@pytest.fixture(scope="module")
def saved_stack():
    config = model_preset("tiny-llama")
    model = Transformer.from_seed(config, seed=11)
    array = StorageArray([SPEC, SPEC], link_bandwidth=8 * GB, replication=2)
    engine = HCacheEngine(model, StorageManager(array), stream_granule_chunks=2)
    rng = np.random.default_rng(0)
    tokens = rng.integers(0, config.vocab_size, size=N_TOKENS)
    engine.register_context("c")
    result, cache = model.prefill(tokens, capture_hidden=True)
    for start in range(0, N_TOKENS, 37):
        stop = min(start + 37, N_TOKENS)
        engine.save_states(
            "c", [h[start:stop] for h in result.hidden_states],
            tokens[start:stop], kv_cache=cache,
        )
    engine.seal("c")
    return array, engine


def clear_faults(array):
    for i in range(len(array)):
        for role in ("primary", "mirror"):
            array.replica(i, role).fault_policy = None


@pytest.mark.parametrize("pool_size", POOL_SIZES)
def test_primary_failing_mid_stream_is_bit_exact(saved_stack, pool_size):
    array, engine = saved_stack
    clear_faults(array)
    healthy = engine.restore("c")
    degraded_before = array.degraded_reads
    # The primary of slot 0 dies partway through the granule stream: the
    # first few chunk reads succeed, everything after fails over.
    array.replica(0).fault_policy = FaultPolicy(fail_reads_from=3)
    try:
        with RestoreExecutor(pool=pool_size) as executor:
            restored = engine.restore("c", executor=executor)
    finally:
        clear_faults(array)
    assert array.degraded_reads > degraded_before
    for layer in range(engine.transformer.config.n_layers):
        k_h, v_h = healthy.get(layer)
        k_d, v_d = restored.get(layer)
        assert np.array_equal(k_h, k_d)
        assert np.array_equal(v_h, v_d)


def test_single_threaded_failover_matches_too(saved_stack):
    array, engine = saved_stack
    clear_faults(array)
    healthy = engine.restore("c")
    array.replica(1).fault_policy = FaultPolicy.dead()
    try:
        restored = engine.restore("c")
    finally:
        clear_faults(array)
    assert healthy.equals(restored)


def test_total_replica_loss_fails_loud_and_executor_survives(saved_stack):
    array, engine = saved_stack
    clear_faults(array)
    with RestoreExecutor(pool=2) as executor:
        array.replica(0).fault_policy = FaultPolicy.dead()
        array.replica(0, "mirror").fault_policy = FaultPolicy.dead()
        try:
            with pytest.raises(DeviceFault):
                engine.restore("c", executor=executor)
        finally:
            clear_faults(array)
        # Containment: the drain settled its in-flight reads, so the same
        # executor serves the next (healthy) restore correctly.
        healthy = engine.restore("c")
        retried = engine.restore("c", executor=executor)
        assert healthy.equals(retried)
