"""Property-based tests for the extension modules."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.gqa import hidden_to_kv_ratio, with_kv_heads
from repro.models.config import model_preset
from repro.storage.codec import GroupQuantizer

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SETTINGS
@given(
    bits=st.sampled_from([4, 8]),
    group_size=st.sampled_from([8, 16, 32]),
    n=st.integers(1, 32),
    n_groups=st.integers(1, 8),
    seed=st.integers(0, 100),
    scale=st.floats(1e-3, 1e3),
)
def test_codec_error_always_bounded(bits, group_size, n, n_groups, seed, scale):
    """Reconstruction error never exceeds half a quantization step of the
    group's absolute maximum — for any shape, scale, and bit width."""
    quantizer = GroupQuantizer(bits=bits, group_size=group_size)
    width = group_size * n_groups
    states = (
        np.random.default_rng(seed).normal(size=(n, width)).astype(np.float32) * scale
    )
    decoded = quantizer.decode(quantizer.encode(states))
    grouped = states.reshape(n, n_groups, group_size)
    err = np.abs(decoded.reshape(n, n_groups, group_size) - grouped)
    bound = (
        np.abs(grouped).max(axis=-1, keepdims=True) * quantizer.max_relative_error()
    )
    assert np.all(err <= bound + 1e-5 * scale)


@SETTINGS
@given(
    bits=st.sampled_from([4, 8]),
    group_size=st.sampled_from([16, 64]),
    width_groups=st.integers(1, 64),
)
def test_codec_always_compresses(bits, group_size, width_groups):
    quantizer = GroupQuantizer(bits=bits, group_size=group_size)
    width = group_size * width_groups
    assert quantizer.compression_ratio(width) > 1.0


@SETTINGS
@given(kv_heads=st.sampled_from([1, 2, 4, 8, 16, 32]))
def test_gqa_ratio_formula(kv_heads):
    """hidden/KV = heads / (2 * kv_heads), exactly."""
    config = with_kv_heads(model_preset("llama2-7b"), kv_heads)
    assert hidden_to_kv_ratio(config) == config.n_heads / (2 * kv_heads)


@SETTINGS
@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 6), st.integers(1, 50)), min_size=1, max_size=60
    ),
    capacity_mb=st.integers(50, 400),
)
def test_tiered_backend_capacity_invariant(accesses, capacity_mb):
    """The DRAM tier never exceeds its capacity, whatever the access mix."""
    from repro.core.profiler import build_storage_array
    from repro.simulator.hardware import platform_preset
    from repro.storage.tiered import TieredBackend

    backend = TieredBackend(
        build_storage_array(platform_preset("default")),
        dram_capacity_bytes=capacity_mb * 1024**2,
    )
    for key, size_mb in accesses:
        nbytes = size_mb * 1024**2
        if key % 2 == 0:
            backend.prefetch(f"ctx{key}", nbytes)
        else:
            backend.read(f"ctx{key}", nbytes, 1024**2)
        assert backend.resident_bytes <= capacity_mb * 1024**2


@SETTINGS
@given(
    n_tokens=st.integers(64, 4096),
    n_gpus=st.sampled_from([1, 2, 4, 8]),
)
def test_allgather_never_dominates(n_tokens, n_gpus):
    """NVLink is fast enough that the collective stays a minor term for
    any realistic shard size — the §5 claim, property-tested."""
    from repro.models.config import model_preset as preset
    from repro.simulator.multi_gpu import allgather_time

    config = preset("opt-30b")
    layer_bytes = n_tokens * config.hidden_bytes_per_token_layer
    pcie_time = layer_bytes / 32e9
    assert allgather_time(layer_bytes, n_gpus) < pcie_time + 25e-6
