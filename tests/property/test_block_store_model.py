"""Model-based harness for the block-paged state store (PR 8 tentpole).

Drives :class:`repro.state.BlockStateStore` with hundreds of random
operation sequences — admit / append / fork-then-diverge / release, over
a pool small enough to force eviction — against a naive model that keeps
one flat token list per session.  State rows are a deterministic,
*prefix-sensitive* function of the token sequence, so the model can
recompute the exact bytes every resident block must hold; any
copy-on-write slip, dedup-across-different-prefixes, or eviction of a
live block shows up as a byte mismatch or a broken invariant.

Invariants asserted after EVERY operation:

- every block's refcount equals the number of referencing block tables
  (``debug_validate``), and no freed block is reachable from any table;
- every session's resident rows are bit-identical to the model's
  recomputation — which simultaneously checks that shared blocks read
  back identically through every referencing table;
- no block that was shared (refcount >= 2) before the operation had its
  payload mutated by it (copy-on-write never writes in place).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StateError
from repro.state import BlockPool, BlockStateStore

N_LAYERS = 2
BLOCK_TOKENS = 4
N_KV_HEADS = 1
HEAD_DIM = 2
HIDDEN_WIDTH = 4
CAPACITY_BLOCKS = 14  # small: sequences regularly hit eviction + fallback
VOCAB = 23

N_SEQUENCES = 200
OPS_PER_SEQUENCE = 14


def make_store() -> BlockStateStore:
    pool = BlockPool(
        n_layers=N_LAYERS,
        block_tokens=BLOCK_TOKENS,
        n_kv_heads=N_KV_HEADS,
        head_dim=HEAD_DIM,
        hidden_width=HIDDEN_WIDTH,
        capacity_blocks=CAPACITY_BLOCKS,
    )
    return BlockStateStore(pool)


# ---------------------------------------------------------------------------
# the naive model: flat token lists + deterministic row synthesis
# ---------------------------------------------------------------------------


def prefix_accumulator(tokens: list[int]) -> np.ndarray:
    """A rolling hash per position — rows derived from it depend on the
    whole prefix, exactly like real hidden states, so blocks with equal
    tokens but different prefixes must NOT alias."""
    acc = np.empty(len(tokens), dtype=np.float32)
    h = 0
    for i, t in enumerate(tokens):
        h = (h * 31 + int(t) + 7) % 9973
        acc[i] = h
    return acc


def expected_rows(tokens: list[int], layer: int, kind: str) -> np.ndarray:
    """The rows the store must hold for ``tokens`` at (layer, kind)."""
    acc = prefix_accumulator(tokens)
    t = np.asarray(tokens, dtype=np.float32)
    width = HIDDEN_WIDTH if kind == "hidden" else 2 * N_KV_HEADS * HEAD_DIM
    base = acc * (layer + 1) + t * 0.25 + (3.0 if kind == "kv" else 0.0)
    cols = np.arange(width, dtype=np.float32)
    return base[:, None] + cols[None, :] * 0.125


def rows_payload(tokens: list[int], start: int) -> dict:
    """The append payload for tokens[start:], all layers and kinds."""
    out = {}
    for layer in range(N_LAYERS):
        for kind in ("hidden", "kv"):
            out[(layer, kind)] = expected_rows(tokens, layer, kind)[start:]
    return out


class NaiveModel:
    """Dict-of-token-lists reference: session id -> resident tokens."""

    def __init__(self) -> None:
        self.sessions: dict[str, list[int]] = {}
        self.next_id = 0

    def fresh_id(self) -> str:
        self.next_id += 1
        return f"s{self.next_id}"


# ---------------------------------------------------------------------------
# cross-checks run after every operation
# ---------------------------------------------------------------------------


def snapshot_shared_blocks(store: BlockStateStore) -> dict[int, bytes]:
    """Payload fingerprints of every block referenced by >= 2 tables."""
    pool = store.pool
    shared: dict[int, bytes] = {}
    for block_id in range(pool.capacity_blocks):
        if pool.refcount(block_id) >= 2:
            k, v = pool.kv_views(block_id, 0)
            parts = []
            for layer in range(pool.n_layers):
                k, v = pool.kv_views(block_id, layer)
                parts.append(k.tobytes())
                parts.append(v.tobytes())
                parts.append(pool.hidden_view(block_id, layer).tobytes())
            shared[block_id] = b"".join(parts)
    return shared


def check_all(store: BlockStateStore, model: NaiveModel) -> None:
    # Refcount == referencing tables, free/committed/LRU consistency,
    # chain keys match the token logs.
    store.debug_validate()
    assert set(store.session_ids()) == set(model.sessions)
    for session_id, tokens in model.sessions.items():
        assert store.resident_tokens(session_id) == len(tokens)
        table = store.table(session_id)
        assert table.token_ids == tokens
        # No freed block reachable: every referenced block is live.
        for block_id in table.blocks:
            assert store.pool.refcount(block_id) > 0
        # Byte-exact content through this session's table.
        n_blocks = len(table.blocks)
        for layer in range(N_LAYERS):
            want_h = expected_rows(tokens, layer, "hidden")
            want_kv = expected_rows(tokens, layer, "kv")
            kv_half = store.pool.kv_width // 2
            want_k = want_kv[:, :kv_half].reshape(-1, N_KV_HEADS, HEAD_DIM)
            want_v = want_kv[:, kv_half:].reshape(-1, N_KV_HEADS, HEAD_DIM)
            for index in range(n_blocks):
                start, stop = table.block_span(index)
                got_h = store.hidden_rows(session_id, index, layer)
                assert np.array_equal(got_h, want_h[start:stop])
                got_k, got_v = store.kv_rows(session_id, index, layer)
                assert np.array_equal(got_k, want_k[start:stop])
                assert np.array_equal(got_v, want_v[start:stop])
    # Accounting sanity.
    assert store.logical_blocks >= store.physical_blocks
    assert store.dedup_ratio() >= 1.0
    assert store.state_bytes_saved() >= 0


def check_cow(before: dict[int, bytes], store: BlockStateStore) -> None:
    """Blocks shared before the op must be byte-identical after it."""
    pool = store.pool
    for block_id, fingerprint in before.items():
        parts = []
        for layer in range(pool.n_layers):
            k, v = pool.kv_views(block_id, layer)
            parts.append(k.tobytes())
            parts.append(v.tobytes())
            parts.append(pool.hidden_view(block_id, layer).tobytes())
        assert b"".join(parts) == fingerprint, (
            f"shared block {block_id} was mutated in place"
        )


# ---------------------------------------------------------------------------
# the random walk
# ---------------------------------------------------------------------------


def run_sequence(seed: int) -> None:
    rng = np.random.default_rng(seed)
    store = make_store()
    model = NaiveModel()

    def random_tokens(n: int) -> list[int]:
        return [int(t) for t in rng.integers(0, VOCAB, size=n)]

    def pick_session() -> str | None:
        if not model.sessions:
            return None
        ids = sorted(model.sessions)
        return ids[int(rng.integers(len(ids)))]

    for _ in range(OPS_PER_SEQUENCE):
        op = rng.choice(
            ["track", "append", "append", "append", "admit", "fork", "release"]
        )
        shared_before = snapshot_shared_blocks(store)
        if op == "track":
            session_id = model.fresh_id()
            store.track(session_id)
            model.sessions[session_id] = []
        elif op == "append":
            session_id = pick_session()
            if session_id is None:
                continue
            tokens = model.sessions[session_id]
            new = random_tokens(int(rng.integers(1, 2 * BLOCK_TOKENS + 2)))
            full = tokens + new
            ok = store.append(
                session_id, len(tokens), new, rows_payload(full, len(tokens))
            )
            if ok:
                model.sessions[session_id] = full
            else:
                # Fallback (pool exhausted): the session left the store.
                assert not store.is_tracked(session_id)
                del model.sessions[session_id]
        elif op == "admit":
            donor = pick_session()
            if donor is not None and model.sessions[donor]:
                donor_tokens = model.sessions[donor]
                cut = int(rng.integers(1, len(donor_tokens) + 1))
                tokens = donor_tokens[:cut] + random_tokens(int(rng.integers(0, 6)))
                donor_full = len(donor_tokens) // BLOCK_TOKENS
                floor = min(cut // BLOCK_TOKENS, donor_full) * BLOCK_TOKENS
            else:
                tokens = random_tokens(int(rng.integers(1, 12)))
                floor = 0
            session_id = model.fresh_id()
            shared = store.admit(session_id, tokens)
            assert shared % BLOCK_TOKENS == 0
            assert shared <= len(tokens)
            # Every committed full block of a live donor's common prefix
            # must be adopted — prefix caching actually works.
            assert shared >= floor
            model.sessions[session_id] = tokens[:shared]
        elif op == "fork":
            parent = pick_session()
            if parent is None:
                continue
            child = model.fresh_id()
            store.fork(parent, child)
            model.sessions[child] = list(model.sessions[parent])
            # Diverge immediately with probability 1/2: the CoW path.
            if rng.integers(2):
                tokens = model.sessions[child]
                new = random_tokens(int(rng.integers(1, BLOCK_TOKENS + 1)))
                full = tokens + new
                ok = store.append(
                    child, len(tokens), new, rows_payload(full, len(tokens))
                )
                if ok:
                    model.sessions[child] = full
                else:
                    assert not store.is_tracked(child)
                    del model.sessions[child]
        elif op == "release":
            session_id = pick_session()
            if session_id is None:
                continue
            store.release(session_id)
            del model.sessions[session_id]
            with pytest.raises(StateError):
                store.table(session_id)
        check_cow(shared_before, store)
        check_all(store, model)

    # Teardown: releasing everything must leave no referenced blocks.
    for session_id in list(model.sessions):
        store.release(session_id)
        del model.sessions[session_id]
    check_all(store, model)
    assert store.pool.live_blocks == 0


@pytest.mark.parametrize("chunk", range(20))
def test_block_store_matches_naive_model(chunk):
    """200 random operation sequences against the dict-of-arrays model."""
    per_chunk = N_SEQUENCES // 20
    for offset in range(per_chunk):
        run_sequence(seed=chunk * per_chunk + offset)


def test_sequence_count_is_at_least_200():
    """The harness budget the acceptance gate asks for (>= 200 sequences)."""
    assert N_SEQUENCES >= 200
