"""Property-based tests (hypothesis) on core data structures and invariants.

These generalize the unit tests: the losslessness of HCache restoration,
storage round-trips, scheduler optimality, stream-schedule legality, LRU
bounds, and allocator accounting must hold for *arbitrary* inputs, not just
the hand-picked ones.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.partition import PartitionScheme
from repro.core.profiler import HardwareProfile
from repro.core.scheduler import BubbleFreeScheduler, evaluate_scheme
from repro.cache.lru import LRUCache
from repro.models.config import ModelConfig
from repro.models.transformer import Transformer
from repro.simulator.pipeline import LayerMethod, LayerPlan, build_layerwise_schedule
from repro.simulator.streams import StreamSchedule
from repro.storage.allocator import ChunkAllocator
from repro.storage.chunk import ChunkLayout

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# losslessness of hidden-state restoration
# ---------------------------------------------------------------------------

_MODEL_CACHE: dict[tuple, Transformer] = {}


def _model(n_layers: int, n_heads: int, head_dim: int, seed: int) -> Transformer:
    key = (n_layers, n_heads, head_dim, seed)
    if key not in _MODEL_CACHE:
        hidden = n_heads * head_dim
        config = ModelConfig(
            name=f"prop-{n_layers}-{hidden}",
            n_layers=n_layers,
            hidden_size=hidden,
            n_heads=n_heads,
            n_kv_heads=n_heads,
            ffn_hidden_size=2 * hidden,
            n_ffn_mats=3,
            vocab_size=64,
            max_context=256,
        )
        _MODEL_CACHE[key] = Transformer.from_seed(config, seed)
    return _MODEL_CACHE[key]


@SETTINGS
@given(
    n_layers=st.integers(1, 4),
    n_heads=st.sampled_from([1, 2, 4]),
    head_dim=st.sampled_from([4, 8, 16]),
    seed=st.integers(0, 3),
    n_tokens=st.integers(1, 40),
    token_seed=st.integers(0, 1000),
)
def test_restoration_lossless_for_any_model(
    n_layers, n_heads, head_dim, seed, n_tokens, token_seed
):
    """For any architecture and token sequence, KV restored from hidden
    states equals the prefill-produced KV exactly (§3.1)."""
    model = _model(n_layers, n_heads, head_dim, seed)
    tokens = np.random.default_rng(token_seed).integers(
        0, model.config.vocab_size, size=n_tokens
    )
    result, cache = model.prefill(tokens, capture_hidden=True)
    restored = model.restore_cache_from_hidden(result.hidden_states)
    assert cache.equals(restored)


@SETTINGS
@given(
    n_prefix=st.integers(0, 3),
    n_tokens=st.integers(1, 30),
    token_seed=st.integers(0, 500),
)
def test_prefix_recompute_matches_full_prefill(n_prefix, n_tokens, token_seed):
    model = _model(3, 2, 8, 0)
    n_prefix = min(n_prefix, model.config.n_layers)
    tokens = np.random.default_rng(token_seed).integers(
        0, model.config.vocab_size, size=n_tokens
    )
    _, full = model.prefill(tokens)
    prefix_cache, _ = model.recompute_prefix(tokens, n_prefix)
    for layer in range(n_prefix):
        fk, fv = full.get(layer)
        pk, pv = prefix_cache.get(layer)
        assert np.allclose(fk, pk, atol=1e-5)
        assert np.allclose(fv, pv, atol=1e-5)


# ---------------------------------------------------------------------------
# chunk layout / allocator accounting
# ---------------------------------------------------------------------------


@SETTINGS
@given(
    tokens_per_chunk=st.integers(1, 128),
    bytes_per_token=st.integers(1, 4096),
    n_tokens=st.integers(0, 10_000),
)
def test_chunk_fragmentation_bounded(tokens_per_chunk, bytes_per_token, n_tokens):
    layout = ChunkLayout(tokens_per_chunk=tokens_per_chunk, bytes_per_token=bytes_per_token)
    frag = layout.internal_fragmentation(n_tokens)
    assert 0 <= frag < layout.chunk_bytes or (frag == 0 and layout.chunk_bytes == 0)
    assert layout.allocated_bytes(n_tokens) >= layout.used_bytes(n_tokens)


@SETTINGS
@given(extends=st.lists(st.integers(1, 200), min_size=1, max_size=20))
def test_allocator_accounting_consistent(extends):
    layout = ChunkLayout(tokens_per_chunk=64, bytes_per_token=10)
    allocator = ChunkAllocator(capacity_bytes=10**9)
    allocator.open_run("ctx", 0, "hidden", layout)
    total = 0
    for n in extends:
        allocator.extend("ctx", 0, "hidden", n)
        total += n
        run = allocator.run("ctx", 0, "hidden")
        assert run.n_tokens == total
        assert run.n_chunks == layout.chunks_for(total)
        assert allocator.stats.used_bytes <= allocator.stats.allocated_bytes
    freed = allocator.free_context("ctx")
    assert freed == layout.allocated_bytes(total)
    assert allocator.stats.allocated_bytes == 0
    assert allocator.stats.used_bytes == 0


# ---------------------------------------------------------------------------
# storage manager round-trip
# ---------------------------------------------------------------------------


@SETTINGS
@given(
    blocks=st.lists(st.integers(1, 100), min_size=1, max_size=8),
    width=st.sampled_from([8, 32]),
    seal_every=st.integers(1, 4),
)
def test_manager_roundtrip_any_block_pattern(blocks, width, seal_every, default_platform):
    from repro.core.profiler import build_storage_array
    from repro.storage.manager import StorageManager

    manager = StorageManager(build_storage_array(default_platform))
    manager.register_context("ctx", n_layers=2, hidden_width=width)
    rng = np.random.default_rng(0)
    expected: list[np.ndarray] = []
    for i, n in enumerate(blocks):
        block = rng.normal(size=(n, width)).astype(np.float32)
        manager.append("ctx", 0, block)
        expected.append(block)
        if (i + 1) % seal_every == 0:
            manager.seal_context("ctx")
    out = manager.load_layer("ctx", 0)
    assert np.array_equal(out, np.concatenate(expected, axis=0))


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------


@SETTINGS
@given(
    io_h=st.floats(0.1, 10.0),
    kv_ratio=st.floats(1.5, 2.5),
    c_h=st.floats(0.1, 10.0),
    c_tok_mult=st.floats(5.0, 30.0),
    n_layers=st.integers(2, 48),
)
def test_scheduler_never_worse_than_pure_schemes(io_h, kv_ratio, c_h, c_tok_mult, n_layers):
    """The bubble-free partition is at least as fast as all-hidden,
    all-KV, and all-recompute, for any profiled hardware point."""
    profile = HardwareProfile(
        model="prop",
        n_tokens=1024,
        io_hidden=io_h,
        io_kv=io_h * kv_ratio,
        compute_hidden=c_h,
        compute_token=c_h * c_tok_mult,
    )
    decision = BubbleFreeScheduler(n_layers).schedule(profile)
    assert decision.scheme.n_hidden + decision.scheme.n_other == n_layers
    for pure in (
        PartitionScheme.pure_hcache(n_layers),
        PartitionScheme.pure_kv(n_layers),
        PartitionScheme.pure_recompute(n_layers),
    ):
        assert decision.predicted_makespan <= evaluate_scheme(pure, profile) * 1.02


@SETTINGS
@given(
    io_h=st.floats(0.5, 4.0),
    c_h=st.floats(0.5, 4.0),
    n_layers=st.integers(2, 40),
)
def test_closed_form_close_to_search(io_h, c_h, n_layers):
    profile = HardwareProfile(
        model="prop",
        n_tokens=1024,
        io_hidden=io_h,
        io_kv=2 * io_h,
        compute_hidden=c_h,
        compute_token=10 * c_h,
    )
    scheduler = BubbleFreeScheduler(n_layers)
    fast = scheduler.schedule(profile)
    best = scheduler.schedule_by_search(profile)
    assert fast.predicted_makespan <= best.predicted_makespan * 1.10


# ---------------------------------------------------------------------------
# pipeline / stream invariants
# ---------------------------------------------------------------------------


@SETTINGS
@given(
    durations=st.lists(
        st.tuples(st.floats(0.0, 5.0), st.floats(0.0, 5.0)), min_size=1, max_size=16
    )
)
def test_layerwise_schedule_invariants(durations):
    plans = [
        LayerPlan(i, LayerMethod.HIDDEN, io, compute)
        for i, (io, compute) in enumerate(durations)
    ]
    result = build_layerwise_schedule(plans)
    result.validate()
    total_io = sum(io for io, _ in durations)
    total_compute = sum(c for _, c in durations)
    assert result.makespan >= max(total_io, total_compute) - 1e-9
    assert result.makespan <= total_io + total_compute + 1e-9


@SETTINGS
@given(
    tasks=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.floats(0.0, 3.0)),
        min_size=1,
        max_size=20,
    )
)
def test_stream_schedule_always_legal(tasks):
    sched = StreamSchedule()
    previous = None
    for i, (stream, duration) in enumerate(tasks):
        deps = (previous,) if previous is not None and i % 3 == 0 else ()
        previous = sched.submit(f"t{i}", stream, duration, deps=deps)
    result = sched.run()
    result.validate()
    for stream in result.streams:
        assert result.busy_time(stream) <= result.makespan + 1e-9


# ---------------------------------------------------------------------------
# LRU invariants
# ---------------------------------------------------------------------------


@SETTINGS
@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 15), st.integers(1, 30)), min_size=1, max_size=200
    ),
    capacity=st.integers(30, 120),
)
def test_lru_never_exceeds_capacity(accesses, capacity):
    cache = LRUCache(capacity)
    for key, size in accesses:
        if size > capacity:
            continue
        cache.lookup(key, size)
        assert cache.used <= capacity
        assert len(cache) <= capacity
    assert cache.stats.accesses == cache.stats.hits + cache.stats.misses


@SETTINGS
@given(keys=st.lists(st.integers(0, 5), min_size=2, max_size=100))
def test_lru_hit_iff_present(keys):
    cache = LRUCache(1000)
    seen: set[int] = set()
    evicted_never = True  # capacity large enough that nothing is evicted
    for key in keys:
        hit = cache.lookup(key, 1)
        assert hit == (key in seen)
        seen.add(key)
    assert evicted_never
    assert cache.stats.evictions == 0
