"""Shared fixtures: tiny executable models, platforms, storage stacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profiler import build_storage_array
from repro.models import Transformer, model_preset
from repro.simulator import platform_preset
from repro.storage import StorageManager


@pytest.fixture(scope="session")
def tiny_config():
    return model_preset("tiny-llama")


@pytest.fixture(scope="session")
def tiny_opt_config():
    return model_preset("tiny-opt")


@pytest.fixture(scope="session")
def tiny_model(tiny_config):
    return Transformer.from_seed(tiny_config, seed=7)


@pytest.fixture(scope="session")
def tiny_opt_model(tiny_opt_config):
    return Transformer.from_seed(tiny_opt_config, seed=7)


@pytest.fixture(scope="session")
def seven_b():
    return model_preset("llama2-7b")


@pytest.fixture(scope="session")
def thirteen_b():
    return model_preset("llama2-13b")


@pytest.fixture(scope="session")
def opt_30b():
    return model_preset("opt-30b")


@pytest.fixture(scope="session")
def default_platform():
    """A100 + 4x PM9A3 — the paper's default testbed."""
    return platform_preset("default")


@pytest.fixture(scope="session")
def dram_platform():
    return platform_preset("a100-dram")


@pytest.fixture
def storage_manager(default_platform):
    return StorageManager(build_storage_array(default_platform))


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


def random_tokens(rng: np.random.Generator, vocab: int, n: int) -> np.ndarray:
    return rng.integers(0, vocab, size=n)
