"""Tests for the write-ahead manifest journal (crash-safe metadata)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, JournalCorruptError, StateError
from repro.storage import ManifestJournal, ManifestState


RECORDS = [
    {"op": "register", "context_id": "a", "n_layers": 2, "hidden_width": 8, "dtype": "float32"},
    {"op": "tokens", "context_id": "a", "ids": [1, 2, 3]},
    {"op": "chunk", "context_id": "a", "layer": 0, "kind": "hidden", "index": 0, "crc": 99},
    {"op": "seal", "context_id": "a",
     "tails": [{"layer": 0, "kind": "hidden", "index": 1, "tokens": 5, "crc": 7}]},
    {"op": "register", "context_id": "b", "n_layers": 2, "hidden_width": 8, "dtype": "float32"},
    {"op": "tokens", "context_id": "b", "ids": [9]},
    {"op": "free", "context_id": "a"},
]


def fold(records) -> ManifestState:
    state = ManifestState()
    for record in records:
        state.apply(record)
    return state


def states_equal(a: ManifestState, b: ManifestState) -> bool:
    def shape(state):
        return {
            cid: (
                crec.n_layers,
                crec.hidden_width,
                crec.dtype,
                tuple(crec.tokens),
                {
                    run_key: (
                        run.full_chunks,
                        tuple(sorted(run.chunk_crcs.items())),
                        run.sealed_tail_tokens,
                        run.sealed_tail_index,
                        run.sealed_tail_crc,
                    )
                    for run_key, run in crec.runs.items()
                },
            )
            for cid, crec in state.contexts.items()
        }

    return shape(a) == shape(b)


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        with ManifestJournal(tmp_path) as journal:
            for record in RECORDS:
                journal.append(record)
            replayed = journal.replay()
        assert states_equal(replayed, fold(RECORDS))

    def test_replay_survives_reopen(self, tmp_path):
        with ManifestJournal(tmp_path) as journal:
            for record in RECORDS:
                journal.append(record)
        with ManifestJournal(tmp_path) as journal:
            assert states_equal(journal.replay(), fold(RECORDS))

    def test_empty_journal_replays_empty(self, tmp_path):
        with ManifestJournal(tmp_path) as journal:
            assert journal.replay().contexts == {}

    def test_closed_journal_rejects_appends(self, tmp_path):
        journal = ManifestJournal(tmp_path)
        journal.close()
        with pytest.raises(StateError):
            journal.append(RECORDS[0])

    def test_fsync_every_validated(self, tmp_path):
        with pytest.raises(ConfigError):
            ManifestJournal(tmp_path, fsync_every=0)

    def test_batched_fsync_still_replays(self, tmp_path):
        with ManifestJournal(tmp_path, fsync_every=16) as journal:
            for record in RECORDS:
                journal.append(record)
            journal.sync()
            assert states_equal(journal.replay(), fold(RECORDS))


class TestTruncationProperty:
    def test_every_byte_truncation_is_prefix_or_loud(self, tmp_path):
        """Satellite (c): a journal cut at ANY byte offset replays to a
        strict prefix of the committed records — never silently wrong
        metadata.  Pure truncation of an append-only file can never
        fabricate a complete-but-corrupt frame, so it never raises."""
        with ManifestJournal(tmp_path / "full") as journal:
            boundaries = [0]
            for record in RECORDS:
                journal.append(record)
                boundaries.append(journal.journal_bytes)
            data = journal.journal_path.read_bytes()
        assert boundaries[-1] == len(data)
        for offset in range(len(data) + 1):
            directory = tmp_path / f"cut{offset}"
            with ManifestJournal(directory) as journal:
                journal.journal_path.write_bytes(data[:offset])
                replayed = journal.replay()
                # Committed prefix: every record whose frame fits the cut.
                n_whole = sum(1 for b in boundaries[1:] if b <= offset)
                assert states_equal(replayed, fold(RECORDS[:n_whole])), offset
                # The torn tail was physically truncated to the clean prefix.
                assert journal.journal_bytes == boundaries[n_whole]

    def test_truncated_tail_can_be_extended(self, tmp_path):
        with ManifestJournal(tmp_path) as journal:
            for record in RECORDS[:2]:
                journal.append(record)
            cut = journal.journal_bytes - 3
            data = journal.journal_path.read_bytes()
        with ManifestJournal(tmp_path) as journal:
            journal.journal_path.write_bytes(data[:cut])
            journal.replay()
            journal.append(RECORDS[2])
            assert states_equal(journal.replay(), fold(RECORDS[:1] + [RECORDS[2]]))

    def test_midfile_bitflip_raises(self, tmp_path):
        with ManifestJournal(tmp_path) as journal:
            for record in RECORDS:
                journal.append(record)
            data = bytearray(journal.journal_path.read_bytes())
            data[12] ^= 0x40  # inside the first record's payload
            journal.journal_path.write_bytes(bytes(data))
            with pytest.raises(JournalCorruptError):
                journal.replay()

    def test_absurd_length_field_raises(self, tmp_path):
        with ManifestJournal(tmp_path) as journal:
            journal.append(RECORDS[0])
            journal.journal_path.write_bytes(b"\xff\xff\xff\x7f" + b"\x00" * 64)
            with pytest.raises(JournalCorruptError):
                journal.replay()


class TestCompaction:
    def test_compaction_preserves_state(self, tmp_path):
        with ManifestJournal(tmp_path) as journal:
            for record in RECORDS:
                journal.append(record)
            journal.compact(journal.replay())
            assert journal.journal_bytes == 0
            assert states_equal(journal.replay(), fold(RECORDS))

    def test_records_after_compaction_extend_snapshot(self, tmp_path):
        extra = {"op": "tokens", "context_id": "b", "ids": [5, 6]}
        with ManifestJournal(tmp_path) as journal:
            for record in RECORDS:
                journal.append(record)
            journal.compact(journal.replay())
            journal.append(extra)
        with ManifestJournal(tmp_path) as journal:
            assert states_equal(journal.replay(), fold(RECORDS + [extra]))

    def test_generation_advances_and_stale_logs_removed(self, tmp_path):
        with ManifestJournal(tmp_path) as journal:
            old_log = journal.journal_path
            journal.append(RECORDS[0])
            journal.compact(journal.replay())
            assert journal.generation == 1
            assert not old_log.exists()

    def test_crash_window_old_snapshot_old_log(self, tmp_path):
        """A crash *before* the snapshot rename: replay must see the old
        snapshot + old log — the new empty log must not shadow it."""
        with ManifestJournal(tmp_path) as journal:
            for record in RECORDS:
                journal.append(record)
            # Simulate compaction dying after creating the next-gen log but
            # before the snapshot rename commits.
            (tmp_path / "manifest.00000001.journal").touch()
        with ManifestJournal(tmp_path) as journal:
            assert journal.generation == 0
            assert states_equal(journal.replay(), fold(RECORDS))

    def test_crash_window_new_snapshot_ignores_old_log(self, tmp_path):
        """A crash *after* the rename but before stale-log deletion: the
        snapshot names the new generation, so the old log's records are
        not double-applied."""
        with ManifestJournal(tmp_path) as journal:
            for record in RECORDS:
                journal.append(record)
            old_log = journal.journal_path
            journal.compact(journal.replay())
            # Resurrect the old log as a crash would have left it.
            with open(old_log, "wb") as fh:
                fh.write(b"")
        with ManifestJournal(tmp_path) as journal:
            assert journal.generation == 1
            assert states_equal(journal.replay(), fold(RECORDS))

    def test_snapshot_corruption_is_loud(self, tmp_path):
        with ManifestJournal(tmp_path) as journal:
            journal.append(RECORDS[0])
            journal.compact(journal.replay())
        snapshot = tmp_path / ManifestJournal.SNAPSHOT_NAME
        data = bytearray(snapshot.read_bytes())
        data[10] ^= 0x01
        snapshot.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError):
            ManifestJournal(tmp_path)


class TestRecordSemantics:
    def test_duplicate_register_is_corrupt(self):
        state = ManifestState()
        state.apply(RECORDS[0])
        with pytest.raises(JournalCorruptError):
            state.apply(RECORDS[0])

    def test_unknown_context_is_corrupt(self):
        with pytest.raises(JournalCorruptError):
            ManifestState().apply({"op": "tokens", "context_id": "ghost", "ids": [1]})

    def test_unknown_op_is_corrupt(self):
        with pytest.raises(JournalCorruptError):
            ManifestState().apply({"op": "frobnicate"})

    def test_full_chunk_supersedes_sealed_tail(self):
        state = fold(RECORDS[:4])
        run = state.contexts["a"].runs[(0, "hidden")]
        assert run.sealed_tail_tokens == 5
        state.apply(
            {"op": "chunk", "context_id": "a", "layer": 0, "kind": "hidden",
             "index": 1, "crc": 123}
        )
        assert run.sealed_tail_tokens == 0
        assert run.full_chunks == 2
