"""Tests for the chunk layout (§4.2.1)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.storage.chunk import CHUNK_TOKENS, ChunkKey, ChunkLayout


class TestChunkKey:
    def test_valid_key(self):
        key = ChunkKey("ctx", 3, 7)
        assert key.kind == "hidden"

    def test_negative_layer_rejected(self):
        with pytest.raises(ConfigError):
            ChunkKey("ctx", -1, 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            ChunkKey("ctx", 0, 0, kind="tokens")

    def test_keys_hashable_and_distinct(self):
        a = ChunkKey("ctx", 0, 0, "hidden")
        b = ChunkKey("ctx", 0, 0, "kv")
        assert a != b
        assert len({a, b}) == 2


class TestChunkLayout:
    def test_default_chunk_is_64_tokens(self):
        assert CHUNK_TOKENS == 64

    def test_chunks_for_exact(self):
        layout = ChunkLayout(bytes_per_token=100)
        assert layout.chunks_for(128) == 2

    def test_chunks_for_partial(self):
        layout = ChunkLayout(bytes_per_token=100)
        assert layout.chunks_for(129) == 3

    def test_chunks_for_zero(self):
        layout = ChunkLayout(bytes_per_token=100)
        assert layout.chunks_for(0) == 0

    def test_chunks_for_negative_rejected(self):
        layout = ChunkLayout(bytes_per_token=100)
        with pytest.raises(ConfigError):
            layout.chunks_for(-1)

    def test_fragmentation_bounded_by_one_chunk(self):
        """§4.2.1's rationale: chunking bounds internal fragmentation."""
        layout = ChunkLayout(bytes_per_token=8192)
        for n in (1, 63, 64, 65, 100, 1000):
            assert 0 <= layout.internal_fragmentation(n) < layout.chunk_bytes

    def test_fragmentation_zero_at_boundary(self):
        layout = ChunkLayout(bytes_per_token=8192)
        assert layout.internal_fragmentation(128) == 0

    def test_allocated_at_least_used(self):
        layout = ChunkLayout(bytes_per_token=512)
        for n in (0, 1, 64, 200):
            assert layout.allocated_bytes(n) >= layout.used_bytes(n)

    def test_token_slice(self):
        layout = ChunkLayout(bytes_per_token=1)
        assert layout.token_slice(0, 100) == (0, 64)
        assert layout.token_slice(1, 100) == (64, 100)

    def test_token_slice_out_of_range(self):
        layout = ChunkLayout(bytes_per_token=1)
        with pytest.raises(ConfigError):
            layout.token_slice(2, 100)

    def test_invalid_layout_rejected(self):
        with pytest.raises(ConfigError):
            ChunkLayout(tokens_per_chunk=0, bytes_per_token=1)
