"""Tests for the simulated storage devices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AllocationError, StateError
from repro.simulator.hardware import PM9A3, DRAMSpec, SSDSpec
from repro.storage.device import StorageDevice


@pytest.fixture
def ssd():
    return StorageDevice(PM9A3, 0)


class TestReadWrite:
    def test_roundtrip_exact(self, ssd):
        data = np.arange(64, dtype=np.float32).reshape(8, 8)
        ssd.write("k", data)
        out, _ = ssd.read("k")
        assert np.array_equal(out, data)

    def test_write_copies_payload(self, ssd):
        """Mutating the source buffer must not corrupt stored state —
        the reason for the snapshot in two-stage saving (§4.2.2)."""
        data = np.zeros((4, 4), dtype=np.float32)
        ssd.write("k", data)
        data[:] = 99.0
        out, _ = ssd.read("k")
        assert np.all(out == 0.0)

    def test_read_returns_copy(self, ssd):
        ssd.write("k", np.zeros((2, 2), dtype=np.float32))
        out, _ = ssd.read("k")
        out[:] = 5.0
        again, _ = ssd.read("k")
        assert np.all(again == 0.0)

    def test_double_write_rejected(self, ssd):
        ssd.write("k", np.zeros(4, dtype=np.float32))
        with pytest.raises(StateError):
            ssd.write("k", np.ones(4, dtype=np.float32))

    def test_missing_read_rejected(self, ssd):
        with pytest.raises(StateError):
            ssd.read("absent")

    def test_delete_frees_bytes(self, ssd):
        data = np.zeros(1024, dtype=np.float32)
        ssd.write("k", data)
        assert ssd.used_bytes == data.nbytes
        freed = ssd.delete("k")
        assert freed == data.nbytes
        assert ssd.used_bytes == 0

    def test_delete_missing_rejected(self, ssd):
        with pytest.raises(StateError):
            ssd.delete("absent")

    def test_contains(self, ssd):
        assert "k" not in ssd
        ssd.write("k", np.zeros(1, dtype=np.float32))
        assert "k" in ssd


class TestCapacityAndTiming:
    def test_capacity_enforced(self):
        small = SSDSpec("tiny", read_bandwidth=1e9, write_bandwidth=1e9, capacity_bytes=100)
        dev = StorageDevice(small, 0)
        with pytest.raises(AllocationError):
            dev.write("k", np.zeros(200, dtype=np.uint8))

    def test_receipt_times_positive(self, ssd):
        receipt = ssd.write("k", np.zeros(1024, dtype=np.float32))
        assert receipt.seconds > 0
        _, read_receipt = ssd.read("k")
        assert read_receipt.seconds > 0

    def test_read_faster_than_write_on_ssd(self, ssd):
        data = np.zeros(10**6, dtype=np.uint8)
        w = ssd.write("k", data)
        _, r = ssd.read("k")
        assert r.seconds < w.seconds

    def test_busy_time_accumulates(self, ssd):
        before = ssd.busy_seconds
        ssd.write("k", np.zeros(1024, dtype=np.float32))
        ssd.read("k")
        assert ssd.busy_seconds > before

    def test_op_counts(self, ssd):
        ssd.write("a", np.zeros(1, dtype=np.float32))
        ssd.write("b", np.zeros(1, dtype=np.float32))
        ssd.read("a")
        assert ssd.op_counts == (1, 2)

    def test_dram_device_works(self):
        dev = StorageDevice(DRAMSpec(), 0)
        dev.write("k", np.ones(16, dtype=np.float32))
        out, receipt = dev.read("k")
        assert np.all(out == 1.0)
        assert receipt.seconds > 0

    def test_name_includes_id(self, ssd):
        assert ssd.name == "PM9A3#0"
