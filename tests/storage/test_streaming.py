"""Tests for chunk-granular streaming reads (the restore pipeline's IO side)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profiler import build_storage_array
from repro.errors import ConfigError
from repro.simulator import platform_preset
from repro.storage import StagingRing, StorageManager, pipelined_makespan


def make_manager(platform_name: str = "default") -> StorageManager:
    return StorageManager(build_storage_array(platform_preset(platform_name)))


def fill_context(
    manager: StorageManager,
    n_tokens: int,
    n_layers: int = 3,
    width: int = 16,
    kind: str = "hidden",
    block: int = 23,
    seal: bool = False,
) -> dict[int, np.ndarray]:
    rng = np.random.default_rng(99)
    manager.register_context("ctx", n_layers=n_layers, hidden_width=width)
    expected: dict[int, np.ndarray] = {}
    for layer in range(n_layers):
        w = width if kind == "hidden" else 2 * width
        data = rng.normal(size=(n_tokens, w)).astype(np.float32)
        for start in range(0, n_tokens, block):
            manager.append("ctx", layer, data[start : start + block], kind=kind)
        expected[layer] = data
    if seal:
        manager.seal_context("ctx")
    return expected


class TestStagingRing:
    def test_depth_below_two_rejected(self):
        with pytest.raises(ConfigError):
            StagingRing(1, 64, 16)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            StagingRing(2, 0, 16)
        with pytest.raises(ConfigError):
            StagingRing(2, 64, 0)

    def test_slots_recycle_round_robin(self):
        ring = StagingRing(2, 8, 4)
        a, b, c = ring.acquire(), ring.acquire(), ring.acquire()
        assert a is c
        assert a is not b


class TestStreamLayer:
    @pytest.mark.parametrize("n_tokens", [1, 63, 64, 65, 197, 256])
    def test_reassembled_stream_matches_load_layer(self, n_tokens):
        manager = make_manager()
        expected = fill_context(manager, n_tokens)
        out = np.empty((n_tokens, 16), dtype=np.float32)
        for chunk in manager.stream_layer("ctx", 1):
            out[chunk.start : chunk.stop] = chunk.data
        assert np.array_equal(out, expected[1])
        assert np.array_equal(out, manager.load_layer("ctx", 1))

    @pytest.mark.parametrize("granule_chunks", [1, 2, 4])
    def test_granule_coalescing_preserves_content(self, granule_chunks):
        manager = make_manager()
        expected = fill_context(manager, 197)
        ring = manager.staging_ring("ctx", granule_chunks=granule_chunks)
        out = np.zeros((197, 16), dtype=np.float32)
        device_reads = 0
        for chunk in manager.stream_layer("ctx", 0, ring=ring):
            out[chunk.start : chunk.stop] = chunk.data  # consume before recycling
            device_reads += chunk.device_reads
        assert np.array_equal(out, expected[0])
        # Coalescing shrinks granule count but never IO granularity: the
        # device-read count stays one per 64-token storage chunk.
        assert device_reads == 197 // 64

    def test_sealed_partial_tail_streams_from_host(self):
        manager = make_manager()
        expected = fill_context(manager, 100, seal=True)
        chunks = list(manager.stream_layer("ctx", 2))
        out = np.concatenate([c.data for c in chunks])
        assert np.array_equal(out, expected[2])
        # 64 device tokens + 36 host-tail tokens: the tail granule costs
        # no device IO beyond its device-resident prefix.
        assert chunks[-1].io_seconds >= 0.0
        assert sum(c.device_reads for c in chunks) == 1

    def test_kv_kind_streams_double_width(self):
        manager = make_manager()
        expected = fill_context(manager, 70, kind="kv")
        ring = manager.staging_ring("ctx", kind="kv")
        out = np.concatenate([c.data for c in manager.stream_layer("ctx", 0, "kv", ring)])
        assert np.array_equal(out, expected[0])
        assert out.shape[1] == 32

    def test_stream_layers_orders_layers_back_to_back(self):
        manager = make_manager()
        fill_context(manager, 130)
        seen = [(c.layer, c.start) for c in manager.stream_layers("ctx", [2, 0])]
        assert seen == [(2, 0), (2, 64), (2, 128), (0, 0), (0, 64), (0, 128)]

    def test_dram_array_streams_identically(self):
        ssd = make_manager("default")
        dram = make_manager("a100-dram")
        expected_ssd = fill_context(ssd, 150)
        expected_dram = fill_context(dram, 150)
        for layer in range(3):
            for manager, expected in ((ssd, expected_ssd), (dram, expected_dram)):
                out = np.zeros((150, 16), dtype=np.float32)
                for c in manager.stream_layer("ctx", layer):
                    out[c.start : c.stop] = c.data
                assert np.array_equal(out, expected[layer])

    def test_stream_charges_devices_like_load_layer(self):
        manager = make_manager()
        fill_context(manager, 200)
        busy_before = [d.busy_seconds for d in manager.array.devices]
        manager.load_layer("ctx", 0)
        busy_load = [d.busy_seconds - b for d, b in zip(manager.array.devices, busy_before)]
        busy_mid = [d.busy_seconds for d in manager.array.devices]
        list(manager.stream_layer("ctx", 0))
        busy_stream = [d.busy_seconds - b for d, b in zip(manager.array.devices, busy_mid)]
        assert busy_stream == pytest.approx(busy_load)

    def test_modelled_io_seconds_reported_per_granule(self):
        manager = make_manager()
        fill_context(manager, 256)
        chunks = list(manager.stream_layer("ctx", 0))
        assert all(c.io_seconds > 0 for c in chunks)

    def test_ring_width_mismatch_rejected(self):
        manager = make_manager()
        fill_context(manager, 64)
        bad = StagingRing(2, 64, 7)
        with pytest.raises(ConfigError):
            list(manager.stream_layer("ctx", 0, ring=bad))

    def test_unaligned_granule_rejected(self):
        manager = make_manager()
        fill_context(manager, 64)
        bad = StagingRing(2, 63, 16)
        with pytest.raises(ConfigError):
            list(manager.stream_layer("ctx", 0, ring=bad))

    def test_view_valid_for_depth_minus_one_lookahead(self):
        manager = make_manager()
        expected = fill_context(manager, 192)
        stream = manager.stream_layer("ctx", 0)
        pending = next(stream)
        snapshot = pending.data.copy()
        upcoming = next(stream)  # double buffer: one lookahead is safe
        assert np.array_equal(pending.data, snapshot)
        next(stream)  # second lookahead recycles pending's slot
        assert upcoming is not None
        assert np.array_equal(
            np.asarray(pending.data), expected[0][128:192]
        )  # slot now holds granule 2's rows


class TestPipelinedMakespan:
    def test_bounds(self):
        io = [1.0, 1.0, 1.0]
        compute = [0.5, 0.5, 0.5]
        span = pipelined_makespan(io, compute)
        assert span >= sum(io)
        assert span <= sum(io) + sum(compute)
        assert span == pytest.approx(3.5)  # last compute after last read

    def test_compute_bound_chains_on_compute(self):
        span = pipelined_makespan([0.1, 0.1], [1.0, 1.0])
        assert span == pytest.approx(0.1 + 2.0)

    def test_empty_is_zero(self):
        assert pipelined_makespan([], []) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            pipelined_makespan([1.0], [])

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            pipelined_makespan([-1.0], [1.0])
