"""Tests for the chunked storage manager (§4.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, StateError


def rows(n: int, width: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, width)).astype(np.float32)


@pytest.fixture
def manager(storage_manager):
    storage_manager.register_context("ctx", n_layers=4, hidden_width=32)
    return storage_manager


class TestRegistration:
    def test_double_register_rejected(self, manager):
        with pytest.raises(StateError):
            manager.register_context("ctx", n_layers=4, hidden_width=32)

    def test_unknown_context_rejected(self, manager):
        with pytest.raises(StateError):
            manager.meta("ghost")

    def test_kv_width_is_double(self, manager):
        assert manager.meta("ctx").kv_width == 64

    def test_invalid_shape_rejected(self, manager):
        with pytest.raises(ConfigError):
            manager.register_context("bad", n_layers=0, hidden_width=32)


class TestSaveLoadRoundtrip:
    def test_single_append_roundtrip(self, manager):
        data = rows(10, 32)
        manager.append("ctx", 0, data)
        out = manager.load_layer("ctx", 0)
        assert np.array_equal(out, data)

    def test_multi_append_order_preserved(self, manager):
        """Layer-before-token saving, token-before-layer loading."""
        blocks = [rows(n, 32, seed=n) for n in (10, 64, 3, 130)]
        for block in blocks:
            manager.append("ctx", 1, block)
        out = manager.load_layer("ctx", 1)
        assert np.array_equal(out, np.concatenate(blocks, axis=0))

    def test_roundtrip_across_chunk_boundary(self, manager):
        data = rows(64 * 3 + 1, 32)
        manager.append("ctx", 0, data)
        assert np.array_equal(manager.load_layer("ctx", 0), data)

    def test_kv_kind_roundtrip(self, manager):
        data = rows(20, 64, seed=5)
        manager.append("ctx", 2, data, kind="kv")
        assert np.array_equal(manager.load_layer("ctx", 2, kind="kv"), data)

    def test_layers_independent(self, manager):
        a, b = rows(5, 32, 1), rows(9, 32, 2)
        manager.append("ctx", 0, a)
        manager.append("ctx", 3, b)
        assert np.array_equal(manager.load_layer("ctx", 0), a)
        assert np.array_equal(manager.load_layer("ctx", 3), b)

    def test_tokens_stored(self, manager):
        manager.append("ctx", 0, rows(70, 32))
        assert manager.tokens_stored("ctx", 0) == 70
        assert manager.tokens_stored("ctx", 1) == 0

    def test_wrong_width_rejected(self, manager):
        with pytest.raises(ConfigError):
            manager.append("ctx", 0, rows(4, 16))

    def test_out_of_range_layer_rejected(self, manager):
        with pytest.raises(ConfigError):
            manager.append("ctx", 9, rows(4, 32))

    def test_empty_layer_loads_empty(self, manager):
        manager.append("ctx", 0, rows(4, 32))
        with pytest.raises(StateError):
            manager.allocator.run("ctx", 1, "hidden")


class TestHotPathBuffers:
    def test_single_row_appends_roundtrip(self, manager):
        """The decode saving pattern: one row per append, O(1) each."""
        blocks = [rows(1, 32, seed=i) for i in range(130)]
        for block in blocks:
            manager.append("ctx", 0, block)
        out = manager.load_layer("ctx", 0)
        assert np.array_equal(out, np.concatenate(blocks, axis=0))

    def test_large_block_bypasses_staging(self, manager):
        """Aligned full chunks flush straight from the input block."""
        data = rows(64 * 5 + 3, 32, seed=3)
        manager.append("ctx", 0, data)
        assert np.array_equal(manager.load_layer("ctx", 0), data)
        assert manager.array.total_used_bytes == 5 * 64 * 32 * 4

    def test_unaligned_then_aligned_blocks(self, manager):
        blocks = [rows(n, 32, seed=n) for n in (10, 64, 64 * 2 + 5, 49, 64)]
        for block in blocks:
            manager.append("ctx", 2, block)
        out = manager.load_layer("ctx", 2)
        assert np.array_equal(out, np.concatenate(blocks, axis=0))

    def test_load_layer_into_preallocated_out(self, manager):
        data = rows(100, 32, seed=4)
        manager.append("ctx", 0, data)
        dest = np.empty((100, 32), dtype=np.float32)
        returned = manager.load_layer("ctx", 0, out=dest)
        assert returned is dest
        assert np.array_equal(dest, data)

    def test_load_layer_bad_out_rejected(self, manager):
        manager.append("ctx", 0, rows(10, 32))
        with pytest.raises(ConfigError):
            manager.load_layer("ctx", 0, out=np.empty((9, 32), dtype=np.float32))
        with pytest.raises(ConfigError):
            manager.load_layer("ctx", 0, out=np.empty((10, 32), dtype=np.float64))

    def test_seal_single_row_growth_reseal(self, manager):
        """Partial tail chunks grow one row at a time across seals."""
        pieces = []
        for i in range(70):
            piece = rows(1, 32, seed=1000 + i)
            pieces.append(piece)
            manager.append("ctx", 1, piece)
            if i % 7 == 0:
                manager.seal_context("ctx")
        manager.seal_context("ctx")
        out = manager.load_layer("ctx", 1)
        assert np.array_equal(out, np.concatenate(pieces, axis=0))


class TestSealLifecycle:
    def test_seal_then_load(self, manager):
        data = rows(30, 32)
        manager.append("ctx", 0, data)
        manager.seal_context("ctx")
        assert np.array_equal(manager.load_layer("ctx", 0), data)

    def test_seal_append_seal_roundtrip(self, manager):
        """Multi-round lifecycle: partial chunks grow across rounds."""
        first, second = rows(30, 32, 1), rows(50, 32, 2)
        manager.append("ctx", 0, first)
        manager.seal_context("ctx")
        manager.append("ctx", 0, second)
        manager.seal_context("ctx")
        out = manager.load_layer("ctx", 0)
        assert np.array_equal(out, np.concatenate([first, second]))

    def test_double_seal_idempotent(self, manager):
        manager.append("ctx", 0, rows(10, 32))
        manager.seal_context("ctx")
        manager.seal_context("ctx")
        assert manager.tokens_stored("ctx", 0) == 10

    def test_seal_at_chunk_boundary(self, manager):
        data = rows(64, 32)
        manager.append("ctx", 0, data)
        manager.seal_context("ctx")
        assert np.array_equal(manager.load_layer("ctx", 0), data)

    def test_device_bytes_appear_after_flush(self, manager):
        manager.append("ctx", 0, rows(64 * 2, 32))
        assert manager.array.total_used_bytes > 0


class TestFreeContext:
    def test_free_clears_devices_and_meta(self, manager):
        manager.append("ctx", 0, rows(200, 32))
        manager.seal_context("ctx")
        freed = manager.free_context("ctx")
        assert freed > 0
        assert not manager.has_context("ctx")
        assert manager.array.total_used_bytes == 0

    def test_free_then_reregister(self, manager):
        manager.append("ctx", 0, rows(10, 32))
        manager.free_context("ctx")
        manager.register_context("ctx", n_layers=2, hidden_width=8)
        manager.append("ctx", 0, rows(4, 8))
        assert manager.tokens_stored("ctx", 0) == 4

    def test_free_unknown_rejected(self, manager):
        with pytest.raises(StateError):
            manager.free_context("ghost")

    def test_free_context_with_no_runs(self, manager):
        """Pure-recompute schemes never store state; sessions can also
        close before their first save — freeing must still work."""
        assert manager.free_context("ctx") == 0
        assert not manager.has_context("ctx")


class TestAccounting:
    def test_per_token_bytes_hidden_only(self, manager):
        for layer in range(4):
            manager.append("ctx", layer, rows(100, 32))
        per_token = manager.per_token_bytes("ctx")
        assert per_token == pytest.approx(4 * 32 * 4)  # layers * width * fp32

    def test_per_token_bytes_mixed_kinds(self, manager):
        for layer in range(3):
            manager.append("ctx", layer, rows(100, 32))
        manager.append("ctx", 3, rows(100, 64), kind="kv")
        per_token = manager.per_token_bytes("ctx")
        assert per_token == pytest.approx((3 * 32 + 64) * 4)

    def test_context_bytes_positive(self, manager):
        manager.append("ctx", 0, rows(64, 32))
        assert manager.context_bytes("ctx") > 0

    def test_layer_read_timing_positive(self, manager):
        manager.append("ctx", 0, rows(500, 32))
        timing = manager.layer_read_timing("ctx", 0)
        assert timing.seconds > 0
        assert timing.n_chunks == 8  # ceil(500 / 64)

    def test_balance_across_devices(self, manager):
        """Round-robin striping balances device bytes (many chunks)."""
        for layer in range(4):
            manager.append("ctx", layer, rows(64 * 8, 32, seed=layer))
        used = manager.array.used_bytes_per_device
        assert max(used) - min(used) <= 64 * 32 * 4
