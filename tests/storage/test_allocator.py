"""Tests for chunk allocation accounting."""

from __future__ import annotations

import pytest

from repro.errors import AllocationError, StateError
from repro.storage.allocator import ChunkAllocator
from repro.storage.chunk import ChunkLayout


@pytest.fixture
def layout():
    return ChunkLayout(tokens_per_chunk=64, bytes_per_token=100)


@pytest.fixture
def allocator():
    return ChunkAllocator(capacity_bytes=1_000_000)


class TestRunLifecycle:
    def test_open_and_extend(self, allocator, layout):
        allocator.open_run("ctx", 0, "hidden", layout)
        new = allocator.extend("ctx", 0, "hidden", 100)
        assert len(new) == 2  # ceil(100 / 64)
        run = allocator.run("ctx", 0, "hidden")
        assert run.n_tokens == 100
        assert run.n_chunks == 2

    def test_reopen_rejected(self, allocator, layout):
        allocator.open_run("ctx", 0, "hidden", layout)
        with pytest.raises(StateError):
            allocator.open_run("ctx", 0, "hidden", layout)

    def test_extend_unknown_run_rejected(self, allocator):
        with pytest.raises(StateError):
            allocator.extend("ctx", 0, "hidden", 10)

    def test_incremental_extend_allocates_lazily(self, allocator, layout):
        allocator.open_run("ctx", 0, "hidden", layout)
        first = allocator.extend("ctx", 0, "hidden", 60)
        second = allocator.extend("ctx", 0, "hidden", 4)  # fills chunk 0
        third = allocator.extend("ctx", 0, "hidden", 1)  # needs chunk 1
        assert [len(first), len(second), len(third)] == [1, 0, 1]

    def test_chunk_keys_indexed_sequentially(self, allocator, layout):
        allocator.open_run("ctx", 2, "kv", layout)
        keys = allocator.extend("ctx", 2, "kv", 200)
        assert [k.index for k in keys] == [0, 1, 2, 3]
        assert all(k.layer == 2 and k.kind == "kv" for k in keys)

    def test_negative_extend_rejected(self, allocator, layout):
        allocator.open_run("ctx", 0, "hidden", layout)
        with pytest.raises(AllocationError):
            allocator.extend("ctx", 0, "hidden", -5)


class TestCapacity:
    def test_capacity_enforced(self, layout):
        tight = ChunkAllocator(capacity_bytes=layout.chunk_bytes)
        tight.open_run("ctx", 0, "hidden", layout)
        tight.extend("ctx", 0, "hidden", 64)
        with pytest.raises(AllocationError):
            tight.extend("ctx", 0, "hidden", 1)

    def test_failed_extend_leaves_run_unchanged(self, layout):
        tight = ChunkAllocator(capacity_bytes=layout.chunk_bytes)
        tight.open_run("ctx", 0, "hidden", layout)
        tight.extend("ctx", 0, "hidden", 10)
        with pytest.raises(AllocationError):
            tight.extend("ctx", 0, "hidden", 1000)
        assert tight.run("ctx", 0, "hidden").n_tokens == 10

    def test_free_restores_capacity(self, allocator, layout):
        allocator.open_run("ctx", 0, "hidden", layout)
        allocator.extend("ctx", 0, "hidden", 500)
        before = allocator.free_bytes
        freed = allocator.free_context("ctx")
        assert freed > 0
        assert allocator.free_bytes == before + freed
        assert allocator.free_bytes == allocator.capacity_bytes

    def test_free_unknown_context_rejected(self, allocator):
        with pytest.raises(StateError):
            allocator.free_context("ghost")

    def test_free_context_drops_all_layers(self, allocator, layout):
        for layer in range(3):
            allocator.open_run("ctx", layer, "hidden", layout)
            allocator.extend("ctx", layer, "hidden", 64)
        allocator.free_context("ctx")
        assert allocator.stats.n_runs == 0
        assert not allocator.has_run("ctx", 0, "hidden")


class TestStats:
    def test_fragmentation_bounded(self, allocator, layout):
        allocator.open_run("ctx", 0, "hidden", layout)
        allocator.extend("ctx", 0, "hidden", 65)
        frag = allocator.stats.internal_fragmentation
        assert 0 < frag < layout.chunk_bytes

    def test_peak_tracks_high_water(self, allocator, layout):
        allocator.open_run("a", 0, "hidden", layout)
        allocator.extend("a", 0, "hidden", 640)
        peak = allocator.stats.peak_allocated_bytes
        allocator.free_context("a")
        assert allocator.stats.allocated_bytes == 0
        assert allocator.stats.peak_allocated_bytes == peak

    def test_context_ids(self, allocator, layout):
        allocator.open_run("a", 0, "hidden", layout)
        allocator.open_run("b", 0, "hidden", layout)
        assert allocator.context_ids() == ("a", "b")

    def test_used_never_exceeds_allocated(self, allocator, layout):
        allocator.open_run("ctx", 0, "hidden", layout)
        for n in (1, 30, 64, 7):
            allocator.extend("ctx", 0, "hidden", n)
            stats = allocator.stats
            assert stats.used_bytes <= stats.allocated_bytes

    def test_zero_capacity_rejected(self):
        with pytest.raises(AllocationError):
            ChunkAllocator(0)
