"""Tests for the flush daemon model (§4.2.2)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, SimulationError
from repro.storage.daemon import FlushDaemon


class TestSnapshots:
    def test_no_stall_under_capacity(self):
        daemon = FlushDaemon(write_bandwidth=16e9, staging_bytes=1 << 30)
        outcome = daemon.snapshot(10 << 20, now=0.0)
        assert outcome.stall_seconds == 0.0
        assert outcome.backlog_bytes == 10 << 20

    def test_backlog_drains_over_time(self):
        daemon = FlushDaemon(write_bandwidth=1e9)
        daemon.snapshot(1_000_000_000, now=0.0)
        daemon.advance(0.5)
        assert daemon.backlog_bytes == pytest.approx(500_000_000, rel=0.01)
        daemon.advance(2.0)
        assert daemon.backlog_bytes == 0

    def test_stall_on_staging_overflow(self):
        daemon = FlushDaemon(write_bandwidth=1e9, staging_bytes=1_000_000)
        daemon.snapshot(1_000_000, now=0.0)
        outcome = daemon.snapshot(500_000, now=0.0)
        assert outcome.stall_seconds == pytest.approx(0.0005)

    def test_decode_rate_never_stalls(self):
        """§6.3.3: decode-phase hidden-state production (~3 GB/s worst
        case) is far below the flush bandwidth — no stalls, ever."""
        daemon = FlushDaemon(write_bandwidth=16e9, staging_bytes=4 << 30)
        now = 0.0
        for _ in range(1000):
            outcome = daemon.snapshot(320 * 1024, now=now)  # 32-seq batch, 10KB each
            assert outcome.stall_seconds == 0.0
            now += 0.02  # one decode iteration
        assert daemon.total_stall_seconds == 0.0

    def test_total_flushed_accumulates(self):
        daemon = FlushDaemon(write_bandwidth=1e9)
        daemon.snapshot(1000, now=0.0)
        daemon.advance(1.0)
        assert daemon.total_flushed_bytes == 1000

    def test_drain_time(self):
        daemon = FlushDaemon(write_bandwidth=2e9)
        daemon.snapshot(1_000_000_000, now=0.0)
        assert daemon.drain_time() == pytest.approx(0.5)


class TestValidation:
    def test_time_backwards_rejected(self):
        daemon = FlushDaemon(write_bandwidth=1e9)
        daemon.advance(5.0)
        with pytest.raises(SimulationError):
            daemon.advance(1.0)

    def test_negative_snapshot_rejected(self):
        with pytest.raises(ConfigError):
            FlushDaemon(write_bandwidth=1e9).snapshot(-1, now=0.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            FlushDaemon(write_bandwidth=0)
        with pytest.raises(ConfigError):
            FlushDaemon(write_bandwidth=1e9, staging_bytes=0)
        with pytest.raises(ConfigError):
            FlushDaemon(write_bandwidth=1e9, n_threads=0)


class TestFsyncWindow:
    """The crash-loss window: staging backlog + one fsync interval."""

    def test_unsynced_until_barrier(self):
        daemon = FlushDaemon(write_bandwidth=1e9, fsync_interval=0.1)
        daemon.snapshot(100_000_000, now=0.0)
        assert daemon.unsynced_bytes == 100_000_000
        daemon.advance(0.05)  # fully flushed, but no barrier due yet
        assert daemon.backlog_bytes == pytest.approx(50_000_000, rel=0.01)
        assert daemon.unsynced_bytes == 100_000_000
        daemon.advance(0.2)  # barrier due: everything flushed is durable
        assert daemon.unsynced_bytes == 0
        assert daemon.last_fsync_time == 0.2

    def test_backlog_age_tracks_oldest_byte(self):
        daemon = FlushDaemon(write_bandwidth=1e9, fsync_interval=0.1)
        assert daemon.unsynced_backlog_age(5.0) == 0.0
        daemon.snapshot(1_000_000, now=1.0)
        assert daemon.unsynced_backlog_age(1.25) == pytest.approx(0.25)
        daemon.advance(2.0)  # flush + barrier
        assert daemon.unsynced_backlog_age(2.0) == 0.0

    def test_barrier_only_covers_flushed_bytes(self):
        daemon = FlushDaemon(write_bandwidth=1e9, fsync_interval=0.1)
        daemon.snapshot(1_000_000_000, now=0.0)
        daemon.advance(0.5)  # barrier fires with half the backlog pending
        assert daemon.unsynced_bytes == pytest.approx(500_000_000, rel=0.01)
        assert daemon.unsynced_backlog_age(0.6) == pytest.approx(0.1)

    def test_shorter_interval_tightens_window(self):
        tight = FlushDaemon(write_bandwidth=1e9, fsync_interval=0.01)
        loose = FlushDaemon(write_bandwidth=1e9, fsync_interval=10.0)
        for daemon in (tight, loose):
            daemon.snapshot(1_000_000, now=0.0)
            daemon.advance(0.02)
        assert tight.unsynced_bytes == 0
        assert loose.unsynced_bytes == 1_000_000

    def test_interval_validated(self):
        with pytest.raises(ConfigError):
            FlushDaemon(write_bandwidth=1e9, fsync_interval=0.0)
