"""Tests for the round-robin storage array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.simulator.hardware import PM9A3, DRAMSpec
from repro.storage.array import StorageArray


@pytest.fixture
def four_ssds():
    return StorageArray([PM9A3] * 4, link_bandwidth=32e9)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            StorageArray([], link_bandwidth=32e9)

    def test_bad_link_rejected(self):
        with pytest.raises(ConfigError):
            StorageArray([PM9A3], link_bandwidth=0)

    def test_len(self, four_ssds):
        assert len(four_ssds) == 4


class TestPlacement:
    def test_round_robin(self, four_ssds):
        ids = [four_ssds.device_for(i).device_id for i in range(8)]
        assert ids == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_offset_rotates(self, four_ssds):
        ids = [four_ssds.device_for(0, offset=layer).device_id for layer in range(4)]
        assert ids == [0, 1, 2, 3]

    def test_negative_index_rejected(self, four_ssds):
        with pytest.raises(ConfigError):
            four_ssds.device_for(-1)

    def test_functional_balance_with_rotation(self, four_ssds):
        """Writing 5 chunks per 'layer' with rotating offsets balances
        bytes across devices to within one chunk."""
        chunk = np.zeros((64, 128), dtype=np.float32)
        for layer in range(8):
            for idx in range(5):
                four_ssds.device_for(idx, offset=layer).write((layer, idx), chunk)
        used = four_ssds.used_bytes_per_device
        assert max(used) - min(used) <= chunk.nbytes


class TestTiming:
    def test_aggregate_bandwidth_capped_by_link(self):
        many = StorageArray([PM9A3] * 8, link_bandwidth=32e9)
        assert many.aggregate_read_bandwidth == pytest.approx(32e9)

    def test_aggregate_bandwidth_device_bound(self, four_ssds):
        assert four_ssds.aggregate_read_bandwidth == pytest.approx(4 * 6.9e9)

    def test_more_devices_read_faster(self):
        one = StorageArray([PM9A3], link_bandwidth=32e9)
        four = StorageArray([PM9A3] * 4, link_bandwidth=32e9)
        chunk_bytes = 64 * 8192
        t1 = one.layer_read_timing(16, chunk_bytes).seconds
        t4 = four.layer_read_timing(16, chunk_bytes).seconds
        assert t4 < t1
        assert t1 / t4 == pytest.approx(4.0, rel=0.1)

    def test_zero_chunks_free(self, four_ssds):
        timing = four_ssds.layer_read_timing(0, 1024)
        assert timing.seconds == 0.0
        assert timing.nbytes == 0

    def test_link_bottleneck_detected(self):
        dram = StorageArray([DRAMSpec()], link_bandwidth=32e9)
        timing = dram.layer_read_timing(16, 64 * 8192)
        assert timing.bottleneck == "link"

    def test_device_bottleneck_detected(self, four_ssds):
        timing = four_ssds.layer_read_timing(16, 64 * 8192)
        assert timing.bottleneck == "device"

    def test_read_time_monotone_in_bytes(self, four_ssds):
        chunk = 64 * 8192
        times = [four_ssds.read_time(n * chunk, chunk) for n in (1, 4, 16, 64)]
        assert times == sorted(times)

    def test_write_slower_than_read(self, four_ssds):
        chunk = 64 * 8192
        nbytes = 32 * chunk
        assert four_ssds.write_time(nbytes, chunk) > four_ssds.read_time(nbytes, chunk)

    def test_invalid_chunk_bytes_rejected(self, four_ssds):
        with pytest.raises(ConfigError):
            four_ssds.read_time(1024, 0)

    def test_negative_chunks_rejected(self, four_ssds):
        with pytest.raises(ConfigError):
            four_ssds.layer_read_timing(-1, 1024)

    def test_bandwidth_scaling_matches_fig11d(self):
        """Fig. 11d-f: KV-offload-style reads scale with the disk count."""
        chunk = 64 * 16384
        speeds = []
        for n in (1, 2, 4):
            arr = StorageArray([PM9A3] * n, link_bandwidth=32e9)
            speeds.append(1.0 / arr.read_time(256 * chunk, chunk))
        assert speeds[1] / speeds[0] == pytest.approx(2.0, rel=0.05)
        assert speeds[2] / speeds[1] == pytest.approx(2.0, rel=0.05)
