"""Kill-and-recover tests for the journaled storage manager.

Every test follows the same shape: mutate a journaled manager, "crash" it
(stop using it — the devices and the journal directory survive, exactly
what a real crash leaves behind), then :meth:`StorageManager.recover` a
fresh manager over the same array + journal and check what it knows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RecoveryError, StateError
from repro.simulator.hardware import GB, SSDSpec
from repro.storage import (
    ChunkKey,
    ManifestJournal,
    StorageArray,
    StorageManager,
)

CPC = 64  # the default chunk size the tests reason in


def rows(n: int, width: int = 32, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, width)).astype(np.float32)


def small_array(replication: int = 1) -> StorageArray:
    spec = SSDSpec("test-ssd", read_bandwidth=3 * GB, write_bandwidth=1 * GB,
                   capacity_bytes=1 * GB)
    return StorageArray([spec, spec], link_bandwidth=8 * GB, replication=replication)


@pytest.fixture
def stack(tmp_path):
    """(array, manager) with an attached journal; closes journals at exit."""
    array = small_array()
    journals = []

    def new_journal():
        journal = ManifestJournal(tmp_path)
        journals.append(journal)
        return journal

    manager = StorageManager(array, journal=new_journal())
    yield array, manager, new_journal
    for journal in journals:
        journal.close()


def recover(array, new_journal, **kwargs):
    return StorageManager.recover(array, new_journal(), **kwargs)


class TestCleanRecovery:
    def test_sealed_state_roundtrips_bit_exact(self, stack):
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=2, hidden_width=32)
        data = {layer: rows(130, seed=layer) for layer in range(2)}
        for layer, block in data.items():
            manager.append("ctx", layer, block)
        manager.journal_tokens("ctx", list(range(130)))
        manager.seal_context("ctx")

        recovered = recover(array, new_journal)
        assert recovered.context_ids() == ("ctx",)
        assert recovered.token_log("ctx") == tuple(range(130))
        for layer, block in data.items():
            assert recovered.tokens_stored("ctx", layer) == 130
            assert np.array_equal(recovered.load_layer("ctx", layer), block)

    def test_chunk_aligned_state_roundtrips(self, stack):
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        block = rows(CPC * 2)
        manager.journal_tokens("ctx", list(range(CPC * 2)))
        manager.append("ctx", 0, block)
        # No seal needed: both chunks flushed at append time.
        recovered = recover(array, new_journal)
        assert np.array_equal(recovered.load_layer("ctx", 0), block)

    def test_kv_kind_recovers(self, stack):
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        block = rows(70, width=64, seed=3)
        manager.journal_tokens("ctx", list(range(70)))
        manager.append("ctx", 0, block, kind="kv")
        manager.seal_context("ctx")
        recovered = recover(array, new_journal)
        assert np.array_equal(recovered.load_layer("ctx", 0, kind="kv"), block)

    def test_freed_context_stays_freed(self, stack):
        array, manager, new_journal = stack
        manager.register_context("gone", n_layers=1, hidden_width=32)
        manager.append("gone", 0, rows(70))
        manager.seal_context("gone")
        manager.free_context("gone")
        manager.register_context("kept", n_layers=1, hidden_width=32)
        manager.journal_tokens("kept", [1, 2, 3])
        recovered = recover(array, new_journal)
        assert recovered.context_ids() == ("kept",)
        assert recovered.token_log("kept") == (1, 2, 3)

    def test_registered_but_stateless_context_survives(self, stack):
        array, manager, new_journal = stack
        manager.register_context("idle", n_layers=3, hidden_width=16)
        recovered = recover(array, new_journal)
        meta = recovered.meta("idle")
        assert (meta.n_layers, meta.hidden_width, meta.kv_width) == (3, 16, 32)
        assert recovered.token_log("idle") == ()

    def test_recovery_is_idempotent(self, stack):
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        block = rows(100)
        manager.journal_tokens("ctx", list(range(100)))
        manager.append("ctx", 0, block)
        manager.seal_context("ctx")
        recover(array, new_journal)
        recovered = recover(array, new_journal)
        assert np.array_equal(recovered.load_layer("ctx", 0), block)

    def test_appends_continue_after_recovery(self, stack):
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        first = rows(100, seed=1)
        manager.journal_tokens("ctx", list(range(100)))
        manager.append("ctx", 0, first)
        manager.seal_context("ctx")

        recovered = recover(array, new_journal)
        second = rows(60, seed=2)
        recovered.journal_tokens("ctx", list(range(100, 160)))
        recovered.append("ctx", 0, second)
        recovered.seal_context("ctx")
        assert np.array_equal(
            recovered.load_layer("ctx", 0), np.concatenate([first, second])
        )
        # ... and that grown state survives yet another crash.
        again = recover(array, new_journal)
        assert np.array_equal(
            again.load_layer("ctx", 0), np.concatenate([first, second])
        )


class TestCrashWindows:
    def test_unsealed_tail_rolls_back_to_chunk_boundary(self, stack):
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        block = rows(100)
        manager.journal_tokens("ctx", list(range(100)))
        manager.append("ctx", 0, block)  # 64 flushed, 36 unsealed in host RAM

        recovered = recover(array, new_journal)
        assert recovered.tokens_stored("ctx", 0) == CPC
        assert recovered.token_log("ctx") == tuple(range(CPC))
        assert np.array_equal(recovered.load_layer("ctx", 0), block[:CPC])

    def test_orphan_device_chunk_is_swept_not_counted(self, stack):
        """Satellite (a): a crash between device write and journal append
        leaves an unjournaled chunk; replaying must not double-count it."""
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        manager.journal_tokens("ctx", list(range(CPC)))
        manager.append("ctx", 0, rows(CPC))
        # Simulate the torn second flush: the device write landed, the
        # journal record never did.
        orphan = ChunkKey("ctx", 0, 1, "hidden")
        array.device_for(1, offset=0).write(orphan, rows(CPC, seed=9))

        recovered = recover(array, new_journal)
        assert recovered.tokens_stored("ctx", 0) == CPC
        assert orphan not in array.device_for(1, offset=0)
        # The swept slot is reusable: the run grows straight through it.
        recovered.journal_tokens("ctx", list(range(CPC, 2 * CPC)))
        grow = rows(CPC, seed=10)
        recovered.append("ctx", 0, grow)
        assert np.array_equal(recovered.load_layer("ctx", 0)[CPC:], grow)

    def test_retired_partial_never_rewritten_rolls_back(self, stack):
        """The write-once rewrite window: seal, grow, crash after the stale
        partial was deleted but before its replacement was written."""
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        block = rows(100)
        manager.journal_tokens("ctx", list(range(100)))
        manager.append("ctx", 0, block)
        manager.seal_context("ctx")  # 36-row partial persisted at index 1
        array.device_for(1, offset=0).delete(ChunkKey("ctx", 0, 1, "hidden"))

        recovered = recover(array, new_journal)
        assert recovered.tokens_stored("ctx", 0) == CPC
        assert np.array_equal(recovered.load_layer("ctx", 0), block[:CPC])

    def test_grown_sealed_partial_stays_durable_until_rewrite(self, stack):
        """Appends growing a sealed partial keep its stale device copy: a
        crash before the refilled chunk lands loses only the new rows."""
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        block = rows(100)
        manager.journal_tokens("ctx", list(range(100)))
        manager.append("ctx", 0, block)
        manager.seal_context("ctx")
        # Grow the sealed 36-row tail by 10 rows without refilling it.
        manager.journal_tokens("ctx", list(range(100, 110)))
        manager.append("ctx", 0, rows(10, seed=4))

        recovered = recover(array, new_journal)
        assert recovered.tokens_stored("ctx", 0) == 100
        assert np.array_equal(recovered.load_layer("ctx", 0), block)

    def test_grown_partial_survives_compaction_then_crash(self, stack):
        """The stale-partial bookkeeping must flow through a compacted
        snapshot, not just the incremental log."""
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        block = rows(100)
        manager.journal_tokens("ctx", list(range(100)))
        manager.append("ctx", 0, block)
        manager.seal_context("ctx")
        manager.journal_tokens("ctx", list(range(100, 110)))
        manager.append("ctx", 0, rows(10, seed=4))
        manager.compact_journal()

        recovered = recover(array, new_journal)
        assert recovered.tokens_stored("ctx", 0) == 100
        assert np.array_equal(recovered.load_layer("ctx", 0), block)

    def test_refilled_partial_after_crash_counts_once(self, stack):
        """Satellite (a) again, at the seal boundary: grow a sealed partial
        until it refills (delete + rewrite + journal), crash, recover —
        exactly one copy of those rows, no double count."""
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        first = rows(100, seed=1)
        manager.journal_tokens("ctx", list(range(100)))
        manager.append("ctx", 0, first)
        manager.seal_context("ctx")
        fill = rows(CPC, seed=2)  # 36 -> refills chunk 1, 36 spill to chunk 2's tail
        manager.journal_tokens("ctx", list(range(100, 100 + CPC)))
        manager.append("ctx", 0, fill)

        recovered = recover(array, new_journal)
        assert recovered.tokens_stored("ctx", 0) == 2 * CPC
        expected = np.concatenate([first, fill])[: 2 * CPC]
        assert np.array_equal(recovered.load_layer("ctx", 0), expected)

    def test_uneven_runs_truncate_to_common_prefix(self, stack):
        """One layer sealed further along than another: the context rolls
        back to the shortest run's durable rows, salvaging boundary-chunk
        prefixes into the host tail."""
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=2, hidden_width=32)
        long_block = rows(2 * CPC, seed=0)
        manager.journal_tokens("ctx", list(range(2 * CPC)))
        manager.append("ctx", 0, long_block)  # two full chunks durable
        manager.append("ctx", 1, long_block[:100])  # 64 durable + 36 unsealed

        recovered = recover(array, new_journal)
        for layer in range(2):
            assert recovered.tokens_stored("ctx", layer) == CPC
            assert np.array_equal(
                recovered.load_layer("ctx", layer), long_block[:CPC]
            )
        assert recovered.token_log("ctx") == tuple(range(CPC))


class TestLoudFailures:
    def test_missing_journaled_chunk_raises(self, stack):
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        manager.journal_tokens("ctx", list(range(CPC)))
        manager.append("ctx", 0, rows(CPC))
        array.device_for(0, offset=0).delete(ChunkKey("ctx", 0, 0, "hidden"))
        with pytest.raises(RecoveryError, match="missing"):
            recover(array, new_journal)

    def test_corrupted_chunk_payload_raises(self, stack):
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        manager.journal_tokens("ctx", list(range(CPC)))
        manager.append("ctx", 0, rows(CPC))
        device = array.device_for(0, offset=0)
        key = ChunkKey("ctx", 0, 0, "hidden")
        device.delete(key)
        device.write(key, rows(CPC, seed=666))
        with pytest.raises(RecoveryError, match="checksum"):
            recover(array, new_journal)

    def test_corruption_ignorable_without_verification(self, stack):
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        manager.journal_tokens("ctx", list(range(CPC)))
        manager.append("ctx", 0, rows(CPC))
        device = array.device_for(0, offset=0)
        key = ChunkKey("ctx", 0, 0, "hidden")
        device.delete(key)
        device.write(key, rows(CPC, seed=666))
        recovered = recover(array, new_journal, verify_chunks=False)
        assert recovered.tokens_stored("ctx", 0) == CPC

    def test_token_log_shorter_than_durable_rows_raises(self, stack):
        array, manager, new_journal = stack
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        # State rows appended without their token ids ever being journaled
        # — the discipline violation recovery must refuse to paper over.
        manager.append("ctx", 0, rows(CPC))
        with pytest.raises(RecoveryError, match="token log"):
            recover(array, new_journal)

    def test_unjournaled_manager_rejects_compaction(self):
        manager = StorageManager(small_array())
        with pytest.raises(StateError):
            manager.compact_journal()
