"""Tests for scripted fault injection and two-way replicated devices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, DeviceFault, StateError
from repro.simulator.hardware import GB, SSDSpec
from repro.storage import (
    FaultPolicy,
    ReplicatedDevice,
    StorageArray,
    StorageDevice,
    StorageManager,
)

SPEC = SSDSpec("t-ssd", read_bandwidth=3 * GB, write_bandwidth=1 * GB,
               capacity_bytes=1 * GB)


def payload(seed: int = 0, n: int = 8) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, 4)).astype(np.float32)


class TestFaultPolicy:
    def test_scripted_read_ordinals_fail_exactly(self):
        device = StorageDevice(SPEC, 0)
        device.fault_policy = FaultPolicy(fail_reads=[2])
        device.write("k", payload())
        device.read("k")
        with pytest.raises(DeviceFault):
            device.read("k")
        device.read("k")
        assert device.fault_policy.faults_injected == 1
        assert device.fault_policy.ops_seen == (3, 1)

    def test_fail_from_kills_every_later_op(self):
        device = StorageDevice(SPEC, 0)
        device.write("k", payload())
        device.fault_policy = FaultPolicy(fail_reads_from=2)
        device.read("k")
        for _ in range(3):
            with pytest.raises(DeviceFault):
                device.read("k")

    def test_dead_device_fails_reads_and_writes(self):
        device = StorageDevice(SPEC, 0)
        device.fault_policy = FaultPolicy.dead()
        with pytest.raises(DeviceFault):
            device.write("k", payload())
        assert "k" not in device  # the faulted write stored nothing
        with pytest.raises(DeviceFault):
            device.read("k")

    def test_faulted_read_into_leaves_destination_untouched(self):
        device = StorageDevice(SPEC, 0)
        device.write("k", payload())
        device.fault_policy = FaultPolicy(fail_reads=[1])
        out = np.full((8, 4), 7.0, dtype=np.float32)
        with pytest.raises(DeviceFault):
            device.read_into("k", out)
        assert np.all(out == 7.0)

    def test_latency_spikes_are_periodic_and_modelled(self):
        device = StorageDevice(SPEC, 0)
        device.write("k", payload())
        device.fault_policy = FaultPolicy(read_latency_spike_s=0.5, spike_every=2)
        _, first = device.read("k")
        _, second = device.read("k")
        assert second.seconds == pytest.approx(first.seconds + 0.5)

    def test_ordinals_are_one_based(self):
        with pytest.raises(ConfigError):
            FaultPolicy(fail_reads=[0])
        with pytest.raises(ConfigError):
            FaultPolicy(fail_writes_from=0)


class TestReplicatedDevice:
    def make(self):
        return ReplicatedDevice(StorageDevice(SPEC, 0), StorageDevice(SPEC, 2))

    def test_write_lands_on_both_replicas(self):
        device = self.make()
        data = payload()
        receipt = device.write("k", data)
        assert "k" in device.primary and "k" in device.mirror
        assert receipt.seconds == pytest.approx(
            device.primary.busy_seconds + device.mirror.busy_seconds
        )

    def test_read_fails_over_to_mirror_and_counts(self):
        device = self.make()
        data = payload()
        device.write("k", data)
        device.primary.fault_policy = FaultPolicy.dead()
        out = np.empty_like(data)
        device.read_into("k", out)
        assert np.array_equal(out, data)
        got, _ = device.read("k")
        assert np.array_equal(got, data)
        assert device.degraded_reads == 2

    def test_logical_errors_do_not_fail_over(self):
        device = self.make()
        with pytest.raises(StateError):
            device.read("missing")
        assert device.degraded_reads == 0

    def test_write_fault_propagates(self):
        """A chunk must never be journaled with only one surviving copy."""
        device = self.make()
        device.mirror.fault_policy = FaultPolicy.dead()
        with pytest.raises(DeviceFault):
            device.write("k", payload())

    def test_both_replicas_dead_propagates(self):
        device = self.make()
        device.write("k", payload())
        device.primary.fault_policy = FaultPolicy.dead()
        device.mirror.fault_policy = FaultPolicy.dead()
        with pytest.raises(DeviceFault):
            device.read("k")

    def test_delete_drops_both_copies(self):
        device = self.make()
        device.write("k", payload())
        freed = device.delete("k")
        assert freed > 0
        assert "k" not in device.primary and "k" not in device.mirror

    def test_keys_are_the_union(self):
        device = self.make()
        device.write("a", payload())
        device.mirror.write("b", payload(1))  # asymmetric leftover
        assert set(device.keys()) == {"a", "b"}
        assert "b" in device


class TestReplicatedArray:
    def test_replication_wraps_every_slot(self):
        array = StorageArray([SPEC, SPEC], link_bandwidth=8 * GB, replication=2)
        assert len(array) == 2
        assert all(isinstance(d, ReplicatedDevice) for d in array.devices)
        ids = {array.replica(i, role).device_id
               for i in range(2) for role in ("primary", "mirror")}
        assert ids == {0, 1, 2, 3}

    def test_replication_validated(self):
        with pytest.raises(ConfigError):
            StorageArray([SPEC], link_bandwidth=8 * GB, replication=3)

    def test_unreplicated_array_has_no_mirrors(self):
        array = StorageArray([SPEC], link_bandwidth=8 * GB)
        assert array.replica(0) is array.devices[0]
        with pytest.raises(ConfigError):
            array.replica(0, role="mirror")
        with pytest.raises(ConfigError):
            array.replica(5)

    def test_manager_survives_primary_loss_bit_exact(self):
        """The tentpole replication claim at the manager level: kill one
        primary after saving, reads stay bit-exact through the mirrors."""
        array = StorageArray([SPEC, SPEC], link_bandwidth=8 * GB, replication=2)
        manager = StorageManager(array)
        manager.register_context("ctx", n_layers=2, hidden_width=32)
        blocks = {layer: payload(layer, n=200)[:, :1].repeat(32, 1) for layer in range(2)}
        for layer, block in blocks.items():
            manager.append("ctx", layer, block)
        manager.seal_context("ctx")

        array.replica(0).fault_policy = FaultPolicy.dead()
        for layer, block in blocks.items():
            assert np.array_equal(manager.load_layer("ctx", layer), block)
        assert array.degraded_reads > 0

    def test_healthy_replicated_reads_stay_primary(self):
        array = StorageArray([SPEC], link_bandwidth=8 * GB, replication=2)
        manager = StorageManager(array)
        manager.register_context("ctx", n_layers=1, hidden_width=32)
        manager.append("ctx", 0, payload(0, n=64)[:, :1].repeat(32, 1))
        manager.load_layer("ctx", 0)
        assert array.degraded_reads == 0
        assert array.replica(0, "mirror").op_counts[0] == 0
