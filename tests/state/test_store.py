"""BlockStateStore: admission, CoW, dedup-on-seal, fallback, eviction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, StateError
from repro.state import BlockPool, BlockStateStore, prefix_block_keys

BT = 4
N_LAYERS = 2
HIDDEN = 4
KV_WIDTH = 4  # 2 * heads(1) * head_dim(2)


def make_store(capacity: int = 16) -> BlockStateStore:
    pool = BlockPool(
        n_layers=N_LAYERS,
        block_tokens=BT,
        n_kv_heads=1,
        head_dim=2,
        hidden_width=HIDDEN,
        capacity_blocks=capacity,
    )
    return BlockStateStore(pool)


def rows_for(tokens: list[int], start: int, salt: float = 0.0) -> dict:
    """Deterministic rows for tokens[start:] (same tokens -> same bytes)."""
    out = {}
    t = np.asarray(tokens, dtype=np.float32)
    for layer in range(N_LAYERS):
        for kind, width in (("hidden", HIDDEN), ("kv", KV_WIDTH)):
            base = t * (layer + 1) + (7.0 if kind == "kv" else 0.0) + salt
            cols = np.arange(width, dtype=np.float32)
            out[(layer, kind)] = (base[:, None] + cols[None, :])[start:]
    return out


def write_session(
    store: BlockStateStore, session_id: str, tokens: list[int], salt: float = 0.0
) -> bool:
    store.track(session_id)
    return store.append(session_id, 0, tokens, rows_for(tokens, 0, salt))


def test_track_admit_release_lifecycle():
    store = make_store()
    store.track("a")
    assert store.is_tracked("a")
    with pytest.raises(StateError):
        store.track("a")
    with pytest.raises(StateError):
        store.admit("a", [1, 2, 3])
    store.release("a")
    assert not store.is_tracked("a")
    store.release("a")  # idempotent
    with pytest.raises(StateError):
        store.table("a")


def test_append_seals_full_blocks_and_keeps_tail_private():
    store = make_store()
    tokens = list(range(10))
    assert write_session(store, "a", tokens)
    table = store.table("a")
    assert table.n_tokens == 10
    assert len(table.blocks) == 3
    pool = store.pool
    assert pool.committed_key(table.blocks[0]) is not None
    assert pool.committed_key(table.blocks[1]) is not None
    assert pool.committed_key(table.blocks[2]) is None  # partial tail
    assert store.stats.committed_blocks == 2
    store.debug_validate()


def test_identical_sessions_dedup_to_shared_blocks():
    store = make_store()
    tokens = list(range(8))
    assert write_session(store, "a", tokens)
    assert write_session(store, "b", tokens)
    ta, tb = store.table("a"), store.table("b")
    assert ta.blocks == tb.blocks
    assert store.stats.dedup_hits == 2
    assert store.stats.committed_blocks == 2
    assert store.logical_blocks == 4
    assert store.physical_blocks == 2
    assert store.dedup_ratio() == 2.0
    assert store.state_bytes_saved() == 2 * store.pool.block_nbytes()
    # Shared reads are bit-identical through either table.
    for layer in range(N_LAYERS):
        for index in range(2):
            assert np.array_equal(
                store.hidden_rows("a", index, layer),
                store.hidden_rows("b", index, layer),
            )
    store.debug_validate()


def test_admit_adopts_committed_prefix_and_stops_at_first_miss():
    store = make_store()
    tokens = list(range(12))
    assert write_session(store, "a", tokens)
    shared = store.admit("b", tokens[:8] + [99, 98, 97, 96, 95])
    assert shared == 8  # two full shared blocks; divergent third missed
    assert store.stats.admitted_shared_tokens == 8
    assert store.resident_tokens("b") == 8
    assert store.table("b").blocks == store.table("a").blocks[:2]
    # The admitted suffix appends contiguously from the shared boundary.
    suffix_tokens = tokens[:8] + [99, 98, 97, 96, 95]
    assert store.append("b", 8, suffix_tokens[8:], rows_for(suffix_tokens, 8))
    assert store.resident_tokens("b") == 13
    store.debug_validate()


def test_admit_with_no_shared_prefix_starts_empty():
    store = make_store()
    assert store.admit("a", [1, 2, 3, 4, 5]) == 0
    assert store.resident_tokens("a") == 0


def test_noncontiguous_append_falls_back_and_releases():
    store = make_store()
    store.track("a")
    tokens = [1, 2, 3, 4]
    assert not store.append("a", 2, tokens, rows_for([0, 0] + tokens, 2))
    assert store.stats.contiguity_fallbacks == 1
    assert not store.is_tracked("a")
    store.debug_validate()


def test_capacity_exhaustion_falls_back_and_releases():
    store = make_store(capacity=2)
    tokens = list(range(12))  # needs 3 blocks, pool holds 2
    assert not write_session(store, "a", tokens)
    assert store.stats.capacity_fallbacks == 1
    assert not store.is_tracked("a")
    # Nothing leaked: the released table dropped its partial writes.
    assert store.pool.live_blocks == 0
    store.debug_validate()


def test_fork_then_divergence_pays_exactly_one_cow():
    store = make_store()
    tokens = list(range(6))  # one full block + 2-token tail
    assert write_session(store, "a", tokens)
    store.fork("a", "b")
    assert store.table("b").blocks == store.table("a").blocks
    assert store.pool.refcount(store.table("a").blocks[1]) == 2
    # Child writes the shared tail: CoW duplicates it, parent untouched.
    child_tokens = tokens + [77, 78]
    assert store.append("b", 6, [77, 78], rows_for(child_tokens, 6))
    assert store.stats.cow_copies == 1
    ta, tb = store.table("a"), store.table("b")
    assert ta.blocks[0] == tb.blocks[0]
    assert ta.blocks[1] != tb.blocks[1]
    # Parent's tail rows kept their exact bytes.
    want = rows_for(tokens, 0)[(0, "hidden")][4:6]
    assert np.array_equal(store.hidden_rows("a", 1, 0), want)
    store.debug_validate()


def test_append_into_committed_block_copies_even_at_refcount_one():
    store = make_store()
    tokens = list(range(4))
    assert write_session(store, "a", tokens)
    block = store.table("a").blocks[0]
    assert store.pool.committed_key(block) is not None
    # Appending a 5th token opens a NEW block; the sealed one is immutable,
    # so the table still points at it and no CoW is needed.
    more = tokens + [9]
    assert store.append("a", 4, [9], rows_for(more, 4))
    assert store.table("a").blocks[0] == block
    assert store.stats.cow_copies == 0
    store.debug_validate()


def test_hash_conflict_keeps_private_block_and_bit_exact_readers():
    store = make_store()
    tokens = list(range(4))
    assert write_session(store, "a", tokens, salt=0.0)
    # Same tokens, numerically different payload: the chain key collides
    # but content verification refuses the alias.
    assert write_session(store, "b", tokens, salt=0.5)
    assert store.stats.hash_conflicts == 1
    assert store.stats.dedup_hits == 0
    ta, tb = store.table("a"), store.table("b")
    assert ta.blocks[0] != tb.blocks[0]
    assert np.array_equal(
        store.hidden_rows("a", 0, 0), rows_for(tokens, 0, 0.0)[(0, "hidden")]
    )
    assert np.array_equal(
        store.hidden_rows("b", 0, 0), rows_for(tokens, 0, 0.5)[(0, "hidden")]
    )
    store.debug_validate()


def test_row_validation():
    store = make_store()
    store.track("a")
    good = rows_for([1, 2], 0)
    with pytest.raises(ConfigError):
        store.append("a", 0, [1, 2], {(99, "hidden"): good[(0, "hidden")]})
    with pytest.raises(ConfigError):
        store.append("a", 0, [1, 2], {(0, "bogus"): good[(0, "hidden")]})
    with pytest.raises(ConfigError):
        store.append("a", 0, [1, 2], {(0, "hidden"): np.zeros((3, HIDDEN))})
    with pytest.raises(ConfigError):
        store.append("a", 0, [1, 2], {(0, "kv"): np.zeros((2, KV_WIDTH + 1))})
    # The failed validations never touched the table.
    assert store.resident_tokens("a") == 0


def test_evicted_prefix_readmits_under_identical_chain_keys():
    """Eviction satellite: evict a shared prefix, re-publish it, and the
    content-hash keys line up again so a fresh admit re-dedups."""
    store = make_store(capacity=4)
    tokens = list(range(8))
    keys = prefix_block_keys(tokens, BT)
    assert write_session(store, "a", tokens)
    assert [store.pool.committed_key(b) for b in store.table("a").blocks] == keys
    store.release("a")
    # Fill the pool with unrelated pinned state: the parked blocks of "a"
    # are the only victims, so both get evicted.
    filler = [50, 51, 52, 53] * 4
    assert write_session(store, "f", filler)
    assert store.pool.stats.evictions >= 2
    assert store.pool.lookup(keys[0]) is None
    assert store.pool.lookup(keys[1]) is None
    store.release("f")
    # Re-publishing the same tokens re-commits under the SAME keys...
    assert write_session(store, "a2", tokens)
    assert [store.pool.committed_key(b) for b in store.table("a2").blocks] == keys
    # ...so a fresh admission re-dedups against the readmitted prefix.
    assert store.admit("b", tokens) == 8
    assert store.table("b").blocks == store.table("a2").blocks
    store.debug_validate()
