"""Hash-chained prefix keys (repro.state.keys)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.state import GENESIS_KEY, chain_key, prefix_block_keys


def test_genesis_key_is_empty():
    assert GENESIS_KEY == ""


def test_chain_key_deterministic_and_dtype_invariant():
    a = chain_key(GENESIS_KEY, [1, 2, 3, 4])
    b = chain_key(GENESIS_KEY, np.array([1, 2, 3, 4], dtype=np.int32))
    c = chain_key(GENESIS_KEY, np.array([1, 2, 3, 4], dtype=np.int64))
    assert a == b == c
    assert len(a) == 64  # sha256 hex


def test_chain_key_sensitive_to_ids_order_and_prefix():
    base = chain_key(GENESIS_KEY, [1, 2, 3, 4])
    assert chain_key(GENESIS_KEY, [1, 2, 3, 5]) != base
    assert chain_key(GENESIS_KEY, [4, 3, 2, 1]) != base
    assert chain_key(base, [1, 2, 3, 4]) != base
    assert chain_key("other", [1, 2, 3, 4]) != base


def test_chain_key_rejects_empty_and_non_1d():
    with pytest.raises(ConfigError):
        chain_key(GENESIS_KEY, [])
    with pytest.raises(ConfigError):
        chain_key(GENESIS_KEY, np.zeros((2, 2), dtype=np.int64))


def test_prefix_block_keys_full_blocks_only():
    tokens = list(range(10))
    keys = prefix_block_keys(tokens, 4)
    assert len(keys) == 2  # 10 tokens, block 4: two full blocks, tail unkeyed
    assert keys[0] == chain_key(GENESIS_KEY, tokens[:4])
    assert keys[1] == chain_key(keys[0], tokens[4:8])
    assert prefix_block_keys(tokens[:3], 4) == []
    assert prefix_block_keys([], 4) == []


def test_prefix_block_keys_shared_prefix_shares_keys_exactly():
    a = [5, 6, 7, 8, 1, 2, 3, 4, 9, 9, 9, 9]
    b = [5, 6, 7, 8, 1, 2, 3, 4, 0, 0, 0, 0]
    keys_a = prefix_block_keys(a, 4)
    keys_b = prefix_block_keys(b, 4)
    assert keys_a[:2] == keys_b[:2]
    assert keys_a[2] != keys_b[2]
    # Early divergence poisons every later key even if tokens re-align.
    c = [5, 6, 7, 0] + a[4:]
    keys_c = prefix_block_keys(c, 4)
    assert all(kc != ka for kc, ka in zip(keys_c, keys_a))


def test_prefix_block_keys_validates_inputs():
    with pytest.raises(ConfigError):
        prefix_block_keys([1, 2, 3], 0)
    with pytest.raises(ConfigError):
        prefix_block_keys(np.zeros((2, 2), dtype=np.int64), 4)
