"""BlockPool refcounting, commit index, and pinned LRU eviction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigError, StateError
from repro.state import BlockPool


def make_pool(capacity: int = 4) -> BlockPool:
    return BlockPool(
        n_layers=2,
        block_tokens=4,
        n_kv_heads=1,
        head_dim=2,
        hidden_width=4,
        capacity_blocks=capacity,
    )


def fill_block(pool: BlockPool, block_id: int, value: float) -> None:
    for layer in range(pool.n_layers):
        k, v = pool.kv_views(block_id, layer)
        k[:] = value
        v[:] = value + 0.5
        pool.hidden_view(block_id, layer)[:] = value + 0.25


def test_geometry_validation():
    with pytest.raises(ConfigError):
        BlockPool(0, 4, 1, 2, 4, 4)
    with pytest.raises(ConfigError):
        BlockPool(2, 4, 1, 2, 4, 0)


def test_allocate_ref_unref_lifecycle():
    pool = make_pool()
    block = pool.allocate()
    assert pool.refcount(block) == 1
    pool.ref(block)
    assert pool.refcount(block) == 2
    pool.unref(block)
    pool.unref(block)
    # Uncommitted block at refcount 0 is freed immediately.
    assert pool.refcount(block) == 0
    assert pool.free_blocks == pool.capacity_blocks
    with pytest.raises(StateError):
        pool.unref(block)
    with pytest.raises(StateError):
        pool.ref(block)  # dead and uncommitted: unreachable
    pool.debug_validate()


def test_allocation_zeroes_content():
    pool = make_pool(capacity=1)
    block = pool.allocate()
    fill_block(pool, block, 9.0)
    pool.unref(block)
    block = pool.allocate()
    for layer in range(pool.n_layers):
        k, v = pool.kv_views(block, layer)
        assert not k.any() and not v.any()
        assert not pool.hidden_view(block, layer).any()


def test_commit_and_lookup():
    pool = make_pool()
    block = pool.allocate()
    assert pool.lookup("k1") is None
    assert pool.stats.lookup_misses == 1
    pool.commit(block, "k1")
    assert pool.committed_key(block) == "k1"
    assert pool.lookup("k1") == block
    assert pool.stats.lookup_hits == 1
    with pytest.raises(StateError):
        pool.commit(block, "k2")  # a block carries one key
    other = pool.allocate()
    with pytest.raises(StateError):
        pool.commit(other, "k1")  # a key names one block
    with pytest.raises(ConfigError):
        pool.commit(other, "")
    pool.debug_validate()


def test_committed_block_survives_refcount_zero_and_can_be_adopted():
    pool = make_pool()
    block = pool.allocate()
    fill_block(pool, block, 1.0)
    pool.commit(block, "k1")
    pool.unref(block)
    # Parked as an eviction candidate, still resident and findable.
    assert pool.refcount(block) == 0
    assert pool.evictable_blocks() == (block,)
    assert pool.lookup("k1") == block
    assert pool.adopt_committed("k1") == block  # re-pins
    assert pool.refcount(block) == 1
    assert pool.evictable_blocks() == ()
    pool.debug_validate()


def test_ref_repins_committed_eviction_candidate():
    pool = make_pool()
    block = pool.allocate()
    pool.commit(block, "k1")
    pool.unref(block)
    pool.ref(block)
    assert pool.refcount(block) == 1
    assert pool.evictable_blocks() == ()
    pool.debug_validate()


def test_eviction_skips_pinned_blocks_and_takes_lru_first():
    pool = make_pool(capacity=4)
    blocks = [pool.allocate() for _ in range(4)]
    for i, block in enumerate(blocks):
        pool.commit(block, f"k{i}")
    # Pin 0 and 3 (live tables); park 1 then 2 as refcount-0 candidates.
    pool.unref(blocks[1])
    pool.unref(blocks[2])
    # Touch 1 so 2 becomes least recently used among the unpinned.
    pool.lookup("k1")
    assert pool.evictable_blocks() == (blocks[2], blocks[1])
    fresh = pool.allocate()
    # LRU refcount-0 tail evicted first: block 2, never pinned 0 or 3.
    assert fresh == blocks[2]
    assert pool.stats.evictions == 1
    assert pool.lookup("k2") is None  # key gone with the eviction
    assert pool.lookup("k0") == blocks[0]
    fresh2 = pool.allocate()
    assert fresh2 == blocks[1]
    pool.debug_validate()


def test_all_pinned_pool_raises_capacity_error():
    pool = make_pool(capacity=2)
    a = pool.allocate()
    b = pool.allocate()
    pool.commit(a, "ka")
    with pytest.raises(CapacityError):
        pool.allocate()
    # Unpinning the committed block makes it the victim.
    pool.unref(a)
    assert pool.allocate() == a
    assert b is not None
    pool.debug_validate()


def test_copy_block_duplicates_content_and_stays_private():
    pool = make_pool()
    src = pool.allocate()
    fill_block(pool, src, 2.0)
    pool.commit(src, "k1")
    dst = pool.copy_block(src)
    assert dst != src
    assert pool.blocks_equal(src, dst)
    assert pool.committed_key(dst) is None  # the copy is never published
    assert pool.refcount(dst) == 1
    # Diverging the copy leaves the source untouched.
    pool.hidden_view(dst, 0)[0, 0] = 99.0
    assert not pool.blocks_equal(src, dst)
    assert pool.hidden_view(src, 0)[0, 0] == 2.25
    pool.debug_validate()


def test_blocks_equal_is_bitwise_over_all_layers_and_kinds():
    pool = make_pool()
    a = pool.allocate()
    b = pool.allocate()
    fill_block(pool, a, 1.0)
    fill_block(pool, b, 1.0)
    assert pool.blocks_equal(a, b)
    k, _ = pool.kv_views(b, pool.n_layers - 1)
    k[-1, -1, -1] += 1e-7
    assert not pool.blocks_equal(a, b)


def test_accounting_properties():
    pool = make_pool(capacity=4)
    assert pool.free_blocks == 4
    a = pool.allocate()
    pool.commit(a, "ka")
    b = pool.allocate()
    assert pool.live_blocks == 2
    assert pool.resident_blocks == 2
    pool.unref(a)  # committed: stays resident
    pool.unref(b)  # private: freed
    assert pool.live_blocks == 0
    assert pool.resident_blocks == 1
    assert pool.block_nbytes() > 0
    pool.debug_validate()
