"""Tests for the HCache engine's functional save/restore path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hcache import HCacheEngine
from repro.core.partition import PartitionScheme
from repro.errors import ConfigError, RestorationError, StateError


def prompt(config, n, seed=0):
    return np.random.default_rng(seed).integers(0, config.vocab_size, size=n)


@pytest.fixture
def engine(tiny_model, storage_manager):
    return HCacheEngine(tiny_model, storage_manager)


def saved_engine(engine, tiny_model, tokens):
    engine.register_context("c")
    result, cache = tiny_model.prefill(tokens, capture_hidden=True)
    engine.save_states("c", result.hidden_states, tokens, kv_cache=cache)
    return cache


class TestLifecycle:
    def test_register_twice_rejected(self, engine):
        engine.register_context("c")
        with pytest.raises(StateError):
            engine.register_context("c")

    def test_restore_unsaved_rejected(self, engine):
        engine.register_context("c")
        with pytest.raises(RestorationError):
            engine.restore("c")

    def test_saved_tokens_tracked(self, engine, tiny_model, tiny_config):
        tokens = prompt(tiny_config, 9)
        saved_engine(engine, tiny_model, tokens)
        assert engine.saved_tokens("c") == 9

    def test_drop_context(self, engine, tiny_model, tiny_config):
        saved_engine(engine, tiny_model, prompt(tiny_config, 5))
        engine.drop_context("c")
        assert not engine.has_context("c")

    def test_unknown_context_rejected(self, engine):
        with pytest.raises(StateError):
            engine.saved_tokens("ghost")


class TestSchemes:
    def test_default_scheme_pure_hcache(self, engine, tiny_config):
        assert engine.scheme == PartitionScheme.pure_hcache(tiny_config.n_layers)

    def test_platform_engine_uses_scheduler(self, tiny_model, storage_manager, default_platform):
        eng = HCacheEngine(tiny_model, storage_manager, platform=default_platform)
        assert eng.decision is not None
        assert eng.scheme is eng.decision.scheme

    def test_explicit_scheme_respected(self, tiny_model, storage_manager, tiny_config):
        scheme = PartitionScheme.with_kv_suffix(tiny_config.n_layers, 1)
        eng = HCacheEngine(tiny_model, storage_manager, scheme=scheme)
        assert eng.scheme is scheme

    def test_wrong_scheme_size_rejected(self, tiny_model, storage_manager):
        with pytest.raises(ConfigError):
            HCacheEngine(tiny_model, storage_manager, scheme=PartitionScheme.pure_hcache(3))

    def test_kv_scheme_requires_cache(self, tiny_model, storage_manager, tiny_config):
        scheme = PartitionScheme.with_kv_suffix(tiny_config.n_layers, 1)
        eng = HCacheEngine(tiny_model, storage_manager, scheme=scheme)
        eng.register_context("c")
        tokens = prompt(tiny_config, 4)
        result, _ = tiny_model.prefill(tokens, capture_hidden=True)
        with pytest.raises(ConfigError):
            eng.save_states("c", result.hidden_states, tokens, kv_cache=None)


class TestRestoration:
    @pytest.mark.parametrize("n_kv", [0, 1, 2])
    def test_lossless_with_kv_suffix(self, tiny_model, storage_manager, tiny_config, n_kv):
        scheme = PartitionScheme.with_kv_suffix(tiny_config.n_layers, n_kv)
        eng = HCacheEngine(tiny_model, storage_manager, scheme=scheme)
        tokens = prompt(tiny_config, 13, seed=n_kv)
        cache = saved_engine(eng, tiny_model, tokens)
        eng.seal("c")
        assert cache.equals(eng.restore("c"))

    @pytest.mark.parametrize("n_re", [1, 2])
    def test_lossless_with_recompute_prefix(
        self, tiny_model, storage_manager, tiny_config, n_re
    ):
        scheme = PartitionScheme.with_recompute_prefix(tiny_config.n_layers, n_re)
        eng = HCacheEngine(tiny_model, storage_manager, scheme=scheme)
        tokens = prompt(tiny_config, 11, seed=n_re)
        cache = saved_engine(eng, tiny_model, tokens)
        assert cache.equals(eng.restore("c"), atol=1e-6)

    def test_incremental_save_restore(self, engine, tiny_model, tiny_config):
        """Saving across multiple generation steps restores the whole run."""
        engine.register_context("c")
        tokens = prompt(tiny_config, 6)
        result, cache = tiny_model.prefill(tokens, capture_hidden=True)
        engine.save_states("c", result.hidden_states, tokens, kv_cache=cache)
        step = tiny_model.decode_step(3, cache, capture_hidden=True)
        engine.save_states("c", step.hidden_states, np.array([3]), kv_cache=cache)
        restored = engine.restore("c")
        assert cache.equals(restored, atol=1e-5)
        assert len(restored) == 7

    def test_mismatched_block_rejected(self, engine, tiny_model, tiny_config):
        engine.register_context("c")
        tokens = prompt(tiny_config, 5)
        result, cache = tiny_model.prefill(tokens, capture_hidden=True)
        with pytest.raises(ConfigError):
            engine.save_states("c", result.hidden_states, tokens[:3], kv_cache=cache)

    def test_wrong_layer_count_rejected(self, engine, tiny_model, tiny_config):
        engine.register_context("c")
        tokens = prompt(tiny_config, 5)
        result, cache = tiny_model.prefill(tokens, capture_hidden=True)
        with pytest.raises(ConfigError):
            engine.save_states("c", result.hidden_states[:2], tokens, kv_cache=cache)


class TestTimingFacade:
    def test_timing_requires_platform(self, engine):
        with pytest.raises(ConfigError):
            engine.restoration_timing(100)

    def test_timing_available_with_platform(
        self, tiny_model, storage_manager, default_platform
    ):
        eng = HCacheEngine(tiny_model, storage_manager, platform=default_platform)
        timing = eng.restoration_timing(256)
        assert timing.makespan > 0

    def test_storage_bytes_per_token(self, tiny_model, storage_manager, tiny_config):
        eng = HCacheEngine(tiny_model, storage_manager)
        expected = tiny_config.hidden_bytes_per_token_layer * tiny_config.n_layers
        assert eng.storage_bytes_per_token() == expected
