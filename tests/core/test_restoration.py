"""Tests for restoration timing (layer-wise and token-wise)."""

from __future__ import annotations

import pytest

from repro.core.partition import PartitionScheme, TokenPartition
from repro.core.restoration import (
    best_tokenwise_partition,
    hcache_only_timing,
    hcache_timing,
    naive_tokenwise_split,
    scheme_timing,
    tokenwise_timing,
)
from repro.errors import ConfigError
from repro.simulator.hardware import platform_preset


class TestSchemeTiming:
    def test_makespan_positive(self, seven_b, default_platform):
        timing = scheme_timing(
            seven_b, default_platform, 1024, PartitionScheme.pure_hcache(32)
        )
        assert timing.makespan > 0
        assert timing.n_tokens == 1024

    def test_restoration_speed_definition(self, seven_b, default_platform):
        timing = scheme_timing(
            seven_b, default_platform, 2048, PartitionScheme.pure_hcache(32)
        )
        assert timing.restoration_speed == pytest.approx(2048 / timing.makespan)

    def test_makespan_at_least_stream_busy(self, seven_b, default_platform):
        timing = scheme_timing(
            seven_b, default_platform, 1024, PartitionScheme.with_kv_suffix(32, 4)
        )
        assert timing.makespan >= timing.io_busy - 1e-12
        assert timing.makespan >= timing.compute_busy - 1e-12

    def test_wrong_layer_count_rejected(self, seven_b, default_platform):
        with pytest.raises(ConfigError):
            scheme_timing(seven_b, default_platform, 64, PartitionScheme.pure_hcache(5))


class TestHCacheTiming:
    def test_scheduled_beats_hcache_only_on_skewed_platform(self, seven_b):
        """§6.3.1: the bubble-free scheduler improves HCache-O by
        1.35-1.64x on skewed hardware."""
        platform = platform_preset("compute-sufficient")
        scheduled, _ = hcache_timing(seven_b, platform, 1024)
        only = hcache_only_timing(seven_b, platform, 1024)
        ratio = only.makespan / scheduled.makespan
        assert 1.2 < ratio < 2.0

    def test_balanced_platform_no_gain(self, seven_b, default_platform):
        """On balanced hardware HCache-O is already near bubble-free."""
        scheduled, _ = hcache_timing(seven_b, default_platform, 1024)
        only = hcache_only_timing(seven_b, default_platform, 1024)
        assert only.makespan / scheduled.makespan < 1.15

    def test_decision_scheme_consistency(self, thirteen_b, default_platform):
        timing, decision = hcache_timing(thirteen_b, default_platform, 1024)
        again = scheme_timing(thirteen_b, default_platform, 1024, decision.scheme)
        assert timing.makespan == pytest.approx(again.makespan)


class TestTokenwise:
    def test_layerwise_beats_tokenwise(self, thirteen_b):
        """Fig. 13a: token-wise partition is ~12% slower; layer-wise wins."""
        platform = platform_preset("compute-sufficient")
        layer_timing, _ = hcache_timing(thirteen_b, platform, 1024)
        token_timing, _ = best_tokenwise_partition(
            thirteen_b, platform, 1024, step=64
        )
        assert layer_timing.makespan < token_timing.makespan

    def test_round_up_improves_tokenwise(self, thirteen_b):
        """Fig. 13a: the round-up variant beats the naive token-wise one
        (a more performant cuBLAS kernel), but still loses to layer-wise."""
        from repro.core.partition import TokenPartition
        from repro.simulator.gemm import round_up_tokens

        platform = platform_preset("compute-sufficient")
        split = naive_tokenwise_split(thirteen_b, platform, 1024)
        naive = tokenwise_timing(thirteen_b, platform, split, complement="recompute")
        aligned = max(0, min(round_up_tokens(split.n_hidden_tokens) - 128, 1024))
        rounded = tokenwise_timing(
            thirteen_b,
            platform,
            TokenPartition(aligned, 1024 - aligned),
            complement="recompute",
            round_up=True,
        )
        layer, _ = hcache_timing(thirteen_b, platform, 1024)
        assert rounded.makespan <= naive.makespan * 1.001
        assert layer.makespan < rounded.makespan

    def test_naive_split_is_irregular(self, thirteen_b):
        """The smooth-cost balance lands off the tile grid (paper: 794)."""
        platform = platform_preset("compute-sufficient")
        split = naive_tokenwise_split(thirteen_b, platform, 1024)
        assert 0 < split.n_hidden_tokens < 1024
        assert split.n_hidden_tokens % 128 != 0

    def test_tokenwise_kv_complement_supported(self, thirteen_b, default_platform):
        from repro.core.partition import TokenPartition

        timing = tokenwise_timing(
            thirteen_b, default_platform, TokenPartition(512, 512), complement="kv"
        )
        assert timing.makespan > 0

    def test_tokenwise_unknown_complement_rejected(self, thirteen_b, default_platform):
        from repro.core.partition import TokenPartition

        with pytest.raises(ConfigError):
            tokenwise_timing(
                thirteen_b, default_platform, TokenPartition(512, 512), complement="magic"
            )

    def test_empty_partition_rejected(self, thirteen_b, default_platform):
        with pytest.raises(ConfigError):
            tokenwise_timing(thirteen_b, default_platform, TokenPartition(0, 0))

    def test_all_hidden_tokenwise(self, thirteen_b, default_platform):
        timing = tokenwise_timing(
            thirteen_b, default_platform, TokenPartition(1024, 0)
        )
        assert timing.makespan > 0

    def test_zero_tokens_rejected_in_search(self, thirteen_b, default_platform):
        with pytest.raises(ConfigError):
            best_tokenwise_partition(thirteen_b, default_platform, 0)


class TestScaling:
    def test_restoration_speed_stable_across_length(self, seven_b, default_platform):
        """§6.2.3: HCache scales linearly — speed roughly constant."""
        speeds = [
            hcache_timing(seven_b, default_platform, n)[0].restoration_speed
            for n in (1024, 4096, 16384)
        ]
        assert max(speeds) / min(speeds) < 1.4
