"""Tests for offline hardware profiling."""

from __future__ import annotations

import pytest

from repro.core.profiler import build_storage_array, profile_platform
from repro.errors import ConfigError
from repro.simulator.hardware import platform_preset


class TestBuildStorageArray:
    def test_ssd_platform(self):
        array = build_storage_array(platform_preset("default"))
        assert len(array) == 4

    def test_dram_platform(self):
        array = build_storage_array(platform_preset("a100-dram"))
        assert len(array) == 1

    def test_link_matches_gpus(self):
        array = build_storage_array(platform_preset("a100x4-dram"))
        assert array.link_bandwidth == pytest.approx(4 * 32e9)


class TestProfile:
    def test_io_kv_double_hidden(self, seven_b, default_platform):
        prof = profile_platform(seven_b, default_platform, 1024)
        assert prof.io_kv == pytest.approx(2 * prof.io_hidden, rel=0.05)

    def test_recompute_dominates_projection(self, seven_b, default_platform):
        prof = profile_platform(seven_b, default_platform, 1024)
        assert prof.compute_token > 5 * prof.compute_hidden

    def test_compute_bound_flag(self, seven_b):
        """A30 + fast storage is compute-bound; A100 + 1 SSD is IO-bound."""
        io_suff = profile_platform(seven_b, platform_preset("io-sufficient"), 1024)
        comp_suff = profile_platform(seven_b, platform_preset("compute-sufficient"), 1024)
        assert io_suff.compute_bound
        assert not comp_suff.compute_bound

    def test_zero_tokens_rejected(self, seven_b, default_platform):
        with pytest.raises(ConfigError):
            profile_platform(seven_b, default_platform, 0)

    def test_describe_mentions_regime(self, seven_b, default_platform):
        text = profile_platform(seven_b, default_platform, 1024).describe()
        assert "bound" in text

    def test_profile_scales_with_tokens(self, seven_b, default_platform):
        small = profile_platform(seven_b, default_platform, 512)
        large = profile_platform(seven_b, default_platform, 2048)
        assert large.io_hidden > small.io_hidden
        assert large.compute_token > small.compute_token

    def test_negative_profile_rejected(self):
        from repro.core.profiler import HardwareProfile

        with pytest.raises(ConfigError):
            HardwareProfile("m", 1, -1.0, 1.0, 1.0, 1.0)
