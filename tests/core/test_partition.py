"""Tests for partition schemes (§4.1.1, Table 3 storage accounting)."""

from __future__ import annotations

import pytest

from repro.core.partition import PartitionScheme, TokenPartition
from repro.errors import ConfigError, SchedulingError
from repro.simulator.pipeline import LayerMethod


class TestConstruction:
    def test_pure_hcache(self):
        scheme = PartitionScheme.pure_hcache(8)
        assert scheme.n_hidden == 8
        assert scheme.n_other == 0

    def test_kv_suffix(self):
        scheme = PartitionScheme.with_kv_suffix(10, 3)
        assert scheme.n_hidden == 7
        assert scheme.n_kv == 3
        assert scheme.layers_with(LayerMethod.KV) == (7, 8, 9)

    def test_recompute_prefix(self):
        scheme = PartitionScheme.with_recompute_prefix(10, 4)
        assert scheme.n_recompute == 4
        assert scheme.layers_with(LayerMethod.RECOMPUTE) == (0, 1, 2, 3)

    def test_recompute_must_be_prefix(self):
        with pytest.raises(SchedulingError):
            PartitionScheme((LayerMethod.HIDDEN, LayerMethod.RECOMPUTE))

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            PartitionScheme(())

    def test_out_of_range_counts(self):
        with pytest.raises(SchedulingError):
            PartitionScheme.with_kv_suffix(4, 5)
        with pytest.raises(SchedulingError):
            PartitionScheme.with_recompute_prefix(4, -1)

    def test_counts_sum_to_layers(self):
        scheme = PartitionScheme.with_kv_suffix(32, 5)
        assert scheme.n_hidden + scheme.n_kv + scheme.n_recompute == scheme.n_layers


class TestDescribe:
    def test_table3_format(self):
        assert PartitionScheme.with_kv_suffix(32, 1).describe() == "31 H + 1 KV"
        assert PartitionScheme.with_recompute_prefix(48, 8).describe() == "40 H + 8 RE"
        assert PartitionScheme.pure_hcache(4).describe() == "4 H"


class TestStorageCost:
    def test_pure_hcache_half_of_kv(self, seven_b):
        scheme = PartitionScheme.pure_hcache(seven_b.n_layers)
        assert scheme.storage_bytes_per_token(seven_b) * 2 == seven_b.kv_bytes_per_token

    def test_recompute_layers_store_nothing(self, seven_b):
        full = PartitionScheme.pure_hcache(seven_b.n_layers)
        some_recompute = PartitionScheme.with_recompute_prefix(seven_b.n_layers, 8)
        assert (
            some_recompute.storage_bytes_per_token(seven_b)
            < full.storage_bytes_per_token(seven_b)
        )

    def test_kv_layers_cost_double(self, seven_b):
        scheme = PartitionScheme.with_kv_suffix(seven_b.n_layers, 1)
        pure = PartitionScheme.pure_hcache(seven_b.n_layers)
        delta = scheme.storage_bytes_per_token(seven_b) - pure.storage_bytes_per_token(
            seven_b
        )
        assert delta == seven_b.hidden_bytes_per_token_layer

    def test_paper_storage_band(self, seven_b, thirteen_b, opt_30b):
        """Table 3: HCache stores 1.92-2.40x less than KV offload.

        Evaluated on the paper's reported schedules (31H+1KV, 36H+4KV,
        40H+8RE)."""
        schemes = {
            "llama2-7b": (seven_b, PartitionScheme.with_kv_suffix(32, 1)),
            "llama2-13b": (thirteen_b, PartitionScheme.with_kv_suffix(40, 4)),
            "opt-30b": (opt_30b, PartitionScheme.with_recompute_prefix(48, 8)),
        }
        for config, scheme in schemes.values():
            ratio = config.kv_bytes_per_token / scheme.storage_bytes_per_token(config)
            assert 1.8 <= ratio <= 2.5

    def test_model_mismatch_rejected(self, seven_b):
        with pytest.raises(ConfigError):
            PartitionScheme.pure_hcache(10).storage_bytes_per_token(seven_b)


class TestTokenPartition:
    def test_totals(self):
        part = TokenPartition(100, 28)
        assert part.total_tokens == 128

    def test_negative_rejected(self):
        with pytest.raises(SchedulingError):
            TokenPartition(-1, 5)
