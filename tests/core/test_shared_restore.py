"""Prefix-dedup bit-exactness: shared restore == private restore.

N sessions sharing a system prompt, saved through an engine with a
block-paged :class:`~repro.state.BlockStateStore`, must restore to
byte-identical KV caches — and continue with identical logits and greedy
token streams — as the same N sessions saved through a fully private
engine.  Sharing is a pure optimization: it may only change *where*
prefix state is read from (the pool instead of storage devices), never a
single restored byte.  The device op counters prove the "where": tracked
shared restores touch storage zero times, fresh admissions read only the
non-shared suffix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hcache import HCacheEngine, RestoreBreakdown
from repro.core.partition import PartitionScheme
from repro.core.profiler import build_storage_array
from repro.models import Transformer, model_preset
from repro.models.config import ModelConfig
from repro.simulator import platform_preset
from repro.storage import StorageManager
from repro.state import BlockPool, BlockStateStore

BLOCK_TOKENS = 16
CHUNK_TOKENS = 8
SYSTEM_PROMPT_TOKENS = 40  # not block-aligned: shared floor is 32
N_SESSIONS = 3


def gqa_config() -> ModelConfig:
    """Grouped-query attention: kv_size != hidden_size, so only the
    hidden-state (pure HCache) representation can be paged."""
    return ModelConfig(
        name="tiny-gqa",
        n_layers=3,
        hidden_size=64,
        n_heads=4,
        n_kv_heads=2,
        ffn_hidden_size=128,
        n_ffn_mats=3,
        vocab_size=128,
        max_context=512,
    )


CASES = {
    # (config factory, scheme factory): rmsnorm+rope, layernorm, and GQA.
    "tiny-llama": (
        lambda: model_preset("tiny-llama"),
        lambda n: PartitionScheme.pure_hcache(n),
    ),
    "tiny-opt-layernorm": (
        lambda: model_preset("tiny-opt"),
        lambda n: PartitionScheme.with_kv_suffix(n, 1),
    ),
    "tiny-gqa": (gqa_config, lambda n: PartitionScheme.pure_hcache(n)),
}


def make_storage() -> StorageManager:
    return StorageManager(
        build_storage_array(platform_preset("default")),
        tokens_per_chunk=CHUNK_TOKENS,
    )


def make_store(config: ModelConfig, capacity_blocks: int = 96) -> BlockStateStore:
    pool = BlockPool(
        n_layers=config.n_layers,
        block_tokens=BLOCK_TOKENS,
        n_kv_heads=config.n_kv_heads,
        head_dim=config.head_dim,
        hidden_width=config.hidden_size,
        capacity_blocks=capacity_blocks,
    )
    return BlockStateStore(pool)


def session_tokens(config: ModelConfig, index: int) -> np.ndarray:
    """Shared system prompt + a private suffix with a partial-tail length."""
    shared_rng = np.random.default_rng(42)
    system = shared_rng.integers(0, config.vocab_size, size=SYSTEM_PROMPT_TOKENS)
    private_rng = np.random.default_rng(1000 + index)
    # 5, 9, 17, ...: none block-aligned, one spilling past a block.
    suffix = private_rng.integers(0, config.vocab_size, size=5 + 4 * index + (index == 2))
    return np.concatenate([system, suffix])


def save_all(engine: HCacheEngine, model: Transformer, config: ModelConfig) -> None:
    for index in range(N_SESSIONS):
        tokens = session_tokens(config, index)
        context_id = f"s{index}"
        engine.register_context(context_id)
        result, cache = model.prefill(tokens, capture_hidden=True)
        engine.save_states(context_id, result.hidden_states, tokens, kv_cache=cache)
        engine.seal(context_id)


def greedy_stream(model: Transformer, cache, n_steps: int = 4) -> list[int]:
    """Greedy continuation from a restored cache (mutates the cache)."""
    token = 1 % model.config.vocab_size
    stream = []
    for _ in range(n_steps):
        result = model.forward(np.array([token]), cache)
        token = int(np.argmax(result.logits[-1]))
        stream.append(token)
    return stream


@pytest.fixture(params=sorted(CASES), ids=sorted(CASES))
def case(request):
    config_of, scheme_of = CASES[request.param]
    config = config_of()
    model = Transformer.from_seed(config, seed=11)
    scheme = scheme_of(config.n_layers)
    store = make_store(config)
    shared = HCacheEngine(model, make_storage(), scheme=scheme, shared_store=store)
    private = HCacheEngine(model, make_storage(), scheme=scheme)
    save_all(shared, model, config)
    save_all(private, model, config)
    return config, model, store, shared, private


class TestBitExactness:
    def test_sessions_actually_share(self, case):
        _, _, store, _, _ = case
        assert store.dedup_ratio() > 1.0
        assert store.stats.dedup_hits >= (N_SESSIONS - 1) * (
            SYSTEM_PROMPT_TOKENS // BLOCK_TOKENS
        )
        store.debug_validate()

    def test_tracked_restore_bit_exact_with_zero_device_reads(self, case):
        config, _, _, shared, private = case
        for index in range(N_SESSIONS):
            context_id = f"s{index}"
            stats = RestoreBreakdown()
            restored = shared.restore(context_id, stats=stats)
            baseline = private.restore(context_id)
            assert restored.equals(baseline)
            # Fully pool-resident: the restore never touched a device.
            assert stats.device_reads == 0
            assert stats.shared_tokens == len(session_tokens(config, index))

    def test_greedy_streams_and_logits_identical(self, case):
        config, model, _, shared, private = case
        for index in range(N_SESSIONS):
            context_id = f"s{index}"
            restored = shared.restore(context_id)
            baseline = private.restore(context_id)
            probe = np.array([2 % config.vocab_size, 3 % config.vocab_size])
            logits_shared = model.forward(probe.copy(), restored).logits
            logits_private = model.forward(probe.copy(), baseline).logits
            assert np.array_equal(logits_shared, logits_private)
        restored = shared.restore("s0")
        baseline = private.restore("s0")
        assert greedy_stream(model, restored) == greedy_stream(model, baseline)

    def test_fresh_admission_reads_strictly_fewer_chunks(self, case):
        """A new engine over the SAME storage with an empty pool: restore
        admits the shared prefix published by the first session's restore
        and reads strictly fewer granules for the rest."""
        config, model, _, shared, private = case
        store2 = make_store(config)
        engine2 = HCacheEngine(
            model, shared.storage, scheme=shared.scheme, shared_store=store2
        )
        engine2._contexts = dict(shared._contexts)
        # First restore populates the pool from storage (full read).
        seed_stats = RestoreBreakdown()
        first = engine2.restore("s0", stats=seed_stats)
        assert first.equals(private.restore("s0"))
        assert seed_stats.device_reads > 0
        # Second session now admits the shared system prompt.
        stats = RestoreBreakdown()
        restored = engine2.restore("s1", stats=stats)
        baseline_stats = RestoreBreakdown()
        baseline = private.restore("s1", stats=baseline_stats)
        assert restored.equals(baseline)
        shared_floor = SYSTEM_PROMPT_TOKENS - SYSTEM_PROMPT_TOKENS % BLOCK_TOKENS
        assert stats.shared_tokens >= shared_floor
        assert 0 < stats.device_reads < baseline_stats.device_reads
        store2.debug_validate()

    def test_partial_tail_grows_across_incremental_saves(self, case):
        """Decode-step saves extend the partial tail block; restore stays
        bit-exact against the private engine doing the same."""
        config, model, _, shared, private = case
        tokens = session_tokens(config, 0)
        for engine in (shared, private):
            _, cache = model.prefill(tokens, capture_hidden=True)
            # Replay the same three decode steps through both engines.
            cache = engine.restore("s0")
            for step_token in (5, 7, 11):
                token = np.array([step_token % config.vocab_size])
                step = model.decode_step(int(token[0]), cache, capture_hidden=True)
                engine.save_states("s0", step.hidden_states, token, kv_cache=cache)
        restored = shared.restore("s0")
        baseline = private.restore("s0")
        assert restored.equals(baseline)
        assert len(restored) == len(tokens) + 3
