"""Tests for the bubble-free restoration scheduler (§4.1.2)."""

from __future__ import annotations

import pytest

from repro.core.partition import PartitionScheme
from repro.core.profiler import HardwareProfile, profile_platform
from repro.core.scheduler import BubbleFreeScheduler, evaluate_scheme
from repro.errors import SchedulingError
from repro.simulator.hardware import platform_preset


def profile(io_h: float, io_kv: float, c_h: float, c_tok: float, n: int = 1024):
    return HardwareProfile(
        model="synthetic",
        n_tokens=n,
        io_hidden=io_h,
        io_kv=io_kv,
        compute_hidden=c_h,
        compute_token=c_tok,
    )


class TestClosedForm:
    def test_balanced_hardware_pure_hcache(self):
        """When C_H == IO_H no complement is needed."""
        scheduler = BubbleFreeScheduler(32)
        decision = scheduler.schedule(profile(1.0, 2.0, 1.0, 10.0))
        assert decision.scheme.n_hidden >= 31

    def test_compute_bound_uses_kv(self):
        scheduler = BubbleFreeScheduler(32)
        decision = scheduler.schedule(profile(1.0, 2.0, 3.0, 10.0))
        assert decision.scheme.n_kv > 0
        assert decision.scheme.n_recompute == 0

    def test_io_bound_uses_recompute(self):
        scheduler = BubbleFreeScheduler(32)
        decision = scheduler.schedule(profile(4.0, 8.0, 1.0, 6.0))
        assert decision.scheme.n_recompute > 0
        assert decision.scheme.n_kv == 0

    def test_partition_sums_to_layers(self):
        scheduler = BubbleFreeScheduler(40)
        for prof in (
            profile(1.0, 2.0, 3.0, 12.0),
            profile(5.0, 10.0, 1.0, 7.0),
            profile(1.0, 2.0, 1.0, 9.0),
        ):
            scheme = scheduler.schedule(prof).scheme
            assert scheme.n_hidden + scheme.n_other == 40

    def test_closed_form_formula_compute_bound(self):
        """L_H = ceil(N * IO_KV / (IO_KV + C_H - IO_H))."""
        scheduler = BubbleFreeScheduler(32)
        l_h = scheduler.closed_form_l_h(profile(1.0, 2.0, 2.0, 10.0))
        assert l_h == 22  # ceil(32 * 2 / 3)

    def test_closed_form_formula_io_bound(self):
        """L_H = ceil(N * C_tok / (C_tok + IO_H - C_H))."""
        scheduler = BubbleFreeScheduler(32)
        l_h = scheduler.closed_form_l_h(profile(3.0, 6.0, 1.0, 8.0))
        assert l_h == 26  # ceil(32 * 8 / 10)

    def test_invalid_layer_count(self):
        with pytest.raises(SchedulingError):
            BubbleFreeScheduler(0)


class TestOptimality:
    @pytest.mark.parametrize(
        "prof",
        [
            profile(1.0, 2.0, 3.0, 12.0),
            profile(4.0, 8.0, 1.0, 5.0),
            profile(1.0, 2.0, 1.1, 9.0),
            profile(2.0, 4.0, 7.0, 20.0),
            profile(10.0, 20.0, 1.0, 3.0),
        ],
    )
    def test_closed_form_near_exhaustive_optimum(self, prof):
        scheduler = BubbleFreeScheduler(32)
        fast = scheduler.schedule(prof)
        best = scheduler.schedule_by_search(prof)
        assert fast.predicted_makespan <= best.predicted_makespan * 1.05

    def test_scheduled_beats_pure_variants(self):
        """The scheduler's pick is at least as good as all-hidden,
        all-KV, and all-recompute."""
        scheduler = BubbleFreeScheduler(32)
        prof = profile(1.0, 2.0, 3.0, 12.0)
        decision = scheduler.schedule(prof)
        for pure in (
            PartitionScheme.pure_hcache(32),
            PartitionScheme.pure_kv(32),
            PartitionScheme.pure_recompute(32),
        ):
            assert decision.predicted_makespan <= evaluate_scheme(pure, prof) + 1e-12

    def test_compute_bound_cheap_recompute_picks_pure_recompute(self):
        """Pinned: compute-bound platform with C_token < C_H (outside the
        paper's regime — recomputing a layer is cheaper than its
        projection).  The regime complement (KV offload) can never beat
        pure recompute here; the scheduler must consider the
        cross-regime endpoint rather than return a dominated KV mix."""
        scheduler = BubbleFreeScheduler(8)
        prof = profile(1.0, 2.0, 5.0, 1.0)  # compute-bound, c_tok < c_h
        assert prof.compute_bound
        decision = scheduler.schedule(prof)
        assert decision.scheme.n_recompute == 8
        assert decision.scheme.n_hidden == 0
        pure_recompute = PartitionScheme.pure_recompute(8)
        assert decision.predicted_makespan <= evaluate_scheme(pure_recompute, prof) + 1e-12
        # And it matches the exhaustive search, which always knew better.
        best = scheduler.schedule_by_search(prof)
        assert decision.predicted_makespan <= best.predicted_makespan + 1e-12

    def test_io_bound_cheap_kv_picks_pure_kv(self):
        """Symmetric pinned case: IO-bound platform whose KV bytes move
        faster than hidden bytes restore (e.g. heavily quantized KV).
        Pure KV offload beats every recompute mix."""
        scheduler = BubbleFreeScheduler(8)
        prof = profile(4.0, 1.0, 1.0, 10.0)  # io-bound, io_kv << io_h
        assert not prof.compute_bound
        decision = scheduler.schedule(prof)
        assert decision.scheme.n_kv == 8
        assert decision.scheme.n_hidden == 0
        best = scheduler.schedule_by_search(prof)
        assert decision.predicted_makespan <= best.predicted_makespan + 1e-12

    def test_bubble_small_after_scheduling(self):
        scheduler = BubbleFreeScheduler(40)
        prof = profile(1.0, 2.0, 3.0, 12.0)
        decision = scheduler.schedule(prof)
        assert decision.predicted_bubble_fraction < 0.15


class TestRealPlatforms:
    def test_7b_schedule_matches_table3(self, seven_b):
        """Table 3: 7B on the default testbed = "31 H + 1 KV" (balanced)."""
        platform = platform_preset("default")
        prof = profile_platform(seven_b, platform, 1024)
        decision = BubbleFreeScheduler(seven_b.n_layers).schedule(prof)
        assert decision.scheme.n_hidden >= 30  # almost everything via HCache

    def test_13b_schedule_close_to_table3(self, thirteen_b):
        """Table 3: 13B = "36 H + 4 KV"."""
        platform = platform_preset("default")
        prof = profile_platform(thirteen_b, platform, 1024)
        decision = BubbleFreeScheduler(thirteen_b.n_layers).schedule(prof)
        assert decision.scheme.n_kv > 0
        assert 33 <= decision.scheme.n_hidden <= 38

    def test_30b_uses_recompute_complement(self, opt_30b):
        """Table 3: 30B = "40 H + 8 RE" (IO-bound with 4 GPUs, 4 SSDs)."""
        platform = platform_preset("a100x4-4ssd")
        prof = profile_platform(opt_30b, platform, 1024)
        decision = BubbleFreeScheduler(opt_30b.n_layers).schedule(prof)
        assert decision.scheme.n_recompute > 0
        assert 38 <= decision.scheme.n_hidden <= 44

    def test_one_ssd_pushes_towards_recompute(self, seven_b):
        """Fewer disks -> IO-bound -> recompute fills the bubble."""
        platform = platform_preset("compute-sufficient")
        prof = profile_platform(seven_b, platform, 1024)
        decision = BubbleFreeScheduler(seven_b.n_layers).schedule(prof)
        assert decision.scheme.n_recompute > 0

    def test_long_context_falls_back_to_hcache_only(self, seven_b):
        """§6.2.3: with long histories token recompute becomes expensive
        and the scheduler drops it."""
        platform = platform_preset("compute-sufficient")
        short = BubbleFreeScheduler(32).schedule(profile_platform(seven_b, platform, 512))
        long = BubbleFreeScheduler(32).schedule(
            profile_platform(seven_b, platform, 16384)
        )
        assert long.scheme.n_recompute <= short.scheme.n_recompute

    def test_describe_contains_makespan(self, seven_b):
        platform = platform_preset("default")
        prof = profile_platform(seven_b, platform, 1024)
        text = BubbleFreeScheduler(32).schedule(prof).describe()
        assert "ms" in text and "H" in text
