"""Tests for the saving strategies (§4.2.2, Fig. 14)."""

from __future__ import annotations

import pytest

from repro.core.saving import (
    DirectIOSaver,
    NoSaver,
    TwoStageSaver,
    decode_tbt_with_saving,
)
from repro.errors import ConfigError
from repro.simulator.hardware import platform_preset


class TestTwoStage:
    def test_no_stall_at_decode_rates(self, seven_b, default_platform):
        """§6.3.3: cudaMemcpy snapshots never stall decoding."""
        saver = TwoStageSaver(default_platform)
        for batch in (1, 8, 16, 32):
            impact = decode_tbt_with_saving(seven_b, default_platform, batch, 512, saver)
            assert impact.overhead_fraction < 0.01

    def test_tbt_matches_ideal(self, seven_b, default_platform):
        two_stage = decode_tbt_with_saving(
            seven_b, default_platform, 16, 512, TwoStageSaver(default_platform)
        )
        ideal = decode_tbt_with_saving(seven_b, default_platform, 16, 512, NoSaver())
        assert two_stage.tbt == pytest.approx(ideal.tbt, rel=0.01)

    def test_daemon_tracks_bytes(self, seven_b, default_platform):
        saver = TwoStageSaver(default_platform)
        decode_tbt_with_saving(seven_b, default_platform, 8, 512, saver)
        assert saver.daemon.backlog_bytes >= 0

    def test_negative_batch_rejected(self, default_platform):
        saver = TwoStageSaver(default_platform)
        with pytest.raises(ConfigError):
            saver.layer_stall(-1, 100, 1e-3)


class TestDirectIO:
    def test_small_batch_no_stall(self, seven_b, default_platform):
        """Fig. 14: DirectIO matches ideal while IO fits in a layer's
        decode time."""
        saver = DirectIOSaver(default_platform)
        impact = decode_tbt_with_saving(seven_b, default_platform, 2, 512, saver)
        assert impact.overhead_fraction < 0.05

    def test_large_batch_stalls(self, seven_b, default_platform):
        """Fig. 14a: 7B TBT inflates noticeably by batch size 16."""
        saver = DirectIOSaver(default_platform)
        impact = decode_tbt_with_saving(seven_b, default_platform, 16, 512, saver)
        assert impact.overhead_fraction > 0.15

    def test_overhead_grows_with_batch(self, seven_b, default_platform):
        saver = DirectIOSaver(default_platform)
        overheads = [
            decode_tbt_with_saving(seven_b, default_platform, b, 512, saver).overhead_fraction
            for b in (2, 8, 16, 24)
        ]
        assert overheads == sorted(overheads)

    def test_13b_less_affected_than_7b(self, seven_b, thirteen_b, default_platform):
        """Fig. 14b: slower layers absorb more of the write latency."""
        saver = DirectIOSaver(default_platform)
        f7 = decode_tbt_with_saving(seven_b, default_platform, 16, 512, saver)
        f13 = decode_tbt_with_saving(thirteen_b, default_platform, 16, 512, saver)
        assert f13.overhead_fraction < f7.overhead_fraction

    def test_two_stage_beats_directio_at_scale(self, seven_b, default_platform):
        two = decode_tbt_with_saving(
            seven_b, default_platform, 24, 512, TwoStageSaver(default_platform)
        )
        direct = decode_tbt_with_saving(
            seven_b, default_platform, 24, 512, DirectIOSaver(default_platform)
        )
        assert direct.tbt > two.tbt

    def test_dram_platform_uses_default_ssd(self):
        saver = DirectIOSaver(platform_preset("a100-dram"))
        assert saver.ssd.name == "PM9A3"


class TestValidation:
    def test_zero_batch_rejected(self, seven_b, default_platform):
        with pytest.raises(ConfigError):
            decode_tbt_with_saving(seven_b, default_platform, 0, 512, NoSaver())

    def test_impact_fields_consistent(self, seven_b, default_platform):
        impact = decode_tbt_with_saving(
            seven_b, default_platform, 8, 512, DirectIOSaver(default_platform)
        )
        assert impact.tbt == pytest.approx(impact.base_tbt + impact.stall)
