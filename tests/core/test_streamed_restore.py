"""Bit-exactness and breakdown tests for the chunk-streamed restore.

The chunk-granular pipeline (streamed reads + fused per-chunk projection)
must reproduce *exactly* the states the naive whole-layer reference path
(:mod:`repro.models.reference`) computes from the same stored data —
across partial tail chunks, GQA configs, layernorm/no-RoPE models, mixed
partition schemes, and DRAM- vs SSD-backed arrays.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.hcache import HCacheEngine, RestoreBreakdown
from repro.core.partition import PartitionScheme
from repro.core.profiler import build_storage_array
from repro.errors import ConfigError
from repro.models.config import model_preset
from repro.models.kv_cache import KVCache
from repro.models.reference import NaiveKVCache
from repro.models.transformer import Transformer
from repro.simulator import platform_preset
from repro.simulator.pipeline import LayerMethod
from repro.storage import StorageManager


def build_engine(config, platform_name="default", scheme=None, granule_chunks=4):
    model = Transformer.from_seed(config, seed=11)
    manager = StorageManager(build_storage_array(platform_preset(platform_name)))
    engine = HCacheEngine(
        model, manager, scheme=scheme, stream_granule_chunks=granule_chunks
    )
    return model, engine


def save_rounds(engine, model, config, n_tokens, seal=True, block=37):
    """Persist a prefilled context in several append blocks."""
    rng = np.random.default_rng(5)
    tokens = rng.integers(0, config.vocab_size, size=n_tokens)
    engine.register_context("c")
    result, cache = model.prefill(tokens, capture_hidden=True)
    hidden = result.hidden_states
    for start in range(0, n_tokens, block):
        stop = min(start + block, n_tokens)
        engine.save_states(
            "c", [h[start:stop] for h in hidden], tokens[start:stop], kv_cache=cache
        )
    if seal:
        engine.seal("c")
    return cache, hidden


def reference_restore(model, engine, n_tokens):
    """The naive whole-layer oracle, fed from the same stored state."""
    config = model.config
    scheme = engine.scheme
    cache = NaiveKVCache(config)
    hidden = [None] * config.n_layers
    for layer in range(config.n_layers):
        if scheme.methods[layer] is LayerMethod.HIDDEN:
            hidden[layer] = engine.storage.load_layer("c", layer, kind="hidden")
    for layer, h in enumerate(hidden):
        if h is not None:
            k, v = model.project_kv(layer, h, np.arange(n_tokens))
            cache.install(layer, k, v)
    for layer in range(config.n_layers):
        if scheme.methods[layer] is LayerMethod.KV:
            cache.install_packed(layer, engine.storage.load_layer("c", layer, kind="kv"))
    return cache


def assert_layers_bit_equal(restored, reference, layers):
    for layer in layers:
        k1, v1 = restored.get(layer)
        k2, v2 = reference.get(layer)
        assert np.array_equal(k1, k2), f"layer {layer} keys differ"
        assert np.array_equal(v1, v2), f"layer {layer} values differ"


GQA_CONFIG = replace(
    model_preset("tiny-llama"), name="tiny-gqa", n_kv_heads=2, n_heads=4
)


class TestBitExactness:
    @pytest.mark.parametrize("n_tokens", [5, 64, 100, 197, 256])
    def test_partial_tail_chunks(self, n_tokens):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_rounds(engine, model, config, n_tokens)
        restored = engine.restore("c")
        reference = reference_restore(model, engine, n_tokens)
        assert_layers_bit_equal(restored, reference, range(config.n_layers))

    @pytest.mark.parametrize("granule_chunks", [1, 2, 4, 8])
    def test_granule_size_invariant(self, granule_chunks):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config, granule_chunks=granule_chunks)
        save_rounds(engine, model, config, 197)
        restored = engine.restore("c")
        reference = reference_restore(model, engine, 197)
        assert_layers_bit_equal(restored, reference, range(config.n_layers))

    def test_gqa_config(self):
        model, engine = build_engine(GQA_CONFIG)
        save_rounds(engine, model, GQA_CONFIG, 150)
        restored = engine.restore("c")
        reference = reference_restore(model, engine, 150)
        assert_layers_bit_equal(restored, reference, range(GQA_CONFIG.n_layers))

    def test_layernorm_no_rope_config(self):
        config = model_preset("tiny-opt")
        model, engine = build_engine(config)
        save_rounds(engine, model, config, 130)
        restored = engine.restore("c")
        reference = reference_restore(model, engine, 130)
        assert_layers_bit_equal(restored, reference, range(config.n_layers))

    def test_mixed_hidden_kv_scheme(self):
        config = model_preset("tiny-llama")
        scheme = PartitionScheme.with_kv_suffix(config.n_layers, 2)
        model, engine = build_engine(config, scheme=scheme)
        cache, _ = save_rounds(engine, model, config, 145)
        restored = engine.restore("c")
        reference = reference_restore(model, engine, 145)
        assert_layers_bit_equal(restored, reference, range(config.n_layers))
        # KV layers also match the live cache they were saved from.
        for layer in scheme.layers_with(LayerMethod.KV):
            k1, v1 = restored.get(layer)
            k2, v2 = cache.get(layer)
            assert np.array_equal(k1, k2) and np.array_equal(v1, v2)

    def test_dram_tier_matches_ssd_tier(self):
        config = model_preset("tiny-llama")
        model_a, engine_ssd = build_engine(config, "default")
        model_b, engine_dram = build_engine(config, "a100-dram")
        save_rounds(engine_ssd, model_a, config, 170)
        save_rounds(engine_dram, model_b, config, 170)
        a = engine_ssd.restore("c")
        b = engine_dram.restore("c")
        assert a.equals(b, atol=0.0)

    def test_matches_live_cache_exactly_for_prefill_states(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        cache, _ = save_rounds(engine, model, config, 197)
        restored = engine.restore("c")
        assert restored.equals(cache, atol=0.0)

    def test_unsealed_tail_restores_from_host_buffer(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        cache, _ = save_rounds(engine, model, config, 97, seal=False)
        restored = engine.restore("c")
        assert restored.equals(cache, atol=0.0)


class TestRestoreBreakdown:
    def test_stage_accounting_filled(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_rounds(engine, model, config, 256)
        stats = RestoreBreakdown()
        engine.restore("c", stats=stats)
        assert stats.n_tokens == 256
        assert stats.granules == config.n_layers  # 256 tokens, 4-chunk granules
        assert stats.device_reads == config.n_layers * 4
        assert stats.read_s > 0
        assert stats.projection.chunks == stats.granules
        assert stats.projection.norm_s > 0
        assert stats.projection.gemm_s > 0
        assert stats.projection.rope_s > 0  # tiny-llama uses RoPE
        assert stats.projection.elementwise_s == pytest.approx(
            stats.projection.norm_s + stats.projection.rope_s
        )

    def test_no_rope_model_reports_zero_rope_time(self):
        config = model_preset("tiny-opt")
        model, engine = build_engine(config)
        save_rounds(engine, model, config, 128)
        stats = RestoreBreakdown()
        engine.restore("c", stats=stats)
        assert stats.projection.rope_s == 0.0
        assert stats.projection.gemm_s > 0

    def test_pipelined_makespan_bounded_by_serial(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_rounds(engine, model, config, 256)
        stats = RestoreBreakdown()
        engine.restore("c", stats=stats)
        assert stats.modelled_io_s > 0
        assert stats.modelled_pipelined_s >= stats.modelled_io_s
        assert stats.modelled_pipelined_s <= stats.modelled_serial_s + 1e-12

    def test_recompute_prefix_overlaps_stream(self):
        config = model_preset("tiny-llama")
        scheme = PartitionScheme.with_recompute_prefix(config.n_layers, 1)
        model, engine = build_engine(config, scheme=scheme)
        save_rounds(engine, model, config, 128)
        stats = RestoreBreakdown()
        restored = engine.restore("c", stats=stats)
        assert stats.recompute_s > 0
        assert len(restored) == 128
        # The prefix replay needs no stored bytes: pipelined < serial.
        assert stats.modelled_pipelined_s < stats.modelled_serial_s

    def test_untimed_restore_leaves_no_stats(self):
        config = model_preset("tiny-llama")
        model, engine = build_engine(config)
        save_rounds(engine, model, config, 64)
        restored = engine.restore("c")
        assert len(restored) == 64


class TestChunkProjectionValidation:
    def test_bad_chunk_shape_rejected(self):
        config = model_preset("tiny-llama")
        model = Transformer.from_seed(config, seed=0)
        ws = model.restore_workspace(np.arange(8), 8)
        k = np.empty((4, config.n_kv_heads, config.head_dim), dtype=np.float32)
        v = np.empty_like(k)
        with pytest.raises(ConfigError):
            model.project_kv_chunk(0, np.zeros((4, 3), np.float32), 0, k, v, ws)

    def test_chunk_beyond_workspace_rejected(self):
        config = model_preset("tiny-llama")
        model = Transformer.from_seed(config, seed=0)
        ws = model.restore_workspace(np.arange(8), 4)
        h = np.zeros((8, config.hidden_size), np.float32)
        k = np.empty((8, config.n_kv_heads, config.head_dim), dtype=np.float32)
        with pytest.raises(ConfigError):
            model.project_kv_chunk(0, h, 0, k, np.empty_like(k), ws)

    def test_rows_outside_positions_rejected(self):
        config = model_preset("tiny-llama")
        model = Transformer.from_seed(config, seed=0)
        ws = model.restore_workspace(np.arange(8), 8)
        h = np.zeros((8, config.hidden_size), np.float32)
        k = np.empty((8, config.n_kv_heads, config.head_dim), dtype=np.float32)
        with pytest.raises(ConfigError):
            model.project_kv_chunk(0, h, 4, k, np.empty_like(k), ws)

    def test_invalid_granule_chunks_rejected(self):
        config = model_preset("tiny-llama")
        model = Transformer.from_seed(config, seed=0)
        manager = StorageManager(build_storage_array(platform_preset("default")))
        with pytest.raises(ConfigError):
            HCacheEngine(model, manager, stream_granule_chunks=0)

    def test_chunk_matches_whole_layer_projection(self):
        """project_kv_chunk over row slices == project_kv over the layer."""
        config = GQA_CONFIG
        model = Transformer.from_seed(config, seed=3)
        rng = np.random.default_rng(0)
        n = 197
        hidden = rng.normal(size=(n, config.hidden_size)).astype(np.float32)
        positions = np.arange(n)
        k_ref, v_ref = model.project_kv(1, hidden, positions)
        ws = model.restore_workspace(positions, 64)
        cache = KVCache(config)
        cache.reserve(n)
        k_view, v_view = cache.install_view(1, n)
        for start in range(0, n, 64):
            stop = min(start + 64, n)
            model.project_kv_chunk(
                1, hidden[start:stop], start,
                k_view[start:stop], v_view[start:stop], ws,
            )
        assert np.array_equal(k_view, k_ref)
        assert np.array_equal(v_view, v_ref)
