"""Tests for sweep helpers."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import crossover, sweep
from repro.errors import ConfigError


class TestSweep:
    def test_calls_with_axis_value(self):
        points = sweep(lambda x, y: x + y, "x", [1, 2, 3], y=10)
        assert [p.value for p in points] == [11, 12, 13]

    def test_params_recorded(self):
        points = sweep(lambda x: x, "x", [5])
        assert points[0].params == {"x": 5}

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError):
            sweep(lambda x: x, "x", [])


class TestCrossover:
    def test_finds_crossover(self):
        points = sweep(
            lambda n: {"a": n * 2, "b": 10}, "n", [1, 3, 5, 7]
        )
        assert crossover(points, "a", "b") == 5

    def test_no_crossover(self):
        points = sweep(lambda n: {"a": 1, "b": 10}, "n", [1, 2])
        assert crossover(points, "a", "b") is None

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            crossover([], "a", "b")
