"""Tests for benchmark reporting helpers."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import PaperExpectation, ResultTable, render_expectations
from repro.errors import ConfigError


class TestResultTable:
    def test_render_contains_headers_and_rows(self):
        table = ResultTable("Demo", ["model", "speed"])
        table.add_row("7b", 12.5)
        text = table.render()
        assert "Demo" in text
        assert "model" in text
        assert "12.5" in text

    def test_row_width_checked(self):
        table = ResultTable("Demo", ["a", "b"])
        with pytest.raises(ConfigError):
            table.add_row(1)

    def test_alignment(self):
        table = ResultTable("T", ["name", "x"])
        table.add_row("long-name-here", 1)
        table.add_row("s", 2)
        lines = table.render().splitlines()
        row1, row2 = lines[4:]
        assert len(row1) == len(row2)
        assert row1.index("1") == row2.index("2")

    def test_float_formatting(self):
        table = ResultTable("T", ["v"])
        table.add_row(1234.5)
        table.add_row(0.001234)
        text = table.render()
        assert "1,234" in text or "1,235" in text
        assert "0.001" in text


class TestExpectations:
    def test_render_marks(self):
        good = PaperExpectation("x", "1.9x", "1.85x", holds=True)
        bad = PaperExpectation("y", "2x", "0.5x", holds=False)
        text = render_expectations([good, bad])
        assert "[OK ]" in text
        assert "[DIFF]" in text
