"""hot-path: manifest functions stay allocation-free."""

from repro.lint import HotPathRule

BAD_MANIFEST = {
    "fixtures/hot_bad.py": frozenset({"step", "Decoder.advance", "Decoder.gone"})
}
GOOD_MANIFEST = {"fixtures/hot_good.py": frozenset({"step", "Decoder.advance"})}


def test_bad_fixture_reports_every_allocation(run_rules):
    findings = run_rules("hot_bad.py", [HotPathRule(manifest=BAD_MANIFEST)])
    assert all(f.rule == "hot-path" for f in findings)
    messages = [f.message for f in findings]
    assert any("np.concatenate" in m for m in messages)
    assert any(".copy()" in m for m in messages)
    assert any("np.ascontiguousarray" in m for m in messages)
    assert any("np.vstack" in m for m in messages)
    assert any("grows list 'parts' inside a loop" in m for m in messages)


def test_stale_manifest_entry_is_flagged(run_rules):
    findings = run_rules("hot_bad.py", [HotPathRule(manifest=BAD_MANIFEST)])
    assert any(
        "manifest names 'Decoder.gone'" in f.message for f in findings
    ), "renaming a hot function without updating the manifest must be loud"


def test_good_fixture_is_clean_including_cold_helpers(run_rules):
    assert run_rules("hot_good.py", [HotPathRule(manifest=GOOD_MANIFEST)]) == []


def test_module_not_in_manifest_is_skipped(run_rules):
    assert run_rules("hot_bad.py", [HotPathRule(manifest=GOOD_MANIFEST)]) == []


def test_default_manifest_points_at_real_functions():
    # Every default manifest entry must resolve against the live tree —
    # the staleness guard in reverse (see test_gate for the live run).
    from repro.lint import HOT_PATHS

    for suffix, names in HOT_PATHS.items():
        assert suffix.endswith(".py")
        assert names, f"{suffix}: empty manifest entry"
