"""api-surface: __all__ matches the public namespace."""

from repro.lint import ApiSurfaceRule


def test_bad_fixture_reports_each_kind_of_drift(run_rules):
    findings = run_rules("api_bad.py", [ApiSurfaceRule()])
    assert [f.rule for f in findings] == ["api-surface"] * 3
    messages = [f.message for f in findings]
    assert any("lists 'visible' twice" in m for m in messages)
    assert any("exports 'missing_name'" in m for m in messages)
    assert any("public name 'stray'" in m for m in messages)


def test_good_fixture_is_clean(run_rules):
    # Underscore-prefixed names and aliased imports stay private.
    assert run_rules("api_good.py", [ApiSurfaceRule()]) == []


def test_module_without_all_is_not_checked(run_rules, tmp_path):
    from repro.lint import check_module, load_module

    path = tmp_path / "no_all.py"
    path.write_text("def anything():\n    return 1\n")
    module = load_module(path)
    assert check_module(module, [ApiSurfaceRule()]) == []
