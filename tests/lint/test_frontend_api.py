"""frontend-api: pinned serving surface + no internal legacy callers."""

from pathlib import Path

from repro.lint import Finding, FrontendApiRule, check_module, load_module
from repro.lint.rules.frontend_api import PINNED_SURFACES

REPO_ROOT = Path(__file__).resolve().parents[2]


def _check_source(tmp_path, relative, source):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    module = load_module(path)
    assert not isinstance(module, Finding)
    return check_module(module, [FrontendApiRule()])


def test_bad_fixture_flags_both_deprecated_entry_points(run_rules):
    findings = run_rules("frontend_bad.py", [FrontendApiRule()])
    assert [f.rule for f in findings] == ["frontend-api"] * 2
    assert any("'chat_rounds'" in f.message for f in findings)
    assert any("'decode_iteration'" in f.message for f in findings)
    assert all("MIGRATION" in f.hint for f in findings)


def test_good_fixture_is_clean(run_rules):
    assert run_rules("frontend_good.py", [FrontendApiRule()]) == []


def test_shim_module_may_define_and_call_the_legacy_names(tmp_path):
    source = "def run(self):\n    return self.decode_iteration({})\n"
    findings = _check_source(
        tmp_path, "repro/engine/numeric_engine.py", source
    )
    assert findings == []


def test_pinned_surface_drift_is_reported(tmp_path):
    source = '__all__ = ["ServingRequest", "Rogue"]\n\nServingRequest = Rogue = object\n'
    findings = _check_source(tmp_path, "repro/engine/api.py", source)
    assert [f.rule for f in findings] == ["frontend-api"]
    assert "unexpected: Rogue" in findings[0].message
    assert "missing: IterationResult" in findings[0].message


def test_missing_all_in_pinned_module_is_reported(tmp_path):
    findings = _check_source(tmp_path, "repro/engine/frontend.py", "x = 1\n")
    assert [f.rule for f in findings] == ["frontend-api"]
    assert "must declare the pinned __all__" in findings[0].message


def test_real_frontend_modules_match_the_pin():
    for suffix in PINNED_SURFACES:
        module = load_module(REPO_ROOT / "src" / suffix)
        assert not isinstance(module, Finding)
        assert check_module(module, [FrontendApiRule()]) == []
