"""Fixture: a surface where __all__ and the namespace agree."""

from os.path import join as _join

__all__ = ["visible"]

_INTERNAL = 3


def visible():
    return _join("a", "b")


def _helper():
    return _INTERNAL
