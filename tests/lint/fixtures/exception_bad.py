"""Fixture: exception-safety violations the rule must reject (4 seeded)."""

import time
from time import sleep


def risky():
    raise OSError("boom")


def swallow_all():
    try:
        risky()
    except:
        pass


def swallow_base():
    try:
        risky()
    except BaseException:
        return None


def nap():
    time.sleep(0.1)


def nap_imported():
    sleep(0.1)
