"""Fixture: every waiver form the framework accepts."""

import time


def nap_trailing():
    time.sleep(0.1)  # lint: disable=exception-safety -- fixture: deliberate wall-clock pause


def nap_standalone():
    # lint: disable=exception-safety -- fixture: standalone form covers the next line
    time.sleep(0.2)


def nap_multi_rule():
    time.sleep(0.3)  # lint: disable=exception-safety,hot-path -- fixture: several rules, one reason
