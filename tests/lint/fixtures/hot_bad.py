"""Fixture: hot-path allocations the rule must reject (5 seeded).

The test injects a manifest listing ``step`` and ``Decoder.advance`` (and
a ``Decoder.gone`` that does not exist, to exercise the staleness guard).
"""

import numpy as np


def step(xs, out):
    joined = np.concatenate(xs)
    dup = out.copy()
    flat = np.ascontiguousarray(out)
    parts = []
    for x in xs:
        parts.append(x)
    return joined, dup, flat, parts


class Decoder:
    def advance(self, token):
        return np.vstack([token, token])
