"""Fixture: commit-point orderings the rule must reject (3 seeded)."""


class Store:
    def save(self, key, payload):
        # Journal record lands before the payload exists on the device.
        self.journal.append({"op": "chunk", "key": key})
        self.device.write(key, payload)

    def save_branchy(self, key, payload):
        if payload.nbytes:
            self.device.write(key, payload)
        # On the else path the write never happened.
        self.journal.append({"op": "seal", "key": key})

    def free(self, context_id):
        self.device.delete(context_id)
        # A crash between the delete and this record resurrects the
        # half-deleted context on replay.
        self.journal.append({"op": "free", "context_id": context_id})
