"""Fixture: internal callers of the deprecated entry points (2 seeded)."""


def legacy_driver(engine, rounds, prompts):
    tokens = engine.chat_rounds(rounds, prompts, n_output_tokens=4)
    return engine.decode_iteration({"s": 1}), tokens
