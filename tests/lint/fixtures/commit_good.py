"""Fixture: correct durability orderings the rule must accept."""


class Store:
    def save(self, key, payload):
        self.device.write(key, payload)
        self.journal.append({"op": "chunk", "key": key})

    def save_loop(self, keys, payloads):
        for key, payload in zip(keys, payloads):
            self.device.write(key, payload)
        self.journal.append({"op": "seal", "keys": list(keys)})

    def save_try(self, key, payload):
        self.device.write(key, payload)
        try:
            self.journal.append({"op": "chunk", "key": key})
        except OSError:
            self.journal.append({"op": "chunk", "key": key, "retry": True})

    def save_nested(self, key, payload):
        def flush(chunk):
            self.device.write(key, chunk)
            self.journal.append({"op": "chunk", "key": key})

        flush(payload)

    def free(self, context_id):
        self.journal.append({"op": "free", "context_id": context_id})
        self.device.delete(context_id)

    def register(self, context_id):
        # Metadata-only records carry no payload-ordering obligation.
        self.journal.append({"op": "register", "context_id": context_id})
