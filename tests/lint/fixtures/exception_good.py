"""Fixture: sanctioned exception handling the rule must accept."""


def risky():
    raise OSError("boom")


def narrow():
    try:
        risky()
    except OSError:
        raise


def contained():
    try:
        risky()
    # lint: disable=exception-safety -- fixture drain: settles in-flight work, then re-raises
    except BaseException:
        raise
