"""Fixture: __all__ drift the rule must reject (3 seeded)."""

from os.path import join

__all__ = ["join", "missing_name", "visible", "visible"]


def visible():
    return join("a", "b")


def stray():
    return 1
