"""Fixture: a waiver without the mandatory reason (bad-waiver)."""

import time


def nap():
    time.sleep(0.1)  # lint: disable=exception-safety
