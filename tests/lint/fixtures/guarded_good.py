"""Fixture: correct lock discipline the rule must accept."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self._hits += 1

    def peek(self):
        with self._lock:
            return self._hits

    def _bump_locked(self):  # holds: _lock
        self._hits += 1

    def bump_twice(self):
        with self._lock:
            self._bump_locked()
            self._bump_locked()

    def racy_telemetry(self):
        return self._hits  # lint: disable=guarded-by -- fixture: torn read acceptable for telemetry
