"""Fixture: allocation-free hot-path code the rule must accept."""

import numpy as np


def step(xs, out):
    total = 0
    for i, x in enumerate(xs):
        np.copyto(out[i], x)
        total += int(x.sum())
    return total


class Decoder:
    def advance(self, token, out):
        out[:] = token
        return out


def cold_helper(xs):
    # Not in the manifest: allocations off the hot path are fine.
    return np.concatenate(xs)
