"""Fixture: a latency-emulation module where ``time.sleep`` is allowed.

The test constructs ``ExceptionSafetyRule`` with this file in its
``sleep_modules`` allowlist.
"""

import time


def emulate(seconds):
    time.sleep(seconds)
