"""Fixture: the submit/step surface the redesign points callers at."""


def modern_driver(frontend, requests):
    handles = [frontend.submit(request) for request in requests]
    frontend.run_until_idle()
    return [handle.result() for handle in handles]
