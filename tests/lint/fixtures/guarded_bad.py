"""Fixture: guarded-by violations the rule must catch (4 seeded)."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock
        self._ghost = 0  # guarded-by: _missing_lock

    def bump(self):
        self._hits += 1

    def peek(self):
        return self._hits

    def deferred(self):
        with self._lock:

            def callback():
                # A closure may outlive the with-block: not covered.
                return self._hits

            return callback
