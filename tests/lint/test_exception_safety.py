"""exception-safety: no silent failure, no stray sleeps."""

from repro.lint import ExceptionSafetyRule


def test_bad_fixture_reports_handlers_and_sleeps(run_rules):
    findings = run_rules("exception_bad.py", [ExceptionSafetyRule()])
    assert [f.rule for f in findings] == ["exception-safety"] * 4
    messages = [f.message for f in findings]
    assert any("bare `except:`" in m for m in messages)
    assert any("except BaseException" in m for m in messages)
    assert sum("time.sleep outside" in m for m in messages) == 2


def test_from_import_sleep_is_caught(run_rules):
    findings = run_rules("exception_bad.py", [ExceptionSafetyRule()])
    # `from time import sleep; sleep(...)` must not dodge the rule.
    assert any(f.line == 30 for f in findings)


def test_good_fixture_waived_drain_is_clean(run_rules):
    assert run_rules("exception_good.py", [ExceptionSafetyRule()]) == []


def test_sleep_allowlist_module_is_clean(run_rules):
    rule = ExceptionSafetyRule(
        sleep_modules=("fixtures/exception_sleep_ok.py",)
    )
    assert run_rules("exception_sleep_ok.py", [rule]) == []


def test_sleep_outside_allowlist_is_flagged(run_rules):
    findings = run_rules("exception_sleep_ok.py", [ExceptionSafetyRule()])
    assert len(findings) == 1
    assert "time.sleep outside" in findings[0].message
