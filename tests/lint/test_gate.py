"""The zero-findings gate, and injected-violation smoke tests.

The gate (``python -m repro.lint src`` in ``scripts/check.sh``) only
means something if (a) the live tree is clean and (b) the analyzer would
actually catch the regressions it exists for.  The smoke tests prove (b)
end to end: copy a real source file into a scratch tree, re-introduce a
historical bug class with a minimal mutation, and require the analyzer
to flag it.
"""

import shutil
from pathlib import Path

from repro.lint import check_paths, default_rules

SRC = Path(__file__).resolve().parents[2] / "src"


def _copy_into_tree(tmp_path, rel):
    """Copy ``src/<rel>`` to ``tmp/<rel>`` so path-keyed rules still apply."""
    dest = tmp_path / rel
    dest.parent.mkdir(parents=True, exist_ok=True)
    shutil.copyfile(SRC / rel, dest)
    return dest


def test_source_tree_is_clean():
    assert check_paths([SRC], default_rules()) == []


def test_pristine_copies_are_clean(tmp_path):
    for rel in ("repro/storage/device.py", "repro/storage/manager.py"):
        _copy_into_tree(tmp_path, rel)
    assert check_paths([tmp_path], default_rules()) == []


def test_injected_unguarded_counter_is_caught(tmp_path):
    dest = _copy_into_tree(tmp_path, "repro/storage/device.py")
    dest.write_text(
        dest.read_text()
        + "\n    def poke(self):\n        self._reads += 1\n"
    )
    findings = check_paths([tmp_path], default_rules())
    assert len(findings) == 1
    assert findings[0].rule == "guarded-by"
    assert "_reads is written without holding self._stats_lock" in findings[0].message


def test_injected_journal_before_write_is_caught(tmp_path):
    dest = _copy_into_tree(tmp_path, "repro/storage/manager.py")
    source = dest.read_text()
    target = "            device.write(key, payload)"
    assert source.count(target) == 1, "flush_chunk write site moved; update test"
    dest.write_text(
        source.replace(
            target,
            '            self.journal.append({"op": "chunk"})\n' + target,
        )
    )
    findings = check_paths([tmp_path], default_rules())
    assert len(findings) == 1
    assert findings[0].rule == "commit-point"
    assert "'chunk' record appended before" in findings[0].message


def test_injected_delete_before_free_record_is_caught(tmp_path):
    dest = _copy_into_tree(tmp_path, "repro/storage/manager.py")
    source = dest.read_text()
    # Move the free record below the device-deletion loop: the
    # resurrect-on-replay ordering §6.2 forbids.
    record = (
        "        if self.journal is not None:\n"
        '            self.journal.append({"op": "free", "context_id": context_id})\n'
    )
    anchor = "        self._token_logs.pop(context_id, None)\n"
    assert source.count(record) == 1, "free-record site moved; update test"
    assert source.count(anchor) == 1
    dest.write_text(source.replace(record, "").replace(anchor, record + anchor))
    findings = check_paths([tmp_path], default_rules())
    assert len(findings) == 1
    assert findings[0].rule == "commit-point"
    assert "after a deletion" in findings[0].message


def test_injected_hot_path_copy_is_caught(tmp_path):
    dest = _copy_into_tree(tmp_path, "repro/storage/device.py")
    source = dest.read_text()
    target = "        np.copyto(out, payload)"
    assert source.count(target) == 1
    dest.write_text(source.replace(target, "        out[:] = payload.copy()"))
    findings = check_paths([tmp_path], default_rules())
    assert len(findings) == 1
    assert findings[0].rule == "hot-path"
    assert "StorageDevice.read_into" in findings[0].message
