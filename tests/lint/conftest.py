"""Shared helpers for the repro.lint self-tests."""

from pathlib import Path

import pytest

from repro.lint import Finding, check_module, load_module

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def run_rules():
    """Run rules over one fixture file, waivers applied, findings sorted."""

    def _run(fixture_name, rules):
        module = load_module(FIXTURES / fixture_name)
        assert not isinstance(module, Finding), f"fixture failed to parse: {module}"
        return sorted(check_module(module, rules))

    return _run
