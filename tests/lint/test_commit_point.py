"""commit-point: journal records obey the §6.2 durability ordering."""

from repro.lint import CommitPointRule


def test_bad_fixture_reports_each_reordering(run_rules):
    findings = run_rules("commit_bad.py", [CommitPointRule()])
    assert [f.rule for f in findings] == ["commit-point"] * 3
    messages = [f.message for f in findings]
    assert any("'chunk' record appended before" in m for m in messages)
    assert any("'seal' record appended before" in m for m in messages)
    assert any("'free' record appended after a deletion" in m for m in messages)


def test_branch_missing_write_is_flagged_at_the_append(run_rules):
    findings = run_rules("commit_bad.py", [CommitPointRule()])
    seal = next(f for f in findings if "'seal'" in f.message)
    # The finding anchors to the journal.append call, not the if.
    assert seal.line == 14


def test_good_fixture_is_clean(run_rules):
    # Covers: straight-line order, write-in-loop before seal, try/except
    # around the append, the nested flush closure, free-before-delete,
    # and metadata-only records.
    assert run_rules("commit_good.py", [CommitPointRule()]) == []
