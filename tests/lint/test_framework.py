"""Framework behaviour: waivers, parse errors, file collection, rendering."""

from pathlib import Path

from repro.lint import (
    ExceptionSafetyRule,
    Finding,
    check_module,
    check_paths,
    collect_files,
    load_module,
)

import pytest


# -- waivers ------------------------------------------------------------


def test_waiver_without_reason_is_bad_waiver(run_rules):
    findings = run_rules("waiver_missing_reason.py", [ExceptionSafetyRule()])
    assert [f.rule for f in findings] == ["bad-waiver"]
    assert "must carry a reason" in findings[0].message


def test_all_waiver_forms_suppress_with_reason(run_rules):
    # Trailing, standalone-above, and multi-rule forms all carry reasons
    # and therefore suppress cleanly.
    assert run_rules("waiver_ok.py", [ExceptionSafetyRule()]) == []


def test_bad_waiver_cannot_be_waived(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "import time\n"
        "\n"
        "\n"
        "def nap():\n"
        "    time.sleep(0.1)  # lint: disable=exception-safety,bad-waiver\n"
    )
    module = load_module(path)
    findings = check_module(module, [ExceptionSafetyRule()])
    assert [f.rule for f in findings] == ["bad-waiver"]


def test_waiver_only_covers_its_line(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "import time\n"
        "\n"
        "\n"
        "def nap():\n"
        "    time.sleep(0.1)  # lint: disable=exception-safety -- first only\n"
        "    time.sleep(0.2)\n"
    )
    module = load_module(path)
    findings = check_module(module, [ExceptionSafetyRule()])
    assert len(findings) == 1
    assert findings[0].line == 6


def test_waiver_for_other_rule_does_not_suppress(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "import time\n"
        "\n"
        "\n"
        "def nap():\n"
        "    time.sleep(0.1)  # lint: disable=hot-path -- wrong rule\n"
    )
    module = load_module(path)
    findings = check_module(module, [ExceptionSafetyRule()])
    assert [f.rule for f in findings] == ["exception-safety"]


# -- loading and collection --------------------------------------------


def test_syntax_error_becomes_parse_error_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    result = load_module(path)
    assert isinstance(result, Finding)
    assert result.rule == "parse-error"
    # check_paths carries it through instead of crashing the run.
    findings = check_paths([tmp_path], [ExceptionSafetyRule()])
    assert [f.rule for f in findings] == ["parse-error"]


def test_collect_files_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        collect_files([Path("/no/such/dir")])


def test_collect_files_skips_pycache(tmp_path):
    (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__" / "mod.cpython-312.py").write_text("x = 1\n")
    files = collect_files([tmp_path])
    assert [f.name for f in files] == ["mod.py"]


def test_collect_files_accepts_single_file(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("x = 1\n")
    assert collect_files([path]) == [path]


# -- findings -----------------------------------------------------------


def test_render_format():
    finding = Finding("a/b.py", 7, 3, "guarded-by", "boom", hint="fix it")
    assert finding.render() == "a/b.py:7:3: guarded-by: boom\n    hint: fix it"
    bare = Finding("a/b.py", 7, 3, "guarded-by", "boom")
    assert "\n" not in bare.render()


def test_findings_sort_by_location():
    a = Finding("a.py", 2, 0, "r", "m")
    b = Finding("a.py", 10, 0, "r", "m")
    c = Finding("b.py", 1, 0, "r", "m")
    assert sorted([c, b, a]) == [a, b, c]
