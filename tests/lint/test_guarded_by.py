"""guarded-by: lock-annotated attributes need their lock held."""

from repro.lint import GuardedByRule


def test_bad_fixture_reports_every_unguarded_access(run_rules):
    findings = run_rules("guarded_bad.py", [GuardedByRule()])
    assert [f.rule for f in findings] == ["guarded-by"] * 4
    messages = [f.message for f in findings]
    assert any("never assigns self._missing_lock" in m for m in messages)
    assert any("_hits is written without holding" in m for m in messages)
    # Two unguarded reads: the plain property and the closure that
    # escapes the with-block.
    assert sum("_hits is read without holding" in m for m in messages) == 2


def test_closure_does_not_inherit_enclosing_with(run_rules):
    findings = run_rules("guarded_bad.py", [GuardedByRule()])
    closure_reads = [
        f for f in findings if "read" in f.message and f.line > 18
    ]
    assert closure_reads, "the escaping closure's read must be flagged"


def test_good_fixture_is_clean(run_rules):
    assert run_rules("guarded_good.py", [GuardedByRule()]) == []


def test_findings_carry_location_and_hint(run_rules):
    findings = run_rules("guarded_bad.py", [GuardedByRule()])
    for finding in findings:
        assert finding.path.endswith("guarded_bad.py")
        assert finding.line > 0
        assert finding.hint
