"""CLI contract: exit codes 0 (clean) / 1 (findings) / 2 (usage error)."""

import os
import subprocess
import sys
from pathlib import Path

from repro.lint.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_findings_exit_one_and_render(capsys):
    assert main([str(FIXTURES / "exception_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "exception-safety" in out
    assert "hint:" in out
    assert "findings" in out


def test_missing_path_exits_two(capsys):
    assert main(["/no/such/path"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_unknown_rule_exits_two(capsys):
    assert main(["--rule", "no-such-rule", str(FIXTURES)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_rule_filter_limits_scope(capsys):
    # api_bad.py violates only api-surface; filtered to another rule the
    # file is clean.
    assert main(["--rule", "guarded-by", str(FIXTURES / "api_bad.py")]) == 0
    assert main(["--rule", "api-surface", str(FIXTURES / "api_bad.py")]) == 1


def test_list_rules_names_all_five(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "guarded-by",
        "commit-point",
        "hot-path",
        "exception-safety",
        "api-surface",
    ):
        assert rule in out


def test_module_entry_point_runs_as_subprocess():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout
