"""Tests for Zipfian popularity sampling (§6.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.traces.zipf import ZipfianSampler


class TestDistribution:
    def test_uniform_when_alpha_none(self):
        sampler = ZipfianSampler(10, None, seed=0)
        assert np.allclose(sampler.probabilities, 0.1)

    def test_alpha_zero_uniform(self):
        sampler = ZipfianSampler(10, 0.0, seed=0)
        assert np.allclose(sampler.probabilities, 0.1)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfianSampler(50, 1.4, seed=0)
        assert sampler.probabilities.sum() == pytest.approx(1.0)

    def test_skew_orders_probabilities(self):
        sampler = ZipfianSampler(20, 1.5, seed=0)
        probs = sampler.probabilities
        assert np.all(np.diff(probs) <= 0)

    def test_higher_alpha_more_concentrated(self):
        """The mechanism behind Fig. 15's rising hit ratio."""
        masses = [
            ZipfianSampler(100, alpha, seed=0).theoretical_top_k_mass(5)
            for alpha in (1.2, 1.6, 2.0)
        ]
        assert masses == sorted(masses)

    def test_sample_range(self):
        sampler = ZipfianSampler(7, 1.2, seed=1)
        draws = sampler.sample(1000)
        assert draws.min() >= 0
        assert draws.max() < 7

    def test_empirical_matches_theoretical(self):
        sampler = ZipfianSampler(10, 1.5, seed=2)
        draws = sampler.sample(50_000)
        empirical_top1 = np.mean(draws == 0)
        assert empirical_top1 == pytest.approx(sampler.probabilities[0], rel=0.05)

    def test_deterministic_by_seed(self):
        a = ZipfianSampler(10, 1.2, seed=3).sample(100)
        b = ZipfianSampler(10, 1.2, seed=3).sample(100)
        assert np.array_equal(a, b)


class TestValidation:
    def test_zero_items_rejected(self):
        with pytest.raises(ConfigError):
            ZipfianSampler(0, 1.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigError):
            ZipfianSampler(10, -1.0)

    def test_zero_draws_rejected(self):
        with pytest.raises(ConfigError):
            ZipfianSampler(10, 1.0).sample(0)

    def test_top_k_bounds(self):
        sampler = ZipfianSampler(10, 1.0)
        with pytest.raises(ConfigError):
            sampler.theoretical_top_k_mass(11)
        assert sampler.theoretical_top_k_mass(10) == pytest.approx(1.0)
