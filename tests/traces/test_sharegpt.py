"""Tests for the ShareGPT4-style trace generator (Fig. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.traces.sharegpt import (
    MAX_HISTORY_TOKENS,
    ShareGPTGenerator,
    trace_statistics,
)


@pytest.fixture(scope="module")
def big_trace():
    return ShareGPTGenerator(seed=0).sample_many(400)


class TestGeneration:
    def test_sessions_have_multiple_rounds(self, big_trace):
        assert all(c.n_rounds >= 1 for c in big_trace)
        assert np.mean([c.n_rounds for c in big_trace]) > 2

    def test_history_accumulates(self, big_trace):
        for conv in big_trace[:50]:
            acc = 0
            for r in conv.rounds:
                assert r.history_tokens == acc
                acc += r.input_tokens + r.output_tokens

    def test_history_capped(self, big_trace):
        for conv in big_trace:
            assert conv.final_context <= MAX_HISTORY_TOKENS

    def test_round_indices_sequential(self, big_trace):
        for conv in big_trace[:50]:
            assert [r.round_index for r in conv.rounds] == list(range(conv.n_rounds))

    def test_deterministic_by_seed(self):
        a = ShareGPTGenerator(seed=5).sample_many(10)
        b = ShareGPTGenerator(seed=5).sample_many(10)
        assert [c.rounds for c in a] == [c.rounds for c in b]

    def test_session_ids_unique(self, big_trace):
        ids = [c.session_id for c in big_trace]
        assert len(set(ids)) == len(ids)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            ShareGPTGenerator(mean_input=0)
        with pytest.raises(ConfigError):
            ShareGPTGenerator(mean_rounds=0.5)
        with pytest.raises(ConfigError):
            ShareGPTGenerator().sample_many(0)


class TestFig3Statistics:
    def test_mean_input_matches_paper(self, big_trace):
        """Fig. 3a: average input 66.8 tokens per round (within 25%)."""
        stats = trace_statistics(big_trace)
        assert stats.mean_input == pytest.approx(66.8, rel=0.25)

    def test_mean_output_matches_paper(self, big_trace):
        """Fig. 3a: average output 358.8 tokens per round (within 25%)."""
        stats = trace_statistics(big_trace)
        assert stats.mean_output == pytest.approx(358.8, rel=0.25)

    def test_history_median_exceeds_paper_claim(self, big_trace):
        """Fig. 3b: half of the conversations exceed 2.5K of history."""
        stats = trace_statistics(big_trace)
        assert stats.history_p50 > 1500

    def test_cdf_monotone(self, big_trace):
        stats = trace_statistics(big_trace)
        values = [v for _, v in stats.history_cdf]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_describe(self, big_trace):
        assert "sessions" in trace_statistics(big_trace).describe()

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            trace_statistics([])
