"""Tests for the L-Eval-style trace generator (Table 1)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.traces.leval import LEVAL_TASKS, LEvalGenerator, task_statistics


class TestTable1Statistics:
    @pytest.mark.parametrize("task", ["paper-assistant", "gsm-100", "quality"])
    def test_task_means_match_table1(self, task):
        gen = LEvalGenerator(seed=1)
        stats = task_statistics(gen.sample_task(task, 400))
        expected = LEVAL_TASKS[task]
        assert stats["context"] == pytest.approx(expected.mean_context, rel=0.15)
        assert stats["input"] == pytest.approx(expected.mean_input, rel=0.25)

    def test_bimodal_shape(self):
        """§2.3: contexts reach 16K while instructions stay below ~150."""
        gen = LEvalGenerator(seed=2)
        reqs = gen.sample_task("paper-assistant", 200)
        stats = task_statistics(reqs)
        assert stats["context"] > 40 * stats["input"]

    def test_gsm_outputs_tiny(self):
        """Table 1: GSM-100 answers average 4.3 tokens."""
        gen = LEvalGenerator(seed=3)
        stats = task_statistics(gen.sample_task("gsm-100", 300))
        assert stats["output"] < 10

    def test_mixed_spans_4k_to_16k(self):
        """§6.1.2: the mixed workload's history spans a large range."""
        gen = LEvalGenerator(seed=4)
        reqs = gen.sample_mixed(300)
        contexts = [r.context_tokens for r in reqs]
        assert min(contexts) < 6000
        assert max(contexts) > 12000
        assert max(contexts) <= 16384


class TestGeneration:
    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigError):
            LEvalGenerator().sample_request("unknown-task", "r0")

    def test_zero_requests_rejected(self):
        with pytest.raises(ConfigError):
            LEvalGenerator().sample_task("quality", 0)

    def test_deterministic_by_seed(self):
        a = LEvalGenerator(seed=9).sample_task("quality", 5)
        b = LEvalGenerator(seed=9).sample_task("quality", 5)
        assert a == b

    def test_context_pool_distinct_ids(self):
        pool = LEvalGenerator(seed=5).sample_context_pool("quality", 20)
        assert len({r.context_id for r in pool}) == 20

    def test_context_cap_respected(self):
        gen = LEvalGenerator(seed=6, max_context=8192)
        reqs = gen.sample_task("mixed", 100)
        assert all(r.context_tokens <= 8192 for r in reqs)

    def test_empty_statistics_rejected(self):
        with pytest.raises(ConfigError):
            task_statistics([])
