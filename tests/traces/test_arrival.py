"""Tests for arrival processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.traces.arrival import (
    ROUND_INTERVAL_SECONDS,
    build_workload,
    conversation_requests,
    poisson_arrival_times,
)
from repro.traces.sharegpt import ShareGPTGenerator


class TestPoisson:
    def test_arrival_count(self):
        times = poisson_arrival_times(1.0, 100, seed=0)
        assert len(times) == 100

    def test_sorted(self):
        times = poisson_arrival_times(0.5, 50, seed=1)
        assert np.all(np.diff(times) >= 0)

    def test_mean_rate(self):
        times = poisson_arrival_times(2.0, 5000, seed=2)
        rate = len(times) / times[-1]
        assert rate == pytest.approx(2.0, rel=0.1)

    def test_invalid_rate(self):
        with pytest.raises(ConfigError):
            poisson_arrival_times(0.0, 10)

    def test_invalid_count(self):
        with pytest.raises(ConfigError):
            poisson_arrival_times(1.0, 0)


class TestConversationRequests:
    def test_round_spacing_is_30s(self):
        conv = ShareGPTGenerator(seed=3).sample_conversation("s")
        specs = conversation_requests(conv, session_start=100.0)
        gaps = np.diff([s.arrival_time for s in specs])
        assert np.allclose(gaps, ROUND_INTERVAL_SECONDS)

    def test_dependency_chain(self):
        conv = ShareGPTGenerator(seed=4).sample_conversation("s")
        specs = conversation_requests(conv, 0.0)
        assert specs[0].depends_on is None
        for prev, cur in zip(specs, specs[1:]):
            assert cur.depends_on == prev.request_id

    def test_history_matches_rounds(self):
        conv = ShareGPTGenerator(seed=5).sample_conversation("s")
        specs = conversation_requests(conv, 0.0)
        for spec, r in zip(specs, conv.rounds):
            assert spec.history_tokens == r.history_tokens

    def test_negative_interval_rejected(self):
        conv = ShareGPTGenerator(seed=6).sample_conversation("s")
        with pytest.raises(ConfigError):
            conversation_requests(conv, 0.0, round_interval=-1.0)


class TestBuildWorkload:
    def test_sorted_by_arrival(self):
        convs = ShareGPTGenerator(seed=7).sample_many(10)
        specs = build_workload(convs, rate_per_second=1.0, seed=8)
        times = [s.arrival_time for s in specs]
        assert times == sorted(times)

    def test_request_count(self):
        convs = ShareGPTGenerator(seed=9).sample_many(10)
        specs = build_workload(convs, rate_per_second=1.0, seed=10)
        assert len(specs) == sum(c.n_rounds for c in convs)

    def test_ids_unique(self):
        convs = ShareGPTGenerator(seed=11).sample_many(10)
        specs = build_workload(convs, rate_per_second=1.0, seed=12)
        ids = [s.request_id for s in specs]
        assert len(set(ids)) == len(ids)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            build_workload([], rate_per_second=1.0)
