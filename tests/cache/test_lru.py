"""Tests for the size-aware LRU cache."""

from __future__ import annotations

import pytest

from repro.cache.lru import LRUCache
from repro.errors import CapacityError, ConfigError


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUCache(100)
        assert not cache.lookup("a", 10)
        assert cache.lookup("a", 10)
        assert cache.stats.hit_ratio == 0.5

    def test_capacity_respected(self):
        cache = LRUCache(100)
        for key in "abcde":
            cache.lookup(key, 30)
            assert cache.used <= 100

    def test_eviction_order_is_lru(self):
        cache = LRUCache(100)
        cache.lookup("a", 40)
        cache.lookup("b", 40)
        cache.lookup("a", 40)  # touch a
        cache.lookup("c", 40)  # evicts b (LRU)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_resize_on_reaccess(self):
        """Conversations grow between rounds; the entry resizes."""
        cache = LRUCache(100)
        cache.lookup("a", 10)
        cache.lookup("a", 50)
        assert cache.used == 50

    def test_oversized_entry_rejected(self):
        cache = LRUCache(100)
        with pytest.raises(CapacityError):
            cache.lookup("a", 101)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            LRUCache(100).lookup("a", 0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigError):
            LRUCache(0)


class TestStats:
    def test_eviction_count(self):
        cache = LRUCache(50)
        for key in "abcd":
            cache.lookup(key, 30)
        assert cache.stats.evictions == 3

    def test_explicit_evict(self):
        cache = LRUCache(100)
        cache.lookup("a", 25)
        assert cache.evict("a") == 25
        assert cache.used == 0

    def test_evict_missing_rejected(self):
        with pytest.raises(ConfigError):
            LRUCache(100).evict("ghost")

    def test_lru_order(self):
        cache = LRUCache(100)
        for key in "abc":
            cache.lookup(key, 10)
        cache.lookup("a", 10)
        assert cache.keys_lru_order() == ("b", "c", "a")

    def test_hit_ratio_empty(self):
        assert LRUCache(10).stats.hit_ratio == 0.0

    def test_free_accounting(self):
        cache = LRUCache(100)
        cache.lookup("a", 30)
        assert cache.free == 70
        assert len(cache) == 1
