"""Tests for the size-aware LRU cache and the pin-aware recency order."""

from __future__ import annotations

import pytest

from repro.cache.lru import LRUCache, PinnedLRU
from repro.errors import CapacityError, ConfigError


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUCache(100)
        assert not cache.lookup("a", 10)
        assert cache.lookup("a", 10)
        assert cache.stats.hit_ratio == 0.5

    def test_capacity_respected(self):
        cache = LRUCache(100)
        for key in "abcde":
            cache.lookup(key, 30)
            assert cache.used <= 100

    def test_eviction_order_is_lru(self):
        cache = LRUCache(100)
        cache.lookup("a", 40)
        cache.lookup("b", 40)
        cache.lookup("a", 40)  # touch a
        cache.lookup("c", 40)  # evicts b (LRU)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_resize_on_reaccess(self):
        """Conversations grow between rounds; the entry resizes."""
        cache = LRUCache(100)
        cache.lookup("a", 10)
        cache.lookup("a", 50)
        assert cache.used == 50

    def test_oversized_entry_rejected(self):
        cache = LRUCache(100)
        with pytest.raises(CapacityError):
            cache.lookup("a", 101)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            LRUCache(100).lookup("a", 0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigError):
            LRUCache(0)


class TestStats:
    def test_eviction_count(self):
        cache = LRUCache(50)
        for key in "abcd":
            cache.lookup(key, 30)
        assert cache.stats.evictions == 3

    def test_explicit_evict(self):
        cache = LRUCache(100)
        cache.lookup("a", 25)
        assert cache.evict("a") == 25
        assert cache.used == 0

    def test_evict_missing_rejected(self):
        with pytest.raises(ConfigError):
            LRUCache(100).evict("ghost")

    def test_lru_order(self):
        cache = LRUCache(100)
        for key in "abc":
            cache.lookup(key, 10)
        cache.lookup("a", 10)
        assert cache.keys_lru_order() == ("b", "c", "a")

    def test_hit_ratio_empty(self):
        assert LRUCache(10).stats.hit_ratio == 0.0

    def test_free_accounting(self):
        cache = LRUCache(100)
        cache.lookup("a", 30)
        assert cache.free == 70
        assert len(cache) == 1


class TestPinnedLRU:
    def test_pop_lru_skips_pinned_entries(self):
        lru = PinnedLRU()
        lru.add("old-pinned", pinned=True)
        lru.add("a")
        lru.add("b")
        assert lru.pop_lru() == "a"  # oldest unpinned, not the pinned head
        assert lru.pop_lru() == "b"
        assert lru.pop_lru() is None  # everything left is pinned
        assert "old-pinned" in lru
        assert lru.stats.evictions == 2

    def test_touch_and_unpin_update_recency(self):
        lru = PinnedLRU()
        for key in "abc":
            lru.add(key)
        lru.touch("a")
        assert lru.unpinned_lru_order() == ("b", "c", "a")
        lru.pin("b")
        assert lru.unpinned_lru_order() == ("c", "a")
        # Unpinning re-enters the candidate pool as most recently used.
        lru.unpin("b")
        assert lru.unpinned_lru_order() == ("c", "a", "b")
        assert lru.pop_lru() == "c"

    def test_pin_state_transitions(self):
        lru = PinnedLRU()
        lru.add("a")
        assert not lru.is_pinned("a")
        lru.pin("a")
        assert lru.is_pinned("a")
        lru.pin("a")  # idempotent
        assert lru.is_pinned("a")
        lru.unpin("a")
        assert not lru.is_pinned("a")

    def test_add_discard_and_validation(self):
        lru = PinnedLRU()
        lru.add("a")
        with pytest.raises(ConfigError):
            lru.add("a")
        lru.discard("a")
        lru.discard("a")  # no-op when absent
        assert len(lru) == 0
        for method in (lru.touch, lru.pin, lru.unpin, lru.is_pinned):
            with pytest.raises(ConfigError):
                method("ghost")

    def test_empty_pop_returns_none(self):
        assert PinnedLRU().pop_lru() is None
