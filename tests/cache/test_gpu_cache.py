"""Tests for GPU-resident KV reuse (§6.4, Fig. 15)."""

from __future__ import annotations

import pytest

from repro.baselines import HCacheMethod, KVOffloadMethod, RecomputationMethod
from repro.cache.gpu_cache import GPUCacheSimulator
from repro.errors import ConfigError
from repro.traces.leval import LEvalGenerator


@pytest.fixture(scope="module")
def contexts():
    return LEvalGenerator(seed=0).sample_context_pool("quality", 40)


@pytest.fixture(scope="module")
def cache_sim(seven_b, default_platform):
    return GPUCacheSimulator(seven_b, default_platform)


class TestReplay:
    def test_uniform_low_hit_ratio(self, cache_sim, contexts, seven_b, default_platform):
        """Fig. 15: uniform arrivals give a low (~15%) hit ratio."""
        method = HCacheMethod(seven_b, default_platform)
        result = cache_sim.replay(contexts, method, 1500, alpha=None, seed=1)
        assert result.hit_ratio < 0.35

    def test_high_skew_high_hit_ratio(self, cache_sim, contexts, seven_b, default_platform):
        """Fig. 15: alpha = 2.0 pushes the hit ratio above ~80%."""
        method = HCacheMethod(seven_b, default_platform)
        result = cache_sim.replay(contexts, method, 1500, alpha=2.0, seed=1)
        assert result.hit_ratio > 0.75

    def test_hit_ratio_monotone_in_skew(self, cache_sim, contexts, seven_b, default_platform):
        method = HCacheMethod(seven_b, default_platform)
        ratios = [
            cache_sim.replay(contexts, method, 1500, alpha, seed=1).hit_ratio
            for alpha in (None, 1.2, 1.6, 2.0)
        ]
        assert all(b >= a - 0.02 for a, b in zip(ratios, ratios[1:]))

    def test_ttft_drops_with_skew(self, cache_sim, contexts, seven_b, default_platform):
        """Fig. 15: high skew cuts TTFT several-fold via cache hits."""
        method = KVOffloadMethod(seven_b, default_platform)
        uniform = cache_sim.replay(contexts, method, 1500, None, seed=1)
        skewed = cache_sim.replay(contexts, method, 1500, 2.0, seed=1)
        assert uniform.mean_ttft / skewed.mean_ttft > 2.0

    def test_hcache_still_wins_at_high_skew(
        self, cache_sim, contexts, seven_b, default_platform
    ):
        """Fig. 15: even at 94% hit ratio HCache stays ahead (1.15x+)."""
        hcache = HCacheMethod(seven_b, default_platform)
        offload = KVOffloadMethod(seven_b, default_platform)
        recompute = RecomputationMethod(seven_b, default_platform)
        h = cache_sim.replay(contexts, hcache, 2000, 2.0, seed=2)
        k = cache_sim.replay(contexts, offload, 2000, 2.0, seed=2)
        r = cache_sim.replay(contexts, recompute, 2000, 2.0, seed=2)
        assert k.mean_ttft > h.mean_ttft
        assert r.mean_ttft > h.mean_ttft

    def test_same_seed_same_hit_ratio_across_methods(
        self, cache_sim, contexts, seven_b, default_platform
    ):
        """The arrival pattern (and thus hit ratio) is method-independent."""
        a = cache_sim.replay(contexts, HCacheMethod(seven_b, default_platform), 500, 1.4, seed=3)
        b = cache_sim.replay(contexts, KVOffloadMethod(seven_b, default_platform), 500, 1.4, seed=3)
        assert a.hit_ratio == pytest.approx(b.hit_ratio)

    def test_empty_pool_rejected(self, cache_sim, seven_b, default_platform):
        with pytest.raises(ConfigError):
            cache_sim.replay([], HCacheMethod(seven_b, default_platform), 10, None)

    def test_shared_prefix_cuts_miss_cost(
        self, cache_sim, contexts, seven_b, default_platform
    ):
        """A pool-resident shared prefix shrinks the restored suffix, so
        mean TTFT drops; hit ratio (arrival pattern) is unchanged."""
        method = HCacheMethod(seven_b, default_platform)
        base = cache_sim.replay(contexts, method, 800, alpha=None, seed=5)
        shared = {c.context_id: c.context_tokens // 2 for c in contexts}
        helped = cache_sim.replay(
            contexts, method, 800, alpha=None, seed=5, shared_prefix=shared
        )
        assert helped.hit_ratio == pytest.approx(base.hit_ratio)
        assert helped.mean_ttft < base.mean_ttft

    def test_shared_prefix_clamped_and_partial_mapping(
        self, cache_sim, contexts, seven_b, default_platform
    ):
        """Over-long prefixes clamp to the context; unmapped ids share 0."""
        method = HCacheMethod(seven_b, default_platform)
        everything = {c.context_id: 10**9 for c in contexts}
        floor = cache_sim.replay(
            contexts, method, 800, alpha=None, seed=5, shared_prefix=everything
        )
        nothing = cache_sim.replay(
            contexts, method, 800, alpha=None, seed=5, shared_prefix={}
        )
        base = cache_sim.replay(contexts, method, 800, alpha=None, seed=5)
        assert nothing.mean_ttft == pytest.approx(base.mean_ttft)
        assert floor.mean_ttft < base.mean_ttft

    def test_shared_prefix_rejects_negative(
        self, cache_sim, contexts, seven_b, default_platform
    ):
        method = HCacheMethod(seven_b, default_platform)
        bad = {contexts[0].context_id: -1}
        with pytest.raises(ConfigError):
            cache_sim.replay(contexts, method, 200, alpha=None, seed=5, shared_prefix=bad)


class TestSweep:
    def test_sweep_shape(self, cache_sim, contexts, seven_b, default_platform):
        methods = {
            "hcache": HCacheMethod(seven_b, default_platform),
            "kv-offload": KVOffloadMethod(seven_b, default_platform),
        }
        results = cache_sim.sweep_skew(
            contexts, methods, alphas=(None, 1.6), n_requests=300, seed=4
        )
        assert len(results) == 4
        assert {r.method for r in results} == {"hcache", "kv-offload"}
