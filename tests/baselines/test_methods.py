"""Tests for the restoration methods (HCache vs baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    HCacheMethod,
    HCacheOnlyMethod,
    IdealMethod,
    KVOffloadMethod,
    NaiveHybridMethod,
    RecomputationMethod,
    default_methods,
)
from repro.core.partition import PartitionScheme
from repro.errors import ConfigError
from repro.simulator.hardware import platform_preset


class TestRecomputation:
    def test_pure_compute(self, seven_b, default_platform):
        timing = RecomputationMethod(seven_b, default_platform).restoration_timing(1024)
        assert timing.io_busy == 0.0
        assert timing.compute_busy == timing.makespan

    def test_zero_storage(self, seven_b, default_platform):
        assert RecomputationMethod(seven_b, default_platform).storage_bytes_per_token() == 0

    def test_quadratic_scaling(self, seven_b, default_platform):
        method = RecomputationMethod(seven_b, default_platform)
        assert method.restoration_speed(16384) < method.restoration_speed(1024)

    def test_ttft_folds_history(self, seven_b, default_platform):
        """One prefill over history+new beats restore-then-prefill."""
        method = RecomputationMethod(seven_b, default_platform)
        folded = method.ttft(1000, 100)
        separate = (
            default_platform.request_overhead
            + method.restoration_timing(1000).makespan
            + method.restoration_timing(100).makespan
        )
        assert folded < separate

    def test_numeric_restore(self, tiny_model, tiny_config):
        tokens = np.arange(10) % tiny_config.vocab_size
        _, reference = tiny_model.prefill(tokens)
        restored = RecomputationMethod.restore_numeric(tiny_model, tokens)
        assert reference.equals(restored)


class TestKVOffload:
    def test_pure_io(self, seven_b, default_platform):
        timing = KVOffloadMethod(seven_b, default_platform).restoration_timing(1024)
        assert timing.compute_busy == 0.0
        assert timing.io_busy == timing.makespan

    def test_storage_is_full_kv(self, seven_b, default_platform):
        method = KVOffloadMethod(seven_b, default_platform)
        assert method.storage_bytes_per_token() == seven_b.kv_bytes_per_token

    def test_linear_scaling(self, seven_b, default_platform):
        """Fig. 11g-i: KV offload speed is flat in history length."""
        method = KVOffloadMethod(seven_b, default_platform)
        s1 = method.restoration_speed(1024)
        s2 = method.restoration_speed(16384)
        assert s2 == pytest.approx(s1, rel=0.1)

    def test_numeric_roundtrip(self, tiny_model, tiny_config, storage_manager):
        tokens = np.arange(12) % tiny_config.vocab_size
        _, cache = tiny_model.prefill(tokens)
        KVOffloadMethod.save_numeric(storage_manager, "ctx", cache)
        restored = KVOffloadMethod.restore_numeric(storage_manager, "ctx", tiny_config)
        assert cache.equals(restored)


class TestHCacheMethod:
    def test_fastest_on_default_testbed(self, seven_b, default_platform):
        methods = default_methods(seven_b, default_platform)
        speeds = {
            name: m.restoration_speed(1024)
            for name, m in methods.items()
            if name != "ideal"
        }
        assert speeds["hcache"] == max(speeds.values())

    def test_vs_offload_band(self, seven_b, default_platform):
        """§6: HCache beats KV offload by 1.3-2.7x across the paper."""
        methods = default_methods(seven_b, default_platform)
        ratio = (
            methods["hcache"].restoration_speed(1024)
            / methods["kv-offload"].restoration_speed(1024)
        )
        assert 1.3 < ratio < 2.8

    def test_vs_recompute_band(self, seven_b, default_platform):
        methods = default_methods(seven_b, default_platform)
        ratio = (
            methods["hcache"].restoration_speed(1024)
            / methods["recompute"].restoration_speed(1024)
        )
        assert ratio > 2.0

    def test_fixed_scheme_honoured(self, seven_b, default_platform):
        scheme = PartitionScheme.pure_kv(seven_b.n_layers)
        method = HCacheMethod(seven_b, default_platform, scheme=scheme)
        kv = KVOffloadMethod(seven_b, default_platform)
        assert method.restoration_timing(1024).makespan == pytest.approx(
            kv.restoration_timing(1024).makespan, rel=0.1
        )

    def test_decision_cached(self, seven_b, default_platform):
        method = HCacheMethod(seven_b, default_platform)
        a = method.decision_for(1024)
        b = method.decision_for(1024)
        assert a is b

    def test_hcache_only_is_pure_hidden(self, seven_b, default_platform):
        method = HCacheOnlyMethod(seven_b, default_platform)
        scheme = method.scheme_for(1024)
        assert scheme.n_hidden == seven_b.n_layers

    def test_storage_cost_below_offload(self, seven_b, default_platform):
        h = HCacheMethod(seven_b, default_platform)
        kv = KVOffloadMethod(seven_b, default_platform)
        assert h.storage_bytes_per_token() < kv.storage_bytes_per_token()


class TestNaiveHybrid:
    def test_beats_both_parents_on_compute_sufficient(self, seven_b):
        """§6.3.1: the balanced hybrid is the best no-hidden-state method."""
        platform = platform_preset("compute-sufficient")
        hybrid = NaiveHybridMethod(seven_b, platform)
        rec = RecomputationMethod(seven_b, platform)
        kv = KVOffloadMethod(seven_b, platform)
        s = hybrid.restoration_speed(1024)
        assert s >= rec.restoration_speed(1024)
        assert s >= kv.restoration_speed(1024)

    def test_hcache_beats_hybrid(self, seven_b):
        """§6.3.1: HCache outperforms the naive hybrid by 1.28-1.42x."""
        platform = platform_preset("compute-sufficient")
        hybrid = NaiveHybridMethod(seven_b, platform)
        hcache = HCacheMethod(seven_b, platform)
        ratio = hcache.restoration_speed(1024) / hybrid.restoration_speed(1024)
        assert 1.15 < ratio < 1.6

    def test_split_sums_to_total(self, seven_b, default_platform):
        split = NaiveHybridMethod(seven_b, default_platform).best_split(1024)
        assert split.recompute_tokens + split.offload_tokens == 1024

    def test_bubbles_reported(self, seven_b, default_platform):
        timing = NaiveHybridMethod(seven_b, default_platform).restoration_timing(1024)
        assert timing.makespan == pytest.approx(
            max(timing.io_busy, timing.compute_busy)
        )

    def test_zero_tokens_rejected(self, seven_b, default_platform):
        with pytest.raises(ConfigError):
            NaiveHybridMethod(seven_b, default_platform).best_split(0)


class TestIdeal:
    def test_zero_restoration(self, seven_b, default_platform):
        timing = IdealMethod(seven_b, default_platform).restoration_timing(10_000)
        assert timing.makespan == 0.0

    def test_ttft_is_overhead_plus_prefill(self, seven_b, default_platform):
        method = IdealMethod(seven_b, default_platform)
        assert method.ttft(10_000, 100) < 0.1

    def test_lower_bounds_everyone(self, seven_b, default_platform):
        methods = default_methods(seven_b, default_platform)
        ideal = methods["ideal"].ttft(8192, 128)
        for name, m in methods.items():
            assert m.ttft(8192, 128) >= ideal - 1e-12, name


class TestCommonInterface:
    def test_negative_tokens_rejected(self, seven_b, default_platform):
        with pytest.raises(ConfigError):
            IdealMethod(seven_b, default_platform).ttft(-1, 10)

    def test_describe(self, seven_b, default_platform):
        text = HCacheMethod(seven_b, default_platform).describe()
        assert "hcache" in text and "A100" in text
