"""Tests for CUDA-stream-like scheduling."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulator.streams import StreamSchedule


class TestSubmission:
    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            StreamSchedule().submit("t", "s", -1.0)

    def test_unknown_dependency_rejected(self):
        s1 = StreamSchedule()
        s2 = StreamSchedule()
        foreign = s2.submit("x", "io", 1.0)
        with pytest.raises(SimulationError):
            s1.submit("y", "io", 1.0, deps=(foreign,))


class TestScheduling:
    def test_single_stream_serializes(self):
        sched = StreamSchedule()
        a = sched.submit("a", "io", 2.0)
        b = sched.submit("b", "io", 3.0)
        result = sched.run()
        assert (a.start, a.end) == (0.0, 2.0)
        assert (b.start, b.end) == (2.0, 5.0)
        assert result.makespan == 5.0

    def test_independent_streams_overlap(self):
        sched = StreamSchedule()
        sched.submit("io", "io", 4.0)
        sched.submit("compute", "compute", 3.0)
        result = sched.run()
        assert result.makespan == 4.0

    def test_dependency_delays_start(self):
        sched = StreamSchedule()
        io = sched.submit("io", "io", 4.0)
        proj = sched.submit("proj", "compute", 1.0, deps=(io,))
        sched.run()
        assert proj.start == 4.0
        assert proj.end == 5.0

    def test_dependency_and_stream_order_both_respected(self):
        sched = StreamSchedule()
        io1 = sched.submit("io1", "io", 1.0)
        io2 = sched.submit("io2", "io", 1.0)
        sched.submit("p1", "compute", 5.0, deps=(io1,))
        p2 = sched.submit("p2", "compute", 1.0, deps=(io2,))
        sched.run()
        # p2's data is ready at t=2 but the compute stream is busy until 6.
        assert p2.start == 6.0

    def test_start_time_offset(self):
        sched = StreamSchedule()
        a = sched.submit("a", "io", 1.0)
        result = sched.run(start_time=10.0)
        assert a.start == 10.0
        assert result.makespan == 1.0

    def test_zero_duration_tasks(self):
        sched = StreamSchedule()
        a = sched.submit("a", "io", 0.0)
        b = sched.submit("b", "compute", 0.0, deps=(a,))
        result = sched.run()
        assert result.makespan == 0.0
        assert b.scheduled


class TestBubbleAccounting:
    def test_busy_time_sums_durations(self):
        sched = StreamSchedule()
        sched.submit("a", "io", 2.0)
        sched.submit("b", "io", 3.0)
        result = sched.run()
        assert result.busy_time("io") == 5.0

    def test_no_bubbles_when_balanced(self):
        sched = StreamSchedule()
        prev = None
        for i in range(4):
            io = sched.submit(f"io{i}", "io", 1.0)
            deps = (io,) if prev is None else (io, prev)
            prev = sched.submit(f"p{i}", "compute", 1.0, deps=deps)
        result = sched.run()
        # IO finishes at 4, compute at 5; IO idles exactly 1s at the end.
        assert result.bubble_time("io") == pytest.approx(1.0)

    def test_pure_pipeline_bubble_is_startup_latency(self):
        sched = StreamSchedule()
        ios = [sched.submit(f"io{i}", "io", 2.0) for i in range(3)]
        for i, io in enumerate(ios):
            sched.submit(f"p{i}", "compute", 1.0, deps=(io,))
        result = sched.run()
        # compute: busy 3s within a window that ends at 7 (last io at 6,
        # then 1s projection): bubbles while waiting for transmissions.
        assert result.makespan == pytest.approx(7.0)
        assert result.bubble_time("compute") > 0

    def test_bubble_fraction_bounds(self):
        sched = StreamSchedule()
        sched.submit("a", "io", 1.0)
        sched.submit("b", "compute", 9.0)
        result = sched.run()
        assert 0.0 <= result.bubble_fraction("io") <= 1.0
        assert result.bubble_fraction("io") == pytest.approx(8.0 / 9.0)

    def test_streams_listed_in_submission_order(self):
        sched = StreamSchedule()
        sched.submit("a", "compute", 1.0)
        sched.submit("b", "io", 1.0)
        assert sched.run().streams == ("compute", "io")

    def test_validate_passes_for_legal_schedule(self):
        sched = StreamSchedule()
        a = sched.submit("a", "io", 1.0)
        sched.submit("b", "compute", 1.0, deps=(a,))
        sched.run().validate()

    def test_empty_schedule_makespan_zero(self):
        assert StreamSchedule().run().makespan == 0.0
