"""Tests for the §3.2 analytic cost model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simulator.costs import (
    attention_flops,
    decode_iteration_time,
    estimate_restoration,
    ffn_flops,
    full_layer_flops,
    hidden_bytes,
    kv_bytes,
    kv_projection_flops,
    layer_costs,
    prefill_time,
    theoretical_compute_speedup,
)


class TestByteCounts:
    def test_hidden_is_half_of_kv(self, seven_b):
        """§3.2: hidden states are exactly half the KV cache size (MHA)."""
        assert 2 * hidden_bytes(seven_b, 100) == kv_bytes(seven_b, 100)

    def test_hidden_bytes_7b_per_token_layer(self, seven_b):
        # 4096 fp16 elements = 8 KiB per token per layer.
        assert hidden_bytes(seven_b, 1, 1) == 8192

    def test_layer_subset(self, seven_b):
        assert hidden_bytes(seven_b, 10, 4) == 4 * hidden_bytes(seven_b, 10, 1)

    def test_full_model_default(self, seven_b):
        assert hidden_bytes(seven_b, 1) == seven_b.n_layers * 8192


class TestFlopCounts:
    def test_projection_flops_formula(self, seven_b):
        """C_hidden = 4 * N * D^2 for MHA."""
        n, d = 64, seven_b.hidden_size
        assert kv_projection_flops(seven_b, n) == pytest.approx(4 * n * d * d)

    def test_attention_flops_has_quadratic_term(self, seven_b):
        base = attention_flops(seven_b, 1000)
        double = attention_flops(seven_b, 2000)
        # Superlinear growth: more than 2x when N doubles.
        assert double > 2 * base

    def test_ffn_flops_opt_matches_16nd2(self, opt_30b):
        """OPT has D_ffn = 4D and 2 matrices: FFN = 16 N D^2 exactly."""
        n, d = 32, opt_30b.hidden_size
        assert ffn_flops(opt_30b, n) == pytest.approx(16 * n * d * d)

    def test_full_layer_is_attention_plus_ffn(self, seven_b):
        n = 128
        assert full_layer_flops(seven_b, n) == pytest.approx(
            attention_flops(seven_b, n) + ffn_flops(seven_b, n)
        )

    def test_compute_speedup_at_least_6x(self, seven_b, thirteen_b, opt_30b):
        """§3.2: the lower bound of the compute saving is 6x."""
        for config in (seven_b, thirteen_b, opt_30b):
            for n in (64, 1024, 16384):
                assert theoretical_compute_speedup(config, n) >= 6.0

    def test_compute_speedup_grows_with_length(self, opt_30b):
        """HCache's saving grows with context (quadratic term vanishes)."""
        short = theoretical_compute_speedup(opt_30b, 256)
        long = theoretical_compute_speedup(opt_30b, 16384)
        assert long > short

    def test_opt_speedup_matches_paper_formula(self, opt_30b):
        """For D_ffn = 4D the ratio is exactly 6 + N / (4 D)."""
        n, d = 4096, opt_30b.hidden_size
        assert theoretical_compute_speedup(opt_30b, n) == pytest.approx(6 + n / (4 * d))


class TestLayerCosts:
    def test_io_kv_twice_io_hidden(self, seven_b, default_platform):
        costs = layer_costs(seven_b, default_platform, 1024)
        assert costs.io_kv == pytest.approx(2 * costs.io_hidden)

    def test_token_recompute_dominates_projection(self, seven_b, default_platform):
        costs = layer_costs(seven_b, default_platform, 1024)
        assert costs.compute_token > 5 * costs.compute_hidden

    def test_hcache_layer_time_is_max(self, seven_b, default_platform):
        costs = layer_costs(seven_b, default_platform, 1024)
        assert costs.hcache_layer_time == max(costs.io_hidden, costs.compute_hidden)

    def test_rejects_zero_tokens(self, seven_b, default_platform):
        with pytest.raises(ConfigError):
            layer_costs(seven_b, default_platform, 0)

    def test_analytic_mode_uses_closed_form(self, seven_b, default_platform):
        analytic = layer_costs(seven_b, default_platform, 1024, use_gemm_model=False)
        expected = kv_projection_flops(seven_b, 1024) / (
            default_platform.total_flops * default_platform.gemm_eff
        )
        assert analytic.compute_hidden == pytest.approx(expected)


class TestRestorationEstimate:
    def test_hcache_fastest(self, seven_b, default_platform):
        est = estimate_restoration(seven_b, default_platform, 2048)
        assert est.hcache < est.kv_offload < est.recompute

    def test_speedup_vs_offload_at_most_2x_when_io_bound(self, seven_b, dram_platform):
        """With IO as the bottleneck the gain is bounded by the 2x size cut."""
        est = estimate_restoration(seven_b, dram_platform, 4096)
        assert est.speedup_vs_offload <= 2.0 + 1e-9

    def test_speedup_vs_recompute_exceeds_theory_floor(self, seven_b, default_platform):
        est = estimate_restoration(seven_b, default_platform, 4096)
        assert est.speedup_vs_recompute > 2.0

    def test_scales_linearly_in_tokens(self, seven_b, default_platform):
        short = estimate_restoration(seven_b, default_platform, 1024)
        long = estimate_restoration(seven_b, default_platform, 2048)
        assert long.hcache == pytest.approx(2 * short.hcache, rel=0.01)
        assert long.kv_offload == pytest.approx(2 * short.kv_offload, rel=0.01)
        # Recompute grows superlinearly.
        assert long.recompute > 2 * short.recompute


class TestPrefillAndDecode:
    def test_prefill_zero_tokens_free(self, seven_b, default_platform):
        assert prefill_time(seven_b, default_platform, 0) == 0.0

    def test_prefill_superlinear(self, seven_b, default_platform):
        t1 = prefill_time(seven_b, default_platform, 4096)
        t2 = prefill_time(seven_b, default_platform, 8192)
        assert t2 > 2 * t1 * 0.99

    def test_prefill_magnitude_7b(self, seven_b, default_platform):
        """A 2.5K-token 7B prefill on one A100 lands in the 100-400 ms
        window implied by Fig. 9a's recompute TTFT."""
        t = prefill_time(seven_b, default_platform, 2500)
        assert 0.1 < t < 0.4

    def test_decode_iteration_in_tbt_band(self, seven_b, default_platform):
        """Fig. 9d: 7B TBT sits in the 10-30 ms band."""
        t = decode_iteration_time(seven_b, default_platform, 8, 8 * 1000)
        assert 0.008 < t < 0.03

    def test_decode_time_grows_with_context(self, seven_b, default_platform):
        small = decode_iteration_time(seven_b, default_platform, 4, 4 * 512)
        large = decode_iteration_time(seven_b, default_platform, 4, 4 * 8192)
        assert large > small

    def test_decode_empty_batch_free(self, seven_b, default_platform):
        assert decode_iteration_time(seven_b, default_platform, 0, 0) == 0.0

    def test_bigger_model_decodes_slower(self, seven_b, thirteen_b, default_platform):
        t7 = decode_iteration_time(seven_b, default_platform, 1, 512)
        t13 = decode_iteration_time(thirteen_b, default_platform, 1, 512)
        assert t13 > t7
