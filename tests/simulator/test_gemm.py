"""Tests for the tile-quantized GEMM timing model (Fig. 13b)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simulator.gemm import (
    DEFAULT_TILE,
    gemm_mfu,
    gemm_time,
    kv_projection_time,
    optimal_batch_tokens,
    round_up_tokens,
)


class TestRounding:
    def test_exact_tile_unchanged(self):
        assert round_up_tokens(256) == 256

    def test_rounds_up(self):
        assert round_up_tokens(794) == 896
        assert round_up_tokens(794, tile=64) == 832

    def test_zero_stays_zero(self):
        assert round_up_tokens(0) == 0

    def test_one_rounds_to_tile(self):
        assert round_up_tokens(1) == DEFAULT_TILE

    def test_custom_tile(self):
        assert round_up_tokens(100, tile=64) == 128

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            round_up_tokens(-1)

    def test_optimal_batch_floor(self):
        assert optimal_batch_tokens(800) == 768
        assert optimal_batch_tokens(512) == 512

    def test_optimal_batch_below_tile(self):
        assert optimal_batch_tokens(100) == 100


class TestMFU:
    def test_mfu_monotone_in_tokens(self, dram_platform):
        values = [gemm_mfu(n, dram_platform) for n in (1, 64, 256, 1024, 8192)]
        assert values == sorted(values)

    def test_mfu_bounded_by_ceiling(self, dram_platform):
        assert gemm_mfu(10**6, dram_platform) <= dram_platform.gemm_eff

    def test_tiny_gemm_mfu_low(self, dram_platform):
        assert gemm_mfu(1, dram_platform) < 0.2


class TestGemmTime:
    def test_step_function_within_tile(self, dram_platform):
        """Fig. 13b: GEMM time is flat between tile boundaries."""
        a = gemm_time(769, 5120, 5120, dram_platform)
        b = gemm_time(832, 5120, 5120, dram_platform)
        assert a.seconds == pytest.approx(b.seconds)

    def test_step_up_at_boundary(self, dram_platform):
        below = gemm_time(768, 5120, 5120, dram_platform)
        above = gemm_time(769, 5120, 5120, dram_platform)
        assert above.seconds > below.seconds

    def test_padded_tokens_recorded(self, dram_platform):
        t = gemm_time(794, 5120, 5120, dram_platform)
        assert t.padded_tokens == 896
        assert t.n_tokens == 794

    def test_invalid_features_rejected(self, dram_platform):
        with pytest.raises(ConfigError):
            gemm_time(10, 0, 10, dram_platform)

    def test_projection_fig13b_magnitude(self, dram_platform):
        """A 1024-token 13B K/V projection on an A100 takes a few hundred
        microseconds (Fig. 13b's y-axis window, read loosely)."""
        t = kv_projection_time(1024, 5120, 5120, dram_platform)
        assert 250e-6 < t.seconds < 600e-6

    def test_projection_doubles_gemm_flops(self, dram_platform):
        proj = kv_projection_time(512, 4096, 4096, dram_platform)
        single = gemm_time(512, 4096, 4096, dram_platform)
        assert proj.flops == pytest.approx(2 * single.flops)

    def test_h800_faster_than_a100(self, dram_platform):
        from repro.simulator import platform_preset

        h800 = platform_preset("h800-dram")
        a100 = kv_projection_time(1024, 5120, 5120, dram_platform)
        h = kv_projection_time(1024, 5120, 5120, h800)
        assert h.seconds < a100.seconds
