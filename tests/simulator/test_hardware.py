"""Unit tests for the hardware specifications (Table 2)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simulator.hardware import (
    GB,
    GPUS,
    PM9A3,
    DRAMSpec,
    GPUSpec,
    Platform,
    SSDSpec,
    platform_preset,
)


class TestGPUSpecs:
    def test_table2_gpus_present(self):
        assert set(GPUS) == {"A100", "A30", "4090", "L20", "H800"}

    def test_a100_matches_table2(self):
        a100 = GPUS["A100"]
        assert a100.peak_flops == pytest.approx(312e12)
        assert a100.pcie_bandwidth == pytest.approx(32e9)
        assert a100.hbm_bytes == 40 * 1024**3

    def test_h800_has_fast_link(self):
        assert GPUS["H800"].pcie_bandwidth == pytest.approx(64e9)
        assert GPUS["H800"].peak_flops == pytest.approx(990e12)

    def test_flops_ordering_matches_table2(self):
        flops = [GPUS[n].peak_flops for n in ("L20", "A30", "A100", "4090", "H800")]
        assert flops == sorted(flops)

    def test_invalid_gpu_rejected(self):
        with pytest.raises(ConfigError):
            GPUSpec("bad", 1, -1.0, 1.0, 1.0)

    def test_zero_memory_rejected(self):
        with pytest.raises(ConfigError):
            GPUSpec("bad", 0, 1.0, 1.0, 1.0)


class TestSSDSpec:
    def test_pm9a3_read_bandwidth(self):
        assert PM9A3.read_bandwidth == pytest.approx(6.9e9)

    def test_read_time_includes_latency(self):
        t = PM9A3.read_time(6_900_000, n_ios=10)
        assert t == pytest.approx(10 * PM9A3.io_latency + 1e-3)

    def test_write_time_slower_than_read(self):
        nbytes = 100 * 1024 * 1024
        assert PM9A3.write_time(nbytes) > PM9A3.read_time(nbytes)

    def test_small_write_latency_dominates_small_io(self):
        t = PM9A3.small_write_time(8192)
        assert t > PM9A3.small_write_latency
        assert t < 2 * PM9A3.small_write_latency

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            SSDSpec("bad", read_bandwidth=0, write_bandwidth=1)


class TestDRAMSpec:
    def test_dram_faster_than_any_ssd(self):
        dram = DRAMSpec()
        nbytes = 1024**3
        assert dram.read_time(nbytes) < PM9A3.read_time(nbytes)

    def test_symmetric_read_write(self):
        dram = DRAMSpec()
        assert dram.read_time(1000) == pytest.approx(dram.write_time(1000))


class TestPlatform:
    def test_default_testbed_has_four_ssds(self):
        plat = platform_preset("default")
        assert len(plat.ssds) == 4
        assert not plat.uses_dram_backend

    def test_four_ssds_saturate_a100_pcie(self):
        """§6.2.2: 4x PM9A3 (27.6 GB/s) is close to but under PCIe 32 GB/s."""
        plat = platform_preset("default")
        assert plat.storage_read_bandwidth == pytest.approx(4 * 6.9e9)
        assert plat.storage_read_bandwidth < plat.gpu.pcie_bandwidth

    def test_dram_backend_limited_by_pcie(self):
        plat = platform_preset("a100-dram")
        assert plat.uses_dram_backend
        assert plat.storage_read_bandwidth == pytest.approx(32e9)

    def test_multi_gpu_aggregates(self):
        plat = platform_preset("a100x4-4ssd")
        assert plat.total_flops == pytest.approx(4 * 312e12)
        assert plat.total_hbm_bandwidth == pytest.approx(4 * 1555e9)

    def test_with_ssds_replaces_backend(self):
        plat = platform_preset("a100-dram").with_ssds(2)
        assert len(plat.ssds) == 2
        assert plat.storage_read_bandwidth == pytest.approx(2 * 6.9e9)

    def test_with_zero_ssds_means_dram(self):
        plat = platform_preset("default").with_ssds(0)
        assert plat.uses_dram_backend

    def test_negative_ssd_count_rejected(self):
        with pytest.raises(ConfigError):
            platform_preset("default").with_ssds(-1)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError):
            platform_preset("tpu-v5")

    def test_gemm_eff_defaults_to_gpu(self):
        plat = platform_preset("a100-dram")
        assert plat.gemm_eff == GPUS["A100"].gemm_mfu

    def test_gemm_eff_override(self):
        plat = Platform(GPUS["A100"], gemm_efficiency=0.5)
        assert plat.gemm_eff == 0.5

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ConfigError):
            Platform(GPUS["A100"], gemm_efficiency=1.5)
        with pytest.raises(ConfigError):
            Platform(GPUS["A100"], prefill_efficiency=0.0)

    def test_write_bandwidth_below_read(self):
        plat = platform_preset("default")
        assert plat.storage_write_bandwidth < plat.storage_read_bandwidth

    def test_fig12_regime_presets(self):
        io_suf = platform_preset("io-sufficient")
        comp_suf = platform_preset("compute-sufficient")
        assert io_suf.gpu.name == "A30" and len(io_suf.ssds) == 4
        assert comp_suf.gpu.name == "A100" and len(comp_suf.ssds) == 1

    def test_gb_unit(self):
        assert GB == 1_000_000_000
