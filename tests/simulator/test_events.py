"""Tests for the discrete-event primitives."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulator.events import EventQueue, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advances(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_refuses_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(5.0)

    def test_advance_to_same_time_ok(self):
        clock = SimClock(3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_ties(self):
        q = EventQueue()
        for name in ("first", "second", "third"):
            q.push(1.0, name)
        assert [q.pop()[1] for _ in range(3)] == ["first", "second", "third"]

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, "x")
        assert q and len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        q.push(7.5, "x")
        q.push(2.5, "y")
        assert q.peek_time() == 2.5

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().peek_time()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, "x")

    def test_drain_consumes_everything(self):
        q = EventQueue()
        for i in range(5):
            q.push(float(5 - i), i)
        drained = list(q.drain())
        assert [e for _, e in drained] == [4, 3, 2, 1, 0]
        assert not q

    def test_interleaved_push_pop(self):
        q = EventQueue()
        q.push(2.0, "late")
        q.push(1.0, "early")
        assert q.pop() == (1.0, "early")
        q.push(1.5, "mid")
        assert q.pop() == (1.5, "mid")
        assert q.pop() == (2.0, "late")
