"""Tests for restoration pipeline construction (Fig. 5 / Fig. 8)."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.simulator.pipeline import (
    LayerMethod,
    LayerPlan,
    ShardedStageTimeline,
    TokenwiseLayerPlan,
    build_layerwise_schedule,
    build_tokenwise_schedule,
    restoration_makespan,
    sharded_restoration_makespan,
)
from repro.storage.streaming import pipelined_makespan


def hidden_plan(layer: int, io: float = 1.0, compute: float = 0.5) -> LayerPlan:
    return LayerPlan(layer, LayerMethod.HIDDEN, io, compute)


class TestLayerPlanValidation:
    def test_negative_duration_rejected(self):
        with pytest.raises(SchedulingError):
            LayerPlan(0, LayerMethod.HIDDEN, -1.0, 0.0)

    def test_recompute_layers_move_no_io(self):
        with pytest.raises(SchedulingError):
            LayerPlan(0, LayerMethod.RECOMPUTE, 1.0, 1.0)

    def test_kv_layers_need_no_compute(self):
        with pytest.raises(SchedulingError):
            LayerPlan(0, LayerMethod.KV, 1.0, 1.0)

    def test_empty_plan_rejected(self):
        with pytest.raises(SchedulingError):
            build_layerwise_schedule([])

    def test_gap_in_layers_rejected(self):
        with pytest.raises(SchedulingError):
            build_layerwise_schedule([hidden_plan(0), hidden_plan(2)])

    def test_recompute_must_be_prefix(self):
        plans = [
            hidden_plan(0),
            LayerPlan(1, LayerMethod.RECOMPUTE, 0.0, 1.0),
        ]
        with pytest.raises(SchedulingError):
            build_layerwise_schedule(plans)


class TestHCacheOnlyPipeline:
    def test_io_bound_makespan(self):
        """When IO dominates, makespan = total IO + last projection."""
        plans = [hidden_plan(i, io=2.0, compute=1.0) for i in range(4)]
        result = build_layerwise_schedule(plans)
        assert result.makespan == pytest.approx(4 * 2.0 + 1.0)

    def test_compute_bound_makespan(self):
        """When compute dominates, makespan = first IO + total compute."""
        plans = [hidden_plan(i, io=1.0, compute=3.0) for i in range(4)]
        result = build_layerwise_schedule(plans)
        assert result.makespan == pytest.approx(1.0 + 4 * 3.0)

    def test_makespan_lower_bound(self):
        plans = [hidden_plan(i, io=1.5, compute=1.5) for i in range(8)]
        result = build_layerwise_schedule(plans)
        total = 8 * 1.5
        assert result.makespan >= total
        assert result.busy_time("io") == pytest.approx(total)
        assert result.busy_time("compute") == pytest.approx(total)


class TestKVComplement:
    def test_kv_layers_fill_io_bubble(self):
        """Fig. 8d: compute-bound hidden layers + KV transfers on the IO
        stream should beat pure hidden restoration."""
        pure = [hidden_plan(i, io=1.0, compute=2.0) for i in range(6)]
        mixed = [hidden_plan(i, io=1.0, compute=2.0) for i in range(4)] + [
            LayerPlan(4, LayerMethod.KV, 2.0, 0.0),
            LayerPlan(5, LayerMethod.KV, 2.0, 0.0),
        ]
        assert restoration_makespan(mixed) < restoration_makespan(pure)

    def test_kv_io_after_hidden_io(self):
        plans = [hidden_plan(0, io=1.0, compute=1.0), LayerPlan(1, LayerMethod.KV, 5.0, 0.0)]
        result = build_layerwise_schedule(plans)
        kv_task = next(t for t in result.tasks if t.name == "kv:L1")
        io_task = next(t for t in result.tasks if t.name == "io:L0")
        assert kv_task.start >= io_task.end


class TestRecomputeComplement:
    def test_prefetch_overlaps_recompute(self):
        """§4.1.2: hidden states prefetch during token recomputation."""
        plans = [LayerPlan(0, LayerMethod.RECOMPUTE, 0.0, 4.0)] + [
            hidden_plan(i, io=1.0, compute=0.5) for i in range(1, 4)
        ]
        result = build_layerwise_schedule(plans)
        io0 = next(t for t in result.tasks if t.name == "io:L1")
        assert io0.start == 0.0  # prefetch starts immediately
        proj = next(t for t in result.tasks if t.name == "proj:L1")
        assert proj.start >= 4.0  # projections wait for recompute

    def test_recompute_only_plan(self):
        plans = [LayerPlan(i, LayerMethod.RECOMPUTE, 0.0, 2.0) for i in range(3)]
        assert restoration_makespan(plans) == pytest.approx(6.0)


class TestTokenwisePipeline:
    def test_per_layer_sync(self):
        plans = [TokenwiseLayerPlan(i, io_time=1.0, compute_time=1.0) for i in range(4)]
        result = build_tokenwise_schedule(plans)
        # Each projection waits for its own layer's combined transfer.
        assert result.makespan == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            build_tokenwise_schedule([])

    def test_layer_order_normalized(self):
        plans = [
            TokenwiseLayerPlan(1, io_time=1.0, compute_time=1.0),
            TokenwiseLayerPlan(0, io_time=1.0, compute_time=1.0),
        ]
        result = build_tokenwise_schedule(plans)
        names = [t.name for t in result.tasks if t.stream == "io"]
        assert names == ["io:L0", "io:L1"]


class TestShardedStageTimeline:
    def test_series_length_mismatch_rejected(self):
        with pytest.raises(SchedulingError):
            ShardedStageTimeline(
                stage=0,
                io_seconds=(1.0, 1.0),
                compute_seconds=(0.5,),
                gather_seconds=(0.0, 0.0),
            )

    def test_negative_duration_rejected(self):
        with pytest.raises(SchedulingError):
            ShardedStageTimeline(
                stage=0,
                io_seconds=(1.0,),
                compute_seconds=(-0.5,),
                gather_seconds=(0.0,),
            )


class TestShardedRestorationMakespan:
    def stage(self, io, compute, gather=None, stage=0):
        gather = gather if gather is not None else [0.0] * len(io)
        return ShardedStageTimeline(
            stage=stage,
            io_seconds=tuple(io),
            compute_seconds=tuple(compute),
            gather_seconds=tuple(gather),
        )

    def test_empty_plan_rejected(self):
        with pytest.raises(SchedulingError):
            sharded_restoration_makespan([], 1)

    def test_non_positive_tensor_shards_rejected(self):
        with pytest.raises(SchedulingError):
            sharded_restoration_makespan([self.stage([1.0], [0.5])], 0)

    def test_single_stage_matches_two_stream_recurrence(self):
        io = [1.0, 2.0, 0.5, 1.5]
        compute = [0.7, 0.7, 0.7, 0.7]
        got = sharded_restoration_makespan([self.stage(io, compute)], 1)
        assert got == pytest.approx(pipelined_makespan(io, compute))

    def test_tensor_shards_divide_io_stream(self):
        io = [4.0, 4.0]
        compute = [0.1, 0.1]
        one = sharded_restoration_makespan([self.stage(io, compute)], 1)
        four = sharded_restoration_makespan([self.stage(io, compute)], 4)
        # IO-bound: 4 ranks read disjoint shards at aggregated bandwidth.
        assert four < one
        assert four == pytest.approx(8.0 / 4 + 0.1)

    def test_gather_serializes_on_io_stream(self):
        plain = sharded_restoration_makespan(
            [self.stage([2.0, 2.0], [0.1, 0.1])], 2
        )
        gathered = sharded_restoration_makespan(
            [self.stage([2.0, 2.0], [0.1, 0.1], gather=[0.3, 0.3])], 2
        )
        assert gathered == pytest.approx(plain + 0.6)

    def test_io_streams_parallel_slowest_bounds_io_side(self):
        """Stage IO streams advance concurrently: with negligible merge
        compute, a fast stage rides along under the slow one for free."""
        fast = self.stage([0.5, 0.5], [0.1, 0.1], stage=0)
        slow = self.stage([3.0, 3.0], [0.1, 0.1], stage=1)
        got = sharded_restoration_makespan([fast, slow], 1)
        assert got == pytest.approx(
            sharded_restoration_makespan([slow], 1)
        )

    def test_merge_stream_is_single(self):
        """Compute does NOT parallelize across stages: the executor merges
        every stage's granules on one calling thread, so two
        compute-heavy stages cost their summed compute, not the max."""
        a = self.stage([1.0, 1.0], [1.0, 1.0], stage=0)
        b = self.stage([1.0, 1.0], [1.0, 1.0], stage=1)
        got = sharded_restoration_makespan([a, b], 1)
        # First granule ready at t=1, then four 1s merges back-to-back.
        assert got == pytest.approx(5.0)
        assert got > sharded_restoration_makespan([a], 1)
