"""Tests for GQA-aware restoration analysis (§7 extension)."""

from __future__ import annotations

import pytest

from repro.core.gqa import (
    analyze_gqa,
    gqa_aware_schedule,
    gqa_crossover_heads,
    hidden_to_kv_ratio,
    with_kv_heads,
)
from repro.errors import ConfigError


class TestVariants:
    def test_mha_ratio_is_half(self, seven_b):
        assert hidden_to_kv_ratio(seven_b) == pytest.approx(0.5)

    def test_crossover_at_half_heads(self, seven_b):
        assert gqa_crossover_heads(seven_b) == 16

    def test_with_kv_heads_renames(self, seven_b):
        variant = with_kv_heads(seven_b, 8)
        assert variant.n_kv_heads == 8
        assert "gqa8" in variant.name

    def test_indivisible_heads_rejected(self, seven_b):
        with pytest.raises(ConfigError):
            with_kv_heads(seven_b, 7)

    def test_gqa_shrinks_kv_bytes(self, seven_b):
        variant = with_kv_heads(seven_b, 8)
        assert variant.kv_bytes_per_token == seven_b.kv_bytes_per_token // 4
        assert variant.hidden_bytes_per_token == seven_b.hidden_bytes_per_token


class TestRegimeChange:
    def test_mha_prefers_hidden(self, seven_b, default_platform):
        analysis = analyze_gqa(seven_b, default_platform, 1024, 32)
        assert analysis.hcache_transmission_wins
        assert analysis.decision.scheme.n_hidden > analysis.decision.scheme.n_kv

    def test_aggressive_gqa_prefers_kv(self, seven_b, default_platform):
        """Below the crossover the search scheduler abandons hidden states
        — the regime the paper's low-rank suggestion targets."""
        analysis = analyze_gqa(seven_b, default_platform, 1024, 4)
        assert not analysis.hcache_transmission_wins
        assert analysis.decision.scheme.n_kv > analysis.decision.scheme.n_hidden

    def test_ratio_monotone_in_kv_heads(self, seven_b, default_platform):
        ratios = [
            analyze_gqa(seven_b, default_platform, 1024, k).hidden_to_kv_ratio
            for k in (32, 16, 8, 4)
        ]
        assert ratios == sorted(ratios)

    def test_makespan_improves_with_gqa(self, seven_b, default_platform):
        """Smaller state means faster restoration, whatever the method."""
        mha = analyze_gqa(seven_b, default_platform, 1024, 32)
        gqa = analyze_gqa(seven_b, default_platform, 1024, 4)
        assert gqa.decision.predicted_makespan < mha.decision.predicted_makespan

    def test_search_never_worse_than_closed_form(self, seven_b, default_platform):
        from repro.core.profiler import profile_platform
        from repro.core.scheduler import BubbleFreeScheduler

        variant = with_kv_heads(seven_b, 8)
        profile = profile_platform(variant, default_platform, 1024)
        closed = BubbleFreeScheduler(variant.n_layers).schedule(profile)
        searched = gqa_aware_schedule(variant, default_platform, 1024)
        assert searched.predicted_makespan <= closed.predicted_makespan + 1e-12


class TestNumericGQA:
    def test_gqa_restoration_still_lossless(self, default_platform):
        """The numeric path handles GQA models end to end."""
        import numpy as np

        from repro.models.config import ModelConfig
        from repro.models.transformer import Transformer

        config = ModelConfig(
            name="tiny-gqa",
            n_layers=3,
            hidden_size=64,
            n_heads=8,
            n_kv_heads=2,
            ffn_hidden_size=128,
            n_ffn_mats=3,
            vocab_size=128,
            max_context=256,
        )
        model = Transformer.from_seed(config, seed=5)
        tokens = np.arange(20) % config.vocab_size
        result, cache = model.prefill(tokens, capture_hidden=True)
        restored = model.restore_cache_from_hidden(result.hidden_states)
        assert cache.equals(restored)
