"""Tests for multi-GPU restoration timing (§5 extension)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simulator.hardware import platform_preset
from repro.simulator.multi_gpu import (
    allgather_time,
    pipeline_parallel_restoration,
    tensor_parallel_restoration,
)


class TestAllGather:
    def test_single_gpu_free(self):
        assert allgather_time(10**9, 1) == 0.0

    def test_grows_with_gpus(self):
        assert allgather_time(10**9, 4) > allgather_time(10**9, 2)

    def test_invalid_gpus_rejected(self):
        with pytest.raises(ConfigError):
            allgather_time(100, 0)


class TestTensorParallel:
    def test_allgather_small_vs_transmission(self, opt_30b):
        """§5: the all-gather adds only a small overhead compared with the
        transmission part (NVLink >> PCIe)."""
        platform = platform_preset("a100x4-dram")
        timing = tensor_parallel_restoration(opt_30b, platform, 4096)
        assert timing.allgather_seconds < 0.25 * timing.read_seconds

    def test_sharded_read_aggregates_bandwidth(self, opt_30b):
        one = platform_preset("a100-dram")
        four = platform_preset("a100x4-dram")
        # 30B does not fit one GPU for serving, but the read-path math is
        # still well-defined and shows 4x aggregation.
        t1 = tensor_parallel_restoration(opt_30b, one, 2048)
        t4 = tensor_parallel_restoration(opt_30b, four, 2048)
        assert t1.read_seconds == pytest.approx(4 * t4.read_seconds, rel=0.01)

    def test_makespan_at_least_components(self, opt_30b):
        platform = platform_preset("a100x4-dram")
        timing = tensor_parallel_restoration(opt_30b, platform, 4096)
        assert timing.makespan >= timing.allgather_seconds
        assert timing.makespan >= min(timing.read_seconds, timing.compute_seconds)

    def test_zero_tokens_rejected(self, opt_30b):
        with pytest.raises(ConfigError):
            tensor_parallel_restoration(opt_30b, platform_preset("a100x4-dram"), 0)


class TestPipelineParallel:
    def test_scales_with_gpus(self, opt_30b):
        one = platform_preset("a100-dram")
        four = platform_preset("a100x4-dram")
        t1 = pipeline_parallel_restoration(opt_30b, one, 2048)
        t4 = pipeline_parallel_restoration(opt_30b, four, 2048)
        assert t4 < t1
        assert t1 / t4 == pytest.approx(4.0, rel=0.1)

    def test_no_collective_needed(self, opt_30b):
        """PP restores layers independently: time equals the per-GPU
        pipelined max, with no all-gather term at all."""
        platform = platform_preset("a100x4-dram")
        pp = pipeline_parallel_restoration(opt_30b, platform, 4096)
        tp = tensor_parallel_restoration(opt_30b, platform, 4096)
        assert pp == pytest.approx(tp.makespan, rel=0.5)
