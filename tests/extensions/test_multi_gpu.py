"""Tests for multi-GPU restoration timing (§5 extension)."""

from __future__ import annotations

import pytest

from dataclasses import replace

from repro.errors import ConfigError
from repro.models.config import model_preset
from repro.simulator.hardware import GPUS, InterconnectSpec, Platform, platform_preset
from repro.simulator.multi_gpu import (
    allgather_time,
    pipeline_parallel_restoration,
    sharded_restoration,
    tensor_parallel_restoration,
)


class TestAllGather:
    def test_single_gpu_free(self):
        assert allgather_time(10**9, 1) == 0.0

    def test_grows_with_gpus(self):
        assert allgather_time(10**9, 4) > allgather_time(10**9, 2)

    def test_invalid_gpus_rejected(self):
        with pytest.raises(ConfigError):
            allgather_time(100, 0)


class TestTensorParallel:
    def test_allgather_small_vs_transmission(self, opt_30b):
        """§5: the all-gather adds only a small overhead compared with the
        transmission part (NVLink >> PCIe)."""
        platform = platform_preset("a100x4-dram")
        timing = tensor_parallel_restoration(opt_30b, platform, 4096)
        assert timing.allgather_seconds < 0.25 * timing.read_seconds

    def test_sharded_read_aggregates_bandwidth(self, opt_30b):
        one = platform_preset("a100-dram")
        four = platform_preset("a100x4-dram")
        # 30B does not fit one GPU for serving, but the read-path math is
        # still well-defined and shows 4x aggregation.
        t1 = tensor_parallel_restoration(opt_30b, one, 2048)
        t4 = tensor_parallel_restoration(opt_30b, four, 2048)
        assert t1.read_seconds == pytest.approx(4 * t4.read_seconds, rel=0.01)

    def test_makespan_at_least_components(self, opt_30b):
        platform = platform_preset("a100x4-dram")
        timing = tensor_parallel_restoration(opt_30b, platform, 4096)
        assert timing.makespan >= timing.allgather_seconds
        assert timing.makespan >= min(timing.read_seconds, timing.compute_seconds)

    def test_zero_tokens_rejected(self, opt_30b):
        with pytest.raises(ConfigError):
            tensor_parallel_restoration(opt_30b, platform_preset("a100x4-dram"), 0)


class TestPipelineParallel:
    def test_scales_with_gpus(self, opt_30b):
        one = platform_preset("a100-dram")
        four = platform_preset("a100x4-dram")
        t1 = pipeline_parallel_restoration(opt_30b, one, 2048)
        t4 = pipeline_parallel_restoration(opt_30b, four, 2048)
        assert t4 < t1
        assert t1 / t4 == pytest.approx(4.0, rel=0.1)

    def test_no_collective_needed(self, opt_30b):
        """PP restores layers independently: time equals the per-GPU
        pipelined max, with no all-gather term at all."""
        platform = platform_preset("a100x4-dram")
        pp = pipeline_parallel_restoration(opt_30b, platform, 4096)
        tp = tensor_parallel_restoration(opt_30b, platform, 4096)
        assert pp == pytest.approx(tp.makespan, rel=0.5)


class TestShardedRestoration:
    def test_1xN_is_exactly_tensor_parallel(self, opt_30b):
        """The (1, N) grid degenerates to §5 tensor parallelism — same
        reads, gathers, compute (56 KV heads divide by 4), makespan."""
        platform = platform_preset("a100x4-dram")
        tp = tensor_parallel_restoration(opt_30b, platform, 4096)
        sharded = sharded_restoration(opt_30b, platform, 4096, 1, 4)
        assert sharded.read_seconds == tp.read_seconds
        assert sharded.allgather_seconds == tp.allgather_seconds
        assert sharded.compute_seconds == tp.compute_seconds
        assert sharded.makespan == tp.makespan

    def test_Nx1_is_pipeline_parallel_with_no_collective(self, opt_30b):
        platform = platform_preset("a100x4-dram")
        pp = pipeline_parallel_restoration(opt_30b, platform, 4096)
        sharded = sharded_restoration(opt_30b, platform, 4096, 4, 1)
        assert sharded.allgather_seconds == 0.0
        assert sharded.makespan == pytest.approx(pp, rel=1e-12)

    def test_stage_count_clamped_to_layers(self):
        config = model_preset("tiny-llama")
        platform = Platform(GPUS["A100"], n_gpus=8)
        sharded = sharded_restoration(config, platform, 1024, 8, 1)
        assert len(sharded.stage_makespans) == config.n_layers
        assert sharded.makespan == max(sharded.stage_makespans)

    def test_grid_must_match_platform(self, opt_30b):
        with pytest.raises(ConfigError, match="GPUs"):
            sharded_restoration(opt_30b, platform_preset("a100x4-dram"), 1024, 2, 1)

    def test_tensor_shards_respect_gqa_groups(self):
        gqa = replace(model_preset("tiny-llama"), name="tiny-gqa", n_kv_heads=2)
        platform = Platform(GPUS["A100"], n_gpus=4)
        with pytest.raises(ConfigError, match="GQA group"):
            sharded_restoration(gqa, platform, 1024, 1, 4)
        # The same grid transposed is legal: 4 stages, 1 head rank each.
        assert sharded_restoration(gqa, platform, 1024, 4, 1).makespan > 0

    def test_zero_tokens_rejected(self, opt_30b):
        with pytest.raises(ConfigError):
            sharded_restoration(opt_30b, platform_preset("a100x4-dram"), 0, 2, 2)


class TestInterconnectSpec:
    def test_platform_interconnect_prices_the_gather(self):
        fast = InterconnectSpec(name="fast", bandwidth=600e9, collective_latency=20e-6)
        slow = InterconnectSpec(name="slow", bandwidth=60e9, collective_latency=20e-6)
        assert allgather_time(10**9, 4, slow) > allgather_time(10**9, 4, fast)
        # None falls back to the module constants (the historical default).
        assert allgather_time(10**9, 4) == allgather_time(10**9, 4, fast)

    def test_validation(self):
        with pytest.raises(ConfigError):
            InterconnectSpec(bandwidth=0.0)
        with pytest.raises(ConfigError):
            InterconnectSpec(collective_latency=-1e-6)
