"""Tests for the tiered DRAM+SSD backend (§4 extension)."""

from __future__ import annotations

import pytest

from repro.core.profiler import build_storage_array
from repro.errors import ConfigError
from repro.simulator.hardware import platform_preset
from repro.storage.tiered import TieredBackend

MB = 1024**2


@pytest.fixture
def backend():
    array = build_storage_array(platform_preset("compute-sufficient"))  # 1 SSD
    return TieredBackend(array, dram_capacity_bytes=512 * MB)


class TestPlacement:
    def test_first_read_from_ssd(self, backend):
        timing = backend.read("doc", 100 * MB, 1 * MB)
        assert timing.tier == "ssd"

    def test_second_read_from_dram(self, backend):
        backend.read("doc", 100 * MB, 1 * MB)
        timing = backend.read("doc", 100 * MB, 1 * MB)
        assert timing.tier == "dram"

    def test_dram_faster_than_one_ssd(self, backend):
        ssd = backend.read("doc", 100 * MB, 1 * MB)
        dram = backend.read("doc", 100 * MB, 1 * MB)
        assert dram.seconds < ssd.seconds / 3  # 32 GB/s link vs 6.9 GB/s SSD

    def test_capacity_evicts_lru(self, backend):
        backend.read("a", 300 * MB, 1 * MB)
        backend.read("b", 300 * MB, 1 * MB)  # evicts a
        assert not backend.is_resident("a")
        assert backend.is_resident("b")

    def test_explicit_evict(self, backend):
        backend.read("doc", 10 * MB, 1 * MB)
        backend.evict("doc")
        assert not backend.is_resident("doc")
        assert backend.read("doc", 10 * MB, 1 * MB).tier == "ssd"

    def test_evict_missing_is_noop(self, backend):
        backend.evict("ghost")


class TestPrefetch:
    def test_prefetch_makes_read_hit(self, backend):
        copy_time = backend.prefetch("doc", 50 * MB)
        assert copy_time > 0
        assert backend.read("doc", 50 * MB, 1 * MB).tier == "dram"

    def test_prefetch_does_not_skew_hit_stats(self, backend):
        backend.prefetch("doc", 50 * MB)
        backend.read("doc", 50 * MB, 1 * MB)
        assert backend.dram_hit_ratio == 1.0

    def test_invalid_prefetch_rejected(self, backend):
        with pytest.raises(ConfigError):
            backend.prefetch("doc", 0)

    def test_resident_prefetch_is_free(self, backend):
        """Regression: re-warming a DRAM-resident context (every
        ``finish_round`` after a warm read) must not report the full
        SSD-to-DRAM copy cost again."""
        backend.read("doc", 50 * MB, 1 * MB)  # promotes
        assert backend.prefetch("doc", 50 * MB) == 0.0

    def test_prefetch_after_prefetch_is_free(self, backend):
        first = backend.prefetch("doc", 50 * MB)
        assert first > 0
        assert backend.prefetch("doc", 50 * MB) == 0.0

    def test_grown_resident_context_pays_only_the_delta(self, backend):
        backend.prefetch("doc", 50 * MB)
        delta_time = backend.prefetch("doc", 60 * MB)
        cold_time = backend.prefetch("other", 60 * MB)
        assert 0 < delta_time < cold_time

    def test_resident_prefetch_keeps_recency(self, backend):
        backend.read("a", 200 * MB, 1 * MB)
        backend.read("b", 200 * MB, 1 * MB)
        backend.prefetch("a", 200 * MB)  # refreshes a's recency
        backend.read("c", 200 * MB, 1 * MB)  # evicts b, the LRU entry
        assert backend.is_resident("a")
        assert not backend.is_resident("b")


class TestStreamedRead:
    def test_chunk_times_sum_to_whole_read(self, backend):
        streamed = backend.read_streamed("doc", 100 * MB, 1 * MB)
        assert streamed.tier == "ssd"
        assert streamed.n_chunks == 100
        fresh = TieredBackend(backend.array, dram_capacity_bytes=512 * MB)
        whole = fresh.read("doc2", 100 * MB, 1 * MB)
        assert streamed.seconds == pytest.approx(whole.seconds)

    def test_warm_stream_uses_dram_chunks(self, backend):
        backend.read("doc", 64 * MB, 1 * MB)
        streamed = backend.read_streamed("doc", 64 * MB, 1 * MB)
        assert streamed.tier == "dram"
        assert all(s > 0 for s in streamed.chunk_seconds)

    def test_ragged_final_chunk(self, backend):
        streamed = backend.read_streamed("doc", 10 * MB + 512, 1 * MB)
        assert streamed.n_chunks == 11
        assert streamed.chunk_seconds[-1] < streamed.chunk_seconds[0]


class TestAccounting:
    def test_hit_ratio(self, backend):
        backend.read("a", 10 * MB, MB)
        backend.read("a", 10 * MB, MB)
        backend.read("b", 10 * MB, MB)
        assert backend.dram_hit_ratio == pytest.approx(1 / 3)

    def test_resident_bytes(self, backend):
        backend.read("a", 10 * MB, MB)
        assert backend.resident_bytes == 10 * MB

    def test_invalid_read_rejected(self, backend):
        with pytest.raises(ConfigError):
            backend.read("a", 0, MB)

    def test_invalid_capacity_rejected(self):
        array = build_storage_array(platform_preset("default"))
        with pytest.raises(ConfigError):
            TieredBackend(array, dram_capacity_bytes=0)
