"""Tests for the quantized hidden-state codec (§7 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.storage.codec import GroupQuantizer, quantization_logit_drift


def states(n=20, width=64, seed=0):
    return np.random.default_rng(seed).normal(size=(n, width)).astype(np.float32)


class TestRoundtrip:
    def test_int8_error_bounded(self):
        q = GroupQuantizer(bits=8, group_size=16)
        x = states()
        err = np.abs(q.decode(q.encode(x)) - x)
        grouped = x.reshape(20, -1, 16)
        bound = np.abs(grouped).max(axis=-1, keepdims=True) * q.max_relative_error()
        assert np.all(err.reshape(20, -1, 16) <= bound + 1e-6)

    def test_int4_coarser_than_int8(self):
        x = states(seed=1)
        e8 = np.abs(GroupQuantizer(8, 16).decode(GroupQuantizer(8, 16).encode(x)) - x).max()
        e4 = np.abs(GroupQuantizer(4, 16).decode(GroupQuantizer(4, 16).encode(x)) - x).max()
        assert e4 > e8

    def test_zero_preserved_exactly(self):
        q = GroupQuantizer(8, 16)
        x = np.zeros((4, 32), dtype=np.float32)
        assert np.array_equal(q.decode(q.encode(x)), x)

    def test_shape_preserved(self):
        q = GroupQuantizer(8, 32)
        x = states(7, 64, seed=2)
        assert q.decode(q.encode(x)).shape == x.shape

    def test_scale_invariance(self):
        """Symmetric per-group scaling makes the codec scale-covariant."""
        q = GroupQuantizer(8, 16)
        x = states(seed=3)
        a = q.decode(q.encode(x))
        b = q.decode(q.encode(x * 1000.0))
        assert np.allclose(a * 1000.0, b, rtol=1e-5)

    def test_width_must_divide(self):
        q = GroupQuantizer(8, 48)
        with pytest.raises(ConfigError):
            q.encode(states(4, 64))

    def test_codec_mismatch_rejected(self):
        block = GroupQuantizer(8, 16).encode(states())
        with pytest.raises(ConfigError):
            GroupQuantizer(4, 16).decode(block)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ConfigError):
            GroupQuantizer(bits=3)


class TestStorageSizing:
    def test_int8_halves_fp16(self):
        q = GroupQuantizer(8, 64)
        assert q.compression_ratio(4096) == pytest.approx(1.94, abs=0.05)

    def test_int4_near_4x(self):
        q = GroupQuantizer(4, 64)
        assert 3.4 < q.compression_ratio(4096) < 4.0

    def test_block_storage_bytes(self):
        q = GroupQuantizer(8, 64)
        block = q.encode(states(10, 128, seed=4))
        assert block.storage_bytes == 10 * 128 + 10 * 2 * 2  # codes + scales

    def test_smaller_groups_cost_more_scales(self):
        fine = GroupQuantizer(8, 16).compression_ratio(4096)
        coarse = GroupQuantizer(8, 128).compression_ratio(4096)
        assert coarse > fine


class TestEndTaskImpact:
    def test_int8_logit_drift_small(self, tiny_model, tiny_config):
        tokens = np.arange(24) % tiny_config.vocab_size
        drift = quantization_logit_drift(tiny_model, tokens, GroupQuantizer(8, 16))
        assert drift < 0.2

    def test_int4_drifts_more(self, tiny_model, tiny_config):
        tokens = np.arange(24) % tiny_config.vocab_size
        d8 = quantization_logit_drift(tiny_model, tokens, GroupQuantizer(8, 16))
        d4 = quantization_logit_drift(tiny_model, tokens, GroupQuantizer(4, 16))
        assert d4 > d8
