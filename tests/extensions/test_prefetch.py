"""Tests for prefetching HCache restoration (§4 extension)."""

from __future__ import annotations

import pytest

from repro.cache.prefetch import PrefetchingHCache
from repro.errors import ConfigError
from repro.simulator.hardware import platform_preset
from repro.traces.arrival import ROUND_INTERVAL_SECONDS


@pytest.fixture
def prefetcher(seven_b):
    # One SSD: the regime where DRAM warmth matters most.
    return PrefetchingHCache(seven_b, platform_preset("compute-sufficient"))


class TestWarmRestoration:
    def test_cold_restore_from_ssd(self, prefetcher):
        result = prefetcher.restore("sess", 2048)
        assert result.tier == "ssd"

    def test_prefetched_restore_from_dram(self, prefetcher):
        prefetcher.finish_round("sess", 2048)
        result = prefetcher.restore("sess", 2048)
        assert result.tier == "dram"

    def test_warm_faster_than_cold(self, prefetcher):
        cold = prefetcher.restore("cold-sess", 2048)
        prefetcher.finish_round("warm-sess", 2048)
        warm = prefetcher.restore("warm-sess", 2048)
        assert warm.timing.makespan < cold.timing.makespan / 1.5

    def test_prefetch_fits_round_interval(self, prefetcher):
        """The 30s think time between rounds dwarfs the background copy."""
        copy_time = prefetcher.finish_round("sess", 16384)
        assert copy_time < ROUND_INTERVAL_SECONDS / 10

    def test_scheduler_rebalances_for_dram(self, prefetcher):
        """Faster IO shifts the partition away from recompute layers."""
        cold = prefetcher.restore("a", 2048)
        prefetcher.finish_round("b", 2048)
        warm = prefetcher.restore("b", 2048)
        assert "RE" in cold.scheme_description  # 1 SSD: IO-bound -> recompute fill
        assert warm.scheme_description != cold.scheme_description

    def test_demand_read_promotes(self, prefetcher):
        prefetcher.restore("sess", 1024)
        again = prefetcher.restore("sess", 1024)
        assert again.tier == "dram"

    def test_hit_ratio_tracked(self, prefetcher):
        prefetcher.restore("a", 512)
        prefetcher.restore("a", 512)
        assert prefetcher.dram_hit_ratio == pytest.approx(0.5)

    def test_invalid_tokens_rejected(self, prefetcher):
        with pytest.raises(ConfigError):
            prefetcher.restore("sess", 0)
        with pytest.raises(ConfigError):
            prefetcher.finish_round("sess", -1)

    def test_repeated_warm_round_prefetch_is_free(self, prefetcher):
        """Regression: after a warm read the context is DRAM-resident, so
        the next ``finish_round`` must not charge a fresh SSD copy."""
        first = prefetcher.finish_round("sess", 2048)
        assert first > 0
        prefetcher.restore("sess", 2048)
        assert prefetcher.finish_round("sess", 2048) == 0.0


class TestChunkPipeline:
    def test_chunk_pipeline_reported(self, prefetcher):
        result = prefetcher.restore("sess", 2048)
        assert result.chunk_pipelined_s > 0

    def test_chunk_pipeline_bounded_by_transfer_and_serial(self, prefetcher):
        """The chunk timeline is at least the scheme's stored-byte
        transfer time and at most the serial transfer-then-compute sum."""
        n_tokens = 4096
        ctx_bytes = prefetcher._context_bytes(n_tokens)
        chunk_bytes = 64 * prefetcher.config.hidden_bytes_per_token_layer
        all_hidden_transfer = prefetcher.backend.array.read_time(ctx_bytes, chunk_bytes)
        result = prefetcher.restore("sess", n_tokens)
        assert result.tier == "ssd"
        profile = prefetcher._profile_for_tier(n_tokens, "ssd")
        scheme = prefetcher._scheduler.schedule(profile).scheme
        config = prefetcher.config
        transfer = all_hidden_transfer * (
            (scheme.n_hidden + 2 * scheme.n_kv) / config.n_layers
        )
        serial_ceiling = (
            transfer
            + profile.compute_hidden * scheme.n_hidden
            + profile.compute_token * scheme.n_recompute
        )
        assert transfer * 0.99 <= result.chunk_pipelined_s <= serial_ceiling * 1.01

    def test_warm_chunk_pipeline_faster_than_cold(self, prefetcher):
        cold = prefetcher.restore("cold", 2048)
        prefetcher.finish_round("warm", 2048)
        warm = prefetcher.restore("warm", 2048)
        assert warm.chunk_pipelined_s < cold.chunk_pipelined_s


class TestCapacityPressure:
    def test_eviction_under_pressure(self, seven_b):
        tiny = PrefetchingHCache(
            seven_b, platform_preset("compute-sufficient"),
            dram_capacity_bytes=600 * 1024**2,
        )
        tiny.finish_round("a", 2048)  # ~512 MiB of hidden states
        tiny.finish_round("b", 2048)  # evicts a (one context fits)
        assert tiny.restore("a", 2048).tier == "ssd"  # a was evicted ...
        assert tiny.restore("b", 2048).tier == "ssd"  # ... and its demand
        # read promoted it again, evicting b in turn.
        assert tiny.restore("b", 2048).tier == "dram"
