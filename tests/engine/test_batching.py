"""Tests for continuous batching and memory admission (§2.2, §2.4)."""

from __future__ import annotations

import pytest

from repro.engine.batching import ContinuousBatcher, MemoryBudget
from repro.engine.request import Phase, Request, RequestSpec
from repro.errors import ConfigError
from repro.simulator.hardware import platform_preset


def make_request(rid: str, total: int = 100, depends_on: str | None = None) -> Request:
    return Request(
        spec=RequestSpec(
            request_id=rid,
            session_id=f"sess-{rid}",
            arrival_time=0.0,
            history_tokens=total - 20,
            input_tokens=10,
            output_tokens=10,
            depends_on=depends_on,
        )
    )


class TestMemoryBudget:
    def test_7b_capacity_matches_paper(self, seven_b):
        """§2.4: an A100-40G keeps ~48K tokens of Llama2-7B KV."""
        budget = MemoryBudget.for_platform(seven_b, platform_preset("a100-dram"))
        assert 40_000 < budget.capacity_tokens < 60_000

    def test_13b_capacity_matches_paper(self, thirteen_b):
        """§2.4: ~17K tokens for Llama2-13B."""
        budget = MemoryBudget.for_platform(thirteen_b, platform_preset("a100-dram"))
        assert 13_000 < budget.capacity_tokens < 22_000

    def test_13b_fits_one_long_context(self, thirteen_b):
        """§2.4: 'only 1-3 extended contexts'."""
        budget = MemoryBudget.for_platform(thirteen_b, platform_preset("a100-dram"))
        assert 1 <= budget.capacity_tokens // 16384 <= 3

    def test_model_too_big_rejected(self, opt_30b):
        with pytest.raises(ConfigError):
            MemoryBudget.for_platform(opt_30b, platform_preset("a100-dram"))

    def test_30b_fits_on_four_gpus(self, opt_30b):
        budget = MemoryBudget.for_platform(opt_30b, platform_preset("a100x4-dram"))
        assert budget.capacity_tokens > 30_000

    def test_invalid_reserve(self, seven_b):
        with pytest.raises(ConfigError):
            MemoryBudget.for_platform(seven_b, platform_preset("a100-dram"), 1.5)


class TestAdmission:
    def test_fcfs_admission(self):
        batcher = ContinuousBatcher(MemoryBudget(250))
        for rid in ("a", "b", "c"):
            batcher.enqueue(make_request(rid))
        admitted = batcher.admit(now=0.0)
        assert [r.spec.request_id for r in admitted] == ["a", "b"]
        assert len(batcher.queue) == 1

    def test_memory_gate(self):
        batcher = ContinuousBatcher(MemoryBudget(150))
        batcher.enqueue(make_request("a"))
        batcher.enqueue(make_request("b"))
        assert len(batcher.admit(now=0.0)) == 1
        assert batcher.free_tokens == 50

    def test_release_frees_memory(self):
        batcher = ContinuousBatcher(MemoryBudget(100))
        batcher.enqueue(make_request("a"))
        (request,) = batcher.admit(now=0.0)
        request.phase = Phase.DECODING
        request.mark_finished(1.0)
        batcher.release(request)
        assert batcher.free_tokens == 100
        assert batcher.idle

    def test_release_unknown_rejected(self):
        batcher = ContinuousBatcher(MemoryBudget(100))
        with pytest.raises(ConfigError):
            batcher.release(make_request("ghost"))

    def test_dependency_blocks_round(self):
        batcher = ContinuousBatcher(MemoryBudget(1000))
        batcher.enqueue(make_request("round2", depends_on="round1"))
        assert batcher.admit(now=0.0, finished_sessions=set()) == []
        admitted = batcher.admit(now=0.0, finished_sessions={"round1"})
        assert len(admitted) == 1

    def test_dependency_does_not_starve_others(self):
        batcher = ContinuousBatcher(MemoryBudget(1000))
        batcher.enqueue(make_request("blocked", depends_on="nope"))
        batcher.enqueue(make_request("free"))
        admitted = batcher.admit(now=0.0, finished_sessions=set())
        assert [r.spec.request_id for r in admitted] == ["free"]
        assert len(batcher.queue) == 1

    def test_max_running_cap(self):
        batcher = ContinuousBatcher(MemoryBudget(10_000), max_running=2)
        for rid in ("a", "b", "c"):
            batcher.enqueue(make_request(rid))
        assert len(batcher.admit(now=0.0)) == 2

    def test_admitted_at_stamped(self):
        batcher = ContinuousBatcher(MemoryBudget(1000))
        batcher.enqueue(make_request("a"))
        (request,) = batcher.admit(now=7.5)
        assert request.admitted_at == 7.5

    def test_phase_queries(self):
        batcher = ContinuousBatcher(MemoryBudget(1000))
        batcher.enqueue(make_request("a"))
        (request,) = batcher.admit(now=0.0)
        request.phase = Phase.PREFILLING
        assert batcher.prefilling() == [request]
        assert batcher.decoding() == []
        assert batcher.restoring() == []

    def test_enqueue_non_queued_rejected(self):
        batcher = ContinuousBatcher(MemoryBudget(1000))
        request = make_request("a")
        request.phase = Phase.DECODING
        with pytest.raises(ConfigError):
            batcher.enqueue(request)

    def test_reserved_tokens_accounting(self):
        batcher = ContinuousBatcher(MemoryBudget(1000))
        batcher.enqueue(make_request("a", total=100))
        batcher.enqueue(make_request("b", total=200))
        batcher.admit(now=0.0)
        assert batcher.reserved_tokens == 300
