"""Tests for SplitFuse iteration planning."""

from __future__ import annotations

import pytest

from repro.engine.request import Phase, Request, RequestSpec
from repro.engine.splitfuse import SplitFuseScheduler
from repro.errors import ConfigError


def decoding_request(rid: str) -> Request:
    r = Request(
        spec=RequestSpec(
            request_id=rid, session_id=rid, arrival_time=0.0,
            history_tokens=0, input_tokens=1, output_tokens=10,
        )
    )
    r.phase = Phase.DECODING
    return r


def prefilling_request(rid: str, remaining: int) -> Request:
    r = Request(
        spec=RequestSpec(
            request_id=rid, session_id=rid, arrival_time=0.0,
            history_tokens=0, input_tokens=remaining, output_tokens=10,
        )
    )
    r.phase = Phase.PREFILLING
    return r


class TestPlanning:
    def test_decodes_always_scheduled(self):
        scheduler = SplitFuseScheduler(budget_tokens=4)
        decodes = [decoding_request(f"d{i}") for i in range(10)]
        plan = scheduler.plan(decodes, [])
        assert len(plan.decode_requests) == 10

    def test_prefill_chunked_to_budget(self):
        scheduler = SplitFuseScheduler(budget_tokens=256)
        plan = scheduler.plan([], [prefilling_request("p", 1000)])
        assert plan.prefill_tokens == 256

    def test_decode_plus_prefill_shares_budget(self):
        scheduler = SplitFuseScheduler(budget_tokens=256)
        decodes = [decoding_request(f"d{i}") for i in range(56)]
        plan = scheduler.plan(decodes, [prefilling_request("p", 1000)])
        assert plan.prefill_tokens == 200
        assert plan.budget_used == 256

    def test_multiple_prefills_fcfs(self):
        scheduler = SplitFuseScheduler(budget_tokens=512)
        a = prefilling_request("a", 450)
        b = prefilling_request("b", 450)
        plan = scheduler.plan([], [a, b])
        chunks = dict((r.spec.request_id, n) for r, n in plan.prefill_chunks)
        assert chunks == {"a": 450, "b": 62}

    def test_small_final_chunk(self):
        scheduler = SplitFuseScheduler(budget_tokens=512)
        plan = scheduler.plan([], [prefilling_request("p", 30)])
        assert plan.prefill_tokens == 30

    def test_no_work(self):
        scheduler = SplitFuseScheduler()
        plan = scheduler.plan([], [])
        assert not plan.has_work

    def test_decode_overflow_may_exceed_budget(self):
        """Decodes never starve (§2.2): when the decode batch alone
        overflows the budget, ``budget_used`` exceeds it and prefills get
        zero tokens this iteration."""
        scheduler = SplitFuseScheduler(budget_tokens=512)
        assert scheduler.budget_tokens == 512
        decodes = [decoding_request(f"d{i}") for i in range(600)]
        plan = scheduler.plan(decodes, [prefilling_request("p", 100)])
        assert len(plan.decode_requests) == 600
        assert plan.budget_used == 600  # exceeds the 512 budget
        assert plan.prefill_chunks == ()

    def test_decode_exactly_at_budget_starves_prefill(self):
        scheduler = SplitFuseScheduler(budget_tokens=512)
        decodes = [decoding_request(f"d{i}") for i in range(512)]
        plan = scheduler.plan(decodes, [prefilling_request("p", 100)])
        assert plan.budget_used == 512
        assert plan.prefill_chunks == ()

    def test_budget_rounded_to_tile(self):
        scheduler = SplitFuseScheduler(budget_tokens=500)
        assert scheduler.budget_tokens == 384  # optimal_batch_tokens(500)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigError):
            SplitFuseScheduler(budget_tokens=0)

    def test_wrong_phase_rejected(self):
        scheduler = SplitFuseScheduler()
        queued = prefilling_request("x", 10)
        queued.phase = Phase.QUEUED
        with pytest.raises(ConfigError):
            scheduler.plan([], [queued])
        with pytest.raises(ConfigError):
            scheduler.plan([queued], [])
