"""Tests for the request lifecycle."""

from __future__ import annotations

import pytest

from repro.engine.request import Phase, Request, RequestSpec
from repro.errors import ConfigError, StateError


def spec(**overrides):
    base = dict(
        request_id="r0",
        session_id="s0",
        arrival_time=0.0,
        history_tokens=100,
        input_tokens=10,
        output_tokens=5,
    )
    base.update(overrides)
    return RequestSpec(**base)


class TestSpecValidation:
    def test_total_context(self):
        assert spec().total_context == 115

    def test_zero_history_ok(self):
        assert spec(history_tokens=0).history_tokens == 0

    def test_zero_input_rejected(self):
        with pytest.raises(ConfigError):
            spec(input_tokens=0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ConfigError):
            spec(arrival_time=-1.0)

    def test_negative_history_rejected(self):
        with pytest.raises(ConfigError):
            spec(history_tokens=-1)


class TestLifecycle:
    def test_initial_state(self):
        request = Request(spec=spec())
        assert request.phase is Phase.QUEUED
        assert request.prefill_remaining == 10

    def test_context_tokens_track_progress(self):
        request = Request(spec=spec())
        assert request.context_tokens == 100
        request.prefill_remaining = 4
        assert request.context_tokens == 106
        request.decoded_tokens = 2
        assert request.context_tokens == 108

    def test_first_token_requires_prefilling(self):
        request = Request(spec=spec())
        with pytest.raises(StateError):
            request.mark_first_token(1.0)

    def test_ttft_definition(self):
        request = Request(spec=spec(arrival_time=2.0))
        request.phase = Phase.PREFILLING
        request.mark_first_token(5.0)
        assert request.ttft == pytest.approx(3.0)

    def test_ttft_before_first_token_rejected(self):
        request = Request(spec=spec())
        with pytest.raises(StateError):
            _ = request.ttft

    def test_tbt_definition(self):
        request = Request(spec=spec(output_tokens=5))
        request.phase = Phase.PREFILLING
        request.mark_first_token(1.0)
        request.decoded_tokens = 5
        request.mark_finished(2.0)
        assert request.tbt == pytest.approx(1.0 / 4)

    def test_tbt_single_token_output(self):
        request = Request(spec=spec(output_tokens=1))
        request.phase = Phase.PREFILLING
        request.mark_first_token(1.0)
        request.phase = Phase.DECODING
        request.mark_finished(1.0)
        assert request.tbt == 0.0

    def test_finish_requires_decoding(self):
        request = Request(spec=spec())
        with pytest.raises(StateError):
            request.mark_finished(1.0)

    def test_tbt_before_finish_rejected(self):
        request = Request(spec=spec())
        request.phase = Phase.PREFILLING
        request.mark_first_token(1.0)
        with pytest.raises(StateError):
            _ = request.tbt
