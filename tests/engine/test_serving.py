"""Tests for the discrete-event serving simulation (Fig. 9 machinery)."""

from __future__ import annotations

import pytest

from repro.baselines import default_methods
from repro.baselines.base import RestorationMethod
from repro.core.restoration import RestorationTiming
from repro.engine.request import RequestSpec
from repro.engine.serving import (
    EngineConfig,
    ServingSimulator,
    concurrent_context_estimate,
    max_context_tokens,
    simulate_methods,
)
from repro.errors import ConfigError, SimulationError
from repro.simulator.hardware import platform_preset
from repro.traces import ShareGPTGenerator, build_workload


def single_spec(history=1000, inp=50, out=20, t=0.0, rid="r0"):
    return RequestSpec(
        request_id=rid,
        session_id=f"s-{rid}",
        arrival_time=t,
        history_tokens=history,
        input_tokens=inp,
        output_tokens=out,
    )


@pytest.fixture(scope="module")
def small_workload():
    convs = ShareGPTGenerator(seed=3, mean_rounds=4).sample_many(8)
    return build_workload(convs, rate_per_second=0.5, seed=4)


class TestSingleRequest:
    def test_request_completes(self, seven_b, default_platform):
        sim = ServingSimulator(
            seven_b, default_platform, default_methods(seven_b, default_platform)["hcache"]
        )
        report = sim.run([single_spec()])
        assert report.n_requests == 1
        assert report.mean_ttft > 0
        assert report.mean_tbt > 0

    def test_ideal_ttft_is_prefill_only(self, seven_b, default_platform):
        methods = default_methods(seven_b, default_platform)
        ideal = ServingSimulator(seven_b, default_platform, methods["ideal"]).run(
            [single_spec()]
        )
        hcache = ServingSimulator(seven_b, default_platform, methods["hcache"]).run(
            [single_spec()]
        )
        assert ideal.mean_ttft < hcache.mean_ttft

    def test_no_history_all_methods_equal(self, seven_b, default_platform):
        spec = single_spec(history=0)
        reports = simulate_methods(
            seven_b, default_platform, default_methods(seven_b, default_platform), [spec]
        )
        ttfts = [r.mean_ttft for r in reports.values()]
        assert max(ttfts) - min(ttfts) < 2e-3

    def test_oversized_request_rejected(self, thirteen_b, default_platform):
        sim = ServingSimulator(
            thirteen_b,
            default_platform,
            default_methods(thirteen_b, default_platform)["ideal"],
        )
        with pytest.raises(ConfigError):
            sim.run([single_spec(history=30_000)])

    def test_empty_workload_rejected(self, seven_b, default_platform):
        sim = ServingSimulator(
            seven_b, default_platform, default_methods(seven_b, default_platform)["ideal"]
        )
        with pytest.raises(ConfigError):
            sim.run([])


class TestMethodOrdering:
    def test_paper_ttft_ordering(self, seven_b, default_platform, small_workload):
        """Fig. 9a: recompute > KV offload > HCache > ideal."""
        reports = simulate_methods(
            seven_b,
            default_platform,
            default_methods(seven_b, default_platform),
            small_workload,
        )
        assert (
            reports["recompute"].mean_ttft
            > reports["kv-offload"].mean_ttft
            > reports["hcache"].mean_ttft
            > reports["ideal"].mean_ttft
        )

    def test_hcache_ttft_speedup_band(self, seven_b, default_platform, small_workload):
        """§6.1.1: 1.27-1.90x vs KV offload, 2.21-3.57x vs recompute
        (checked loosely — queueing widens the spread at load)."""
        reports = simulate_methods(
            seven_b,
            default_platform,
            default_methods(seven_b, default_platform),
            small_workload,
        )
        vs_offload = reports["kv-offload"].mean_ttft / reports["hcache"].mean_ttft
        vs_recompute = reports["recompute"].mean_ttft / reports["hcache"].mean_ttft
        assert 1.1 < vs_offload < 2.5
        assert 2.0 < vs_recompute < 8.0

    def test_tbt_near_ideal_for_hcache(self, seven_b, default_platform, small_workload):
        """Fig. 9d-f: HCache's TBT is within ~4% of ideal."""
        reports = simulate_methods(
            seven_b,
            default_platform,
            default_methods(seven_b, default_platform),
            small_workload,
        )
        overhead = reports["hcache"].mean_tbt / reports["ideal"].mean_tbt - 1.0
        assert overhead < 0.06

    def test_conservation(self, seven_b, default_platform, small_workload):
        """Every admitted request finishes exactly once."""
        reports = simulate_methods(
            seven_b,
            default_platform,
            default_methods(seven_b, default_platform),
            small_workload,
        )
        for report in reports.values():
            assert report.n_requests == len(small_workload)


class TestLoadBehaviour:
    def test_ttft_grows_with_load(self, seven_b, default_platform):
        method = default_methods(seven_b, default_platform)["kv-offload"]
        convs = ShareGPTGenerator(seed=9, mean_rounds=4).sample_many(10)
        slow = ServingSimulator(seven_b, default_platform, method).run(
            build_workload(convs, rate_per_second=0.05, seed=1)
        )
        fast = ServingSimulator(seven_b, default_platform, method).run(
            build_workload(convs, rate_per_second=2.0, seed=1)
        )
        assert fast.mean_ttft >= slow.mean_ttft * 0.95

    def test_round_ordering_respected(self, seven_b, default_platform):
        """Round k+1 never gets its first token before round k finishes."""
        specs = [
            RequestSpec("s/r0", "s", 0.0, 0, 64, 16),
            RequestSpec("s/r1", "s", 0.1, 80, 64, 16, depends_on="s/r0"),
        ]
        sim = ServingSimulator(
            seven_b, default_platform, default_methods(seven_b, default_platform)["hcache"]
        )
        sim.run(specs)
        records = {r.request_id: r for r in sim.metrics.records}
        r0_finish = records["s/r0"].finished_at
        r1_first_token = records["s/r1"].arrival_time + records["s/r1"].ttft
        assert r1_first_token >= r0_finish

    def test_horizon_guard(self, seven_b, default_platform):
        config = EngineConfig(max_sim_seconds=1e-6)
        sim = ServingSimulator(
            seven_b,
            default_platform,
            default_methods(seven_b, default_platform)["recompute"],
            config,
        )
        with pytest.raises(SimulationError):
            sim.run([single_spec(t=1.0)])


class TestCapacityHelpers:
    def test_max_context_positive(self, seven_b):
        assert max_context_tokens(seven_b, platform_preset("a100-dram")) > 0

    def test_concurrent_estimate_matches_paper(self, seven_b, thirteen_b):
        """§2.4: 7-20 conversations (2.5K each) or 1-3 long contexts."""
        plat = platform_preset("a100-dram")
        convs = concurrent_context_estimate(seven_b, plat, 2500)
        assert 7 <= convs <= 25
        long_ctx = concurrent_context_estimate(thirteen_b, plat, 16384)
        assert 1 <= long_ctx <= 3

    def test_zero_context_rejected(self, seven_b):
        with pytest.raises(ConfigError):
            concurrent_context_estimate(seven_b, platform_preset("a100-dram"), 0)


class _SplitTimingMethod(RestorationMethod):
    """Stub: big histories pay IO; small ones are zero-IO, compute-only.

    Models a DRAM-warm (or pure-recompute) restoration whose state needs
    no transfer — the case where compute must not serialize behind other
    requests' IO path.
    """

    name = "split-timing"

    def __init__(self, config, platform, io_threshold=100):
        super().__init__(config, platform)
        self.io_threshold = io_threshold

    def restoration_timing(self, n_tokens: int) -> RestorationTiming:
        if n_tokens >= self.io_threshold:
            return RestorationTiming(
                n_tokens=n_tokens, makespan=5.0, io_busy=5.0,
                compute_busy=0.05, io_bubble=0.0, compute_bubble=0.0,
            )
        return RestorationTiming(
            n_tokens=n_tokens, makespan=0.01, io_busy=0.0,
            compute_busy=0.01, io_bubble=0.0, compute_bubble=0.0,
        )


class TestZeroIORestoration:
    """Regression: zero-IO restorations must start immediately and never
    gate on (or advance) the shared IO path."""

    def test_zero_io_restore_not_gated_by_other_requests_io(
        self, seven_b, default_platform
    ):
        method = _SplitTimingMethod(seven_b, default_platform)
        sim = ServingSimulator(seven_b, default_platform, method)
        specs = [
            single_spec(history=10_000, inp=32, out=4, t=0.0, rid="io-heavy"),
            single_spec(history=50, inp=32, out=4, t=0.0, rid="zero-io"),
        ]
        report = sim.run(specs)
        assert report.n_requests == 2
        records = {r.request_id: r for r in sim.metrics.records}
        # The zero-IO restore's compute may begin at admission; its first
        # token must not wait for the 5s IO job of the other request.
        assert records["zero-io"].ttft < 1.0
        assert records["io-heavy"].ttft >= 5.0

    def test_zero_io_restore_does_not_advance_io_path(self, seven_b, default_platform):
        method = _SplitTimingMethod(seven_b, default_platform)
        sim = ServingSimulator(seven_b, default_platform, method)
        sim.run([single_spec(history=50, inp=32, out=4, rid="zero-io")])
        assert sim._io_free_at == [0.0]

    def test_invalid_io_parallelism_rejected(self, seven_b, default_platform):
        method = _SplitTimingMethod(seven_b, default_platform)
        with pytest.raises(ConfigError):
            ServingSimulator(
                seven_b,
                default_platform,
                method,
                EngineConfig(restore_io_parallelism=0),
            )

    def test_zero_io_trace_finishes_without_micro_stepping(
        self, seven_b, default_platform
    ):
        """Pre-fix, a zero-IO restore behind a busy IO path spun the idle
        branch in 1e-6 steps until the phantom IO cleared; a tight horizon
        plus a wall-clock budget would both trip on that."""
        method = _SplitTimingMethod(seven_b, default_platform)
        sim = ServingSimulator(seven_b, default_platform, method)
        specs = [
            single_spec(history=10_000, inp=32, out=64, t=0.0, rid="io-heavy"),
            single_spec(history=50, inp=32, out=4, t=0.0, rid="zero-io"),
        ]
        import time as _time

        t0 = _time.perf_counter()
        report = sim.run(specs)
        elapsed = _time.perf_counter() - t0
        assert report.n_requests == 2
        # ~5e6 micro-steps of 1e-6s would take far longer than this.
        assert elapsed < 5.0


class TestRestoreIOParallelism:
    """The timing-model counterpart of the shared restore IO worker pool:
    ``restore_io_parallelism`` channels let an admitted burst of restores
    transfer concurrently instead of serializing on one IO path."""

    def _specs(self, n):
        return [
            single_spec(history=10_000, inp=32, out=4, t=0.0, rid=f"r{i}")
            for i in range(n)
        ]

    def _records(self, seven_b, default_platform, parallelism, n=2):
        method = _SplitTimingMethod(seven_b, default_platform, io_threshold=1)
        sim = ServingSimulator(
            seven_b,
            default_platform,
            method,
            EngineConfig(restore_io_parallelism=parallelism),
        )
        sim.run(self._specs(n))
        return {r.request_id: r for r in sim.metrics.records}

    def test_serial_channel_staggers_restore_starts(self, seven_b, default_platform):
        records = self._records(seven_b, default_platform, parallelism=1)
        starts = sorted(r.restore_started_at for r in records.values())
        # Second restore's 5s IO job waits for the first to release the path.
        assert starts[0] == pytest.approx(0.0, abs=1e-6)
        assert starts[1] == pytest.approx(5.0, abs=1e-6)

    def test_two_channels_start_both_restores_at_admission(
        self, seven_b, default_platform
    ):
        records = self._records(seven_b, default_platform, parallelism=2)
        for record in records.values():
            assert record.restore_started_at == pytest.approx(0.0, abs=1e-6)

    def test_extra_restores_still_queue_behind_full_pool(
        self, seven_b, default_platform
    ):
        records = self._records(seven_b, default_platform, parallelism=2, n=3)
        starts = sorted(r.restore_started_at for r in records.values())
        assert starts[0] == pytest.approx(0.0, abs=1e-6)
        assert starts[1] == pytest.approx(0.0, abs=1e-6)
        assert starts[2] == pytest.approx(5.0, abs=1e-6)

    def test_parallel_channels_improve_ttft_under_burst(
        self, seven_b, default_platform
    ):
        serial = self._records(seven_b, default_platform, parallelism=1, n=3)
        parallel = self._records(seven_b, default_platform, parallelism=3, n=3)
        mean_serial = sum(r.ttft for r in serial.values()) / 3
        mean_parallel = sum(r.ttft for r in parallel.values()) / 3
        assert mean_parallel < mean_serial
