"""Tests for the discrete-event serving simulation (Fig. 9 machinery)."""

from __future__ import annotations

import pytest

from repro.baselines import default_methods
from repro.engine.request import RequestSpec
from repro.engine.serving import (
    EngineConfig,
    ServingSimulator,
    concurrent_context_estimate,
    max_context_tokens,
    simulate_methods,
)
from repro.errors import ConfigError, SimulationError
from repro.simulator.hardware import platform_preset
from repro.traces import ShareGPTGenerator, build_workload


def single_spec(history=1000, inp=50, out=20, t=0.0, rid="r0"):
    return RequestSpec(
        request_id=rid,
        session_id=f"s-{rid}",
        arrival_time=t,
        history_tokens=history,
        input_tokens=inp,
        output_tokens=out,
    )


@pytest.fixture(scope="module")
def small_workload():
    convs = ShareGPTGenerator(seed=3, mean_rounds=4).sample_many(8)
    return build_workload(convs, rate_per_second=0.5, seed=4)


class TestSingleRequest:
    def test_request_completes(self, seven_b, default_platform):
        sim = ServingSimulator(
            seven_b, default_platform, default_methods(seven_b, default_platform)["hcache"]
        )
        report = sim.run([single_spec()])
        assert report.n_requests == 1
        assert report.mean_ttft > 0
        assert report.mean_tbt > 0

    def test_ideal_ttft_is_prefill_only(self, seven_b, default_platform):
        methods = default_methods(seven_b, default_platform)
        ideal = ServingSimulator(seven_b, default_platform, methods["ideal"]).run(
            [single_spec()]
        )
        hcache = ServingSimulator(seven_b, default_platform, methods["hcache"]).run(
            [single_spec()]
        )
        assert ideal.mean_ttft < hcache.mean_ttft

    def test_no_history_all_methods_equal(self, seven_b, default_platform):
        spec = single_spec(history=0)
        reports = simulate_methods(
            seven_b, default_platform, default_methods(seven_b, default_platform), [spec]
        )
        ttfts = [r.mean_ttft for r in reports.values()]
        assert max(ttfts) - min(ttfts) < 2e-3

    def test_oversized_request_rejected(self, thirteen_b, default_platform):
        sim = ServingSimulator(
            thirteen_b,
            default_platform,
            default_methods(thirteen_b, default_platform)["ideal"],
        )
        with pytest.raises(ConfigError):
            sim.run([single_spec(history=30_000)])

    def test_empty_workload_rejected(self, seven_b, default_platform):
        sim = ServingSimulator(
            seven_b, default_platform, default_methods(seven_b, default_platform)["ideal"]
        )
        with pytest.raises(ConfigError):
            sim.run([])


class TestMethodOrdering:
    def test_paper_ttft_ordering(self, seven_b, default_platform, small_workload):
        """Fig. 9a: recompute > KV offload > HCache > ideal."""
        reports = simulate_methods(
            seven_b,
            default_platform,
            default_methods(seven_b, default_platform),
            small_workload,
        )
        assert (
            reports["recompute"].mean_ttft
            > reports["kv-offload"].mean_ttft
            > reports["hcache"].mean_ttft
            > reports["ideal"].mean_ttft
        )

    def test_hcache_ttft_speedup_band(self, seven_b, default_platform, small_workload):
        """§6.1.1: 1.27-1.90x vs KV offload, 2.21-3.57x vs recompute
        (checked loosely — queueing widens the spread at load)."""
        reports = simulate_methods(
            seven_b,
            default_platform,
            default_methods(seven_b, default_platform),
            small_workload,
        )
        vs_offload = reports["kv-offload"].mean_ttft / reports["hcache"].mean_ttft
        vs_recompute = reports["recompute"].mean_ttft / reports["hcache"].mean_ttft
        assert 1.1 < vs_offload < 2.5
        assert 2.0 < vs_recompute < 8.0

    def test_tbt_near_ideal_for_hcache(self, seven_b, default_platform, small_workload):
        """Fig. 9d-f: HCache's TBT is within ~4% of ideal."""
        reports = simulate_methods(
            seven_b,
            default_platform,
            default_methods(seven_b, default_platform),
            small_workload,
        )
        overhead = reports["hcache"].mean_tbt / reports["ideal"].mean_tbt - 1.0
        assert overhead < 0.06

    def test_conservation(self, seven_b, default_platform, small_workload):
        """Every admitted request finishes exactly once."""
        reports = simulate_methods(
            seven_b,
            default_platform,
            default_methods(seven_b, default_platform),
            small_workload,
        )
        for report in reports.values():
            assert report.n_requests == len(small_workload)


class TestLoadBehaviour:
    def test_ttft_grows_with_load(self, seven_b, default_platform):
        method = default_methods(seven_b, default_platform)["kv-offload"]
        convs = ShareGPTGenerator(seed=9, mean_rounds=4).sample_many(10)
        slow = ServingSimulator(seven_b, default_platform, method).run(
            build_workload(convs, rate_per_second=0.05, seed=1)
        )
        fast = ServingSimulator(seven_b, default_platform, method).run(
            build_workload(convs, rate_per_second=2.0, seed=1)
        )
        assert fast.mean_ttft >= slow.mean_ttft * 0.95

    def test_round_ordering_respected(self, seven_b, default_platform):
        """Round k+1 never gets its first token before round k finishes."""
        specs = [
            RequestSpec("s/r0", "s", 0.0, 0, 64, 16),
            RequestSpec("s/r1", "s", 0.1, 80, 64, 16, depends_on="s/r0"),
        ]
        sim = ServingSimulator(
            seven_b, default_platform, default_methods(seven_b, default_platform)["hcache"]
        )
        sim.run(specs)
        records = {r.request_id: r for r in sim.metrics.records}
        r0_finish = records["s/r0"].finished_at
        r1_first_token = records["s/r1"].arrival_time + records["s/r1"].ttft
        assert r1_first_token >= r0_finish

    def test_horizon_guard(self, seven_b, default_platform):
        config = EngineConfig(max_sim_seconds=1e-6)
        sim = ServingSimulator(
            seven_b,
            default_platform,
            default_methods(seven_b, default_platform)["recompute"],
            config,
        )
        with pytest.raises(SimulationError):
            sim.run([single_spec(t=1.0)])


class TestCapacityHelpers:
    def test_max_context_positive(self, seven_b):
        assert max_context_tokens(seven_b, platform_preset("a100-dram")) > 0

    def test_concurrent_estimate_matches_paper(self, seven_b, thirteen_b):
        """§2.4: 7-20 conversations (2.5K each) or 1-3 long contexts."""
        plat = platform_preset("a100-dram")
        convs = concurrent_context_estimate(seven_b, plat, 2500)
        assert 7 <= convs <= 25
        long_ctx = concurrent_context_estimate(thirteen_b, plat, 16384)
        assert 1 <= long_ctx <= 3

    def test_zero_context_rejected(self, seven_b):
        with pytest.raises(ConfigError):
            concurrent_context_estimate(seven_b, platform_preset("a100-dram"), 0)
