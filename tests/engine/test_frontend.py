"""The submit/step/stream serving front end over the numeric engine.

The redesign's central equivalence: driving requests through
``ServingFrontend`` (admission control + SLO scheduling + fused
iterations) must generate exactly the token streams the legacy
``chat_round`` path produced, with KV caches inside the
``BATCHED_DECODE_ATOL`` band — while issuing at most one batched model
call per iteration.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro.engine.numeric_engine as numeric_engine_module
from repro.core.hcache import HCacheEngine
from repro.core.profiler import build_storage_array
from repro.engine import (
    MemoryBudget,
    NumericServingEngine,
    ServingFrontend,
    ServingRequest,
)
from repro.errors import AdmissionError, ConfigError, StateError
from repro.models.transformer import BATCHED_DECODE_ATOL
from repro.runtime.executor import RestoreExecutor
from repro.storage.manager import StorageManager


@pytest.fixture
def make_engine(tiny_model, default_platform):
    def build(executor=None):
        storage = StorageManager(build_storage_array(default_platform))
        return NumericServingEngine(
            tiny_model, HCacheEngine(tiny_model, storage), executor=executor
        )

    return build


def _prompts(config, sizes, seed):
    rng = np.random.default_rng(seed)
    return {
        f"s{i}": rng.integers(0, config.vocab_size, size=size)
        for i, size in enumerate(sizes)
    }


class TestEquivalence:
    def test_matches_serial_chat_round(self, make_engine, tiny_config):
        prompts = _prompts(tiny_config, [9, 4, 13], seed=51)
        serial = make_engine()
        for s in prompts:
            serial.open_session(s)
        ref = {s: serial.chat_round(s, p, 6) for s, p in prompts.items()}

        engine = make_engine()
        frontend = ServingFrontend(engine, MemoryBudget(capacity_tokens=4096))
        handles = {
            s: frontend.submit(
                ServingRequest(session_id=s, prompt_tokens=p, max_new_tokens=6)
            )
            for s, p in prompts.items()
        }
        frontend.run_until_idle(max_steps=500)
        for s in prompts:
            assert list(handles[s].result().tokens) == ref[s]
            assert engine.session(s).tokens == serial.session(s).tokens
            assert engine.session(s).kv_cache.equals(
                serial.session(s).kv_cache, atol=BATCHED_DECODE_ATOL
            )

    def test_matches_shimmed_chat_rounds(self, make_engine, tiny_config):
        """The deprecation shim and a hand-driven front end agree."""
        prompts = _prompts(tiny_config, [7, 5], seed=52)
        shimmed = make_engine()
        for s in prompts:
            shimmed.open_session(s)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            ref = shimmed.chat_rounds(list(prompts.items()), 4)

        engine = make_engine()
        frontend = ServingFrontend(engine, MemoryBudget(capacity_tokens=4096))
        handles = {
            s: frontend.submit(
                ServingRequest(session_id=s, prompt_tokens=p, max_new_tokens=4)
            )
            for s, p in prompts.items()
        }
        frontend.run_until_idle(max_steps=200)
        assert {s: list(h.result().tokens) for s, h in handles.items()} == ref

    def test_second_round_restores_evicted_history(self, make_engine, tiny_config):
        """evict_on_finish + resubmission: the restore burst must be
        transparent — same tokens as a never-evicted serial session."""
        prompts = _prompts(tiny_config, [8, 6], seed=53)
        second = _prompts(tiny_config, [5, 7], seed=54)
        serial = make_engine()
        for s in prompts:
            serial.open_session(s)
            serial.chat_round(s, prompts[s], 3)
        ref = {s: serial.chat_round(s, second[s], 3) for s in prompts}

        engine = make_engine()
        frontend = ServingFrontend(
            engine, MemoryBudget(capacity_tokens=4096), evict_on_finish=True
        )
        for s, p in prompts.items():
            frontend.submit(ServingRequest(session_id=s, prompt_tokens=p, max_new_tokens=3))
        frontend.run_until_idle(max_steps=200)
        for s in prompts:
            assert not engine.session(s).on_gpu  # evicted after round 1
        handles = {
            s: frontend.submit(
                ServingRequest(session_id=s, prompt_tokens=second[s], max_new_tokens=3)
            )
            for s in prompts
        }
        stats = frontend.run_until_idle(max_steps=200)
        assert {s: list(h.result().tokens) for s, h in handles.items()} == ref
        assert any(st.restores_started for st in stats)
        for s in prompts:
            assert engine.session(s).tokens == serial.session(s).tokens

    def test_overlapped_restores_match_sync_restores(
        self, make_engine, tiny_config
    ):
        """Background restore_contexts_async produces the same streams."""
        prompts = _prompts(tiny_config, [6, 9], seed=55)
        second = _prompts(tiny_config, [4, 5], seed=56)

        def run(overlap):
            executor = RestoreExecutor(max_concurrent_restores=2) if overlap else None
            engine = make_engine(executor=executor)
            frontend = ServingFrontend(
                engine,
                MemoryBudget(capacity_tokens=4096),
                evict_on_finish=True,
                overlap_restores=overlap,
            )
            try:
                for s, p in prompts.items():
                    frontend.submit(
                        ServingRequest(session_id=s, prompt_tokens=p, max_new_tokens=3)
                    )
                frontend.run_until_idle(max_steps=300)
                handles = {
                    s: frontend.submit(
                        ServingRequest(
                            session_id=s, prompt_tokens=second[s], max_new_tokens=3
                        )
                    )
                    for s in prompts
                }
                frontend.run_until_idle(max_steps=300)
                return {s: list(h.result().tokens) for s, h in handles.items()}
            finally:
                if executor is not None:
                    executor.close()

        assert run(overlap=True) == run(overlap=False)


class TestFusedIterationContract:
    def test_at_most_one_model_call_per_step(
        self, make_engine, tiny_config, monkeypatch
    ):
        """Regression pin for the serial-prefill inefficiency: every step
        — mixed prefill + decode included — issues at most one batched
        transformer call."""
        engine = make_engine()
        calls = {"n": 0}
        real_fused = engine.transformer.forward_fused
        real_decode = engine.transformer.decode_batch
        real_forward = engine.transformer.forward
        monkeypatch.setattr(
            engine.transformer,
            "forward_fused",
            lambda *a, **k: calls.__setitem__("n", calls["n"] + 1) or real_fused(*a, **k),
        )
        monkeypatch.setattr(
            engine.transformer,
            "decode_batch",
            lambda *a, **k: calls.__setitem__("n", calls["n"] + 1)
            or real_decode(*a, **k),
        )
        monkeypatch.setattr(
            engine.transformer,
            "forward",
            lambda *a, **k: calls.__setitem__("n", calls["n"] + 1)
            or real_forward(*a, **k),
        )
        # Small SplitFuse budget forces chunked prefill to overlap decode.
        from repro.engine.splitfuse import SplitFuseScheduler

        frontend = ServingFrontend(
            engine,
            MemoryBudget(capacity_tokens=4096),
            scheduler=SplitFuseScheduler(budget_tokens=8),
        )
        prompts = _prompts(tiny_config, [11, 6, 9], seed=57)
        for s, p in prompts.items():
            frontend.submit(ServingRequest(session_id=s, prompt_tokens=p, max_new_tokens=4))
        while not frontend.idle:
            before = calls["n"]
            stats = frontend.step()
            assert calls["n"] - before <= 1
            assert stats.model_calls == calls["n"] - before
            assert stats.model_calls <= 1

    def test_mixed_iteration_reports_fused_batch(self, make_engine, tiny_config):
        from repro.engine.splitfuse import SplitFuseScheduler

        engine = make_engine()
        frontend = ServingFrontend(
            engine,
            MemoryBudget(capacity_tokens=4096),
            scheduler=SplitFuseScheduler(budget_tokens=6),
        )
        prompts = _prompts(tiny_config, [10, 4], seed=58)
        for s, p in prompts.items():
            frontend.submit(ServingRequest(session_id=s, prompt_tokens=p, max_new_tokens=3))
        mixed = [
            st
            for st in frontend.run_until_idle(max_steps=200)
            if st.prefill_chunks and st.decode_sessions
        ]
        assert mixed, "expected at least one fused prefill+decode iteration"
        for st in mixed:
            assert st.model_calls == 1
            assert st.batch_size == len(st.prefill_chunks) + len(st.decode_sessions)


class TestAdmissionControl:
    def test_impossible_request_is_rejected_typed(self, make_engine, tiny_config):
        engine = make_engine()
        frontend = ServingFrontend(engine, MemoryBudget(capacity_tokens=64))
        with pytest.raises(AdmissionError):
            frontend.submit(
                ServingRequest(
                    session_id="big",
                    prompt_tokens=np.arange(60) % tiny_config.vocab_size,
                    max_new_tokens=10,
                )
            )
        assert frontend.rejected_requests == 1

    def test_queue_backpressure(self, make_engine, tiny_config):
        engine = make_engine()
        frontend = ServingFrontend(
            engine, MemoryBudget(capacity_tokens=4096), max_queue=2
        )
        for i in range(2):
            frontend.submit(
                ServingRequest(
                    session_id=f"q{i}", prompt_tokens=np.array([1, 2]), max_new_tokens=1
                )
            )
        with pytest.raises(AdmissionError):
            frontend.submit(
                ServingRequest(
                    session_id="q2", prompt_tokens=np.array([1]), max_new_tokens=1
                )
            )

    def test_memory_admission_never_exceeds_budget(self, make_engine, tiny_config):
        capacity = 80
        engine = make_engine()
        frontend = ServingFrontend(engine, MemoryBudget(capacity_tokens=capacity))
        for i in range(6):
            frontend.submit(
                ServingRequest(
                    session_id=f"m{i}",
                    prompt_tokens=np.arange(10) % tiny_config.vocab_size,
                    max_new_tokens=10,
                )
            )
        while not frontend.idle:
            frontend.step()
            assert frontend.batcher.reserved_tokens <= capacity

    def test_duplicate_request_id_rejected(self, make_engine, tiny_config):
        engine = make_engine()
        frontend = ServingFrontend(engine, MemoryBudget(capacity_tokens=4096))
        request = ServingRequest(
            session_id="s",
            prompt_tokens=np.array([1, 2]),
            max_new_tokens=1,
            request_id="dup",
        )
        frontend.submit(request)
        with pytest.raises(ConfigError):
            frontend.submit(request)


class TestSloScheduling:
    def test_edf_orders_prefill_by_deadline(self, make_engine, tiny_config):
        """With a tight SplitFuse budget, the urgent request prefills
        first even though it was submitted last."""
        from repro.engine.splitfuse import SplitFuseScheduler

        engine = make_engine()
        frontend = ServingFrontend(
            engine,
            MemoryBudget(capacity_tokens=4096),
            scheduler=SplitFuseScheduler(budget_tokens=8),
        )
        relaxed = frontend.submit(
            ServingRequest(
                session_id="relaxed",
                prompt_tokens=np.arange(8) % tiny_config.vocab_size,
                max_new_tokens=2,
                arrival_time=0.0,
                slo_ttft_s=100.0,
            )
        )
        urgent = frontend.submit(
            ServingRequest(
                session_id="urgent",
                prompt_tokens=np.arange(8) % tiny_config.vocab_size,
                max_new_tokens=2,
                arrival_time=0.0,
                slo_ttft_s=0.001,
            )
        )
        stats = frontend.run_until_idle(max_steps=100)
        first_chunks = next(st for st in stats if st.prefill_chunks).prefill_chunks
        assert first_chunks[0][0] == urgent.request_id
        assert relaxed.result().tokens  # both still finish


class TestStreamingAndHandles:
    def test_stream_yields_all_tokens(self, make_engine, tiny_config):
        engine = make_engine()
        frontend = ServingFrontend(engine, MemoryBudget(capacity_tokens=4096))
        prompt = np.arange(5) % tiny_config.vocab_size
        handle = frontend.submit(
            ServingRequest(session_id="s", prompt_tokens=prompt, max_new_tokens=4)
        )
        streamed = list(frontend.stream(handle))
        assert streamed == list(handle.result().tokens)
        assert len(streamed) == 4

    def test_result_raises_until_finished(self, make_engine, tiny_config):
        engine = make_engine()
        frontend = ServingFrontend(engine, MemoryBudget(capacity_tokens=4096))
        handle = frontend.submit(
            ServingRequest(
                session_id="s", prompt_tokens=np.array([1, 2]), max_new_tokens=1
            )
        )
        with pytest.raises(StateError):
            handle.result()
        frontend.run_until_idle(max_steps=50)
        response = handle.result()
        assert response.ttft >= 0.0
        assert response.finished_at >= response.first_token_at

    def test_dependent_rounds_of_one_session_run_in_order(
        self, make_engine, tiny_config
    ):
        engine = make_engine()
        frontend = ServingFrontend(engine, MemoryBudget(capacity_tokens=4096))
        first = frontend.submit(
            ServingRequest(
                session_id="s", prompt_tokens=np.array([1, 2, 3]), max_new_tokens=2
            )
        )
        second = frontend.submit(
            ServingRequest(
                session_id="s", prompt_tokens=np.array([4, 5]), max_new_tokens=2
            )
        )
        frontend.run_until_idle(max_steps=200)
        assert first.result().finished_at <= second.result().first_token_at
        # round 2 saw round 1's full history
        assert len(engine.session("s").tokens) == 3 + 2 + 2 + 2


class TestDeprecationShims:
    def test_chat_rounds_warns_once_per_process(self, make_engine, tiny_config):
        engine = make_engine()
        engine.open_session("s")
        numeric_engine_module._warned_deprecations.clear()
        with pytest.warns(DeprecationWarning, match="chat_rounds is deprecated"):
            engine.chat_rounds([("s", np.array([1, 2, 3]))], 2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.chat_rounds([("s", np.array([4, 5]))], 2)  # no second warning

    def test_decode_iteration_warns_and_delegates(self, make_engine, tiny_config):
        engine = make_engine()
        engine.open_session("s")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            engine.chat_round("s", np.array([1, 2, 3]), 1)
        numeric_engine_module._warned_deprecations.clear()
        with pytest.warns(DeprecationWarning, match="decode_iteration is deprecated"):
            out = engine.decode_iteration({"s": 1})
        assert set(out) == {"s"}
