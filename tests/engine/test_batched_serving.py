"""Batched multi-session serving through the numeric engine.

``chat_rounds`` (restore burst + prefill + one batched decode call per
output token) must generate the same token streams as per-session
``chat_round`` calls, and ``decode_iteration`` must execute a
continuous-batching iteration plan's decode set as a single model call
— the wiring between ``ContinuousBatcher`` / ``SplitFuseScheduler``
(time model) and ``NumericServingEngine`` (value model).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hcache import HCacheEngine
from repro.core.profiler import build_storage_array
from repro.engine.batching import ContinuousBatcher, MemoryBudget
from repro.engine.numeric_engine import NumericServingEngine
from repro.engine.request import Phase, Request, RequestSpec
from repro.engine.splitfuse import SplitFuseScheduler
from repro.errors import ConfigError, StateError
from repro.models.hidden_capture import HiddenCapture
from repro.models.kv_cache import KVCache
from repro.models.transformer import BATCHED_DECODE_ATOL
from repro.storage.manager import StorageManager


@pytest.fixture
def make_engine(tiny_model, default_platform):
    def build():
        storage = StorageManager(build_storage_array(default_platform))
        return NumericServingEngine(tiny_model, HCacheEngine(tiny_model, storage))

    return build


def open_sessions(engine, prompts):
    for session_id in prompts:
        engine.open_session(session_id)


class TestChatRounds:
    def test_matches_serial_chat_round(self, make_engine, tiny_config):
        rng = np.random.default_rng(31)
        prompts = {
            "a": rng.integers(0, tiny_config.vocab_size, size=9),
            "b": rng.integers(0, tiny_config.vocab_size, size=4),
            "c": rng.integers(0, tiny_config.vocab_size, size=13),
        }
        serial = make_engine()
        open_sessions(serial, prompts)
        ref = {s: serial.chat_round(s, p, 6) for s, p in prompts.items()}
        batched = make_engine()
        open_sessions(batched, prompts)
        out = batched.chat_rounds(list(prompts.items()), 6)
        assert out == ref
        for session_id in prompts:
            a = serial.session(session_id)
            b = batched.session(session_id)
            assert a.tokens == b.tokens
            assert b.kv_cache.equals(a.kv_cache, atol=BATCHED_DECODE_ATOL)

    def test_second_round_with_mixed_eviction(self, make_engine, tiny_config):
        """Round 2 batches a mix of evicted (restored) and resident sessions."""
        rng = np.random.default_rng(32)
        first = {s: rng.integers(0, tiny_config.vocab_size, size=7) for s in "abc"}
        second = {s: rng.integers(0, tiny_config.vocab_size, size=5) for s in "abc"}
        serial = make_engine()
        open_sessions(serial, first)
        for s, p in first.items():
            serial.chat_round(s, p, 3)
        batched = make_engine()
        open_sessions(batched, first)
        batched.chat_rounds(list(first.items()), 3)
        for engine in (serial, batched):
            engine.evict("a")
            engine.evict("c")
        ref = {s: serial.chat_round(s, p, 4) for s, p in second.items()}
        out = batched.chat_rounds(list(second.items()), 4)
        assert out == ref
        for s in first:
            assert batched.session(s).tokens == serial.session(s).tokens

    def test_single_session_batch_matches_chat_round(self, make_engine, tiny_config):
        rng = np.random.default_rng(33)
        prompt = rng.integers(0, tiny_config.vocab_size, size=8)
        serial = make_engine()
        serial.open_session("s")
        ref = serial.chat_round("s", prompt, 5)
        batched = make_engine()
        batched.open_session("s")
        assert batched.chat_rounds([("s", prompt)], 5) == {"s": ref}

    def test_evict_and_close_release_block_slots(self, make_engine, tiny_config):
        """A dead session must not keep the shared stacked block bloated:
        evict/close release the slot, survivors keep working."""
        rng = np.random.default_rng(36)
        prompts = {s: rng.integers(0, tiny_config.vocab_size, size=5) for s in "abc"}
        engine = make_engine()
        open_sessions(engine, prompts)
        engine.chat_rounds(list(prompts.items()), 3)
        cache_a = engine.session("a").kv_cache
        cache_b = engine.session("b").kv_cache
        block = cache_a.block
        assert block is not None and cache_b.block is block
        engine.evict("a")
        assert cache_a.block is None
        assert len(cache_a) == 0
        engine.close_session("c")
        with pytest.raises(StateError):
            block.layer_lengths(0)  # released slots
        # the survivor still decodes fine (block-backed, slot intact)
        out = engine.chat_round("b", prompts["b"], 2)
        assert len(out) == 2

    def test_validation(self, make_engine):
        engine = make_engine()
        engine.open_session("s")
        with pytest.raises(ConfigError):
            engine.chat_rounds([], 3)
        with pytest.raises(ConfigError):
            engine.chat_rounds([("s", np.array([1]))], 0)
        with pytest.raises(ConfigError):
            engine.chat_rounds([("s", np.array([]))], 3)
        with pytest.raises(ConfigError):
            engine.chat_rounds([("s", np.array([1])), ("s", np.array([2]))], 3)
        with pytest.raises(StateError):
            engine.chat_rounds([("ghost", np.array([1]))], 3)


class TestDecodeIteration:
    def test_requires_resident_prefilled_sessions(self, make_engine, tiny_config):
        engine = make_engine()
        engine.open_session("s")
        with pytest.raises(ConfigError):
            engine.decode_iteration({})
        with pytest.raises(StateError):
            engine.decode_iteration({"s": 1})  # never prefilled, not on GPU
        engine.chat_round("s", np.arange(4) % tiny_config.vocab_size, 2)
        engine.evict("s")
        with pytest.raises(StateError):
            engine.decode_iteration({"s": 1})  # evicted

    def test_matches_serial_decode_steps(self, make_engine, tiny_config):
        rng = np.random.default_rng(34)
        prompts = {s: rng.integers(0, tiny_config.vocab_size, size=6) for s in "ab"}
        serial = make_engine()
        batched = make_engine()
        for engine in (serial, batched):
            open_sessions(engine, prompts)
            for s, p in prompts.items():
                engine.chat_round(s, p, 1)
        pending = {s: 3 for s in prompts}
        for _ in range(4):
            # serial reference: one forward per session through the
            # plain transformer path on the serial engine's state
            expected = {}
            for s, token in pending.items():
                state = serial.session(s)
                result = serial.transformer.forward(
                    np.array([token]), state.kv_cache, capture_hidden=True
                )
                serial.hcache.save_states(
                    s, result.hidden_states, np.array([token]), kv_cache=state.kv_cache
                )
                state.tokens.append(token)
                expected[s] = int(np.argmax(result.logits[-1]))
            got = batched.decode_iteration(pending)
            assert got == expected
            pending = got
        for s in prompts:
            assert batched.session(s).tokens == serial.session(s).tokens
            assert batched.session(s).kv_cache.equals(
                serial.session(s).kv_cache, atol=BATCHED_DECODE_ATOL
            )


class TestContinuousBatchingWiring:
    def test_iteration_plan_names_decode_sessions(self):
        specs = [
            RequestSpec(f"r{i}", f"s{i}", 0.0, 0, 4, 4) for i in range(3)
        ]
        requests = [Request(spec) for spec in specs]
        for request in requests:
            request.phase = Phase.DECODING
        plan = SplitFuseScheduler(budget_tokens=64).plan(requests, [])
        assert plan.decode_session_ids == ("s0", "s1", "s2")

    def test_batcher_reports_decode_batch_sessions(self):
        batcher = ContinuousBatcher(MemoryBudget(capacity_tokens=1000))
        specs = [RequestSpec(f"r{i}", f"s{i}", 0.0, 0, 4, 4) for i in range(2)]
        for spec in specs:
            batcher.enqueue(Request(spec))
        admitted = batcher.admit(now=0.0)
        assert len(admitted) == 2
        for request in admitted:
            request.phase = Phase.DECODING
        assert batcher.decode_batch_sessions() == ("s0", "s1")

    def test_planned_iterations_drive_batched_numeric_decode(
        self, make_engine, tiny_config
    ):
        """End-to-end serving loop: admission -> iteration plan -> ONE
        batched numeric call per iteration, equivalent to serial serving."""
        rng = np.random.default_rng(35)
        prompts = {s: rng.integers(0, tiny_config.vocab_size, size=5) for s in "abc"}
        n_out = 5

        serial = make_engine()
        open_sessions(serial, prompts)
        ref = {s: serial.chat_round(s, p, n_out) for s, p in prompts.items()}

        engine = make_engine()
        open_sessions(engine, prompts)
        batcher = ContinuousBatcher(MemoryBudget(capacity_tokens=1000))
        scheduler = SplitFuseScheduler(budget_tokens=64)
        requests = {}
        for s, p in prompts.items():
            spec = RequestSpec(f"req-{s}", s, 0.0, 0, int(p.size), n_out)
            request = Request(spec)
            requests[s] = request
            batcher.enqueue(request)
        admitted = batcher.admit(now=0.0)
        assert len(admitted) == len(prompts)

        # Prefill phase (serial block-level forwards as in chat_rounds'
        # phase 2), producing each session's first generated token.
        pending = {}
        generated = {s: [] for s in prompts}
        for s, p in prompts.items():
            state = engine.session(s)
            state.kv_cache = KVCache(tiny_config)
            state.kv_cache.reserve(p.size + n_out)
            capture = HiddenCapture(tiny_config.n_layers, tiny_config.hidden_size)
            capture.reserve(p.size)
            result = engine.transformer.forward(p, state.kv_cache, capture=capture)
            engine.hcache.save_states(s, result.hidden_states, p, kv_cache=state.kv_cache)
            state.tokens.extend(int(t) for t in p)
            requests[s].phase = Phase.DECODING
            pending[s] = int(np.argmax(result.logits[-1]))

        # Decode iterations: the scheduler's plan picks the batch, the
        # numeric engine executes it as one call.
        for _ in range(n_out):
            plan = scheduler.plan(batcher.decoding(), batcher.prefilling())
            assert plan.decode_session_ids == batcher.decode_batch_sessions()
            step = {s: pending[s] for s in plan.decode_session_ids}
            for s, token in step.items():
                generated[s].append(token)
            next_tokens = engine.decode_iteration(step)
            pending.update(next_tokens)
        assert generated == ref
