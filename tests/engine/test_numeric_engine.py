"""End-to-end numeric serving tests: evict/restore must not change outputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hcache import HCacheEngine
from repro.core.partition import PartitionScheme
from repro.core.profiler import build_storage_array
from repro.engine.numeric_engine import NumericServingEngine
from repro.errors import ConfigError, StateError
from repro.models.kv_cache import KVCache
from repro.models.transformer import Transformer
from repro.storage.manager import StorageManager


@pytest.fixture
def numeric_engine(tiny_model, default_platform):
    storage = StorageManager(build_storage_array(default_platform))
    return NumericServingEngine(tiny_model, HCacheEngine(tiny_model, storage))


def reference_rounds(model, prompts, n_out):
    """Uninterrupted multi-round generation."""
    cache = KVCache(model.config)
    outputs = []
    for prompt in prompts:
        result = model.forward(prompt, cache)
        tokens = []
        logits = result.logits[-1]
        for _ in range(n_out):
            token = int(np.argmax(logits))
            tokens.append(token)
            logits = model.decode_step(token, cache).logits[-1]
        outputs.append(tokens)
    return outputs


class TestSessions:
    def test_open_twice_rejected(self, numeric_engine):
        numeric_engine.open_session("s")
        with pytest.raises(StateError):
            numeric_engine.open_session("s")

    def test_unknown_session_rejected(self, numeric_engine):
        with pytest.raises(StateError):
            numeric_engine.session("ghost")

    def test_evict_twice_rejected(self, numeric_engine, tiny_config):
        numeric_engine.open_session("s")
        numeric_engine.chat_round("s", np.arange(5) % tiny_config.vocab_size, 2)
        numeric_engine.evict("s")
        with pytest.raises(StateError):
            numeric_engine.evict("s")

    def test_close_frees_storage(self, numeric_engine, tiny_config):
        numeric_engine.open_session("s")
        numeric_engine.chat_round("s", np.arange(5) % tiny_config.vocab_size, 2)
        numeric_engine.close_session("s")
        with pytest.raises(StateError):
            numeric_engine.session("s")

    def test_gpu_resident_tracking(self, numeric_engine, tiny_config):
        numeric_engine.open_session("s")
        numeric_engine.chat_round("s", np.arange(5) % tiny_config.vocab_size, 2)
        assert numeric_engine.gpu_resident_sessions() == ("s",)
        numeric_engine.evict("s")
        assert numeric_engine.gpu_resident_sessions() == ()

    def test_empty_prompt_rejected(self, numeric_engine):
        numeric_engine.open_session("s")
        with pytest.raises(ConfigError):
            numeric_engine.chat_round("s", np.array([]), 2)

    def test_zero_output_rejected(self, numeric_engine):
        numeric_engine.open_session("s")
        with pytest.raises(ConfigError):
            numeric_engine.chat_round("s", np.array([1]), 0)


class TestEquivalence:
    def test_multi_round_with_eviction_matches_uninterrupted(
        self, tiny_model, tiny_config, numeric_engine
    ):
        """The paper's losslessness claim, end to end: a conversation with
        eviction + HCache restoration between every round generates the
        same tokens as one whose KV cache never left the GPU."""
        rng = np.random.default_rng(21)
        prompts = [rng.integers(0, tiny_config.vocab_size, size=n) for n in (10, 6, 8, 5)]
        numeric_engine.open_session("s")
        interrupted = []
        for prompt in prompts:
            interrupted.append(numeric_engine.chat_round("s", prompt, 5))
            numeric_engine.evict("s")
        assert interrupted == reference_rounds(tiny_model, prompts, 5)

    def test_eviction_only_between_some_rounds(self, tiny_model, tiny_config, numeric_engine):
        rng = np.random.default_rng(22)
        prompts = [rng.integers(0, tiny_config.vocab_size, size=6) for _ in range(3)]
        numeric_engine.open_session("s")
        out = [numeric_engine.chat_round("s", prompts[0], 4)]
        numeric_engine.evict("s")  # evict once
        out.append(numeric_engine.chat_round("s", prompts[1], 4))
        out.append(numeric_engine.chat_round("s", prompts[2], 4))  # stays on GPU
        assert out == reference_rounds(tiny_model, prompts, 4)

    def test_mixed_scheme_engine_equivalence(self, tiny_model, tiny_config, default_platform):
        """Same equivalence with a scheduler-style mixed partition."""
        storage = StorageManager(build_storage_array(default_platform))
        scheme = PartitionScheme.with_kv_suffix(tiny_config.n_layers, 1)
        engine = NumericServingEngine(
            tiny_model, HCacheEngine(tiny_model, storage, scheme=scheme)
        )
        rng = np.random.default_rng(23)
        prompts = [rng.integers(0, tiny_config.vocab_size, size=7) for _ in range(3)]
        engine.open_session("s")
        out = []
        for prompt in prompts:
            out.append(engine.chat_round("s", prompt, 4))
            engine.evict("s")
        assert out == reference_rounds(tiny_model, prompts, 4)

    def test_two_concurrent_sessions_independent(self, tiny_model, tiny_config, numeric_engine):
        rng = np.random.default_rng(24)
        pa = rng.integers(0, tiny_config.vocab_size, size=9)
        pb = rng.integers(0, tiny_config.vocab_size, size=9)
        numeric_engine.open_session("a")
        numeric_engine.open_session("b")
        out_a = numeric_engine.chat_round("a", pa, 4)
        out_b = numeric_engine.chat_round("b", pb, 4)
        numeric_engine.evict("a")
        numeric_engine.evict("b")
        out_a2 = numeric_engine.chat_round("a", pb, 4)
        ref = reference_rounds(tiny_model, [pa, pb], 4)
        assert [out_a] == [ref[0]]
        assert out_b == reference_rounds(tiny_model, [pb], 4)[0]
        assert out_a2 == reference_rounds(tiny_model, [pa, pb], 4)[1]

    def test_wrong_transformer_rejected(self, tiny_config, default_platform):
        a = Transformer.from_seed(tiny_config, seed=1)
        b = Transformer.from_seed(tiny_config, seed=2)
        storage = StorageManager(build_storage_array(default_platform))
        with pytest.raises(ConfigError):
            NumericServingEngine(a, HCacheEngine(b, storage))
