"""Front-end load test over a 10^5-session Zipf population.

The paper's front-end sweep draws requests from 10^5–10^6 distinct
sessions with Zipfian popularity (§6.4) at Poisson arrival rates
(§6.1.1).  Running real numpy forwards at that scale is pointless — the
value path has its own equivalence tests — so this test drives the real
``ServingFrontend`` (real admission control, scheduler, dependency
chains, restore phases) over a fake engine whose ``execute_iteration``
only does token bookkeeping, and checks the scheduling invariants:

- KV reservations never exceed the budget, on any step;
- impossible requests and queue overflow are rejected with the *typed*
  ``AdmissionError``, never a deep crash;
- everything admitted finishes with exactly its token budget, across
  repeated rounds (evict-on-finish + restore) of hot Zipf sessions.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.engine import IterationResult, MemoryBudget, ServingFrontend
from repro.errors import AdmissionError, StateError
from repro.traces import ShareGPTGenerator, zipf_session_workload

N_SESSIONS = 120_000
N_REQUESTS = 1_500


class _FakeSession:
    __slots__ = ("session_id", "tokens", "on_gpu", "kv_cache")

    def __init__(self, session_id):
        self.session_id = session_id
        self.tokens = []
        self.on_gpu = False
        self.kv_cache = None


class _FakeCache:
    """Counts reservations so the budget invariant is externally visible."""

    __slots__ = ("reserved",)

    def __init__(self):
        self.reserved = 0

    def reserve(self, n_tokens):
        self.reserved = max(self.reserved, n_tokens)


class _FakeTransformer:
    """No weights, no forwards — just the config the front end reads
    (to size fresh KV caches)."""

    def __init__(self, config):
        self.config = config


class _FakeEngine:
    """Bookkeeping-only stand-in honouring the engine iteration contract."""

    def __init__(self, config):
        self.sessions = {}
        self.transformer = _FakeTransformer(config)
        self.executor = None
        self.hcache = None
        self.restored_sessions = 0
        self.max_live_iteration_tokens = 0

    def has_session(self, session_id):
        return session_id in self.sessions

    def open_session(self, session_id):
        if session_id in self.sessions:
            raise StateError(f"session {session_id!r} already open")
        self.sessions[session_id] = _FakeSession(session_id)
        return self.sessions[session_id]

    def session(self, session_id):
        return self.sessions[session_id]

    def restore_sessions(self, session_ids, *, reserve_tokens=0, shards=None):
        for session_id in session_ids:
            state = self.sessions[session_id]
            assert state.tokens and not state.on_gpu
            state.on_gpu = True
            state.kv_cache = _FakeCache()
            self.restored_sessions += 1

    def evict(self, session_id):
        state = self.sessions[session_id]
        state.on_gpu = False
        state.kv_cache = None

    def execute_iteration(self, prefill_chunks=(), decode_tokens=None):
        decode = dict(decode_tokens) if decode_tokens else {}
        next_tokens = {}
        for session_id, tokens in prefill_chunks:
            state = self.sessions[session_id]
            assert state.on_gpu or not state.tokens
            state.on_gpu = True
            state.tokens.extend(int(t) for t in np.asarray(tokens))
            next_tokens[session_id] = len(state.tokens) % 997
        for session_id, token in decode.items():
            state = self.sessions[session_id]
            assert state.on_gpu and state.tokens
            state.tokens.append(int(token))
            next_tokens[session_id] = len(state.tokens) % 997
        return IterationResult(next_tokens=next_tokens, model_calls=1)


@pytest.fixture(scope="module")
def load_run(tiny_config):
    """One shared high-churn run (module-scoped: it is the slow part)."""
    capacity = 2_048
    engine = _FakeEngine(tiny_config)
    frontend = ServingFrontend(
        engine,
        MemoryBudget(capacity_tokens=capacity),
        max_running=64,
        max_queue=N_REQUESTS,
        evict_on_finish=True,
    )
    # Short rounds keep the step count bounded; the *population* is what
    # must be large (>= 1e5 distinct Zipf sessions).
    lengths = ShareGPTGenerator(
        seed=9, mean_input=12.0, mean_output=6.0, max_round_tokens=48
    )
    requests = list(
        zipf_session_workload(
            N_SESSIONS,
            N_REQUESTS,
            rate_per_second=500.0,
            alpha=1.1,
            seed=9,
            generator=lengths,
            vocab_size=engine.transformer.config.vocab_size,
        )
    )
    handles = []
    admission_errors = 0
    max_reserved = 0
    for request in requests:
        try:
            handles.append(frontend.submit(request))
        except AdmissionError:
            admission_errors += 1
        # Interleave service with arrivals so the queue drains under load.
        if len(frontend.batcher.queue) > 128:
            frontend.step()
            max_reserved = max(max_reserved, frontend.batcher.reserved_tokens)
            assert frontend.batcher.reserved_tokens <= capacity
    for _ in itertools.count():
        if frontend.idle:
            break
        frontend.step()
        max_reserved = max(max_reserved, frontend.batcher.reserved_tokens)
        assert frontend.batcher.reserved_tokens <= capacity
    return {
        "engine": engine,
        "frontend": frontend,
        "requests": requests,
        "handles": handles,
        "admission_errors": admission_errors,
        "capacity": capacity,
        "max_reserved": max_reserved,
    }


def test_population_is_at_least_1e5_distinct_sessions(load_run):
    assert N_SESSIONS >= 100_000
    distinct = {r.session_id for r in load_run["requests"]}
    assert 1 < len(distinct) <= N_SESSIONS
    # Zipf popularity: repeats exist (hot sessions get multiple rounds).
    assert len(distinct) < len(load_run["requests"])


def test_admission_never_exceeded_capacity(load_run):
    assert load_run["max_reserved"] <= load_run["capacity"]
    # The budget was actually contended, not trivially satisfied.
    assert load_run["max_reserved"] > load_run["capacity"] // 2


def test_every_admitted_request_finished_with_its_budget(load_run):
    assert load_run["handles"], "no requests were admitted"
    frontend = load_run["frontend"]
    for handle in load_run["handles"]:
        assert handle.finished
        tracked = frontend._tracked[handle.request_id]
        assert len(handle.result().tokens) == tracked.serving.max_new_tokens


def test_hot_sessions_were_evicted_and_restored(load_run):
    engine = load_run["engine"]
    assert engine.restored_sessions > 0
    # Multi-round sessions accumulated every round's tokens.
    frontend = load_run["frontend"]
    rounds_per_session = {}
    for handle in load_run["handles"]:
        rounds_per_session.setdefault(handle.session_id, []).append(handle)
    multi = {s: hs for s, hs in rounds_per_session.items() if len(hs) > 1}
    assert multi, "Zipf skew should produce multi-round sessions"
    for session_id, handles in multi.items():
        expected = sum(
            frontend._tracked[h.request_id].serving.prompt_tokens.size
            + frontend._tracked[h.request_id].serving.max_new_tokens
            for h in handles
        )
        assert len(engine.session(session_id).tokens) == expected


def test_oversized_request_rejection_is_typed(load_run):
    frontend = load_run["frontend"]
    from repro.engine import ServingRequest

    before = frontend.rejected_requests
    with pytest.raises(AdmissionError):
        frontend.submit(
            ServingRequest(
                session_id="whale",
                prompt_tokens=np.arange(load_run["capacity"] + 1) % 1000,
                max_new_tokens=1,
            )
        )
    assert frontend.rejected_requests == before + 1
