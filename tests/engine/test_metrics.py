"""Tests for serving metrics collection."""

from __future__ import annotations

import pytest

from repro.engine.metrics import MetricsCollector
from repro.engine.request import Phase, Request, RequestSpec
from repro.errors import StateError


def finished_request(rid: str, arrival: float, first: float, finish: float, out: int = 4):
    request = Request(
        spec=RequestSpec(
            request_id=rid,
            session_id=f"s-{rid}",
            arrival_time=arrival,
            history_tokens=10,
            input_tokens=5,
            output_tokens=out,
        )
    )
    request.admitted_at = arrival
    request.phase = Phase.PREFILLING
    request.mark_first_token(first)
    request.decoded_tokens = out
    request.mark_finished(finish)
    return request


class TestCollector:
    def test_observe_unfinished_rejected(self):
        collector = MetricsCollector()
        request = Request(
            spec=RequestSpec("r", "s", 0.0, 0, 1, 1)
        )
        with pytest.raises(StateError):
            collector.observe(request)

    def test_record_fields(self):
        collector = MetricsCollector()
        record = collector.observe(finished_request("r", 1.0, 2.0, 5.0))
        assert record.ttft == pytest.approx(1.0)
        assert record.tbt == pytest.approx(1.0)
        assert record.queue_delay == 0.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(StateError):
            MetricsCollector().summarize()

    def test_summary_statistics(self):
        collector = MetricsCollector()
        for i in range(10):
            collector.observe(
                finished_request(f"r{i}", float(i), float(i) + 0.1, float(i) + 1.1)
            )
        report = collector.summarize()
        assert report.n_requests == 10
        assert report.mean_ttft == pytest.approx(0.1)
        assert report.p50_ttft == pytest.approx(0.1)
        assert report.mean_tbt == pytest.approx(1.0 / 3)

    def test_throughput_definition(self):
        collector = MetricsCollector()
        collector.observe(finished_request("a", 0.0, 0.5, 1.0))
        collector.observe(finished_request("b", 1.0, 1.5, 10.0))
        report = collector.summarize()
        assert report.requests_per_second == pytest.approx(2 / 10.0)
        assert report.tokens_per_second == pytest.approx(8 / 10.0)

    def test_single_token_requests_have_zero_tbt(self):
        collector = MetricsCollector()
        collector.observe(finished_request("a", 0.0, 0.5, 0.5, out=1))
        report = collector.summarize()
        assert report.mean_tbt == 0.0

    def test_describe(self):
        collector = MetricsCollector()
        collector.observe(finished_request("a", 0.0, 0.5, 1.0))
        assert "TTFT" in collector.summarize().describe()

    def test_len(self):
        collector = MetricsCollector()
        assert len(collector) == 0
        collector.observe(finished_request("a", 0.0, 0.5, 1.0))
        assert len(collector) == 1
