"""Multi-round conversation with eviction between rounds (§2.3 scenario).

A chatbot session accumulates history round by round.  GPU memory only
holds a handful of sessions (§2.4), so this example evicts the session's
KV cache after every round and restores it from hidden states when the
user returns — then double-checks that the conversation transcript is
*identical* to one served without any eviction, and reports what the
restoration would cost for Llama2-7B at each round's history length.

Run:  python examples/multi_round_chat.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import default_methods
from repro.core import HCacheEngine
from repro.core.profiler import build_storage_array
from repro.engine import NumericServingEngine
from repro.models import KVCache, Transformer, model_preset
from repro.simulator import platform_preset
from repro.storage import StorageManager

ROUNDS = [
    (12, 6),  # (prompt tokens, response tokens) per round
    (8, 6),
    (10, 6),
    (7, 6),
]


def uninterrupted_reference(model, prompts, outputs):
    cache = KVCache(model.config)
    transcript = []
    for prompt, n_out in zip(prompts, outputs):
        result = model.forward(prompt, cache)
        tokens, logits = [], result.logits[-1]
        for _ in range(n_out):
            token = int(np.argmax(logits))
            tokens.append(token)
            logits = model.decode_step(token, cache).logits[-1]
        transcript.append(tokens)
    return transcript


def main() -> None:
    config = model_preset("tiny-llama")
    model = Transformer.from_seed(config, seed=3)
    platform = platform_preset("default")
    storage = StorageManager(build_storage_array(platform))
    engine = NumericServingEngine(model, HCacheEngine(model, storage, platform=platform))

    rng = np.random.default_rng(17)
    prompts = [rng.integers(0, config.vocab_size, size=n) for n, _ in ROUNDS]
    outputs = [n_out for _, n_out in ROUNDS]

    seven_b = model_preset("llama2-7b")
    hcache_7b = default_methods(seven_b, platform)["hcache"]
    offload_7b = default_methods(seven_b, platform)["kv-offload"]

    engine.open_session("alice")
    transcript = []
    history = 0
    print("round  history  restore(HCache)  restore(KV offload)  response tokens")
    for i, (prompt, n_out) in enumerate(zip(prompts, outputs)):
        # The user left after the previous round; state was evicted.
        restore_note = "-"
        offload_note = "-"
        if history:
            # Cost at 7B scale for the same history length (x256 tokens to
            # make the tiny demo's lengths meaningful).
            scaled = history * 256
            restore_note = f"{hcache_7b.restoration_timing(scaled).makespan * 1e3:8.2f} ms"
            offload_note = f"{offload_7b.restoration_timing(scaled).makespan * 1e3:8.2f} ms"
        response = engine.chat_round("alice", prompt, n_out)
        transcript.append(response)
        history = len(engine.session("alice").tokens)
        print(f"{i:>5}  {history:>7}  {restore_note:>15}  {offload_note:>19}  {response}")
        engine.evict("alice")

    reference = uninterrupted_reference(model, prompts, outputs)
    print(f"\ntranscript identical to never-evicted serving: {transcript == reference}")
    engine.close_session("alice")


if __name__ == "__main__":
    main()
