"""Quickstart: save, evict, and restore LLM state with HCache.

Runs a small transformer for real: prefills a prompt while capturing the
per-layer hidden states, persists them through the chunked storage manager,
drops the GPU-side KV cache, restores it from the hidden states, and checks
the restored cache is identical.  Then prints the modelled restoration-time
comparison for Llama2-7B on the paper's default testbed (one A100 + four
PM9A3 SSDs).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import default_methods
from repro.core import HCacheEngine
from repro.core.profiler import build_storage_array
from repro.models import Transformer, model_preset
from repro.simulator import platform_preset
from repro.storage import StorageManager


def main() -> None:
    # --- 1. a real (tiny) model and the default testbed ----------------
    config = model_preset("tiny-llama")
    model = Transformer.from_seed(config, seed=0)
    platform = platform_preset("default")
    storage = StorageManager(build_storage_array(platform))
    engine = HCacheEngine(model, storage, platform=platform)
    print(f"model: {config.name} ({config.n_layers} layers, d={config.hidden_size})")
    print(f"partition scheme chosen by the bubble-free scheduler: {engine.scheme.describe()}")

    # --- 2. prefill, capturing hidden states ---------------------------
    prompt = np.arange(40) % config.vocab_size
    engine.register_context("demo")
    result, kv_cache = model.prefill(prompt, capture_hidden=True)
    assert result.hidden_states is not None
    engine.save_states("demo", result.hidden_states, prompt, kv_cache=kv_cache)
    engine.seal("demo")
    print(f"saved {engine.saved_tokens('demo')} tokens of state "
          f"({storage.per_token_bytes('demo'):.0f} B/token on host storage)")

    # --- 3. evict and restore ------------------------------------------
    evicted = kv_cache  # pretend this left the GPU
    restored = engine.restore("demo")
    print(f"restored KV cache identical to the evicted one: {evicted.equals(restored)}")

    # --- 4. what this buys at serving scale ----------------------------
    seven_b = model_preset("llama2-7b")
    print(f"\nrestoring 2048 tokens of {seven_b.name} on {platform.gpu.name} + 4x PM9A3:")
    for name, method in default_methods(seven_b, platform).items():
        if name == "ideal":
            continue
        timing = method.restoration_timing(2048)
        print(
            f"  {name:>11}: {timing.makespan * 1e3:7.2f} ms "
            f"({timing.restoration_speed / 1e3:6.1f}K tokens/s)"
        )


if __name__ == "__main__":
    main()
