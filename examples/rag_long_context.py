"""RAG / long-context serving with offline state generation (§3.1).

RAG applications reuse the same long documents across many queries hours
apart (§2.4).  HCache generates and saves the documents' hidden states
*offline*; at query time the states stream back while the K/V projections
overlap the transfer.  This example builds an L-Eval-shaped document pool,
replays Zipf-skewed query traffic through a GPU-resident LRU cache, and
compares the TTFT each restoration method delivers on misses — the Fig. 15
scenario as a library user would script it.

Run:  python examples/rag_long_context.py
"""

from __future__ import annotations

from repro.baselines import HCacheMethod, KVOffloadMethod, RecomputationMethod
from repro.cache import GPUCacheSimulator
from repro.engine import concurrent_context_estimate
from repro.models import model_preset
from repro.simulator import platform_preset
from repro.traces import LEvalGenerator


def main() -> None:
    config = model_preset("llama2-7b")
    platform = platform_preset("a100-4ssd")
    gen = LEvalGenerator(seed=11)
    documents = gen.sample_context_pool("paper-assistant", 30)

    avg_doc = sum(d.context_tokens for d in documents) / len(documents)
    resident = concurrent_context_estimate(config, platform, int(avg_doc))
    print(f"document pool: {len(documents)} docs, avg {avg_doc:.0f} tokens")
    print(f"GPU can keep ~{resident} documents resident; the rest restore on demand\n")

    methods = {
        "recompute": RecomputationMethod(config, platform),
        "kv-offload": KVOffloadMethod(config, platform),
        "hcache": HCacheMethod(config, platform),
    }
    simulator = GPUCacheSimulator(config, platform)

    print(f"{'skew':>8}  {'hit ratio':>9}  " + "  ".join(f"{m:>12}" for m in methods))
    for alpha in (None, 1.4, 2.0):
        row = []
        hit = None
        for method in methods.values():
            result = simulator.replay(documents, method, n_requests=1500, alpha=alpha, seed=1)
            hit = result.hit_ratio
            row.append(f"{result.mean_ttft * 1e3:9.1f} ms")
        label = "uniform" if alpha is None else f"a={alpha}"
        print(f"{label:>8}  {hit * 100:8.0f}%  " + "  ".join(row))

    print("\nmiss-path detail (one 10.6K-token document):")
    doc = documents[0]
    for name, method in methods.items():
        ttft = method.ttft(doc.context_tokens, doc.input_tokens)
        print(f"  {name:>11}: TTFT {ttft * 1e3:7.1f} ms")
    hcache = methods["hcache"]
    assert isinstance(hcache, HCacheMethod)
    decision = hcache.decision_for(doc.context_tokens)
    print(f"\nscheduler partition for this document: {decision.describe()}")


if __name__ == "__main__":
    main()
