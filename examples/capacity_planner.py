"""Hardware capacity planner built on the HCache performance model.

Given a model and a set of candidate platforms, reports — per platform —
the bubble-free scheduler's partition, restoration speed versus the
baselines, per-token storage cost, and the storage bandwidth needed for a
balanced pipeline (§6.1.3).  This is the §4.1.2 offline-profiling workflow
packaged as a deployment-planning tool.

Run:  python examples/capacity_planner.py [model]
"""

from __future__ import annotations

import sys

from repro.analysis.reporting import ResultTable
from repro.baselines import default_methods
from repro.core import hcache_timing
from repro.models import model_preset
from repro.simulator import platform_preset

CANDIDATES = [
    "a100-4ssd",
    "a100-1ssd",
    "a100-dram",
    "a30-dram",
    "4090-dram",
    "l20-dram",
    "h800-dram",
]


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "llama2-7b"
    config = model_preset(model_name)
    n_tokens = 2048

    table = ResultTable(
        f"HCache deployment plan for {config.name} ({n_tokens}-token histories)",
        ["platform", "partition", "hcache K tok/s", "kv-offload", "recompute",
         "storage KiB/tok", "bubble"],
    )
    for name in CANDIDATES:
        platform = platform_preset(name)
        timing, decision = hcache_timing(config, platform, n_tokens)
        methods = default_methods(config, platform)
        table.add_row(
            name,
            decision.scheme.describe(),
            f"{timing.restoration_speed / 1e3:.1f}",
            f"{methods['kv-offload'].restoration_speed(n_tokens) / 1e3:.1f}",
            f"{methods['recompute'].restoration_speed(n_tokens) / 1e3:.1f}",
            f"{decision.scheme.storage_bytes_per_token(config) / 1024:.0f}",
            f"{decision.predicted_bubble_fraction * 100:.1f}%",
        )
    table.show()

    print(
        "\nreading guide: pick the platform whose hcache column meets your "
        "TTFT budget;\nthe partition column shows how the scheduler balances "
        "the pipeline there\n(H = hidden states, KV = offloaded KV layers, "
        "RE = token-recomputed layers)."
    )


if __name__ == "__main__":
    main()
