"""Figure 14 — ablation of two-stage state saving.

TBT versus decode batch size (512-token histories) for DirectIO (hidden
states written straight to SSD chunks), HCache's two-stage saving, and the
no-saving ideal.  Paper: two-stage tracks ideal; DirectIO matches only at
small batches and inflates TBT as the batch grows (+34% for 7B at batch
16, +13% for 13B at batch 32).
"""

from __future__ import annotations

from _common import emit, run_once

from repro.analysis.reporting import PaperExpectation, ResultTable
from repro.core import DirectIOSaver, NoSaver, TwoStageSaver, decode_tbt_with_saving
from repro.models import model_preset
from repro.simulator import platform_preset

HISTORY = 512
PANELS = {
    "llama2-7b": (1, 2, 4, 8, 12, 16, 20),
    "llama2-13b": (1, 4, 8, 16, 24, 32),
}


def measure():
    platform = platform_preset("default")
    results = {}
    for model_name, batches in PANELS.items():
        config = model_preset(model_name)
        for batch in batches:
            results[(model_name, batch)] = {
                "ideal": decode_tbt_with_saving(config, platform, batch, HISTORY, NoSaver()),
                "hcache": decode_tbt_with_saving(
                    config, platform, batch, HISTORY, TwoStageSaver(platform)
                ),
                "direct-io": decode_tbt_with_saving(
                    config, platform, batch, HISTORY, DirectIOSaver(platform)
                ),
            }
    return results


def test_fig14_two_stage_saving(benchmark):
    results = run_once(benchmark, measure)
    table = ResultTable(
        "Figure 14: TBT vs decode batch size (ms)",
        ["model", "batch", "ideal", "hcache (two-stage)", "direct-io", "direct-io overhead"],
    )
    for (model_name, batch), impacts in results.items():
        table.add_row(
            model_name,
            batch,
            f"{impacts['ideal'].tbt * 1e3:.2f}",
            f"{impacts['hcache'].tbt * 1e3:.2f}",
            f"{impacts['direct-io'].tbt * 1e3:.2f}",
            f"{impacts['direct-io'].overhead_fraction * 100:.0f}%",
        )

    seven_at_16 = results[("llama2-7b", 16)]["direct-io"].overhead_fraction
    thirteen_at_32 = results[("llama2-13b", 32)]["direct-io"].overhead_fraction
    two_stage_worst = max(i["hcache"].overhead_fraction for i in results.values())
    expectations = [
        PaperExpectation(
            "two-stage TBT vs ideal", "consistent (no stall)",
            f"max +{two_stage_worst * 100:.1f}%", holds=two_stage_worst < 0.01,
        ),
        PaperExpectation(
            "DirectIO overhead, 7B @ batch 16", "+34%", f"+{seven_at_16 * 100:.0f}%",
            holds=0.10 < seven_at_16 < 0.80,
        ),
        PaperExpectation(
            "DirectIO overhead smaller for 13B", "+13% @ batch 32 (slower layers)",
            f"+{thirteen_at_32 * 100:.0f}%",
            holds=results[("llama2-13b", 16)]["direct-io"].overhead_fraction
            < results[("llama2-7b", 16)]["direct-io"].overhead_fraction,
        ),
    ]
    emit("fig14_saving_ablation", [table], expectations)
    assert two_stage_worst < 0.01
    assert seven_at_16 > 0.10
    small_batch = results[("llama2-7b", 2)]["direct-io"].overhead_fraction
    assert small_batch < 0.05  # paper: similar to ideal at small batches
