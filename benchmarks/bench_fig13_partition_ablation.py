"""Figure 13 — ablation of state-partition methods.

Panel (a): restoration speed of token-wise, token-wise + round-up, and
layer-wise partitions (13B, one A100, one SSD, 1024-token history).
Paper: naive token-wise is 12% slower than layer-wise; round-up closes it
to 7%.  Panel (b): the per-layer restoration GEMM's step curve over the
token count.
"""

from __future__ import annotations

from _common import emit, run_once

from repro.analysis.reporting import PaperExpectation, ResultTable
from repro.core import hcache_timing, naive_tokenwise_split, tokenwise_timing
from repro.core.partition import TokenPartition
from repro.models import model_preset
from repro.simulator import platform_preset
from repro.simulator.gemm import kv_projection_time, round_up_tokens

MODEL = "llama2-13b"
PLATFORM = "compute-sufficient"  # one A100, one SSD (the Fig. 13 testbed)
N_TOKENS = 1024


def measure_partitions():
    config = model_preset(MODEL)
    platform = platform_preset(PLATFORM)
    layer_timing, decision = hcache_timing(config, platform, N_TOKENS)
    # The paper's naive token-wise scheduler balances with smooth costs
    # (it chose 794 H + 230 RE), then pays the padded-kernel price.
    naive_split = naive_tokenwise_split(config, platform, N_TOKENS)
    naive = tokenwise_timing(config, platform, naive_split, complement="recompute")
    # Round-up variant: manage the nearest tile-aligned token count with
    # HCache (the paper rounds 794 to 768).
    aligned = min(round_up_tokens(naive_split.n_hidden_tokens) - 128, N_TOKENS)
    aligned = max(aligned, 0)
    rounded_split = TokenPartition(aligned, N_TOKENS - aligned)
    rounded = tokenwise_timing(
        config, platform, rounded_split, complement="recompute", round_up=True
    )
    return {
        "layer": (layer_timing, decision.scheme.describe()),
        "token": (naive, f"{naive_split.n_hidden_tokens} H tokens"),
        "token+round": (rounded, f"{rounded_split.n_hidden_tokens} H tokens"),
    }


def test_fig13a_partition_methods(benchmark):
    results = run_once(benchmark, measure_partitions)
    table = ResultTable(
        "Figure 13a: restoration speed by partition method (13B, 1 SSD)",
        ["partition", "scheme", "speed (K tokens/s)", "vs layer-wise"],
    )
    layer_speed = results["layer"][0].restoration_speed
    for name in ("token", "token+round", "layer"):
        timing, scheme = results[name]
        table.add_row(
            {"token": "Token-Wise", "token+round": "Token-Wise + Round", "layer": "Layer-Wise"}[name],
            scheme,
            f"{timing.restoration_speed / 1e3:.1f}",
            f"{timing.restoration_speed / layer_speed * 100:.0f}%",
        )
    naive_gap = 1 - results["token"][0].restoration_speed / layer_speed
    round_gap = 1 - results["token+round"][0].restoration_speed / layer_speed
    expectations = [
        PaperExpectation(
            "token-wise slowdown", "12%", f"{naive_gap * 100:.0f}%",
            holds=0.02 < naive_gap < 0.35,
        ),
        PaperExpectation(
            "round-up slowdown", "7%", f"{round_gap * 100:.0f}%",
            holds=round_gap <= naive_gap + 1e-9,
        ),
    ]
    emit("fig13a_partition_methods", [table], expectations)
    assert results["layer"][0].makespan < results["token"][0].makespan
    assert results["token+round"][0].makespan <= results["token"][0].makespan * 1.001


def test_fig13b_gemm_step_curve(benchmark):
    """The per-layer K/V-projection time over the token count: flat within
    a tile, stepping up at boundaries."""

    def run():
        config = model_preset(MODEL)
        platform = platform_preset(PLATFORM)
        return [
            (n, kv_projection_time(n, config.hidden_size, config.kv_size, platform).seconds)
            for n in range(500, 1101, 50)
        ]

    curve = run_once(benchmark, run)
    table = ResultTable(
        "Figure 13b: per-layer restoration GEMM time (13B on A100)",
        ["tokens", "time (us)"],
    )
    for n, seconds in curve:
        table.add_row(n, f"{seconds * 1e6:.0f}")
    emit("fig13b_gemm_curve", [table])
    times = dict(curve)
    # Within one 128-tile: identical; across tiles: monotone increase.
    assert times[700] == times[750]  # both pad to 768
    assert times[800] > times[750]
    assert times[1100] > times[500]
