"""Figure 4 — comparison of state-restoration overhead.

L-Eval-style long contexts on the paper's testbeds: TTFT of recomputation
and KV offload versus the no-restoration ideal.  Paper: recomputation is
20.0-26.0x slower than ideal, KV offload 6.5-13.0x.
"""

from __future__ import annotations

import numpy as np
from _common import emit, run_once

from repro.analysis.reporting import PaperExpectation, ResultTable
from repro.baselines import default_methods
from repro.models import model_preset
from repro.simulator import platform_preset
from repro.traces import LEvalGenerator

SETUPS = [
    ("llama2-7b", "a100-4ssd"),
    ("llama2-13b", "a100-4ssd"),
    ("opt-30b", "a100x4-4ssd"),
]


def measure():
    requests = LEvalGenerator(seed=1).sample_mixed(60)
    results = {}
    for model_name, platform_name in SETUPS:
        config = model_preset(model_name)
        platform = platform_preset(platform_name)
        methods = default_methods(config, platform)
        ttfts = {
            name: float(
                np.mean([m.ttft(r.context_tokens, r.input_tokens) for r in requests])
            )
            for name, m in methods.items()
        }
        results[model_name] = ttfts
    return results


def test_fig04_restoration_overhead(benchmark):
    results = run_once(benchmark, measure)
    table = ResultTable(
        "Figure 4: TTFT on L-Eval mixed trace (seconds; slowdown vs ideal)",
        ["model", "ideal", "kv-offload", "recompute", "kv/ideal", "rec/ideal"],
    )
    expectations = []
    for model_name, ttfts in results.items():
        kv_ratio = ttfts["kv-offload"] / ttfts["ideal"]
        rec_ratio = ttfts["recompute"] / ttfts["ideal"]
        table.add_row(
            model_name,
            f"{ttfts['ideal']:.3f}",
            f"{ttfts['kv-offload']:.3f}",
            f"{ttfts['recompute']:.3f}",
            f"{kv_ratio:.1f}x",
            f"{rec_ratio:.1f}x",
        )
        expectations.append(
            PaperExpectation(
                f"{model_name} recompute slowdown", "20.0-26.0x", f"{rec_ratio:.1f}x",
                holds=15 < rec_ratio < 45,
            )
        )
        expectations.append(
            PaperExpectation(
                f"{model_name} KV-offload slowdown", "6.5-13.0x", f"{kv_ratio:.1f}x",
                holds=5 < kv_ratio < 18,
            )
        )
    emit("fig04_restore_overhead", [table], expectations)
    for ttfts in results.values():
        assert ttfts["recompute"] > ttfts["kv-offload"] > ttfts["ideal"]
