"""Ablation: DRAM prefetching in front of HCache restoration.

§4 of the paper marks hierarchical DRAM+SSD backends with prefetching
(AttentionStore-style) as orthogonal enhancements.  This bench quantifies
the combination: multi-turn sessions prefetch their states during the 30 s
think time, so the next round restores at host-link speed and the
scheduler re-balances its partition for the faster IO.
"""

from __future__ import annotations

from _common import emit, run_once

from repro.analysis.reporting import PaperExpectation, ResultTable
from repro.cache.prefetch import PrefetchingHCache
from repro.models import model_preset
from repro.simulator import platform_preset
from repro.traces.arrival import ROUND_INTERVAL_SECONDS

N_TOKENS = 2048


def measure():
    rows = []
    for platform_name in ("compute-sufficient", "a100-4ssd"):
        config = model_preset("llama2-7b")
        prefetcher = PrefetchingHCache(config, platform_preset(platform_name))
        cold = prefetcher.restore(f"{platform_name}-cold", N_TOKENS)
        copy_time = prefetcher.finish_round(f"{platform_name}-warm", N_TOKENS)
        warm = prefetcher.restore(f"{platform_name}-warm", N_TOKENS)
        rows.append((platform_name, cold, warm, copy_time))
    return rows


def test_abl_prefetching_restoration(benchmark):
    rows = run_once(benchmark, measure)
    table = ResultTable(
        "Prefetching HCache: cold (SSD) vs warm (DRAM) restoration, 7B, 2048 tokens",
        ["platform", "cold scheme", "cold K tok/s", "warm scheme", "warm K tok/s",
         "gain", "prefetch copy (s)"],
    )
    for name, cold, warm, copy_time in rows:
        table.add_row(
            name,
            cold.scheme_description,
            f"{cold.timing.restoration_speed / 1e3:.1f}",
            warm.scheme_description,
            f"{warm.timing.restoration_speed / 1e3:.1f}",
            f"{warm.timing.restoration_speed / cold.timing.restoration_speed:.2f}x",
            f"{copy_time:.3f}",
        )
    one_ssd = rows[0]
    gain = one_ssd[2].timing.restoration_speed / one_ssd[1].timing.restoration_speed
    expectations = [
        PaperExpectation(
            "warm gain on 1-SSD platform", "large (SSD 6.9 -> PCIe 32 GB/s)",
            f"{gain:.2f}x", holds=gain > 2.0,
        ),
        PaperExpectation(
            "prefetch fits the 30s round interval", f"< {ROUND_INTERVAL_SECONDS}s",
            f"{max(r[3] for r in rows):.3f}s",
            holds=all(r[3] < ROUND_INTERVAL_SECONDS / 5 for r in rows),
        ),
    ]
    emit("abl_prefetch", [table], expectations)
    assert gain > 2.0
    for _, cold, warm, _ in rows:
        assert warm.timing.makespan <= cold.timing.makespan
