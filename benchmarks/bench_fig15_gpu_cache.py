"""Figure 15 — performance with on-GPU KV reuse.

L-Eval contexts behind an LRU GPU cache, replayed with Zipfian arrival
skew.  Paper: hit ratio climbs from 15% (uniform) to 94% (alpha = 2.0);
the cache cuts TTFT 3.76-10.03x at high skew; HCache's edge narrows but
holds — 1.67x over KV offload when uniform, 1.15x at alpha = 2.0 (and
1.98x over recomputation).
"""

from __future__ import annotations

from _common import emit, run_once

from repro.analysis.reporting import PaperExpectation, ResultTable
from repro.baselines import HCacheMethod, KVOffloadMethod, RecomputationMethod
from repro.cache import GPUCacheSimulator
from repro.models import model_preset
from repro.simulator import platform_preset
from repro.traces import LEvalGenerator

ALPHAS = (None, 1.2, 1.4, 1.6, 1.8, 2.0)
N_REQUESTS = 2000
N_CONTEXTS = 40


def measure():
    config = model_preset("llama2-7b")
    platform = platform_preset("a100-4ssd")
    contexts = LEvalGenerator(seed=0).sample_context_pool("quality", N_CONTEXTS)
    methods = {
        "recompute": RecomputationMethod(config, platform),
        "kv-offload": KVOffloadMethod(config, platform),
        "hcache": HCacheMethod(config, platform),
    }
    simulator = GPUCacheSimulator(config, platform)
    results: dict = {}
    for alpha in ALPHAS:
        for name, method in methods.items():
            results[(alpha, name)] = simulator.replay(
                contexts, method, N_REQUESTS, alpha, seed=5
            )
    return results


def test_fig15_gpu_kv_reuse(benchmark):
    results = run_once(benchmark, measure)
    table = ResultTable(
        "Figure 15: GPU KV reuse under Zipfian skew (7B, 4 SSDs)",
        ["alpha", "hit ratio", "recompute TTFT (ms)", "kv-offload TTFT (ms)",
         "hcache TTFT (ms)", "kv/h", "rec/h"],
    )
    for alpha in ALPHAS:
        h = results[(alpha, "hcache")]
        kv = results[(alpha, "kv-offload")]
        rec = results[(alpha, "recompute")]
        table.add_row(
            "uniform" if alpha is None else alpha,
            f"{h.hit_ratio * 100:.0f}%",
            f"{rec.mean_ttft * 1e3:.0f}",
            f"{kv.mean_ttft * 1e3:.0f}",
            f"{h.mean_ttft * 1e3:.0f}",
            f"{kv.mean_ttft / h.mean_ttft:.2f}x",
            f"{rec.mean_ttft / h.mean_ttft:.2f}x",
        )

    uniform_hit = results[(None, "hcache")].hit_ratio
    skewed_hit = results[(2.0, "hcache")].hit_ratio
    uniform_gain = results[(None, "kv-offload")].mean_ttft / results[(None, "hcache")].mean_ttft
    skewed_gain = results[(2.0, "kv-offload")].mean_ttft / results[(2.0, "hcache")].mean_ttft
    cache_cut = results[(None, "hcache")].mean_ttft / results[(2.0, "hcache")].mean_ttft
    expectations = [
        PaperExpectation(
            "uniform hit ratio", "15%", f"{uniform_hit * 100:.0f}%",
            holds=uniform_hit < 0.40,
        ),
        PaperExpectation(
            "alpha=2.0 hit ratio", "94%", f"{skewed_hit * 100:.0f}%",
            holds=skewed_hit > 0.75,
        ),
        PaperExpectation(
            "cache TTFT cut at high skew", "3.76-10.03x", f"{cache_cut:.2f}x",
            holds=cache_cut > 2.0,
        ),
        PaperExpectation(
            "HCache vs KV offload, uniform", "1.67x", f"{uniform_gain:.2f}x",
            holds=1.3 < uniform_gain < 2.1,
        ),
        PaperExpectation(
            "HCache vs KV offload, alpha=2.0", "1.15x", f"{skewed_gain:.2f}x",
            holds=1.02 < skewed_gain < 1.7,
        ),
    ]
    emit("fig15_gpu_cache", [table], expectations)
    assert skewed_hit > uniform_hit
    assert skewed_gain < uniform_gain  # high skew narrows HCache's edge
    assert skewed_gain > 1.02  # ... but never erases it
