"""Ablation benches for the paper's §7 extensions and DESIGN.md choices.

Not figures from the paper — these quantify the extension features this
reproduction adds on top of the core system:

- **GQA sweep**: how grouped-query attention moves the hidden-vs-KV
  crossover and what the (search) scheduler does about it.
- **Quantized hidden states**: CacheGen-style int8/int4 codecs — storage
  saving, restoration-speed gain, and end-task logit drift on a real
  model.
- **Chunk-size ablation**: the 64-token choice of §4.2.1 versus smaller
  (IOPS-bound) and larger (fragmentation-bound) chunks.
- **Multi-GPU restoration**: tensor-parallel sharded reads + all-gather
  versus pipeline-parallel independence (§5).
"""

from __future__ import annotations

import numpy as np
from _common import emit, run_once

from repro.analysis.reporting import PaperExpectation, ResultTable
from repro.core.gqa import analyze_gqa, gqa_crossover_heads
from repro.core.profiler import build_storage_array
from repro.models import Transformer, model_preset
from repro.simulator import platform_preset
from repro.simulator.multi_gpu import (
    pipeline_parallel_restoration,
    tensor_parallel_restoration,
)
from repro.storage.chunk import ChunkLayout
from repro.storage.codec import GroupQuantizer, quantization_logit_drift


def test_abl_gqa_crossover(benchmark):
    def run():
        config = model_preset("llama2-7b")
        platform = platform_preset("default")
        return [
            (kv_heads, analyze_gqa(config, platform, 1024, kv_heads))
            for kv_heads in (32, 16, 8, 4, 1)
        ]

    rows = run_once(benchmark, run)
    config = model_preset("llama2-7b")
    table = ResultTable(
        "GQA ablation: hidden-vs-KV crossover (7B-family, A100 + 4 SSDs)",
        ["kv heads", "hidden/KV bytes", "hcache wins IO?", "scheduler picks", "makespan (ms)"],
    )
    for kv_heads, analysis in rows:
        table.add_row(
            kv_heads,
            f"{analysis.hidden_to_kv_ratio:.2f}",
            "yes" if analysis.hcache_transmission_wins else "no",
            analysis.decision.scheme.describe(),
            f"{analysis.decision.predicted_makespan * 1e3:.1f}",
        )
    expectations = [
        PaperExpectation(
            "crossover point", f"kv_heads = {gqa_crossover_heads(config)} (heads/2)",
            "hidden/KV = 1.0 at 16 heads",
            holds=abs(dict(rows)[16].hidden_to_kv_ratio - 1.0) < 1e-9,
        ),
        PaperExpectation(
            "scheduler adapts", "pure KV below crossover (per §7 discussion)",
            dict(rows)[4].decision.scheme.describe(),
            holds=dict(rows)[4].decision.scheme.n_kv > dict(rows)[4].decision.scheme.n_hidden,
        ),
    ]
    emit("abl_gqa_crossover", [table], expectations)
    assert dict(rows)[32].decision.scheme.n_hidden > 0
    assert dict(rows)[1].decision.scheme.n_hidden == 0


def test_abl_quantized_hidden_states(benchmark):
    def run():
        config = model_preset("llama2-7b")
        platform = platform_preset("default")
        array = build_storage_array(platform)
        tiny = Transformer.from_seed(model_preset("tiny-llama"), seed=2)
        tokens = np.arange(32) % tiny.config.vocab_size
        rows = []
        fp16_bytes = 1024 * config.hidden_bytes_per_token_layer
        chunk_bytes = 64 * config.hidden_bytes_per_token_layer
        fp16_time = array.read_time(fp16_bytes, chunk_bytes)
        rows.append(("fp16", 1.0, fp16_time, 0.0))
        for bits in (8, 4):
            quantizer = GroupQuantizer(bits=bits, group_size=64)
            ratio = quantizer.compression_ratio(config.hidden_size)
            time = array.read_time(int(fp16_bytes / ratio), chunk_bytes)
            drift = quantization_logit_drift(
                tiny, tokens, GroupQuantizer(bits=bits, group_size=16)
            )
            rows.append((f"int{bits}", ratio, time, drift))
        return rows

    rows = run_once(benchmark, run)
    table = ResultTable(
        "Quantized hidden-state storage (per-layer read, 1024 tokens of 7B)",
        ["codec", "compression vs fp16", "layer read (us)", "max logit drift (tiny model)"],
    )
    for name, ratio, seconds, drift in rows:
        table.add_row(name, f"{ratio:.2f}x", f"{seconds * 1e6:.0f}", f"{drift:.4f}")
    fp16_time = rows[0][2]
    int8 = next(r for r in rows if r[0] == "int8")
    expectations = [
        PaperExpectation(
            "int8 transmission win", "~2x (CacheGen-style, §7)",
            f"{fp16_time / int8[2]:.2f}x", holds=fp16_time / int8[2] > 1.6,
        ),
        PaperExpectation(
            "int8 near-lossless", "small logit drift", f"{int8[3]:.4f}",
            holds=int8[3] < 0.2,
        ),
    ]
    emit("abl_quantized_states", [table], expectations)
    assert fp16_time / int8[2] > 1.6


def test_abl_chunk_size(benchmark):
    """§4.2.1's 64-token chunk: small chunks pay per-IO latency, large
    chunks pay internal fragmentation on every (layer, context) tail."""

    def run():
        config = model_preset("llama2-7b")
        platform = platform_preset("default")
        array = build_storage_array(platform)
        n_tokens = 1024 + 37  # a realistic non-aligned context length
        rows = []
        for chunk_tokens in (8, 16, 64, 256, 1024):
            layout = ChunkLayout(
                tokens_per_chunk=chunk_tokens,
                bytes_per_token=config.hidden_bytes_per_token_layer,
            )
            read = array.layer_read_timing(layout.chunks_for(n_tokens), layout.chunk_bytes)
            frag = layout.internal_fragmentation(n_tokens) * config.n_layers
            rows.append((chunk_tokens, read.seconds, frag))
        return rows

    rows = run_once(benchmark, run)
    table = ResultTable(
        "Chunk-size ablation (7B layer read of 1061 tokens, 4 SSDs)",
        ["tokens/chunk", "layer read (us)", "context fragmentation (KiB)"],
    )
    for chunk_tokens, seconds, frag in rows:
        table.add_row(chunk_tokens, f"{seconds * 1e6:.0f}", f"{frag / 1024:.0f}")
    by_size = {r[0]: r for r in rows}
    expectations = [
        PaperExpectation(
            "64-token read within 5% of huge chunks", "design point of §4.2.1",
            f"{by_size[64][1] / by_size[1024][1]:.3f}x",
            holds=by_size[64][1] < by_size[1024][1] * 1.05,
        ),
        PaperExpectation(
            "64-token fragmentation far below huge chunks", "bounded by one chunk",
            f"{by_size[64][2] / 1024:.0f} vs {by_size[1024][2] / 1024:.0f} KiB",
            holds=by_size[64][2] < by_size[1024][2] / 4,
        ),
    ]
    emit("abl_chunk_size", [table], expectations)
    assert by_size[8][1] > by_size[64][1]  # tiny chunks are IOPS-bound
    assert by_size[64][2] < by_size[1024][2]


def test_abl_multi_gpu_restoration(benchmark):
    def run():
        config = model_preset("opt-30b")
        platform = platform_preset("a100x4-dram")
        tp = tensor_parallel_restoration(config, platform, 4096)
        pp = pipeline_parallel_restoration(config, platform, 4096)
        return tp, pp

    tp, pp = run_once(benchmark, run)
    table = ResultTable(
        "Multi-GPU restoration (OPT-30B, 4x A100, 4096 tokens)",
        ["strategy", "read (ms)", "all-gather (ms)", "compute (ms)", "makespan (ms)"],
    )
    table.add_row(
        "tensor-parallel",
        f"{tp.read_seconds * 1e3:.1f}",
        f"{tp.allgather_seconds * 1e3:.2f}",
        f"{tp.compute_seconds * 1e3:.1f}",
        f"{tp.makespan * 1e3:.1f}",
    )
    table.add_row("pipeline-parallel", "-", "0", "-", f"{pp * 1e3:.1f}")
    expectations = [
        PaperExpectation(
            "all-gather overhead", "small vs transmission (§5)",
            f"{tp.allgather_seconds / tp.read_seconds * 100:.0f}% of read time",
            holds=tp.allgather_seconds < 0.25 * tp.read_seconds,
        ),
    ]
    emit("abl_multi_gpu", [table], expectations)
    assert tp.allgather_seconds < 0.25 * tp.read_seconds
