"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints it
(visible with ``pytest -s``), and writes the rendered text under
``benchmarks/results/`` so the reproduction's numbers are durable artifacts
that EXPERIMENTS.md can reference.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.reporting import PaperExpectation, ResultTable, render_expectations

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, tables: list[ResultTable], expectations: list[PaperExpectation] | None = None) -> None:
    """Print and persist a benchmark's tables and paper-vs-measured notes."""
    RESULTS_DIR.mkdir(exist_ok=True)
    chunks = [t.render() for t in tables]
    if expectations:
        chunks.append(render_expectations(expectations))
    text = "\n\n".join(chunks) + "\n"
    print()
    print(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text)


def run_once(benchmark, fn):
    """Benchmark a heavy computation exactly once (simulations are
    deterministic; repeated rounds add nothing but wall-clock)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
