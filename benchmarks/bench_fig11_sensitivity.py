"""Figure 11 — sensitivity analysis (GPUs, SSD count, context length).

Three sweeps over restoration speed (K tokens/s):

- **a-c**: varying GPU with the DRAM backend.  Paper: HCache beats KV
  offload by 1.33-1.81x and recomputation by 5.04-9.05x.
- **d-f**: varying SSD count.  Paper: 1.7-2.6x over KV offload
  (2.09-2.66x at one SSD per GPU).
- **g-i**: varying context length.  Paper: recomputation degrades with
  history; HCache and KV offload scale flat.
"""

from __future__ import annotations

from _common import emit, run_once

from repro.analysis.reporting import PaperExpectation, ResultTable
from repro.baselines import default_methods
from repro.models import model_preset
from repro.simulator import platform_preset

N_TOKENS = 1024

GPU_PANELS = {
    "llama2-7b": ("a100-dram", "4090-dram", "a30-dram"),
    "llama2-13b": ("h800-dram", "a100-dram", "l20-dram"),
    "opt-30b": ("h800-dram", "a100x4-dram", "h800x2-dram"),
}


def speeds_for(config_name: str, platform) -> dict[str, float]:
    config = model_preset(config_name)
    methods = default_methods(config, platform)
    return {
        name: m.restoration_speed(N_TOKENS) / 1e3
        for name, m in methods.items()
        if name != "ideal"
    }


def run_gpu_sweep():
    rows = []
    for model_name, platforms in GPU_PANELS.items():
        for platform_name in platforms:
            speeds = speeds_for(model_name, platform_preset(platform_name))
            rows.append((model_name, platform_name, speeds))
    return rows


def test_fig11abc_gpu_sweep(benchmark):
    rows = run_once(benchmark, run_gpu_sweep)
    table = ResultTable(
        "Figure 11a-c: restoration speed by GPU (K tokens/s, DRAM backend)",
        ["model", "platform", "recompute", "kv-offload", "hcache", "h/kv", "h/rec"],
    )
    offload_ratios, recompute_ratios = [], []
    for model_name, platform_name, speeds in rows:
        h_kv = speeds["hcache"] / speeds["kv-offload"]
        h_rec = speeds["hcache"] / speeds["recompute"]
        offload_ratios.append(h_kv)
        recompute_ratios.append(h_rec)
        table.add_row(
            model_name, platform_name,
            f"{speeds['recompute']:.1f}", f"{speeds['kv-offload']:.1f}",
            f"{speeds['hcache']:.1f}", f"{h_kv:.2f}x", f"{h_rec:.2f}x",
        )
    expectations = [
        PaperExpectation(
            "speedup vs KV offload", "1.33-1.81x",
            f"{min(offload_ratios):.2f}-{max(offload_ratios):.2f}x",
            holds=all(1.15 < r < 2.0 for r in offload_ratios),
        ),
        PaperExpectation(
            "speedup vs recompute", "5.04-9.05x",
            f"{min(recompute_ratios):.2f}-{max(recompute_ratios):.2f}x",
            holds=all(4.0 < r < 20.0 for r in recompute_ratios),
        ),
    ]
    emit("fig11abc_gpus", [table], expectations)
    assert all(r > 1.15 for r in offload_ratios)
    assert all(r > 4.0 for r in recompute_ratios)


def run_ssd_sweep():
    results = {}
    for model_name, counts in (
        ("llama2-7b", (1, 2, 3, 4)),
        ("llama2-13b", (1, 2, 3, 4)),
        ("opt-30b", (4, 8, 12, 16)),
    ):
        base = platform_preset("a100x4-4ssd" if model_name == "opt-30b" else "a100-4ssd")
        for count in counts:
            speeds = speeds_for(model_name, base.with_ssds(count))
            results[(model_name, count)] = speeds
    return results


def test_fig11def_ssd_sweep(benchmark):
    results = run_once(benchmark, run_ssd_sweep)
    table = ResultTable(
        "Figure 11d-f: restoration speed by SSD count (K tokens/s)",
        ["model", "#SSDs", "recompute", "kv-offload", "hcache", "h/kv"],
    )
    ratios = []
    for (model_name, count), speeds in results.items():
        ratio = speeds["hcache"] / speeds["kv-offload"]
        ratios.append(ratio)
        table.add_row(
            model_name, count,
            f"{speeds['recompute']:.1f}", f"{speeds['kv-offload']:.1f}",
            f"{speeds['hcache']:.1f}", f"{ratio:.2f}x",
        )
    single_disk = results[("llama2-7b", 1)]
    single_ratio = single_disk["hcache"] / single_disk["kv-offload"]
    expectations = [
        PaperExpectation(
            "overall speedup vs KV offload", "1.7-2.6x",
            f"{min(ratios):.2f}-{max(ratios):.2f}x",
            holds=all(1.5 < r < 3.0 for r in ratios),
        ),
        PaperExpectation(
            "one-SSD speedup", "2.09-2.66x", f"{single_ratio:.2f}x",
            holds=2.0 < single_ratio < 3.0,
        ),
    ]
    emit("fig11def_ssds", [table], expectations)
    assert 2.0 < single_ratio < 3.0
    # KV offload scales with disks; ratio shrinks as IO stops being scarce.
    assert results[("llama2-7b", 4)]["kv-offload"] > 3 * results[("llama2-7b", 1)]["kv-offload"]


def run_ctx_sweep():
    results = {}
    for model_name, lengths in (
        ("llama2-7b", (1024, 4096, 8192, 16384)),
        ("llama2-13b", (1024, 4096, 8192, 16384)),
        ("opt-30b", (1024, 8192, 16384, 32768)),
    ):
        platform = platform_preset("a100x4-4ssd" if model_name == "opt-30b" else "a100-4ssd")
        config = model_preset(model_name)
        methods = default_methods(config, platform)
        for n in lengths:
            results[(model_name, n)] = {
                name: m.restoration_speed(n) / 1e3
                for name, m in methods.items()
                if name != "ideal"
            }
    return results


def test_fig11ghi_context_sweep(benchmark):
    results = run_once(benchmark, run_ctx_sweep)
    table = ResultTable(
        "Figure 11g-i: restoration speed by context length (K tokens/s)",
        ["model", "ctx", "recompute", "kv-offload", "hcache"],
    )
    for (model_name, n), speeds in results.items():
        table.add_row(
            model_name, n,
            f"{speeds['recompute']:.1f}", f"{speeds['kv-offload']:.1f}",
            f"{speeds['hcache']:.1f}",
        )
    rec_drop = (
        results[("llama2-7b", 16384)]["recompute"]
        / results[("llama2-7b", 1024)]["recompute"]
    )
    h_drop = (
        results[("llama2-7b", 16384)]["hcache"] / results[("llama2-7b", 1024)]["hcache"]
    )
    expectations = [
        PaperExpectation(
            "7B recompute decay 1K->16K", "-28% (measured; model predicts -13%)",
            f"{(rec_drop - 1) * 100:.0f}%", holds=rec_drop < 0.92,
        ),
        PaperExpectation(
            "7B HCache decay 1K->16K", "~0 (scales linearly)",
            f"{(h_drop - 1) * 100:.0f}%", holds=h_drop > 0.85,
        ),
    ]
    emit("fig11ghi_ctxlen", [table], expectations)
    assert rec_drop < h_drop
