#!/usr/bin/env python
"""Hot-path microbenchmarks: the save/restore pipeline must stay O(n).

Measures three things at several context lengths and compares each
against the preserved pre-refactor baseline
(:mod:`repro.models.reference`):

1. **decode-with-capture state path** — the per-token state-management
   cost of a decode step that captures hidden states and persists them:
   KV-cache append + hidden-state capture + chunked storage append.
   This is the quadratic pattern the amortized-growth buffers eliminate
   (naive: two ``np.concatenate`` per layer plus per-row staging copies;
   fast: three slice writes).  The headline ``>= 10x at 4k tokens``
   acceptance target applies here.
2. **decode end-to-end** — a full ``decode_step(capture_hidden=True)``
   loop through the real transformer, pre- vs post-refactor (the naive
   side also restores the original einsum attention), so the report
   stays honest about what the whole step gains once the irreducible
   model compute is included.
3. **restore** — latency of rebuilding a KV cache from hidden states:
   the batched norm+GEMM projection vs the per-layer loop, plus the full
   storage-integrated chunk-streamed ``HCacheEngine.restore`` with its
   per-stage (read / norm / GEMM / RoPE) breakdown.  Restored caches are
   checked bit-exact against the naive path.
4. **threaded restore** — wall-clock of the ``repro.runtime``
   :class:`RestoreExecutor` (background IO workers) vs the
   single-threaded streamed path, both run with **device latency
   emulation** on (the simulated devices sleep their modelled IO
   seconds, so reads cost real wall clock and overlapping them with
   projections is a real win, not an accounting one).  The threaded wall
   clock is recorded next to the ``modelled_pipelined_s`` §4.1 makespan
   and their ratio (``gap_ratio``) is the tracked regression surface:
   it should stay near 1, and within the 1.5x acceptance band at 4k
   tokens.  Threaded restores are checked bit-exact too.
5. **durability** — the crash-safe storage paths: a restore whose
   primary replicas are all dead (every chunk read fails over to the
   mirror) must stay **bit-exact** and within ``DEGRADED_WALL_CEILING``x
   of the healthy wall clock, and a journaled save followed by a full
   in-memory drop must recover (``StorageManager.recover`` +
   ``HCacheEngine.recover``) to a bit-exact restore.  ``recover_s`` and
   the journal footprint are recorded; exactness is never relaxed.
6. **block sharing** — the block-paged prefix-sharing store: a
   ShareGPT-style cohort of sessions with one shared system prompt is
   saved through an engine with a :class:`repro.state.BlockStateStore`
   and through a fully private engine.  Gate: pool dedup ratio > 1
   (shared blocks are physically stored once), every pool-served restore
   **bit-exact** against the private engine's with zero device reads,
   and a fresh-pool admission restore reading strictly fewer chunks than
   the private path (it streams only the non-shared suffix).  DRAM bytes
   saved by dedup and chunk reads saved on restore are recorded.
7. **sharded restore** — the PR-9 ``ShardedRestoreExecutor``: one
   restoration partitioned across a ``(pipeline x tensor)`` grid of
   simulated GPUs (layer stages x GQA-aligned KV-head ranges), run
   under multi-channel latency emulation so the shard workers' reads
   genuinely overlap (``channels = pipeline * tensor`` — the per-shard
   ingest links of §5's sharded-read picture).  Measured wall clock per
   shard shape is recorded next to the ``modelled_sharded_s`` makespan
   (slowest-stage two-stream recurrence with the tensor dimension's
   aggregated bandwidth and all-gathers).  Gate at 4k: the 2x2 grid
   beats the single-shard threaded restore (speedup > 1) with
   ``gap_ratio`` within the acceptance band, and every shape restores
   bit-exact (never relaxed).
8. **batched decode** — multi-session decode throughput: one
   ``Transformer.decode_batch`` call per step over a
   :class:`StackedKVCacheBlock` vs the serial per-session loop, at
   batch sizes 1 / 4 / 16.  Gate: >= 2x tokens/s over serial at batch
   16 at 1k tokens (the ShareGPT-scale serving context), with the
   batched caches matching the serial ones within the pinned
   ``BATCHED_DECODE_ATOL`` (the GEMV-vs-GEMM blocking caveat — see
   :mod:`repro.models.transformer`).  The 4k numbers are recorded too:
   there the tiny bench model's decode is attention-bandwidth-bound,
   serial and batched converge on the same memory floor (~1.7-2x on a
   1-core host), and the ratio is too noise-prone to gate on — which
   is itself the honest story the ROADMAP tells about decode e2e.

Results are printed and written to ``BENCH_hotpath.json`` at the repo
root (``--smoke`` runs a reduced-window subset — still including the
4k-token gate sizes — and skips the write unless ``--out`` is given),
establishing the performance trajectory future PRs are measured against.

Setting ``CHECK_RELAX_TIMING=1`` (used by CI on noisy shared runners)
widens the *timing* gates — threaded-restore and sharded-restore
speedup/gap and the batched-decode speedup floor — while keeping every
exactness check and the 10x state-path floor strict.  The committed JSON
must be produced without it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro.models.transformer as transformer_mod
from repro.core.hcache import HCacheEngine, RestoreBreakdown
from repro.core.profiler import build_storage_array
from repro.models.config import ModelConfig
from repro.models.hidden_capture import HiddenCapture
from repro.models.kv_cache import KVCache, StackedKVCacheBlock
from repro.models.reference import (
    NaiveKVCache,
    naive_restore_cache_from_hidden,
    naive_scaled_dot_product_attention,
)
from repro.models.transformer import BATCHED_DECODE_ATOL, Transformer
from repro.engine import (
    MemoryBudget,
    NumericServingEngine,
    ServingFrontend,
    ServingRequest,
)
from repro.runtime import RestoreExecutor, ShardedRestoreExecutor
from repro.simulator import platform_preset
from repro.simulator.hardware import GB, SSDSpec
from repro.state import BlockPool, BlockStateStore
from repro.storage.array import StorageArray
from repro.traces import ShareGPTGenerator, poisson_arrival_times
from repro.storage.faults import FaultPolicy
from repro.storage.journal import ManifestJournal
from repro.storage.manager import StorageManager

#: CI relaxation knob (see scripts/check.sh and benchmarks/README.md):
#: when CHECK_RELAX_TIMING=1, the purely timing-based gates widen so
#: noisy shared runners don't flake, while bit-exactness, the batched
#: equivalence tolerance, and the 10x state-path floor stay strict.
RELAX_TIMING = os.environ.get("CHECK_RELAX_TIMING", "") == "1"

#: Threaded-restore gate thresholds (strict -> relaxed).
THREADED_SPEEDUP_FLOOR = 0.75 if RELAX_TIMING else 1.0
THREADED_GAP_CEILING = 3.0 if RELAX_TIMING else 1.5

#: Batched-decode gate threshold at batch 16 (strict -> relaxed).
BATCHED_SPEEDUP_FLOOR = 1.3 if RELAX_TIMING else 2.0

#: Sharded-restore gate thresholds (strict -> relaxed): the 2x2 grid
#: must beat the single-shard threaded restore at 4k tokens, with wall
#: clock within the gap ceiling of the modelled sharded makespan.
#: Bit-exactness across every shard shape is never relaxed.
SHARDED_SPEEDUP_FLOOR = 0.75 if RELAX_TIMING else 1.0
SHARDED_GAP_CEILING = 3.0 if RELAX_TIMING else 1.5

#: Shard shapes measured by the sharded-restore section
#: (pipeline_shards x tensor_shards).  2x2 carries the gate.
SHARDED_SHAPES = ((1, 1), (2, 1), (1, 2), (2, 2))
SHARDED_GATE_SHAPE = "2x2"

#: Degraded-read gate (strict -> relaxed): a restore that fails every
#: primary chunk read over to the mirror must finish within this
#: multiple of the healthy wall clock.  Only the *timing* side relaxes
#: under CHECK_RELAX_TIMING — the degraded and recovered restores must
#: be bit-exact unconditionally.
DEGRADED_WALL_CEILING = 3.0 if RELAX_TIMING else 2.0

#: Batch sizes measured by the batched-decode section.
DECODE_BATCH_SIZES = (1, 4, 16)

#: Context size the batched-decode gate is defined at.  1k is the
#: ShareGPT-scale serving context; at 4k the bench model's decode is
#: attention-bandwidth-bound and serial/batched share one memory floor,
#: so the ratio there is recorded but not gated (see module docstring).
BATCHED_GATE_TOKENS = 1024

#: IO worker pool used for the threaded-restore comparison.  Size 1 is
#: deliberately conservative: it is the honest setting for single-core
#: CI hosts (the workers' sleeps and memcpys overlap the main thread's
#: projections either way) and larger pools only help further.
THREADED_POOL_SIZE = 1

#: Storage device for the threaded-restore comparison.  The tiny bench
#: model's projection compute dwarfs the default 4xPM9A3 array's read
#: time (IO is ~12% of the restore), which is NOT the regime the §4.1
#: pipeline exists for — the paper's premise is state transmission
#: *comparable* to compute (IO_H ~ C_H; cf. the Fig. 12 "balanced"
#: platform).  This slower device puts the bench model in that balanced
#: regime, so the threaded/single comparison measures the overlap where
#: it matters.  The modelled makespans come from the same per-chunk
#: receipts that latency emulation sleeps, keeping wall clock and model
#: directly comparable.
BALANCED_BENCH_SSD = SSDSpec(
    name="bench-balanced",
    read_bandwidth=0.4 * GB,
    write_bandwidth=1.0 * GB,
    io_latency=20e-6,
)

#: Storage device for the sharded-restore comparison.  Sharding's win is
#: aggregated read bandwidth, so the section runs IO-dominated (read
#: time several times the projection compute): a single ingest link is
#: the bottleneck the shard grid removes.  4x slower than the balanced
#: device puts the 4k restore at ~40 ms of modelled IO vs ~10 ms of
#: compute — a 2x2 grid's aggregated links turn that into a compute-
#: bound restore, which is exactly the §5 story being measured.
SHARDED_BENCH_SSD = SSDSpec(
    name="bench-sharded",
    read_bandwidth=0.1 * GB,
    write_bandwidth=1.0 * GB,
    io_latency=20e-6,
)

#: Small enough to execute thousands of real decode steps, big enough that
#: the O(history) copies of the naive path dominate at 4k tokens.
BENCH_CONFIG = ModelConfig(
    name="bench-tiny",
    n_layers=4,
    hidden_size=64,
    n_heads=4,
    n_kv_heads=4,
    ffn_hidden_size=128,
    n_ffn_mats=2,
    vocab_size=256,
    max_context=8192,
)

CHUNK_TOKENS = 64

#: Block-sharing section: cohort size (sessions sharing one system
#: prompt) and the pool's block size (two storage chunks, so partial
#: tails and sealed blocks both occur at every measured context).
SHARING_SESSIONS = 4
SHARING_BLOCK_TOKENS = 2 * CHUNK_TOKENS

#: Serving-frontend section (flat, run once — the §5 request loop, not a
#: per-context microbenchmark): a cohort of sessions runs a second
#: conversation round after eviction, once through the legacy serial
#: ``chat_round`` loop and once through the submit/step front end
#: (admission control + SplitFuse + one fused model call per iteration).
FRONTEND_SESSIONS = 8
FRONTEND_PROMPT_TOKENS = 64
FRONTEND_OUTPUT_TOKENS = 16
#: Gate (strict -> relaxed): the batched-continuous front end must not
#: serve the fixed-SLO round slower than the serial loop.  Token-stream
#: equality with the serial path is structural and never relaxed.
FRONTEND_SPEEDUP_FLOOR = 0.75 if RELAX_TIMING else 1.0
#: Offered-load multipliers (x the measured front-end service rate) for
#: the goodput sweep, and requests per load point.
FRONTEND_SWEEP_LOADS = (0.5, 1.0, 2.0)
FRONTEND_SWEEP_REQUESTS = 12


def _rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def _best_of(f, reps: int = 3):
    result, best = f(), float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        result = f()
        best = min(best, time.perf_counter() - t0)
    return result, best


def _kv_rows(rng: np.random.Generator, n: int) -> np.ndarray:
    shape = (n, BENCH_CONFIG.n_kv_heads, BENCH_CONFIG.head_dim)
    return rng.normal(size=shape).astype(np.float32)


class NaiveTailStore:
    """The pre-refactor storage tail: per-row copies into a Python list,
    ``np.stack`` to flush full chunks (the device snapshot copy included)."""

    def __init__(self, n_layers: int, width: int) -> None:
        self.tails: list[list[np.ndarray]] = [[] for _ in range(n_layers)]
        self.chunks: list[list[np.ndarray]] = [[] for _ in range(n_layers)]
        self.width = width

    def append(self, layer: int, states: np.ndarray) -> None:
        tail = self.tails[layer]
        tail.extend(np.array(row, copy=True) for row in states)
        while len(tail) >= CHUNK_TOKENS:
            rows = tail[:CHUNK_TOKENS]
            del tail[:CHUNK_TOKENS]
            self.chunks[layer].append(np.array(np.stack(rows), copy=True))


# ----------------------------------------------------------------------
# 1. decode-with-capture state path
# ----------------------------------------------------------------------


def bench_state_path(n_tokens: int, window: int) -> dict:
    """Per-token state-management cost at history length ``n_tokens``."""
    cfg = BENCH_CONFIG
    rng = _rng()
    history = n_tokens - window
    base_k = _kv_rows(rng, history)
    base_v = _kv_rows(rng, history)
    base_h = rng.normal(size=(history, cfg.hidden_size)).astype(np.float32)
    step_k = _kv_rows(rng, 1)
    step_v = _kv_rows(rng, 1)
    step_h = rng.normal(size=(1, cfg.hidden_size)).astype(np.float32)

    # -- naive: concatenate-growth cache + capture, per-row staging ----
    naive_cache = NaiveKVCache(cfg)
    naive_store = NaiveTailStore(cfg.n_layers, cfg.hidden_size)
    naive_capture = []
    for layer in range(cfg.n_layers):
        naive_cache.append(layer, base_k, base_v)
        naive_capture.append(base_h.copy())
        naive_store.append(layer, base_h)
    t0 = time.perf_counter()
    for _ in range(window):
        for layer in range(cfg.n_layers):
            naive_cache.append(layer, step_k, step_v)
            naive_capture[layer] = np.concatenate([naive_capture[layer], step_h], axis=0)
            naive_store.append(layer, step_h)
    naive_s = time.perf_counter() - t0

    # -- fast: amortized buffers + chunked manager ---------------------
    cache = KVCache(cfg)
    cache.reserve(n_tokens)
    capture = HiddenCapture(cfg.n_layers, cfg.hidden_size)
    capture.reserve(n_tokens)
    manager = StorageManager(build_storage_array(platform_preset("default")))
    manager.register_context("bench", n_layers=cfg.n_layers, hidden_width=cfg.hidden_size)
    start = capture.extend(history)
    for layer in range(cfg.n_layers):
        cache.append(layer, base_k, base_v)
        capture.write(layer, start, base_h)
        manager.append("bench", layer, base_h)
    t0 = time.perf_counter()
    for _ in range(window):
        row = capture.extend(1)
        for layer in range(cfg.n_layers):
            cache.append(layer, step_k, step_v)
            capture.write(layer, row, step_h)
            manager.append("bench", layer, step_h)
    fast_s = time.perf_counter() - t0

    return {
        "n_tokens": n_tokens,
        "window": window,
        "naive_tok_s": window / naive_s,
        "fast_tok_s": window / fast_s,
        "speedup": naive_s / fast_s,
    }


# ----------------------------------------------------------------------
# 2. decode end-to-end
# ----------------------------------------------------------------------


def _fill_cache(cache, rng: np.random.Generator, n: int) -> None:
    k = _kv_rows(rng, n)
    v = _kv_rows(rng, n)
    for layer in range(BENCH_CONFIG.n_layers):
        cache.append(layer, k, v)


def bench_decode_e2e(model: Transformer, n_tokens: int, window: int) -> dict:
    """Full decode_step(capture_hidden=True) loop, pre vs post refactor."""
    cfg = BENCH_CONFIG
    rng = _rng()
    history = n_tokens - window

    # -- naive: original einsum attention + concatenate growth ---------
    naive_cache = NaiveKVCache(cfg)
    _fill_cache(naive_cache, rng, history)
    captured = [
        rng.normal(size=(history, cfg.hidden_size)).astype(np.float32)
        for _ in range(cfg.n_layers)
    ]
    patched = transformer_mod.scaled_dot_product_attention
    transformer_mod.scaled_dot_product_attention = naive_scaled_dot_product_attention
    try:
        t0 = time.perf_counter()
        for _ in range(window):
            step = model.decode_step(5, naive_cache, capture_hidden=True)
            for layer in range(cfg.n_layers):
                captured[layer] = np.concatenate(
                    [captured[layer], step.hidden_states[layer]], axis=0
                )
        naive_s = time.perf_counter() - t0
    finally:
        transformer_mod.scaled_dot_product_attention = patched

    # -- fast: buffered cache/capture + decode attention fast path -----
    cache = KVCache(cfg)
    cache.reserve(n_tokens)
    _fill_cache(cache, rng, history)
    capture = HiddenCapture(cfg.n_layers, cfg.hidden_size)
    capture.reserve(n_tokens)
    start = capture.extend(history)
    for layer in range(cfg.n_layers):
        capture.write(layer, start, captured[layer][:history])
    t0 = time.perf_counter()
    for _ in range(window):
        model.forward(np.array([5]), cache, capture=capture)
    fast_s = time.perf_counter() - t0

    return {
        "n_tokens": n_tokens,
        "window": window,
        "naive_tok_s": window / naive_s,
        "fast_tok_s": window / fast_s,
        "speedup": naive_s / fast_s,
    }


# ----------------------------------------------------------------------
# 3. batched multi-session decode
# ----------------------------------------------------------------------


def bench_decode_batched(model: Transformer, n_tokens: int, window: int) -> dict:
    """Serial per-session decode vs one ``decode_batch`` call per step.

    Each batch size gets two identical session sets at ``n_tokens -
    window`` history: the serial set decodes ``window`` tokens with the
    per-session fast path (the post-PR-1 loop), the batched set decodes
    the same tokens through :meth:`Transformer.decode_batch` on a
    :class:`StackedKVCacheBlock`.  Throughput counts every session's
    token; equivalence compares the final caches and last-step logits at
    the pinned ``BATCHED_DECODE_ATOL``.
    """
    cfg = BENCH_CONFIG
    history = n_tokens - window
    per_batch: dict[str, dict] = {}
    for n_batch in DECODE_BATCH_SIZES:
        rng = _rng()
        base_k = _kv_rows(rng, history)
        base_v = _kv_rows(rng, history)
        serial_caches: list[KVCache] = []
        batched_caches: list[KVCache] = []
        for _ in range(n_batch):
            for group in (serial_caches, batched_caches):
                cache = KVCache(cfg)
                cache.reserve(n_tokens)
                for layer in range(cfg.n_layers):
                    cache.append(layer, base_k, base_v)
                group.append(cache)

        serial_logits = [None] * n_batch
        t0 = time.perf_counter()
        for _ in range(window):
            for b, cache in enumerate(serial_caches):
                serial_logits[b] = model.forward(np.array([5]), cache).logits[-1]
        serial_s = time.perf_counter() - t0

        StackedKVCacheBlock.adopt(batched_caches, reserve_tokens=n_tokens)
        tokens = np.full(n_batch, 5)
        batched_logits = None
        t0 = time.perf_counter()
        for _ in range(window):
            batched_logits = model.decode_batch(tokens, batched_caches)
        batched_s = time.perf_counter() - t0

        equivalent = bool(
            np.allclose(
                batched_logits, np.stack(serial_logits), atol=BATCHED_DECODE_ATOL, rtol=0
            )
            and all(
                fast.equals(ref, atol=BATCHED_DECODE_ATOL)
                for fast, ref in zip(batched_caches, serial_caches)
            )
        )
        per_batch[str(n_batch)] = {
            "batch": n_batch,
            "window": window,
            "serial_tok_s": n_batch * window / serial_s,
            "batched_tok_s": n_batch * window / batched_s,
            "speedup": serial_s / batched_s,
            "equivalent": equivalent,
        }
    return {"n_tokens": n_tokens, "per_batch": per_batch}


# ----------------------------------------------------------------------
# 4. restore
# ----------------------------------------------------------------------


def bench_restore(model: Transformer, n_tokens: int) -> dict:
    """Projection restore (naive loop vs batched GEMM) + engine restore."""
    cfg = BENCH_CONFIG
    rng = _rng()
    hidden = [
        rng.normal(size=(n_tokens, cfg.hidden_size)).astype(np.float32)
        for _ in range(cfg.n_layers)
    ]

    best_of = _best_of

    naive_cache, naive_s = best_of(lambda: naive_restore_cache_from_hidden(model, hidden))
    fast_cache, fast_s = best_of(lambda: model.restore_cache_from_hidden(hidden))
    bit_exact = fast_cache.equals(naive_cache, atol=0.0)

    # Storage-integrated chunk-streamed restore through the full engine.
    manager = StorageManager(build_storage_array(platform_preset("default")))
    engine = HCacheEngine(model, manager)
    engine.register_context("bench")
    tokens = rng.integers(0, cfg.vocab_size, size=n_tokens)
    block = 160
    for start in range(0, n_tokens, block):
        stop = min(start + block, n_tokens)
        engine.save_states(
            "bench", [h[start:stop] for h in hidden], tokens[start:stop]
        )
    engine.seal("bench")
    restored, engine_s = best_of(lambda: engine.restore("bench"))
    bit_exact = bit_exact and restored.equals(fast_cache, atol=0.0)

    # Per-stage breakdown of the streamed restore (a separate timed run
    # so the stage probes never inflate ``engine_restore_s``).
    breakdown = RestoreBreakdown()
    engine.restore("bench", stats=breakdown)
    proj = breakdown.projection
    projection_s = proj.total_s
    stages = {
        "read_s": breakdown.read_s,
        "norm_s": proj.norm_s,
        "gemm_s": proj.gemm_s,
        "rope_s": proj.rope_s,
        "granules": breakdown.granules,
        "device_reads": breakdown.device_reads,
        "elementwise_share": (proj.elementwise_s / projection_s) if projection_s else 0.0,
        "modelled_io_s": breakdown.modelled_io_s,
        "modelled_serial_s": breakdown.modelled_serial_s,
        "modelled_pipelined_s": breakdown.modelled_pipelined_s,
    }

    # Threaded executor vs single-threaded, both under device latency
    # emulation: modelled IO seconds become real (GIL-releasing) sleeps,
    # so the background workers' reads genuinely overlap the main
    # thread's projections and the comparison is wall clock on any host.
    # The state is re-saved onto the bandwidth-balanced array so the
    # bench model sits in the IO_H ~ C_H regime (see BALANCED_BENCH_SSD).
    balanced_array = StorageArray([BALANCED_BENCH_SSD], link_bandwidth=32 * GB)
    balanced_manager = StorageManager(balanced_array)
    balanced_engine = HCacheEngine(model, balanced_manager)
    balanced_engine.register_context("bench")
    for start in range(0, n_tokens, block):
        stop = min(start + block, n_tokens)
        balanced_engine.save_states(
            "bench", [h[start:stop] for h in hidden], tokens[start:stop]
        )
    balanced_engine.seal("bench")
    emulator = balanced_array.emulate_latency()
    try:
        # Each timed window flushes the emulator's sub-quantum remainder
        # inside itself, so every measurement pays exactly its own
        # modelled IO and no debt leaks into the next rep.
        def restore_and_flush(executor=None):
            result = balanced_engine.restore("bench", executor=executor)
            emulator.flush()
            return result

        single_emu, single_emu_s = best_of(restore_and_flush)
        with RestoreExecutor(THREADED_POOL_SIZE) as executor:
            threaded_emu, threaded_emu_s = best_of(
                lambda: restore_and_flush(executor)
            )
            threaded_stats = RestoreBreakdown()
            balanced_engine.restore("bench", stats=threaded_stats, executor=executor)
            emulator.flush()
    finally:
        balanced_array.stop_latency_emulation()
    threaded_bit_exact = threaded_emu.equals(fast_cache, atol=0.0) and single_emu.equals(
        fast_cache, atol=0.0
    )
    bit_exact = bit_exact and threaded_bit_exact
    pipelined_s = threaded_stats.modelled_pipelined_s
    threaded = {
        "pool_size": THREADED_POOL_SIZE,
        "single_emulated_s": single_emu_s,
        "threaded_emulated_s": threaded_emu_s,
        "speedup": single_emu_s / threaded_emu_s,
        "modelled_pipelined_s": pipelined_s,
        "modelled_serial_s": threaded_stats.modelled_serial_s,
        "gap_ratio": threaded_emu_s / pipelined_s if pipelined_s else float("inf"),
        "exposed_read_stall_s": threaded_stats.read_s,
        "bit_exact": bool(threaded_bit_exact),
    }

    return {
        "n_tokens": n_tokens,
        "naive_project_s": naive_s,
        "fast_project_s": fast_s,
        "speedup": naive_s / fast_s,
        "engine_restore_s": engine_s,
        "stages": stages,
        "threaded": threaded,
        "bit_exact": bool(bit_exact),
    }


# ----------------------------------------------------------------------
# 4b. sharded restore: (pipeline x tensor) grids vs single-shard threaded
# ----------------------------------------------------------------------


def bench_restore_sharded(model: Transformer, n_tokens: int) -> dict:
    """Sharded parallel restoration across simulated GPU grids (PR 9).

    One context is saved onto a deliberately slow single-link array
    (``SHARDED_BENCH_SSD`` — the IO-dominated regime where aggregated
    read bandwidth is the win), then restored through every
    ``SHARDED_SHAPES`` grid under latency emulation with ``channels =
    pipeline * tensor``: each shard worker sleeps its modelled IO on its
    own channel, so the grid's reads genuinely overlap while the
    single-shard baseline (``RestoreExecutor`` pool of 1, one channel)
    pays the full serial link — measured wall clock, not accounting.

    Per shape the report records wall clock, speedup vs the single-shard
    threaded baseline, the ``modelled_sharded_s`` slowest-stage makespan
    and its ``gap_ratio``, the dispatch/stall overhead counters, and a
    bit-exactness check against the un-emulated single restore.
    """
    cfg = BENCH_CONFIG
    rng = _rng()
    hidden = [
        rng.normal(size=(n_tokens, cfg.hidden_size)).astype(np.float32)
        for _ in range(cfg.n_layers)
    ]
    tokens = rng.integers(0, cfg.vocab_size, size=n_tokens)
    array = StorageArray([SHARDED_BENCH_SSD], link_bandwidth=32 * GB)
    engine = HCacheEngine(model, StorageManager(array))
    engine.register_context("bench")
    block = 160
    for start in range(0, n_tokens, block):
        stop = min(start + block, n_tokens)
        engine.save_states("bench", [h[start:stop] for h in hidden], tokens[start:stop])
    engine.seal("bench")
    oracle = engine.restore("bench")

    # Single-shard threaded baseline: one IO worker, one emulation
    # channel — the serial ingest link every grid is compared against.
    emulator = array.emulate_latency()
    try:
        with RestoreExecutor(1) as executor:

            def baseline_run():
                result = engine.restore("bench", executor=executor)
                emulator.flush()
                return result

            base_cache, base_s = _best_of(baseline_run, reps=5)
    finally:
        array.stop_latency_emulation()
    bit_exact = base_cache.equals(oracle, atol=0.0)

    per_shape = {}
    for pipeline_shards, tensor_shards in SHARDED_SHAPES:
        emulator = array.emulate_latency(channels=pipeline_shards * tensor_shards)
        try:
            with ShardedRestoreExecutor((pipeline_shards, tensor_shards)) as executor:

                def sharded_run():
                    result = engine.restore("bench", executor=executor)
                    emulator.flush()
                    return result

                # Five reps (vs three elsewhere): the gap gate compares a
                # wall clock against a modelled makespan, and on a busy
                # host the minimum needs more draws to converge.
                cache, wall_s = _best_of(sharded_run, reps=5)
                # Separate timed run so the stage probes never inflate
                # the measured wall clock.
                stats = RestoreBreakdown()
                engine.restore("bench", stats=stats, executor=executor)
                emulator.flush()
        finally:
            array.stop_latency_emulation()
        shape_exact = cache.equals(oracle, atol=0.0)
        bit_exact = bit_exact and shape_exact
        modelled = stats.modelled_sharded_s
        per_shape[f"{pipeline_shards}x{tensor_shards}"] = {
            "pipeline_shards": pipeline_shards,
            "tensor_shards": tensor_shards,
            "wall_s": wall_s,
            "speedup_vs_single_shard": base_s / wall_s,
            "modelled_sharded_s": modelled,
            "gap_ratio": wall_s / modelled if modelled else float("inf"),
            "dispatch_s": stats.dispatch_s,
            "exposed_read_stall_s": stats.read_s,
            "bit_exact": bool(shape_exact),
        }
    return {
        "n_tokens": n_tokens,
        "single_shard_threaded_s": base_s,
        "per_shape": per_shape,
        "bit_exact": bool(bit_exact),
    }


# ----------------------------------------------------------------------
# 5. durability: degraded failover reads + journal recovery
# ----------------------------------------------------------------------


def bench_durability(model: Transformer, n_tokens: int) -> dict:
    """Crash-safe storage paths (the PR-6 robustness surfaces).

    **Degraded reads**: the context is saved onto a 2-way replicated
    array, then ``FaultPolicy.dead()`` kills *every primary* — the
    worst-case degradation, in which each chunk read raises on the
    primary and retries on the mirror.  The degraded restore must be
    bit-exact against the healthy one and finish within
    ``DEGRADED_WALL_CEILING``x of its wall clock (the failover cost is
    an exception + retry per chunk, not a second IO path).

    **Recovery**: the same states are saved through a *journaled*
    manager, the whole in-memory stack is dropped, and
    ``StorageManager.recover`` + ``HCacheEngine.recover`` rebuild it
    from the journal directory and device chunks alone.  The recovered
    restore must be bit-exact against the pre-drop one; ``recover_s``
    (replay + chunk checksum verification + re-compaction) and the
    journal's pre-recovery log footprint are recorded.
    """
    cfg = BENCH_CONFIG
    rng = _rng()
    hidden = [
        rng.normal(size=(n_tokens, cfg.hidden_size)).astype(np.float32)
        for _ in range(cfg.n_layers)
    ]
    tokens = rng.integers(0, cfg.vocab_size, size=n_tokens)
    block = 160

    def save_all(engine: HCacheEngine) -> None:
        engine.register_context("bench")
        for start in range(0, n_tokens, block):
            stop = min(start + block, n_tokens)
            engine.save_states(
                "bench", [h[start:stop] for h in hidden], tokens[start:stop]
            )
        engine.seal("bench")

    # -- degraded failover reads ---------------------------------------
    array = StorageArray(
        [BALANCED_BENCH_SSD, BALANCED_BENCH_SSD],
        link_bandwidth=32 * GB,
        replication=2,
    )
    engine = HCacheEngine(model, StorageManager(array))
    save_all(engine)
    healthy, healthy_s = _best_of(lambda: engine.restore("bench"))
    for i in range(len(array)):
        array.replica(i).fault_policy = FaultPolicy.dead()
    try:
        degraded, degraded_s = _best_of(lambda: engine.restore("bench"))
    finally:
        for i in range(len(array)):
            array.replica(i).fault_policy = None
    degraded_exact = degraded.equals(healthy, atol=0.0)

    # -- journal recovery ----------------------------------------------
    with tempfile.TemporaryDirectory() as journal_dir:
        journal = ManifestJournal(Path(journal_dir))
        try:
            recovery_array = build_storage_array(platform_preset("default"))
            victim = HCacheEngine(
                model, StorageManager(recovery_array, journal=journal)
            )
            save_all(victim)
            before = victim.restore("bench")
            journal_bytes = journal.journal_bytes
            del victim  # the "crash": devices + journal are all that survive
            t0 = time.perf_counter()
            recovered = HCacheEngine.recover(
                model, StorageManager.recover(recovery_array, journal)
            )
            recover_s = time.perf_counter() - t0
            after, recovered_restore_s = _best_of(lambda: recovered.restore("bench"))
        finally:
            journal.close()
    recovery_exact = after.equals(before, atol=0.0)

    return {
        "n_tokens": n_tokens,
        "degraded": {
            "healthy_restore_s": healthy_s,
            "degraded_restore_s": degraded_s,
            "wall_ratio": degraded_s / healthy_s,
            "degraded_reads": array.degraded_reads,
            "bit_exact": bool(degraded_exact),
        },
        "recovery": {
            "journal_bytes": journal_bytes,
            "recover_s": recover_s,
            "recovered_restore_s": recovered_restore_s,
            "bit_exact": bool(recovery_exact),
        },
    }


# ----------------------------------------------------------------------
# 6. block-paged prefix sharing
# ----------------------------------------------------------------------


def bench_block_sharing(model: Transformer, n_tokens: int) -> dict:
    """Dedup + restore savings of the block-paged shared-prefix store.

    ``SHARING_SESSIONS`` sessions share one system prompt (half the
    context, floored to the pool block size); their private suffixes take
    ShareGPT-style first-round lengths.  The cohort is saved twice — once
    through an engine with a shared :class:`BlockStateStore`, once fully
    private — and three surfaces are measured:

    - **dedup**: logical vs physical pool blocks.  The ratio must exceed
      1 (the shared prompt's blocks are physically stored once) and the
      DRAM bytes the dedup saves are recorded.
    - **tracked restore**: every pool-served restore must be bit-exact
      against the private engine's and issue zero device chunk reads.
    - **admission restore**: a second engine over the *same* storage
      with an empty pool.  Its first restore streams from storage and
      publishes the pool; the next session admits the committed prefix
      and must read strictly fewer chunks than the private path — the
      skipped reads are the restore bytes the sharing saves.  Admitted
      prefixes are served on the storage stream's granule grid (restore
      bit-exactness is chunk-partition-sensitive), so the read-saving
      gate applies only once the prompt spans at least one granule.
    """
    cfg = BENCH_CONFIG
    rng = _rng()
    prompt_tokens = n_tokens // 2 // SHARING_BLOCK_TOKENS * SHARING_BLOCK_TOKENS
    suffix_lens = []
    for conv in ShareGPTGenerator(seed=9).sample_many(SHARING_SESSIONS):
        first = conv.rounds[0]
        suffix_lens.append(
            int(
                np.clip(
                    first.input_tokens + first.output_tokens,
                    1,
                    n_tokens - prompt_tokens,
                )
            )
        )
    system_tokens = rng.integers(0, cfg.vocab_size, size=prompt_tokens)
    system_hidden = [
        rng.normal(size=(prompt_tokens, cfg.hidden_size)).astype(np.float32)
        for _ in range(cfg.n_layers)
    ]

    def make_store() -> BlockStateStore:
        pool = BlockPool(
            n_layers=cfg.n_layers,
            block_tokens=SHARING_BLOCK_TOKENS,
            n_kv_heads=cfg.n_kv_heads,
            head_dim=cfg.head_dim,
            hidden_width=cfg.hidden_size,
            capacity_blocks=(SHARING_SESSIONS + 1)
            * (n_tokens // SHARING_BLOCK_TOKENS + 2),
        )
        return BlockStateStore(pool)

    store = make_store()
    shared = HCacheEngine(
        model,
        StorageManager(build_storage_array(platform_preset("default"))),
        shared_store=store,
    )
    private = HCacheEngine(
        model, StorageManager(build_storage_array(platform_preset("default")))
    )
    block = 160
    for index, suffix_len in enumerate(suffix_lens):
        context_id = f"share-{index}"
        suffix_tokens = rng.integers(0, cfg.vocab_size, size=suffix_len)
        suffix_hidden = [
            rng.normal(size=(suffix_len, cfg.hidden_size)).astype(np.float32)
            for _ in range(cfg.n_layers)
        ]
        tokens = np.concatenate([system_tokens, suffix_tokens])
        hidden = [
            np.concatenate([system_hidden[layer], suffix_hidden[layer]])
            for layer in range(cfg.n_layers)
        ]
        for engine in (shared, private):
            engine.register_context(context_id)
            for start in range(0, len(tokens), block):
                stop = min(start + block, len(tokens))
                engine.save_states(
                    context_id, [h[start:stop] for h in hidden], tokens[start:stop]
                )
            engine.seal(context_id)

    # Tracked restores: the sessions saved through the shared engine are
    # fully pool-resident, so their restores never touch a device.
    tracked_exact = True
    tracked_reads = 0
    private_reads = 0
    for index in range(SHARING_SESSIONS):
        context_id = f"share-{index}"
        stats = RestoreBreakdown()
        restored = shared.restore(context_id, stats=stats)
        baseline_stats = RestoreBreakdown()
        baseline = private.restore(context_id, stats=baseline_stats)
        tracked_exact = tracked_exact and restored.equals(baseline, atol=0.0)
        tracked_reads += stats.device_reads
        private_reads += baseline_stats.device_reads
    pool_cache, pool_restore_s = _best_of(lambda: shared.restore("share-0"))
    stream_cache, stream_restore_s = _best_of(lambda: private.restore("share-0"))
    tracked_exact = tracked_exact and pool_cache.equals(stream_cache, atol=0.0)

    # Admission: an engine adopting the same storage with an empty pool.
    # The seed restore streams and publishes; the next session admits the
    # committed system prompt and reads only its suffix (granule-floored).
    granule = shared.stream_granule_chunks * CHUNK_TOKENS
    admitted_engine = HCacheEngine.recover(
        model, shared.storage, shared_store=make_store()
    )
    seed_stats = RestoreBreakdown()
    seed_exact = admitted_engine.restore("share-0", stats=seed_stats).equals(
        private.restore("share-0"), atol=0.0
    )
    admit_stats = RestoreBreakdown()
    admitted_exact = admitted_engine.restore("share-1", stats=admit_stats).equals(
        private.restore("share-1"), atol=0.0
    )
    baseline_stats = RestoreBreakdown()
    private.restore("share-1", stats=baseline_stats)
    reads_saved = baseline_stats.device_reads - admit_stats.device_reads
    chunk_bytes = CHUNK_TOKENS * cfg.hidden_size * np.dtype(np.float32).itemsize
    store.debug_validate()

    return {
        "n_tokens": n_tokens,
        "sessions": SHARING_SESSIONS,
        "block_tokens": SHARING_BLOCK_TOKENS,
        "system_prompt_tokens": prompt_tokens,
        "suffix_tokens": suffix_lens,
        "logical_blocks": store.logical_blocks,
        "physical_blocks": store.physical_blocks,
        "dedup_ratio": store.dedup_ratio(),
        "state_bytes_saved": store.state_bytes_saved(),
        "tracked": {
            "pool_restore_s": pool_restore_s,
            "stream_restore_s": stream_restore_s,
            "device_reads": tracked_reads,
            "private_device_reads": private_reads,
            "bit_exact": bool(tracked_exact),
        },
        "admission": {
            "gate_applies": bool(prompt_tokens >= granule),
            "seed_device_reads": seed_stats.device_reads,
            "admitted_device_reads": admit_stats.device_reads,
            "private_device_reads": baseline_stats.device_reads,
            "reads_saved": reads_saved,
            "restore_bytes_saved": reads_saved * chunk_bytes,
            "shared_tokens": admit_stats.shared_tokens,
            "bit_exact": bool(seed_exact and admitted_exact),
        },
    }


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------


def bench_serving_frontend(model: Transformer) -> dict:
    """The PR-10 front end vs the serial per-session serving loop.

    Both sides serve the same workload: ``FRONTEND_SESSIONS`` sessions
    that already hold one round of history, evicted from GPU, each
    submitting a second round (restore burst + prefill + decode).  The
    serial baseline is a ``chat_round`` loop (per-session restore, then
    per-session prefill, one batched model call per *session* per
    token); the front end serves the same round through submit/step —
    FCFS admission under a KV budget, SplitFuse chunking, and ONE fused
    model call per iteration.  The SLO for the goodput sweep is the
    serial path's p99 round-completion latency: a fixed target the
    serial loop itself just met, so "goodput at the serial SLO" measures
    what continuous batching buys at equal latency tolerance.

    Token streams must match the serial path exactly (the front end is
    the same value model — only the batching changed); the timing gate
    compares output tokens/s on the timed round.
    """
    rng = _rng()
    prompts = {
        f"fe{i}": rng.integers(0, BENCH_CONFIG.vocab_size, size=FRONTEND_PROMPT_TOKENS)
        for i in range(FRONTEND_SESSIONS)
    }
    second = {
        s: rng.integers(0, BENCH_CONFIG.vocab_size, size=FRONTEND_PROMPT_TOKENS)
        for s in prompts
    }
    total_out = FRONTEND_SESSIONS * FRONTEND_OUTPUT_TOKENS
    capacity = FRONTEND_SESSIONS * (
        2 * (FRONTEND_PROMPT_TOKENS + FRONTEND_OUTPUT_TOKENS)
    )

    def make_engine() -> NumericServingEngine:
        manager = StorageManager(build_storage_array(platform_preset("default")))
        return NumericServingEngine(model, HCacheEngine(model, manager))

    def seed_round_one(engine: NumericServingEngine) -> None:
        for s, p in prompts.items():
            engine.open_session(s)
            engine.chat_round(s, p, FRONTEND_OUTPUT_TOKENS)
        for s in prompts:
            engine.evict(s)

    def serial_run() -> tuple[float, dict, list[float]]:
        engine = make_engine()
        seed_round_one(engine)
        tokens: dict[str, list[int]] = {}
        completions: list[float] = []
        t0 = time.perf_counter()
        for s, p in second.items():
            tokens[s] = engine.chat_round(s, p, FRONTEND_OUTPUT_TOKENS)
            completions.append(time.perf_counter() - t0)
        return time.perf_counter() - t0, tokens, completions

    def frontend_run(slo: float) -> tuple[float, dict, ServingFrontend]:
        engine = make_engine()
        seed_round_one(engine)
        frontend = ServingFrontend(engine, MemoryBudget(capacity_tokens=capacity))
        t0 = time.perf_counter()
        handles = {
            s: frontend.submit(
                ServingRequest(
                    session_id=s,
                    prompt_tokens=p,
                    max_new_tokens=FRONTEND_OUTPUT_TOKENS,
                    slo_ttft_s=slo,
                )
            )
            for s, p in second.items()
        }
        frontend.run_until_idle()
        wall = time.perf_counter() - t0
        tokens = {s: list(h.result().tokens) for s, h in handles.items()}
        return wall, tokens, frontend

    serial_wall, ref_tokens, completions = serial_run()
    for _ in range(2):  # best-of-3 against scheduler noise
        wall, _, completions_rep = serial_run()
        if wall < serial_wall:
            serial_wall, completions = wall, completions_rep
    slo = float(np.percentile(completions, 99))

    frontend_wall, frontend_tokens, frontend_obj = frontend_run(slo)
    for _ in range(2):
        wall, _, candidate = frontend_run(slo)
        if wall < frontend_wall:
            frontend_wall, frontend_obj = wall, candidate
    report = frontend_obj.metrics.summarize()
    tokens_equal = frontend_tokens == ref_tokens

    serial_tok_s = total_out / serial_wall
    frontend_tok_s = total_out / frontend_wall
    speedup = frontend_tok_s / serial_tok_s

    # Goodput vs offered load: real wall-clock Poisson arrivals at
    # multiples of the measured front-end service rate, judged against
    # the serial-derived SLO.
    service_rps = FRONTEND_SESSIONS / frontend_wall
    sweep = []
    for load in FRONTEND_SWEEP_LOADS:
        offered_rps = service_rps * load
        engine = make_engine()
        frontend = ServingFrontend(engine, MemoryBudget(capacity_tokens=capacity))
        arrivals = poisson_arrival_times(
            offered_rps, FRONTEND_SWEEP_REQUESTS, seed=17
        )
        token_pool = rng.integers(
            0,
            BENCH_CONFIG.vocab_size,
            size=(FRONTEND_SWEEP_REQUESTS, FRONTEND_PROMPT_TOKENS),
        )
        t0 = time.perf_counter()
        submitted = 0
        while submitted < FRONTEND_SWEEP_REQUESTS or not frontend.idle:
            now = time.perf_counter() - t0
            while (
                submitted < FRONTEND_SWEEP_REQUESTS
                and arrivals[submitted] <= now
            ):
                frontend.submit(
                    ServingRequest(
                        session_id=f"load{load}-{submitted}",
                        prompt_tokens=token_pool[submitted],
                        max_new_tokens=FRONTEND_OUTPUT_TOKENS,
                        arrival_time=t0 + float(arrivals[submitted]),
                        slo_ttft_s=slo,
                    )
                )
                submitted += 1
            if not frontend.idle:
                frontend.step()
            else:
                time.sleep(1e-4)  # idle until the next arrival
        point = frontend.metrics.summarize()
        met_slo = sum(1 for r in frontend.metrics.records if r.ttft <= slo)
        sweep.append(
            {
                "offered_load": load,
                "offered_rps": offered_rps,
                "tokens_per_second": point.tokens_per_second,
                "goodput_tok_s": frontend.metrics.goodput(slo),
                "slo_attainment": met_slo / FRONTEND_SWEEP_REQUESTS,
                "p99_ttft_s": point.p99_ttft,
            }
        )

    return {
        "sessions": FRONTEND_SESSIONS,
        "prompt_tokens": FRONTEND_PROMPT_TOKENS,
        "output_tokens": FRONTEND_OUTPUT_TOKENS,
        "serial_tok_s": serial_tok_s,
        "frontend_tok_s": frontend_tok_s,
        "speedup": speedup,
        "tokens_equal": bool(tokens_equal),
        "slo_ttft_s": slo,
        "ttft_p50_s": report.p50_ttft,
        "ttft_p99_s": report.p99_ttft,
        "tpot_p50_s": report.p50_tbt,
        "tpot_p99_s": report.p99_tbt,
        "goodput_vs_load": sweep,
    }


def run(sizes: list[int], window: int) -> dict:
    model = Transformer.from_seed(BENCH_CONFIG, seed=7)
    bench_restore(model, 64)  # warmup: projection stacks, BLAS threads
    report = {
        "schema": "bench_hotpath/v8",
        "config": {
            "name": BENCH_CONFIG.name,
            "n_layers": BENCH_CONFIG.n_layers,
            "hidden_size": BENCH_CONFIG.hidden_size,
            "n_heads": BENCH_CONFIG.n_heads,
            "vocab_size": BENCH_CONFIG.vocab_size,
        },
        "sizes": sizes,
        "window": window,
        "relaxed_timing": RELAX_TIMING,
        "decode_with_capture": {},
        "decode_e2e": {},
        "decode_batched": {},
        "restore": {},
        "restore_sharded": {},
        "durability": {},
        "block_sharing": {},
        # Flat (run once): the serving front end is a request loop, not
        # a per-context microbenchmark.
        "serving_frontend": {},
    }
    for n in sizes:
        state = bench_state_path(n, window)
        e2e = bench_decode_e2e(model, n, window)
        batched = bench_decode_batched(model, n, window)
        restore = bench_restore(model, n)
        sharded = bench_restore_sharded(model, n)
        durability = bench_durability(model, n)
        sharing = bench_block_sharing(model, n)
        report["decode_with_capture"][str(n)] = state
        report["decode_e2e"][str(n)] = e2e
        report["decode_batched"][str(n)] = batched
        report["restore"][str(n)] = restore
        report["restore_sharded"][str(n)] = sharded
        report["durability"][str(n)] = durability
        report["block_sharing"][str(n)] = sharing
        stages = restore["stages"]
        threaded = restore["threaded"]
        degraded = durability["degraded"]
        recovery = durability["recovery"]
        largest_batch = batched["per_batch"][str(max(DECODE_BATCH_SIZES))]
        print(
            f"n={n:5d}  state-path {state['speedup']:7.1f}x "
            f"({state['naive_tok_s']:9.1f} -> {state['fast_tok_s']:11.1f} tok/s)  "
            f"e2e {e2e['speedup']:5.1f}x  "
            f"batched@B{largest_batch['batch']} {largest_batch['speedup']:4.2f}x "
            f"({largest_batch['serial_tok_s']:7.1f} -> "
            f"{largest_batch['batched_tok_s']:8.1f} tok/s, "
            f"equiv={largest_batch['equivalent']})  "
            f"restore {restore['speedup']:5.1f}x "
            f"(engine {restore['engine_restore_s'] * 1e3:7.2f} ms, "
            f"elementwise {stages['elementwise_share'] * 100:4.1f}%, "
            f"bit_exact={restore['bit_exact']})  "
            f"threaded {threaded['speedup']:4.2f}x vs single "
            f"({threaded['threaded_emulated_s'] * 1e3:6.2f} ms wall, "
            f"pipelined model {threaded['modelled_pipelined_s'] * 1e3:6.2f} ms, "
            f"gap {threaded['gap_ratio']:4.2f}x)  "
            f"degraded {degraded['wall_ratio']:4.2f}x of healthy "
            f"(bit_exact={degraded['bit_exact']})  "
            f"recover {recovery['recover_s'] * 1e3:6.2f} ms "
            f"({recovery['journal_bytes']} journal B, "
            f"bit_exact={recovery['bit_exact']})"
        )
        gate_shape = sharded["per_shape"][SHARDED_GATE_SHAPE]
        print(
            "         sharded restore "
            + "  ".join(
                f"{name} {entry['speedup_vs_single_shard']:4.2f}x "
                f"(gap {entry['gap_ratio']:4.2f}x)"
                for name, entry in sharded["per_shape"].items()
            )
            + f"  vs single-shard {sharded['single_shard_threaded_s'] * 1e3:6.2f} ms "
            f"(bit_exact={sharded['bit_exact']})"
        )
        print(
            f"         block-sharing dedup {sharing['dedup_ratio']:.2f}x "
            f"({sharing['physical_blocks']}/{sharing['logical_blocks']} blocks, "
            f"{sharing['state_bytes_saved'] / 1e6:.1f} MB pool bytes saved), "
            f"tracked pool reads {sharing['tracked']['device_reads']} "
            f"(bit_exact={sharing['tracked']['bit_exact']}), "
            f"admission saves {sharing['admission']['reads_saved']} chunk reads "
            f"(bit_exact={sharing['admission']['bit_exact']})"
        )
    frontend = bench_serving_frontend(model)
    report["serving_frontend"] = frontend
    print(
        f"serving-frontend {frontend['speedup']:4.2f}x vs serial loop "
        f"({frontend['serial_tok_s']:8.1f} -> {frontend['frontend_tok_s']:8.1f} tok/s, "
        f"tokens_equal={frontend['tokens_equal']})  "
        f"TTFT p50 {frontend['ttft_p50_s'] * 1e3:6.2f} ms "
        f"p99 {frontend['ttft_p99_s'] * 1e3:6.2f} ms  "
        f"TPOT p50 {frontend['tpot_p50_s'] * 1e3:5.2f} ms "
        f"p99 {frontend['tpot_p99_s'] * 1e3:5.2f} ms  "
        f"goodput@SLO "
        + " ".join(
            f"{point['offered_load']:.1f}x:{point['goodput_tok_s']:7.1f}"
            for point in frontend["goodput_vs_load"]
        )
    )
    largest = str(max(sizes))
    headline = report["decode_with_capture"][largest]["speedup"]
    # The 10x acceptance target is defined at 4k tokens; smoke runs at
    # smaller sizes only check that the harness and numerics hold up.
    target_applies = max(sizes) >= 4096
    threaded_head = report["restore"][largest]["threaded"]
    batched_gate_applies = BATCHED_GATE_TOKENS in sizes
    batched_head = report["decode_batched"][
        str(BATCHED_GATE_TOKENS) if batched_gate_applies else largest
    ]["per_batch"][str(max(DECODE_BATCH_SIZES))]
    batched_equivalent = all(
        entry["equivalent"]
        for size_report in report["decode_batched"].values()
        for entry in size_report["per_batch"].values()
    )
    sharded_head = report["restore_sharded"][largest]["per_shape"][SHARDED_GATE_SHAPE]
    sharded_all_exact = all(
        entry["bit_exact"] for entry in report["restore_sharded"].values()
    )
    durable_head = report["durability"][largest]
    durable_all_exact = all(
        entry["degraded"]["bit_exact"] and entry["recovery"]["bit_exact"]
        for entry in report["durability"].values()
    )
    sharing_head = report["block_sharing"][largest]
    sharing_min_dedup = min(
        entry["dedup_ratio"] for entry in report["block_sharing"].values()
    )
    sharing_all_exact = all(
        entry["tracked"]["bit_exact"] and entry["admission"]["bit_exact"]
        for entry in report["block_sharing"].values()
    )
    sharing_zero_reads = all(
        entry["tracked"]["device_reads"] == 0
        for entry in report["block_sharing"].values()
    )
    sharing_reads_saved = all(
        entry["admission"]["reads_saved"] > 0
        for entry in report["block_sharing"].values()
        if entry["admission"]["gate_applies"]
    )
    report["headline"] = {
        "metric": "decode_with_capture_state_path_speedup",
        "at_tokens": max(sizes),
        "speedup": headline,
        "target": 10.0 if target_applies else None,
        "met": bool(headline >= 10.0) if target_applies else None,
        "all_restores_bit_exact": bool(
            all(r["bit_exact"] for r in report["restore"].values())
        ),
        # Threaded-restore acceptance (defined at 4k like the 10x floor):
        # faster than the single-threaded streamed path, and wall clock
        # within the gap ceiling of the §4.1 pipelined makespan.  The
        # speedup/gap thresholds are the CHECK_RELAX_TIMING-aware ones.
        "threaded_restore": {
            "at_tokens": max(sizes),
            "speedup_vs_single": threaded_head["speedup"],
            "speedup_floor": THREADED_SPEEDUP_FLOOR if target_applies else None,
            "gap_ratio": threaded_head["gap_ratio"],
            "gap_target": THREADED_GAP_CEILING if target_applies else None,
            "met": (
                bool(
                    threaded_head["speedup"] > THREADED_SPEEDUP_FLOOR
                    and threaded_head["gap_ratio"] <= THREADED_GAP_CEILING
                )
                if target_applies
                else None
            ),
        },
        # Sharded-restore acceptance (defined at 4k like the other
        # timing gates): the 2x2 grid must beat the single-shard
        # threaded restore and keep measured wall clock within the gap
        # ceiling of the modelled sharded makespan; every shard shape at
        # every size must restore bit-exact (never relaxed).  The
        # speedup/gap thresholds are the CHECK_RELAX_TIMING-aware ones.
        "sharded_restore": {
            "at_tokens": max(sizes),
            "shape": SHARDED_GATE_SHAPE,
            "speedup_vs_single_shard": sharded_head["speedup_vs_single_shard"],
            "speedup_floor": SHARDED_SPEEDUP_FLOOR if target_applies else None,
            "gap_ratio": sharded_head["gap_ratio"],
            "gap_target": SHARDED_GAP_CEILING if target_applies else None,
            "all_bit_exact": bool(sharded_all_exact),
            "met": (
                bool(
                    sharded_head["speedup_vs_single_shard"] > SHARDED_SPEEDUP_FLOOR
                    and sharded_head["gap_ratio"] <= SHARDED_GAP_CEILING
                )
                if target_applies
                else None
            ),
        },
        # Batched-decode acceptance: one decode_batch call over B=16
        # sessions must beat 16 serial decode steps by the speedup
        # floor at the gate context (1k tokens — see BATCHED_GATE_TOKENS),
        # and every batch size at every measured context must match the
        # serial loop within the pinned BATCHED_DECODE_ATOL (equivalence
        # is never relaxed).
        "batched_decode": {
            "at_tokens": BATCHED_GATE_TOKENS if batched_gate_applies else max(sizes),
            "batch": batched_head["batch"],
            "speedup_vs_serial": batched_head["speedup"],
            "target": BATCHED_SPEEDUP_FLOOR if batched_gate_applies else None,
            "all_equivalent": bool(batched_equivalent),
            "met": (
                bool(batched_head["speedup"] >= BATCHED_SPEEDUP_FLOOR)
                if batched_gate_applies
                else None
            ),
        },
        # Durable-restore acceptance (the crash-safety PR): degraded and
        # recovered restores bit-exact at EVERY measured size (never
        # relaxed), and the all-primaries-dead failover restore within
        # the wall ceiling of the healthy one at the largest size (the
        # ceiling is the CHECK_RELAX_TIMING-aware threshold).
        "durable_restore": {
            "at_tokens": max(sizes),
            "all_bit_exact": bool(durable_all_exact),
            "degraded_wall_ratio": durable_head["degraded"]["wall_ratio"],
            "wall_ceiling": DEGRADED_WALL_CEILING,
            "recover_s": durable_head["recovery"]["recover_s"],
            "journal_bytes": durable_head["recovery"]["journal_bytes"],
            "met": bool(
                durable_all_exact
                and durable_head["degraded"]["wall_ratio"] <= DEGRADED_WALL_CEILING
            ),
        },
        # Block-sharing acceptance (the block-paged state store): the
        # shared system prompt must be physically stored once (dedup
        # ratio > 1 at every measured size), every pool-served restore
        # bit-exact vs the private engine with zero chunk reads, and
        # admission restores must read strictly fewer chunks than the
        # private path wherever the prompt spans a stream granule.
        # Exactness and dedup are structural, never timing-relaxed.
        "block_sharing": {
            "at_tokens": max(sizes),
            "dedup_ratio": sharing_head["dedup_ratio"],
            "dedup_target": 1.0,
            "state_bytes_saved": sharing_head["state_bytes_saved"],
            "restore_bytes_saved": sharing_head["admission"]["restore_bytes_saved"],
            "all_bit_exact": bool(sharing_all_exact),
            "tracked_zero_reads": bool(sharing_zero_reads),
            "admission_reads_saved": bool(sharing_reads_saved),
            "met": bool(
                sharing_min_dedup > 1.0
                and sharing_all_exact
                and sharing_zero_reads
                and sharing_reads_saved
            ),
        },
        # Serving-frontend acceptance (the submit/step redesign): the
        # batched-continuous front end must serve the fixed-SLO second
        # round no slower than the serial chat_round loop (floor is the
        # CHECK_RELAX_TIMING-aware threshold), with token streams equal
        # to the serial path's (structural, never relaxed).
        "serving_frontend": {
            "speedup_vs_serial": frontend["speedup"],
            "speedup_floor": FRONTEND_SPEEDUP_FLOOR,
            "tokens_equal": frontend["tokens_equal"],
            "slo_ttft_s": frontend["slo_ttft_s"],
            "goodput_at_unit_load": next(
                point["goodput_tok_s"]
                for point in frontend["goodput_vs_load"]
                if point["offered_load"] == 1.0
            ),
            "met": bool(
                frontend["tokens_equal"]
                and frontend["speedup"] >= FRONTEND_SPEEDUP_FLOOR
            ),
        },
    }
    gate = (
        f"target 10x, met={report['headline']['met']}"
        if target_applies
        else "target applies at 4096 tokens"
    )
    print(
        f"headline: {headline:.1f}x decode-with-capture state path at "
        f"{largest} tokens ({gate}); threaded restore "
        f"{threaded_head['speedup']:.2f}x vs single, "
        f"{threaded_head['gap_ratio']:.2f}x of pipelined model "
        f"(met={report['headline']['threaded_restore']['met']}); sharded restore "
        f"{sharded_head['speedup_vs_single_shard']:.2f}x at {SHARDED_GATE_SHAPE}, "
        f"gap {sharded_head['gap_ratio']:.2f}x "
        f"(met={report['headline']['sharded_restore']['met']}); "
        f"batched decode {batched_head['speedup']:.2f}x at "
        f"B{batched_head['batch']} (met={report['headline']['batched_decode']['met']}, "
        f"equivalent={batched_equivalent}); durable restore "
        f"{durable_head['degraded']['wall_ratio']:.2f}x degraded wall, recover "
        f"{durable_head['recovery']['recover_s'] * 1e3:.2f} ms "
        f"(met={report['headline']['durable_restore']['met']}); block sharing "
        f"{sharing_head['dedup_ratio']:.2f}x dedup, "
        f"{sharing_head['state_bytes_saved'] / 1e6:.1f} MB saved "
        f"(met={report['headline']['block_sharing']['met']}); serving frontend "
        f"{frontend['speedup']:.2f}x vs serial at the serial p99 SLO "
        f"(met={report['headline']['serving_frontend']['met']})"
    )
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="fast subset; skips the JSON write"
    )
    parser.add_argument("--out", type=Path, default=None, help="JSON output path")
    args = parser.parse_args()
    if args.smoke:
        # Keep 4096 in the smoke run (it carries the >= 10x acceptance
        # gate, the threaded-restore gate, and the restore bit-exactness
        # check) and 1024 (the batched-decode gate context), so
        # scripts/check.sh catches hot-path regressions before the
        # committed JSON drifts.
        sizes, window = [256, 1024, 4096], 16
    else:
        sizes, window = [256, 1024, 4096], 64
    report = run(sizes, window)
    out = args.out
    if out is None and not args.smoke:
        out = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")
    if not report["headline"]["all_restores_bit_exact"]:
        print("ERROR: restored caches are not bit-exact", file=sys.stderr)
        return 1
    if report["headline"]["met"] is False:
        print("ERROR: decode-with-capture speedup target missed", file=sys.stderr)
        return 1
    if report["headline"]["threaded_restore"]["met"] is False:
        print(
            "ERROR: threaded restore missed its gate (must beat the "
            f"single-threaded path by > {THREADED_SPEEDUP_FLOOR}x and stay "
            f"within {THREADED_GAP_CEILING}x of the pipelined makespan at "
            "4k tokens)",
            file=sys.stderr,
        )
        return 1
    sharded = report["headline"]["sharded_restore"]
    if not sharded["all_bit_exact"]:
        print(
            "ERROR: a sharded restore diverged from the single-shard path "
            "(shard merges must never change a restored byte)",
            file=sys.stderr,
        )
        return 1
    if sharded["met"] is False:
        print(
            "ERROR: sharded restore missed its gate (the "
            f"{SHARDED_GATE_SHAPE} grid must beat the single-shard "
            f"threaded restore by > {SHARDED_SPEEDUP_FLOOR}x and stay "
            f"within {SHARDED_GAP_CEILING}x of the modelled sharded "
            "makespan at 4k tokens)",
            file=sys.stderr,
        )
        return 1
    if not report["headline"]["batched_decode"]["all_equivalent"]:
        print(
            "ERROR: batched decode diverged from the serial per-session "
            f"loop beyond atol={BATCHED_DECODE_ATOL}",
            file=sys.stderr,
        )
        return 1
    if report["headline"]["batched_decode"]["met"] is False:
        print(
            "ERROR: batched decode missed its gate (one decode_batch call "
            f"over {max(DECODE_BATCH_SIZES)} sessions must be >= "
            f"{BATCHED_SPEEDUP_FLOOR}x the serial loop at "
            f"{BATCHED_GATE_TOKENS} tokens)",
            file=sys.stderr,
        )
        return 1
    sharing = report["headline"]["block_sharing"]
    if not sharing["all_bit_exact"]:
        print(
            "ERROR: a pool-served shared restore diverged from the private "
            "engine's (sharing must never change a restored byte)",
            file=sys.stderr,
        )
        return 1
    if sharing["met"] is False:
        print(
            "ERROR: block-sharing gate failed (pool dedup ratio must exceed "
            "1.0 at every size, tracked restores must read zero chunks, and "
            "admission restores must read strictly fewer chunks than the "
            "private path wherever the prompt spans a stream granule)",
            file=sys.stderr,
        )
        return 1
    durable = report["headline"]["durable_restore"]
    if not durable["all_bit_exact"]:
        print(
            "ERROR: degraded-read or journal-recovered restore is not "
            "bit-exact (exactness is never relaxed)",
            file=sys.stderr,
        )
        return 1
    if durable["met"] is False:
        print(
            "ERROR: degraded-read restore exceeded its wall ceiling "
            f"(must stay <= {DEGRADED_WALL_CEILING}x of the healthy restore "
            "with every primary replica dead)",
            file=sys.stderr,
        )
        return 1
    serving = report["headline"]["serving_frontend"]
    if not serving["tokens_equal"]:
        print(
            "ERROR: front-end token streams diverged from the serial "
            "chat_round loop (the front end must be a pure scheduling "
            "change, never a value change)",
            file=sys.stderr,
        )
        return 1
    if serving["met"] is False:
        print(
            "ERROR: serving front end missed its gate (batched-continuous "
            "serving must reach >= "
            f"{FRONTEND_SPEEDUP_FLOOR}x the serial chat_round throughput "
            "at the serial p99 SLO)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
