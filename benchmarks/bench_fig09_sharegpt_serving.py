"""Figure 9 — overall serving performance on the ShareGPT4 trace.

Multi-round conversations with Poisson session arrivals and 30s round
intervals, served through the discrete-event engine.  Panels a-c plot TTFT
versus load; panels d-f plot TBT.  Paper: HCache cuts TTFT 1.27-1.90x vs
KV offload and 2.21-3.57x vs recomputation, with TBT at most 4% above
ideal.
"""

from __future__ import annotations

from _common import emit, run_once

from repro.analysis.reporting import PaperExpectation, ResultTable
from repro.baselines import default_methods
from repro.engine import simulate_methods
from repro.models import model_preset
from repro.simulator import platform_preset
from repro.traces import ShareGPTGenerator, build_workload

LOADS = (0.2, 0.5, 1.0)
N_SESSIONS = 16
MODEL = "llama2-7b"
PLATFORM = "a100-4ssd"


def serve_all_loads():
    config = model_preset(MODEL)
    platform = platform_preset(PLATFORM)
    conversations = ShareGPTGenerator(seed=7, mean_rounds=6).sample_many(N_SESSIONS)
    results = {}
    for load in LOADS:
        workload = build_workload(conversations, rate_per_second=load, seed=8)
        results[load] = simulate_methods(
            config, platform, default_methods(config, platform), workload
        )
    return results


def test_fig09_sharegpt_ttft_and_tbt(benchmark):
    results = run_once(benchmark, serve_all_loads)

    ttft = ResultTable(
        f"Figure 9a/d ({MODEL}): TTFT and TBT vs session load",
        ["load (sess/s)", "method", "mean TTFT (ms)", "p95 TTFT (ms)", "mean TBT (ms)"],
    )
    for load, reports in results.items():
        for name, report in reports.items():
            ttft.add_row(
                load,
                name,
                f"{report.mean_ttft * 1e3:.1f}",
                f"{report.p95_ttft * 1e3:.1f}",
                f"{report.mean_tbt * 1e3:.2f}",
            )

    mid = results[LOADS[1]]
    vs_offload = mid["kv-offload"].mean_ttft / mid["hcache"].mean_ttft
    vs_recompute = mid["recompute"].mean_ttft / mid["hcache"].mean_ttft
    tbt_overhead = mid["hcache"].mean_tbt / mid["ideal"].mean_tbt - 1.0
    expectations = [
        PaperExpectation(
            "TTFT speedup vs KV offload", "1.27-1.90x", f"{vs_offload:.2f}x",
            holds=1.1 < vs_offload < 2.3,
        ),
        PaperExpectation(
            "TTFT speedup vs recompute", "2.21-3.57x", f"{vs_recompute:.2f}x",
            holds=2.0 < vs_recompute < 8.0,
        ),
        PaperExpectation(
            "TBT overhead vs ideal", "<= 4%", f"{tbt_overhead * 100:.1f}%",
            holds=tbt_overhead < 0.06,
        ),
    ]
    emit("fig09_sharegpt_serving", [ttft], expectations)
    for reports in results.values():
        assert (
            reports["recompute"].mean_ttft
            > reports["kv-offload"].mean_ttft
            > reports["hcache"].mean_ttft
            > reports["ideal"].mean_ttft
        )
    assert tbt_overhead < 0.06


def test_fig09_13b_panel(benchmark):
    """Fig. 9b/9e: the 13B model on one A100 — KV memory admits only a
    few concurrent contexts (§2.4), so TTFT includes queueing for memory
    and the method ordering still holds."""

    def run():
        config = model_preset("llama2-13b")
        platform = platform_preset(PLATFORM)
        conversations = ShareGPTGenerator(
            seed=11, mean_rounds=4, max_history=8192
        ).sample_many(10)
        workload = build_workload(conversations, rate_per_second=0.15, seed=12)
        return simulate_methods(
            config, platform, default_methods(config, platform), workload
        )

    reports = run_once(benchmark, run)
    table = ResultTable(
        "Figure 9b/e (llama2-13b): TTFT and TBT at 0.15 sessions/s",
        ["method", "mean TTFT (ms)", "p95 TTFT (ms)", "mean TBT (ms)"],
    )
    for name, report in reports.items():
        table.add_row(
            name,
            f"{report.mean_ttft * 1e3:.1f}",
            f"{report.p95_ttft * 1e3:.1f}",
            f"{report.mean_tbt * 1e3:.2f}",
        )
    emit("fig09_13b_panel", [table])
    assert (
        reports["recompute"].mean_ttft
        > reports["kv-offload"].mean_ttft
        > reports["hcache"].mean_ttft
        > reports["ideal"].mean_ttft
    )
    assert reports["hcache"].mean_tbt / reports["ideal"].mean_tbt < 1.06


def test_fig09_throughput_headroom(benchmark):
    """§6.1.1: HCache sustains up to ~11% more requests than offloading
    because its restoration costs less; at moderate load the token
    throughput of all methods matches."""

    def run():
        config = model_preset(MODEL)
        platform = platform_preset(PLATFORM)
        conversations = ShareGPTGenerator(seed=9, mean_rounds=5).sample_many(12)
        workload = build_workload(conversations, rate_per_second=0.5, seed=10)
        return simulate_methods(
            config, platform, default_methods(config, platform), workload
        )

    reports = run_once(benchmark, run)
    table = ResultTable(
        "Figure 9 (throughput view): tokens/s at 0.5 sessions/s",
        ["method", "tokens/s", "requests/s"],
    )
    for name, report in reports.items():
        table.add_row(name, f"{report.tokens_per_second:.1f}", f"{report.requests_per_second:.3f}")
    emit("fig09_throughput", [table])
    rates = [r.tokens_per_second for r in reports.values()]
    assert max(rates) / min(rates) < 1.2
