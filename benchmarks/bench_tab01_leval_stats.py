"""Table 1 — L-Eval dataset statistics.

Checks the synthetic long-context generator against the published per-task
means (context / input / output tokens).
"""

from __future__ import annotations

from _common import emit, run_once

from repro.analysis.reporting import PaperExpectation, ResultTable
from repro.traces import LEVAL_TASKS, LEvalGenerator, task_statistics

SAMPLES = 500


def sample_all_tasks():
    gen = LEvalGenerator(seed=0)
    stats = {}
    for task in ("paper-assistant", "gsm-100", "quality"):
        stats[task] = task_statistics(gen.sample_task(task, SAMPLES))
    stats["mixed"] = task_statistics(gen.sample_mixed(SAMPLES))
    return stats


def test_tab01_leval_statistics(benchmark):
    measured = run_once(benchmark, sample_all_tasks)
    table = ResultTable(
        "Table 1: L-Eval statistics (paper / measured)",
        ["task", "context", "input", "output"],
    )
    expectations = []
    for task, stats in measured.items():
        paper = LEVAL_TASKS[task]
        table.add_row(
            task,
            f"{paper.mean_context:.0f} / {stats['context']:.0f}",
            f"{paper.mean_input:.0f} / {stats['input']:.0f}",
            f"{paper.mean_output:.0f} / {stats['output']:.0f}",
        )
        if task != "mixed":
            holds = abs(stats["context"] - paper.mean_context) / paper.mean_context < 0.15
            expectations.append(
                PaperExpectation(
                    f"{task} mean context", f"{paper.mean_context:.0f}",
                    f"{stats['context']:.0f}", holds=holds,
                )
            )
    emit("tab01_leval_stats", [table], expectations)
    for task in ("paper-assistant", "gsm-100", "quality"):
        paper = LEVAL_TASKS[task]
        assert abs(measured[task]["context"] - paper.mean_context) / paper.mean_context < 0.15
