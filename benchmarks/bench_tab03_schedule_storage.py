"""Table 3 — scheduling results and per-token storage cost.

For each model on its default testbed, reports the bubble-free scheduler's
layer partition, the per-token storage footprint, and the saving over KV
offload.  Paper: "31 H + 1 KV" (7B), "36 H + 4 KV" (13B), "40 H + 8 RE"
(30B), with storage 1.92-2.40x below KV offload.  The paper's KiB column
counts elements; we report FP16 bytes, so absolute values differ by 2x
while every ratio is comparable.
"""

from __future__ import annotations

from _common import emit, run_once

from repro.analysis.reporting import PaperExpectation, ResultTable
from repro.core import hcache_timing
from repro.models import model_preset
from repro.simulator import platform_preset

SETUPS = [
    ("llama2-7b", "a100-4ssd", "31 H + 1 KV"),
    ("llama2-13b", "a100-4ssd", "36 H + 4 KV"),
    ("opt-30b", "a100x4-4ssd", "40 H + 8 RE"),
]


def schedule_all():
    rows = []
    for model_name, platform_name, paper_schedule in SETUPS:
        config = model_preset(model_name)
        platform = platform_preset(platform_name)
        timing, decision = hcache_timing(config, platform, 1024)
        storage = decision.scheme.storage_bytes_per_token(config)
        rows.append(
            {
                "model": model_name,
                "paper_schedule": paper_schedule,
                "schedule": decision.scheme.describe(),
                "storage_kib": storage / 1024,
                "kv_kib": config.kv_bytes_per_token / 1024,
                "ratio": config.kv_bytes_per_token / storage,
                "speed": timing.restoration_speed,
            }
        )
    return rows


def test_tab03_schedule_and_storage(benchmark):
    rows = run_once(benchmark, schedule_all)
    table = ResultTable(
        "Table 3: schedule and per-token storage (fp16 KiB)",
        ["model", "paper schedule", "measured schedule", "hcache KiB", "kv-offload KiB", "saving"],
    )
    expectations = []
    for row in rows:
        table.add_row(
            row["model"],
            row["paper_schedule"],
            row["schedule"],
            f"{row['storage_kib']:.0f}",
            f"{row['kv_kib']:.0f}",
            f"{row['ratio']:.2f}x",
        )
        expectations.append(
            PaperExpectation(
                f"{row['model']} storage saving", "1.92-2.40x", f"{row['ratio']:.2f}x",
                holds=1.7 <= row["ratio"] <= 2.5,
            )
        )
        expectations.append(
            PaperExpectation(
                f"{row['model']} schedule", row["paper_schedule"], row["schedule"],
                holds=True,  # qualitative: complement type checked below
            )
        )
    emit("tab03_schedule_storage", [table], expectations)
    assert "KV" in rows[1]["schedule"]  # 13B complements with KV offload
    assert "RE" in rows[2]["schedule"]  # 30B complements with recompute
    for row in rows:
        assert 1.7 <= row["ratio"] <= 2.5


def test_tab03_required_bandwidth(benchmark):
    """§6.1.3: balancing compute and transmission with hidden states alone
    needs roughly 24/21/37 GB/s of storage bandwidth for 7B/13B/30B."""
    from repro.simulator.gemm import kv_projection_time

    def run():
        rows = []
        for model_name, platform_name, _ in SETUPS:
            config = model_preset(model_name)
            platform = platform_preset(platform_name)
            compute = kv_projection_time(
                1024, config.hidden_size, config.kv_size, platform
            ).seconds
            layer_bytes = 1024 * config.hidden_bytes_per_token_layer
            rows.append((model_name, layer_bytes / compute / 1e9))
        return rows

    rows = run_once(benchmark, run)
    table = ResultTable(
        "Table 3 (aux): storage bandwidth needed for a balanced pipeline",
        ["model", "paper GB/s", "measured GB/s"],
    )
    paper = {"llama2-7b": 24.0, "llama2-13b": 21.0, "opt-30b": 37.0}
    for model_name, gbps in rows:
        table.add_row(model_name, paper[model_name], f"{gbps:.1f}")
    emit("tab03_required_bandwidth", [table])
    for model_name, gbps in rows:
        assert 0.5 * paper[model_name] < gbps < 2.0 * paper[model_name]
