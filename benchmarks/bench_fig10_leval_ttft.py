"""Figure 10 — TTFT of long-context applications (L-Eval, batch size 1).

Four panels: three representative sub-tasks plus a 200-request mixed
sample, each across Llama2-7B/13B and OPT-30B.  Paper: HCache achieves
1.62-1.93x TTFT speedup over KV offload and 2.66-5.73x over recomputation.
"""

from __future__ import annotations

import numpy as np
from _common import emit, run_once

from repro.analysis.reporting import PaperExpectation, ResultTable
from repro.baselines import default_methods
from repro.models import model_preset
from repro.simulator import platform_preset
from repro.traces import LEvalGenerator

SETUPS = [
    ("llama2-7b", "a100-4ssd"),
    ("llama2-13b", "a100-4ssd"),
    ("opt-30b", "a100x4-4ssd"),
]
TASKS = ("paper-assistant", "gsm-100", "quality", "mixed")


def measure():
    gen = LEvalGenerator(seed=2)
    requests_by_task = {
        task: (gen.sample_mixed(200) if task == "mixed" else gen.sample_task(task, 100))
        for task in TASKS
    }
    results = {}
    for model_name, platform_name in SETUPS:
        config = model_preset(model_name)
        methods = default_methods(config, platform_preset(platform_name))
        for task, requests in requests_by_task.items():
            ttfts = {
                name: float(
                    np.mean([m.ttft(r.context_tokens, r.input_tokens) for r in requests])
                )
                for name, m in methods.items()
            }
            results[(task, model_name)] = ttfts
    return results


def test_fig10_long_context_ttft(benchmark):
    results = run_once(benchmark, measure)
    table = ResultTable(
        "Figure 10: long-context TTFT (seconds)",
        ["task", "model", "recompute", "kv-offload", "hcache", "ideal", "kv/h", "rec/h"],
    )
    ratios_offload, ratios_recompute = [], []
    for (task, model_name), ttfts in results.items():
        kv_ratio = ttfts["kv-offload"] / ttfts["hcache"]
        rec_ratio = ttfts["recompute"] / ttfts["hcache"]
        ratios_offload.append(kv_ratio)
        ratios_recompute.append(rec_ratio)
        table.add_row(
            task,
            model_name,
            f"{ttfts['recompute']:.3f}",
            f"{ttfts['kv-offload']:.3f}",
            f"{ttfts['hcache']:.3f}",
            f"{ttfts['ideal']:.3f}",
            f"{kv_ratio:.2f}x",
            f"{rec_ratio:.2f}x",
        )
    expectations = [
        PaperExpectation(
            "TTFT speedup vs KV offload", "1.62-1.93x",
            f"{min(ratios_offload):.2f}-{max(ratios_offload):.2f}x",
            holds=all(1.3 < r < 2.4 for r in ratios_offload),
        ),
        PaperExpectation(
            "TTFT speedup vs recompute", "2.66-5.73x",
            f"{min(ratios_recompute):.2f}-{max(ratios_recompute):.2f}x",
            holds=all(1.8 < r < 9.0 for r in ratios_recompute),
        ),
    ]
    emit("fig10_leval_ttft", [table], expectations)
    for ttfts in results.values():
        assert ttfts["hcache"] < ttfts["kv-offload"] < ttfts["recompute"]
