"""Figure 1 — state-restoration resource comparison.

The paper's headline: versus recomputation HCache needs ~1/6 of the
computation, and versus KV offload ~1/2 of the IO transmission.  This bench
evaluates the §3.2 cost model for every evaluated model and prints the
normalized resource budgets.
"""

from __future__ import annotations

from _common import emit, run_once

from repro.analysis.reporting import PaperExpectation, ResultTable
from repro.models import model_preset
from repro.simulator import platform_preset
from repro.simulator.costs import (
    full_layer_flops,
    hidden_bytes,
    kv_bytes,
    kv_projection_flops,
)

MODELS = ("llama2-7b", "llama2-13b", "opt-30b")
N_TOKENS = 2048


def compute_budgets():
    rows = []
    for name in MODELS:
        config = model_preset(name)
        compute_ratio = kv_projection_flops(config, N_TOKENS) / full_layer_flops(
            config, N_TOKENS
        )
        io_ratio = hidden_bytes(config, N_TOKENS) / kv_bytes(config, N_TOKENS)
        rows.append((name, compute_ratio, io_ratio))
    return rows


def test_fig01_resource_budget(benchmark):
    rows = run_once(benchmark, compute_budgets)
    table = ResultTable(
        "Figure 1: HCache resource budget (fraction of baseline, lower is better)",
        ["model", "compute vs recompute", "IO vs KV offload"],
    )
    for name, compute_ratio, io_ratio in rows:
        table.add_row(name, f"{compute_ratio:.3f} (1/{1 / compute_ratio:.1f})", f"{io_ratio:.2f}")
    expectations = [
        PaperExpectation(
            "compute fraction", "<= 1/6", f"{max(r[1] for r in rows):.3f}",
            holds=all(r[1] <= 1 / 6 + 1e-9 for r in rows),
        ),
        PaperExpectation(
            "IO fraction", "1/2", f"{max(r[2] for r in rows):.2f}",
            holds=all(abs(r[2] - 0.5) < 1e-9 for r in rows),
        ),
    ]
    emit("fig01_resource_budget", [table], expectations)
    assert all(r[1] <= 1 / 6 + 1e-9 for r in rows)
    assert all(abs(r[2] - 0.5) < 1e-9 for r in rows)


def test_fig01_pipelined_restoration_time(benchmark):
    """The same comparison in time units on the default testbed."""
    from repro.simulator.costs import estimate_restoration

    def run():
        platform = platform_preset("default")
        return {
            name: estimate_restoration(model_preset(name), platform, N_TOKENS)
            for name in ("llama2-7b", "llama2-13b")
        }

    estimates = run_once(benchmark, run)
    table = ResultTable(
        "Figure 1 (time view): closed-form restoration seconds, 2048 tokens",
        ["model", "hcache", "kv-offload", "recompute"],
    )
    for name, est in estimates.items():
        table.add_row(name, f"{est.hcache:.4f}", f"{est.kv_offload:.4f}", f"{est.recompute:.4f}")
    emit("fig01_restoration_time", [table])
    for est in estimates.values():
        assert est.hcache < est.kv_offload < est.recompute
