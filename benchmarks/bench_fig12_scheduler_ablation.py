"""Figure 12 — ablation of the bubble-free scheduler.

Three hardware regimes (IO-sufficient: A30 + 4 SSDs; compute-sufficient:
A100 + 1 SSD; balanced: A100 + 4 SSDs with 13B) across five methods.
Paper findings:

- Naive Hybrid is the best method without hidden states; HCache beats it
  by 1.28-1.42x.
- HCache-O (no scheduler) trails KV offload on the IO-sufficient setup.
- The scheduler lifts HCache-O by 1.35-1.64x on skewed hardware and keeps
  HCache 1.45-2.66x ahead of KV offload everywhere.
"""

from __future__ import annotations

from _common import emit, run_once

from repro.analysis.reporting import PaperExpectation, ResultTable
from repro.baselines import (
    HCacheMethod,
    HCacheOnlyMethod,
    KVOffloadMethod,
    NaiveHybridMethod,
    RecomputationMethod,
)
from repro.models import model_preset
from repro.simulator import platform_preset

REGIMES = [
    ("io-sufficient", "llama2-7b", "A30 + 7B + 4 SSDs"),
    ("compute-sufficient", "llama2-7b", "A100 + 7B + 1 SSD"),
    ("balanced", "llama2-13b", "A100 + 13B + 4 SSDs"),
]
N_TOKENS = 1024


def measure():
    results = {}
    for regime, model_name, label in REGIMES:
        config = model_preset(model_name)
        platform = platform_preset(regime)
        methods = {
            "recompute": RecomputationMethod(config, platform),
            "kv-offload": KVOffloadMethod(config, platform),
            "hcache-o": HCacheOnlyMethod(config, platform),
            "naive-hybrid": NaiveHybridMethod(config, platform),
            "hcache": HCacheMethod(config, platform),
        }
        results[(regime, label)] = {
            name: m.restoration_speed(N_TOKENS) / 1e3 for name, m in methods.items()
        }
    return results


def test_fig12_bubble_free_scheduler(benchmark):
    results = run_once(benchmark, measure)
    table = ResultTable(
        "Figure 12: scheduler ablation (restoration K tokens/s)",
        ["regime", "recompute", "kv-offload", "hcache-o", "naive-hybrid", "hcache"],
    )
    for (regime, label), speeds in results.items():
        table.add_row(
            label,
            f"{speeds['recompute']:.1f}",
            f"{speeds['kv-offload']:.1f}",
            f"{speeds['hcache-o']:.1f}",
            f"{speeds['naive-hybrid']:.1f}",
            f"{speeds['hcache']:.1f}",
        )

    by_regime = {regime: speeds for (regime, _), speeds in results.items()}
    hybrid_gains = [s["hcache"] / s["naive-hybrid"] for s in by_regime.values()]
    io_suff = by_regime["io-sufficient"]
    scheduler_gain_io = io_suff["hcache"] / io_suff["hcache-o"]
    comp_suff = by_regime["compute-sufficient"]
    scheduler_gain_comp = comp_suff["hcache"] / comp_suff["hcache-o"]
    kv_margins = [s["hcache"] / s["kv-offload"] for s in by_regime.values()]

    expectations = [
        PaperExpectation(
            "HCache vs naive hybrid", "1.28-1.42x",
            f"{min(hybrid_gains):.2f}-{max(hybrid_gains):.2f}x",
            holds=all(1.15 < g < 1.8 for g in hybrid_gains),
        ),
        PaperExpectation(
            "HCache-O trails KV offload (IO-sufficient)", "-13%",
            f"{(io_suff['hcache-o'] / io_suff['kv-offload'] - 1) * 100:.0f}%",
            holds=io_suff["hcache-o"] < io_suff["kv-offload"],
        ),
        PaperExpectation(
            "scheduler gain on skewed hardware", "1.35-1.64x",
            f"{scheduler_gain_io:.2f}x / {scheduler_gain_comp:.2f}x",
            holds=scheduler_gain_io > 1.2 and scheduler_gain_comp > 1.2,
        ),
        PaperExpectation(
            "HCache vs KV offload everywhere", "1.45-2.66x",
            f"{min(kv_margins):.2f}-{max(kv_margins):.2f}x",
            holds=all(m > 1.25 for m in kv_margins),
        ),
    ]
    emit("fig12_scheduler_ablation", [table], expectations)
    assert io_suff["hcache-o"] < io_suff["kv-offload"]
    assert all(m > 1.25 for m in kv_margins)
    for speeds in by_regime.values():
        assert speeds["hcache"] == max(speeds.values())
