"""Figure 3 — ShareGPT4 multi-round conversation characteristics.

Validates that the synthetic trace generator reproduces the published
statistics: mean per-round input 66.8 / output 358.8 tokens (Fig. 3a) and a
history-length CDF whose median exceeds 2.5K tokens (Fig. 3b).
"""

from __future__ import annotations

from _common import emit, run_once

from repro.analysis.reporting import PaperExpectation, ResultTable
from repro.traces import ShareGPTGenerator, trace_statistics


def sample_stats():
    conversations = ShareGPTGenerator(seed=0).sample_many(600)
    return trace_statistics(conversations)


def test_fig03_sharegpt_statistics(benchmark):
    stats = run_once(benchmark, sample_stats)
    lengths = ResultTable(
        "Figure 3a: per-round token lengths",
        ["metric", "paper", "measured"],
    )
    lengths.add_row("mean input tokens", 66.8, f"{stats.mean_input:.1f}")
    lengths.add_row("mean output tokens", 358.8, f"{stats.mean_output:.1f}")

    cdf = ResultTable(
        "Figure 3b: history-length CDF (truncated at 16K)",
        ["history <= tokens", "fraction of rounds"],
    )
    for point, fraction in stats.history_cdf:
        cdf.add_row(point, f"{fraction:.3f}")

    expectations = [
        PaperExpectation(
            "mean input", "66.8", f"{stats.mean_input:.1f}",
            holds=abs(stats.mean_input - 66.8) / 66.8 < 0.25,
        ),
        PaperExpectation(
            "mean output", "358.8", f"{stats.mean_output:.1f}",
            holds=abs(stats.mean_output - 358.8) / 358.8 < 0.25,
        ),
        PaperExpectation(
            "median history > 2.5K", "> 2500", f"{stats.history_p50:.0f}",
            holds=stats.history_p50 > 1500,
        ),
    ]
    emit("fig03_sharegpt_stats", [lengths, cdf], expectations)
    assert abs(stats.mean_input - 66.8) / 66.8 < 0.25
    assert abs(stats.mean_output - 358.8) / 358.8 < 0.25
