#!/usr/bin/env bash
# Local gate: bytecode-compile, tier-1 tests, doc freshness, hot-path
# benchmark smoke.
#
# Run this before sending a PR.  The compileall pass catches syntax-level
# breakage in modules no test imports.  The doc check keeps README.md's
# module map pointing at packages that actually exist (and vice versa).
# The smoke benchmark executes the same code paths as the committed
# BENCH_hotpath.json (decode-with-capture state path, end-to-end decode,
# chunk-streamed restore, threaded restore under latency emulation) at a
# reduced window but still including the 4096-token gate size, so it
# *asserts*:
#   - the PR-1 speedup floor (decode-with-capture state path >= 10x
#     naive at 4k tokens),
#   - that every restore flavor — including the PR-3 threaded executor —
#     stays bit-exact vs the naive reference,
#   - the PR-3 threaded-restore gate (faster than the single-threaded
#     streamed path, wall clock within 1.5x of the modelled pipelined
#     makespan at 4k tokens).
# Hot-path regressions fail here before the committed numbers drift.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== bytecode compile =="
python -m compileall -q src benchmarks scripts

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== doc freshness (README module map vs src/repro) =="
python scripts/check_docs.py

echo "== hot-path benchmark (smoke gate: bit-exact incl. threaded + 10x floor + 1.5x pipeline gap at 4k) =="
python benchmarks/bench_hotpath.py --smoke

echo "all checks passed"
