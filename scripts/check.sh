#!/usr/bin/env bash
# Local + CI gate: bytecode-compile, lint (ruff + repro.lint), types,
# tier-1 tests, doc freshness, hot-path benchmark smoke.
#
# Run this before sending a PR; .github/workflows/ci.yml runs exactly
# this script on every push/PR.  The compileall pass catches
# syntax-level breakage in modules no test imports.  Three analysis
# gates follow:
#   - ruff with the repo config in pyproject.toml (style/pyflakes);
#   - `python -m repro.lint src` — the project-specific invariant
#     checker (lock discipline, §6.2 commit-point ordering, hot-path
#     allocation bans, exception safety, __all__ drift); zero findings
#     required, deliberate exceptions carry in-source waivers;
#   - mypy, non-strict, over repro.storage + repro.runtime + repro.state.
# ruff and mypy are optional *locally* (skipped with a notice via
# require_or_skip below) but REQUIRED in CI: a missing tool there is a
# broken pipeline, not a soft skip.  repro.lint ships with the repo and
# always runs.  The doc check keeps README.md's module map pointing at
# packages that actually exist (and vice versa).  The smoke benchmark
# executes the same code paths as the committed BENCH_hotpath.json
# (decode-with-capture state path, end-to-end decode, batched
# multi-session decode, chunk-streamed restore, threaded restore under
# latency emulation) at a reduced window but still including the
# 4096-token gate size, so it *asserts*:
#   - the PR-1 speedup floor (decode-with-capture state path >= 10x
#     naive at 4k tokens),
#   - that every restore flavor — including the PR-3 threaded executor —
#     stays bit-exact vs the naive reference,
#   - the PR-3 threaded-restore gate (faster than the single-threaded
#     streamed path, wall clock within the gap ceiling of the modelled
#     pipelined makespan at 4k tokens),
#   - the PR-4 batched-decode gate (one decode_batch call over 16
#     sessions >= 2x the serial per-session loop at 1k tokens — the
#     serving-scale context; 4k is recorded but attention-bandwidth-
#     bound — with batched caches/logits inside the pinned
#     BATCHED_DECODE_ATOL at every measured size),
#   - the PR-9 sharded-restore gate (the 2x2 pipeline-x-tensor shard
#     grid beats the single-shard threaded restore at 4k tokens with
#     wall clock within the gap ceiling of the modelled sharded
#     makespan, every shard shape restoring bit-exact),
#   - the PR-6 durable-restore gate (all-primaries-dead failover reads
#     bit-exact and <= 2x the healthy restore's wall clock; journaled
#     save -> full in-memory drop -> recover -> bit-exact restore),
#   - the PR-8 block-sharing gate (pool dedup ratio > 1 on the shared-
#     system-prompt cohort, every pool-served restore bit-exact vs the
#     private engine with zero device reads, admission restores reading
#     strictly fewer chunks than the private path),
#   - the PR-10 serving-frontend gate (batched-continuous serving via
#     ServingFrontend.submit/step reaches >= 1x the serial chat_round
#     loop's throughput at the serial p99 SLO, with token streams
#     identical to the serial loop — the front end is a scheduling
#     change, never a value change).
# Hot-path regressions fail here before the committed numbers drift.
#
# CHECK_RELAX_TIMING=1 (set by CI) widens the timing thresholds
# (threaded and sharded speedup/gap, batched speedup) for noisy shared
# runners; exactness checks and the 10x floor are never relaxed.  See
# benchmarks/README.md.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# require_or_skip <module> <command...> — run <command...> if the python
# module <module> is importable.  Missing tool: hard failure in CI
# (GitHub Actions sets CI=true), soft skip with a notice locally.  All
# optional-tool gating goes through this one helper so local and CI
# behaviour can never drift per-tool.
require_or_skip() {
    local module="$1"
    shift
    if python -c "import ${module}" >/dev/null 2>&1; then
        "$@"
    elif [ "${CI:-}" = "true" ]; then
        echo "error: '${module}' is required in CI but is not installed" \
             "(pip install -r requirements-dev.txt)" >&2
        exit 1
    else
        echo "${module} not installed; skipping locally (CI enforces it" \
             "— pip install -r requirements-dev.txt)"
    fi
}

echo "== bytecode compile =="
python -m compileall -q src benchmarks scripts

echo "== lint (ruff) =="
require_or_skip ruff python -m ruff check src tests benchmarks scripts

echo "== invariant lint (repro.lint: guarded-by, commit-point, hot-path, exception-safety, api-surface) =="
python -m repro.lint src

echo "== types (mypy, non-strict, repro.storage + repro.runtime + repro.state) =="
require_or_skip mypy python -m mypy

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== doc freshness (README module map vs src/repro) =="
python scripts/check_docs.py

# The crash-safety surfaces get their own named gate even though tier-1
# already includes these files: a recovery regression should fail with
# "crash-recovery smoke" in the log, not as one -x casualty among 900+
# tests, and this stays green even if the tier-1 invocation above is
# ever narrowed.
echo "== crash-recovery smoke (journal truncation property, crash-window recovery, kill-and-resume) =="
python -m pytest -q tests/storage/test_journal.py tests/storage/test_recovery.py \
    tests/integration/test_kill_and_resume.py

echo "== hot-path benchmark (smoke gate: bit-exact incl. threaded + sharded + 10x floor at 4k + pipeline/sharded gaps at 4k + batched decode at 1k + degraded/recovered restore + block-sharing dedup/bit-exactness + serving-frontend throughput/token-equality) =="
python benchmarks/bench_hotpath.py --smoke

# The committed numbers must carry the block-sharing section the smoke
# gate just re-proved live: a stale BENCH_hotpath.json (regenerated
# before the shared store landed, or with sharing accidentally disabled)
# fails here even though the live smoke passed.
echo "== committed BENCH_hotpath.json block-sharing gate (dedup ratio > 1, restores bit-exact) =="
python - <<'EOF'
import json, sys
headline = json.load(open("BENCH_hotpath.json"))["headline"]
sharing = headline.get("block_sharing")
if sharing is None:
    sys.exit("BENCH_hotpath.json predates the block_sharing section; regenerate it")
if not (sharing["dedup_ratio"] > 1.0 and sharing["all_bit_exact"] and sharing["met"]):
    sys.exit(f"committed block_sharing gate not met: {sharing}")
print(
    f"committed block_sharing: dedup {sharing['dedup_ratio']:.2f}x, "
    f"{sharing['state_bytes_saved'] / 1e6:.1f} MB saved, bit-exact"
)
EOF

# Same staleness protection for the PR-9 sharded-restore section: the
# committed JSON must show the 2x2 grid beating the single-shard
# threaded restore with its gap within the acceptance band, produced
# WITHOUT CHECK_RELAX_TIMING (the strict thresholds are re-asserted
# here, not read from the file).
echo "== committed BENCH_hotpath.json sharded-restore gate (2x2 speedup > 1, gap <= 1.5, bit-exact) =="
python - <<'EOF'
import json, sys
report = json.load(open("BENCH_hotpath.json"))
sharded = report["headline"].get("sharded_restore")
if sharded is None:
    sys.exit("BENCH_hotpath.json predates the sharded_restore section; regenerate it")
if report.get("relaxed_timing"):
    sys.exit("committed BENCH_hotpath.json was produced with CHECK_RELAX_TIMING=1")
if not (
    sharded["all_bit_exact"]
    and sharded["speedup_vs_single_shard"] > 1.0
    and sharded["gap_ratio"] <= 1.5
):
    sys.exit(f"committed sharded_restore gate not met: {sharded}")
print(
    f"committed sharded_restore: {sharded['shape']} grid "
    f"{sharded['speedup_vs_single_shard']:.2f}x vs single-shard, "
    f"gap {sharded['gap_ratio']:.2f}x, bit-exact"
)
EOF

# Same staleness protection for the PR-10 serving-frontend section: the
# committed JSON must show the async front end matching the serial loop
# token-for-token and meeting the strict (>= 1x) throughput floor —
# relaxed_timing is already rejected by the sharded block above.
echo "== committed BENCH_hotpath.json serving-frontend gate (speedup >= 1, token streams equal) =="
python - <<'EOF'
import json, sys
headline = json.load(open("BENCH_hotpath.json"))["headline"]
serving = headline.get("serving_frontend")
if serving is None:
    sys.exit("BENCH_hotpath.json predates the serving_frontend section; regenerate it")
if not (serving["tokens_equal"] and serving["speedup_vs_serial"] >= 1.0 and serving["met"]):
    sys.exit(f"committed serving_frontend gate not met: {serving}")
print(
    f"committed serving_frontend: {serving['speedup_vs_serial']:.2f}x vs "
    f"serial chat_round at SLO {serving['slo_ttft_s'] * 1e3:.1f} ms, "
    f"goodput@1.0x {serving['goodput_at_unit_load']:.0f} tok/s, tokens equal"
)
EOF

echo "all checks passed"
