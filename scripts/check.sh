#!/usr/bin/env bash
# Local gate: bytecode-compile, tier-1 tests, hot-path benchmark smoke.
#
# Run this before sending a PR.  The compileall pass catches syntax-level
# breakage in modules no test imports.  The smoke benchmark executes the
# same code paths as the committed BENCH_hotpath.json (decode-with-capture
# state path, end-to-end decode, chunk-streamed restore) at a reduced
# window but still including the 4096-token gate size, so it *asserts*
# the PR-1 speedup floor (decode-with-capture state path >= 10x naive at
# 4k tokens) and that the streamed restore stays bit-exact vs the naive
# reference — hot-path regressions fail here before the numbers drift.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== bytecode compile =="
python -m compileall -q src benchmarks

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== hot-path benchmark (smoke gate: bit-exact + >= 10x floor at 4k) =="
python benchmarks/bench_hotpath.py --smoke

echo "all checks passed"
