#!/usr/bin/env bash
# Local gate: tier-1 tests plus a hot-path benchmark smoke run.
#
# Run this before sending a PR.  The smoke run executes the same code
# paths as the committed BENCH_hotpath.json (decode-with-capture state
# path, end-to-end decode, restore with bit-exactness verification) at a
# reduced size, so hot-path regressions and numerics breakage surface
# locally before the benchmark numbers drift.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== hot-path benchmark (smoke) =="
python benchmarks/bench_hotpath.py --smoke

echo "all checks passed"
