#!/usr/bin/env python
"""Doc-freshness gate: the docs must describe the tree that exists.

Checks, without importing the package:

1. ``README.md`` and ``docs/ARCHITECTURE.md`` exist.
2. Every module the README's module-map table names (the first
   backticked cell of each ``| `name` | ...`` row) exists under
   ``src/repro/`` as a package or module.
3. The converse: every subpackage of ``src/repro/`` appears somewhere in
   the README, so new packages can't ship undocumented.
4. Cross-references used by the quickstart (``scripts/check.sh``,
   ``benchmarks/README.md``, the example scripts) resolve.

Exits non-zero with a list of stale references; run by ``scripts/check.sh``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def module_map_entries(readme_text: str) -> list[str]:
    """First backticked cell of each module-map table row."""
    entries = []
    for line in readme_text.splitlines():
        match = re.match(r"\|\s*`([A-Za-z_][A-Za-z0-9_.]*)`\s*\|", line)
        if match:
            entries.append(match.group(1))
    return entries


def main() -> int:
    problems: list[str] = []
    readme = ROOT / "README.md"
    architecture = ROOT / "docs" / "ARCHITECTURE.md"
    for doc in (readme, architecture):
        if not doc.is_file():
            problems.append(f"missing document: {doc.relative_to(ROOT)}")
    if problems:
        print("\n".join(problems), file=sys.stderr)
        return 1

    readme_text = readme.read_text()
    package_root = ROOT / "src" / "repro"

    listed = module_map_entries(readme_text)
    if not listed:
        problems.append("README.md module map: no `module` table rows found")
    for name in listed:
        path = package_root / name
        if not (path.is_dir() or path.with_suffix(".py").is_file()):
            problems.append(
                f"README.md module map names `{name}` but src/repro/{name} does not exist"
            )

    actual = sorted(
        p.name
        for p in package_root.iterdir()
        if p.is_dir() and (p / "__init__.py").is_file()
    )
    for name in actual:
        if f"`{name}`" not in readme_text:
            problems.append(
                f"src/repro/{name} exists but README.md's module map never mentions `{name}`"
            )

    for ref in ("scripts/check.sh", "benchmarks/README.md", "docs/ARCHITECTURE.md"):
        if ref in readme_text and not (ROOT / ref).exists():
            problems.append(f"README.md references missing path {ref}")
    for match in re.finditer(r"`examples/([a-z0-9_]+\.py)`", readme_text):
        name = match.group(1)
        if not (ROOT / "examples" / name).is_file():
            problems.append(f"README.md references missing example examples/{name}")

    if problems:
        print("doc-freshness check failed:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(
        f"doc-freshness ok: {len(listed)} module-map entries verified, "
        f"{len(actual)} subpackages all documented"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
