"""Setuptools shim.

Kept so the package installs in environments without the ``wheel`` package
(``pip install -e .`` needs ``bdist_wheel``; ``python setup.py develop``
does not).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
