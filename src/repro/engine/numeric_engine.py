"""Numeric serving engine: real forward passes with HCache state handling.

Where :mod:`repro.engine.serving` models *time*, this engine models
*values*: it runs the numpy transformer for actual multi-round sessions,
saves hidden states through the HCache engine as tokens are produced,
evicts GPU state between rounds, restores it on the next round, and
generates real tokens.  Correctness tests compare its outputs against an
uninterrupted run of the same conversation — they must match exactly,
which is the paper's losslessness claim in executable form.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.hcache import HCacheEngine
from repro.engine.api import IterationResult
from repro.errors import ConfigError, StateError
from repro.models.hidden_capture import HiddenCapture
from repro.models.kv_cache import KVCache, StackedKVCacheBlock
from repro.models.transformer import Transformer
from repro.runtime.executor import RestoreExecutor

#: Deprecated entry points that already warned once this process.  Tests
#: that assert the warning fires clear this set first.
_warned_deprecations: set[str] = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    """Emit a one-time :class:`DeprecationWarning` for ``name``.

    One warning per process, not per call: the shims sit under hot serving
    loops and a per-call warning would flood logs (and trip pytest's
    ``filterwarnings = error`` once per test instead of once per run; the
    carve-out in ``pyproject.toml`` matches the message prefix here).
    """
    if name in _warned_deprecations:
        return
    _warned_deprecations.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} (see docs/MIGRATION.md)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class SessionState:
    """One conversation's numeric state.

    Attributes:
        session_id: Stable identity (doubles as the storage context id).
        tokens: All tokens of the conversation so far, in order.
        kv_cache: GPU-resident cache, or ``None`` while evicted.
    """

    session_id: str
    tokens: list[int] = field(default_factory=list)
    kv_cache: KVCache | None = None

    @property
    def on_gpu(self) -> bool:
        return self.kv_cache is not None


class NumericServingEngine:
    """Executes stateful multi-round generation with HCache restoration."""

    def __init__(
        self,
        transformer: Transformer,
        hcache: HCacheEngine,
        *,
        executor: RestoreExecutor | None = None,
    ) -> None:
        """Wrap a transformer and its HCache engine.

        ``executor`` (optional) is a shared :class:`RestoreExecutor`:
        every restoration this engine performs then overlaps its storage
        reads with projection compute on the executor's IO worker pool,
        and :meth:`restore_sessions` brings several evicted sessions back
        concurrently through that one pool.  A
        :class:`~repro.runtime.sharded.ShardedRestoreExecutor` goes
        further and partitions each restoration across its
        ``(pipeline, tensor)`` shard grid — ``chat_round``'s implicit
        restores included.  Restored values are bit-identical in every
        case.
        """
        if hcache.transformer is not transformer:
            raise ConfigError("HCache engine must wrap the same transformer")
        self.transformer = transformer
        self.hcache = hcache
        self.executor = executor
        self._sessions: dict[str, SessionState] = {}

    @classmethod
    def recover(
        cls,
        transformer: Transformer,
        hcache: HCacheEngine,
        *,
        executor: RestoreExecutor | None = None,
    ) -> "NumericServingEngine":
        """Re-open every session a crash-recovered HCache engine holds.

        ``hcache`` comes from :meth:`HCacheEngine.recover`; each of its
        contexts becomes an evicted session whose token log is the
        durable log — the next :meth:`chat_round` restores its KV cache
        through the completely ordinary restore path.  Tokens past the
        durability boundary (unsealed tail rows lost in the crash) are
        simply absent from the log, as if they were never generated.
        """
        engine = cls(transformer, hcache, executor=executor)
        for context_id in hcache.context_ids():
            engine._sessions[context_id] = SessionState(
                session_id=context_id,
                tokens=list(hcache.token_log(context_id)[: hcache.saved_tokens(context_id)]),
            )
        return engine

    def open_session(self, session_id: str) -> SessionState:
        """Start a new conversation."""
        if session_id in self._sessions:
            raise StateError(f"session {session_id!r} already open")
        state = SessionState(session_id=session_id)
        self._sessions[session_id] = state
        self.hcache.register_context(session_id)
        return state

    def session(self, session_id: str) -> SessionState:
        if session_id not in self._sessions:
            raise StateError(f"session {session_id!r} not open")
        return self._sessions[session_id]

    def has_session(self, session_id: str) -> bool:
        """Whether ``session_id`` is open (the front end opens lazily)."""
        return session_id in self._sessions

    def chat_round(
        self, session_id: str, prompt_tokens: np.ndarray, n_output_tokens: int
    ) -> list[int]:
        """Serve one conversation round, restoring evicted state if needed.

        Returns the generated token ids.  States of the new prompt and the
        generated tokens are saved to host storage as they are produced
        (layer by layer during the forward pass, matching the paper's
        saving path).
        """
        state = self.session(session_id)
        prompt_tokens = np.asarray(prompt_tokens)
        if prompt_tokens.ndim != 1 or prompt_tokens.size == 0:
            raise ConfigError("prompt must be a non-empty 1-D token array")
        if n_output_tokens <= 0:
            raise ConfigError("output length must be positive")

        # The round's final length is known up front: restore into (or
        # reserve) a cache sized for the whole round and one shared capture
        # buffer, so the per-token appends and hidden-state writes below
        # never allocate or recopy history.
        round_tokens = len(state.tokens) + prompt_tokens.size + n_output_tokens
        if not state.on_gpu:
            if state.tokens:
                state.kv_cache = self.hcache.restore(
                    session_id, reserve_tokens=round_tokens, executor=self.executor
                )
            else:
                state.kv_cache = KVCache(self.transformer.config)
        capture, logits = self._prefill_round(
            state, prompt_tokens, round_tokens, n_output_tokens
        )
        cache = state.kv_cache
        assert cache is not None

        generated: list[int] = []
        for _ in range(n_output_tokens):
            token = int(np.argmax(logits))
            generated.append(token)
            step = self.transformer.forward(np.array([token]), cache, capture=capture)
            assert step.hidden_states is not None
            self.hcache.save_states(
                session_id, step.hidden_states, np.array([token]), kv_cache=cache
            )
            state.tokens.append(token)
            logits = step.logits[-1]
        return generated

    def _prefill_round(
        self,
        state: SessionState,
        prompt_tokens: np.ndarray,
        round_tokens: int,
        n_output_tokens: int,
    ) -> tuple[HiddenCapture, np.ndarray]:
        """Prefill phase shared by :meth:`chat_round` and :meth:`chat_rounds`.

        Checks the cache/token-log agreement, reserves the round's full
        capacity, forwards the prompt into a round-sized capture buffer,
        persists the prompt's states, and extends the token log.
        Returns the capture (decode steps keep appending to it) and the
        prompt's last-token logits.
        """
        cache = state.kv_cache
        assert cache is not None
        if len(cache) != len(state.tokens):
            raise StateError(
                f"session {state.session_id!r}: cache holds {len(cache)} tokens, "
                f"log has {len(state.tokens)}"
            )
        cache.reserve(round_tokens)
        capture = HiddenCapture(
            self.transformer.config.n_layers, self.transformer.config.hidden_size
        )
        capture.reserve(prompt_tokens.size + n_output_tokens)
        result = self.transformer.forward(prompt_tokens, cache, capture=capture)
        assert result.hidden_states is not None
        self.hcache.save_states(
            state.session_id, result.hidden_states, prompt_tokens, kv_cache=cache
        )
        state.tokens.extend(int(t) for t in prompt_tokens)
        return capture, result.logits[-1]

    def chat_rounds(
        self,
        rounds: Sequence[tuple[str, np.ndarray]],
        n_output_tokens: int,
    ) -> dict[str, list[int]]:
        """Serve one round for several sessions, decoding them as one batch.

        .. deprecated:: PR 10
            A thin shim over the submit/step front end: it builds a
            :class:`~repro.engine.frontend.ServingFrontend` sized to admit
            every round at once, submits one
            :class:`~repro.engine.api.ServingRequest` per ``(session,
            prompt)`` pair, and drives :meth:`ServingFrontend.step` until
            idle.  Use the front end directly for new code — it exposes
            the same batched execution plus admission control, streaming,
            and per-iteration stats.

        The serving behaviour is the old contract: evicted sessions come
        back in one restore burst (the shared executor's IO pool when
        configured), prompts prefill under the SplitFuse token budget —
        now *fused into the batched iteration* instead of the old serial
        per-session prefill loop — and every output token is one batched
        model call across all sessions.  Per-token hidden states still
        flow through the per-session HCache saves, so storage contents
        match the serial path.

        Returns ``{session_id: generated tokens}``.  Numeric state
        matches per-session :meth:`chat_round` calls within the
        documented batched-GEMM tolerance
        (:data:`repro.models.transformer.BATCHED_DECODE_ATOL`); the
        greedy token streams therefore match too *unless* a step's top
        two logits tie within that rounding band — the same caveat any
        GEMM-shape change carries (cf. the ROADMAP's live-cache atol
        note), not an additional batching hazard class.
        """
        _warn_deprecated("chat_rounds", "ServingFrontend.submit/step")
        if not rounds:
            raise ConfigError("need at least one (session, prompt) round")
        if n_output_tokens <= 0:
            raise ConfigError("output length must be positive")
        session_ids: list[str] = []
        prompts: list[np.ndarray] = []
        for session_id, prompt_tokens in rounds:
            prompt_tokens = np.asarray(prompt_tokens)
            if prompt_tokens.ndim != 1 or prompt_tokens.size == 0:
                raise ConfigError("prompt must be a non-empty 1-D token array")
            session_ids.append(session_id)
            prompts.append(prompt_tokens)
        if len(set(session_ids)) != len(session_ids):
            raise ConfigError("a session cannot appear twice in one batch")
        states = [self.session(session_id) for session_id in session_ids]
        # Deferred import: the front end is built on this engine's
        # execute_iteration, not the other way around.
        from repro.engine.api import ServingRequest
        from repro.engine.batching import MemoryBudget
        from repro.engine.frontend import ServingFrontend

        capacity = sum(
            len(state.tokens) + prompt.size + n_output_tokens
            for state, prompt in zip(states, prompts)
        )
        frontend = ServingFrontend(
            self,
            budget=MemoryBudget(capacity_tokens=capacity),
            max_running=max(len(rounds), 256),
            evict_on_finish=False,
            overlap_restores=False,
        )
        handles = [
            frontend.submit(
                ServingRequest(
                    session_id=session_id,
                    prompt_tokens=prompt,
                    max_new_tokens=n_output_tokens,
                )
            )
            for session_id, prompt in zip(session_ids, prompts)
        ]
        frontend.run_until_idle()
        return {
            handle.session_id: list(handle.result().tokens) for handle in handles
        }

    def decode_iteration(self, tokens_by_session: Mapping[str, int]) -> dict[str, int]:
        """Run one engine iteration's decode batch as a single model call.

        .. deprecated:: PR 10
            A shim over :meth:`execute_iteration` (the fused iteration
            primitive, which also carries prefill chunks); behaviour and
            numerics are unchanged — this forwards ``tokens_by_session``
            as the decode set and returns
            :attr:`~repro.engine.api.IterationResult.next_tokens`.

        All sessions must be GPU-resident with non-empty histories (the
        pending token continues a prefilled context).
        """
        _warn_deprecated("decode_iteration", "execute_iteration")
        if not tokens_by_session:
            raise ConfigError("decode iteration needs at least one session")
        return dict(
            self.execute_iteration(decode_tokens=tokens_by_session).next_tokens
        )

    def execute_iteration(
        self,
        prefill_chunks: Sequence[tuple[str, np.ndarray]] = (),
        decode_tokens: Mapping[str, int] | None = None,
    ) -> IterationResult:
        """Execute one continuous-batching iteration as ONE model call.

        The engine half of the submit/step front end: the scheduler's
        :class:`~repro.engine.splitfuse.IterationPlan` maps directly onto
        the two arguments — ``prefill_chunks`` are ``(session_id,
        tokens)`` prompt chunks under the SplitFuse budget, and
        ``decode_tokens`` feeds each decoding session its pending token.

        Execution is always a single batched transformer pass:

        - **decode-only** iterations stack the caches into one
          :class:`StackedKVCacheBlock` and run
          :meth:`Transformer.decode_batch` (bit-identical to the
          pre-PR-10 ``decode_iteration``);
        - iterations carrying prefill work run
          :meth:`Transformer.forward_fused`, packing every chunk and
          decode token into one variable-length segmented call — this
          replaces the serial per-session prefill loop ``chat_rounds``
          used to run (one model call per admitted session).

        Either way each segment's hidden states are persisted through the
        ordinary HCache save path and the token logs are extended, so
        storage contents match the serial engine.  Returns an
        :class:`~repro.engine.api.IterationResult` whose ``next_tokens``
        carries every executed session's next greedy token; for a prefill
        chunk that does not complete its prompt the entry is the argmax
        over a mid-prompt row — the caller tracks completion and ignores
        it.  ``model_calls`` is always 1 (the fused-iteration contract a
        regression test pins).

        Decode sessions must be GPU-resident with non-empty histories;
        prefill sessions must be GPU-resident unless they have no history
        at all (a fresh cache is created); a session may appear in only
        one role per iteration.
        """
        chunks = [(sid, np.asarray(tokens)) for sid, tokens in prefill_chunks]
        decode = dict(decode_tokens) if decode_tokens else {}
        if not chunks and not decode:
            raise ConfigError("iteration needs at least one chunk or decode token")
        for _, tokens in chunks:
            if tokens.ndim != 1 or tokens.size == 0:
                raise ConfigError("every prefill chunk must be a non-empty 1-D array")
        roles = [sid for sid, _ in chunks] + list(decode)
        if len(set(roles)) != len(roles):
            raise ConfigError("a session cannot appear twice in one iteration")

        decode_states = [self.session(session_id) for session_id in decode]
        for state in decode_states:
            if not state.on_gpu:
                raise StateError(
                    f"session {state.session_id!r} is not GPU-resident; restore it first"
                )
            if not state.tokens:
                raise StateError(
                    f"session {state.session_id!r} has no prefilled context to decode from"
                )
            assert state.kv_cache is not None
            if len(state.kv_cache) != len(state.tokens):
                raise StateError(
                    f"session {state.session_id!r}: cache holds "
                    f"{len(state.kv_cache)} tokens, log has {len(state.tokens)}"
                )

        if not chunks:
            return self._decode_only_iteration(decode, decode_states)

        config = self.transformer.config
        prefill_states = []
        for session_id, _ in chunks:
            state = self.session(session_id)
            if not state.on_gpu:
                if state.tokens:
                    raise StateError(
                        f"session {session_id!r} has evicted history; restore it first"
                    )
                state.kv_cache = KVCache(config)
            assert state.kv_cache is not None
            if len(state.kv_cache) != len(state.tokens):
                raise StateError(
                    f"session {session_id!r}: cache holds "
                    f"{len(state.kv_cache)} tokens, log has {len(state.tokens)}"
                )
            prefill_states.append(state)

        states = prefill_states + decode_states
        segments = [tokens for _, tokens in chunks] + [
            np.array([int(token)]) for token in decode.values()
        ]
        caches = [state.kv_cache for state in states]
        captures = [
            HiddenCapture(config.n_layers, config.hidden_size) for _ in states
        ]
        for capture, segment in zip(captures, segments):
            capture.reserve(segment.size)
        logits = self.transformer.forward_fused(segments, caches, captures=captures)
        for b, (state, segment) in enumerate(zip(states, segments)):
            self.hcache.save_states(
                state.session_id,
                captures[b].block_views(0, segment.size),
                segment,
                kv_cache=state.kv_cache,
            )
            state.tokens.extend(int(t) for t in segment)
        return IterationResult(
            next_tokens={
                state.session_id: int(np.argmax(logits[b]))
                for b, state in enumerate(states)
            },
            model_calls=1,
        )

    def _decode_only_iteration(
        self, decode: Mapping[str, int], states: "list[SessionState]"
    ) -> IterationResult:
        """Pure-decode iteration: one stacked :meth:`Transformer.decode_batch`.

        Kept verbatim from the pre-PR-10 ``decode_iteration`` body so the
        steady-state decode path stays bit-identical: caches are stacked
        on first use and the block is reused while the batch stays
        stable; a membership or order change re-stacks (one O(batch x
        history) copy — the numpy analog of remapping KV pages into the
        new batch layout).
        """
        session_ids = list(decode)
        caches = [state.kv_cache for state in states]
        StackedKVCacheBlock.ensure_stacked(caches)
        config = self.transformer.config
        captures = [
            HiddenCapture(config.n_layers, config.hidden_size) for _ in states
        ]
        step_tokens = np.array(
            [int(decode[session_id]) for session_id in session_ids]
        )
        logits = self.transformer.decode_batch(step_tokens, caches, captures=captures)
        for b, state in enumerate(states):
            self.hcache.save_states(
                state.session_id,
                captures[b].block_views(0, 1),
                step_tokens[b : b + 1],
                kv_cache=state.kv_cache,
            )
            state.tokens.append(int(step_tokens[b]))
        return IterationResult(
            next_tokens={
                session_id: int(np.argmax(logits[b]))
                for b, session_id in enumerate(session_ids)
            },
            model_calls=1,
        )

    def restore_sessions(
        self,
        session_ids: Sequence[str],
        *,
        reserve_tokens: int | Mapping[str, int] = 0,
        shards: "tuple[int, int] | int | None" = None,
    ) -> None:
        """Bring several evicted sessions back onto the GPU at once.

        The serving-layer admission burst: when a batch of requests with
        evicted history is admitted together, their restorations contend
        for one IO path.  With a shared :class:`RestoreExecutor` the
        sessions restore concurrently through its worker pool (each one
        still projecting in deterministic granule order); without one
        they restore sequentially.  Either way every session's cache is
        bit-identical to an individual ``chat_round`` restore.

        ``reserve_tokens`` (the expected context length after the
        upcoming round, when the caller knows it) sizes each restored
        cache up front so the history is not recopied by the first
        post-restore growth — the same reservation ``chat_round`` makes
        for its own restores.  Pass a per-session mapping when the
        sessions' expected lengths differ (missing ids reserve 0): a
        single int would size every cache to the largest session.

        ``shards`` additionally partitions each restoration across a
        ``(pipeline, tensor)`` grid of simulated GPUs (see
        :meth:`HCacheEngine.restore`); a
        :class:`~repro.runtime.sharded.ShardedRestoreExecutor` configured
        as ``self.executor`` shards by its own shape even when this is
        ``None`` — including ``chat_round``'s own restores.
        """
        states = []
        for session_id in session_ids:
            state = self.session(session_id)
            if state.on_gpu:
                raise StateError(f"session {session_id!r} is already on the GPU")
            if not state.tokens:
                raise StateError(f"session {session_id!r} has no history to restore")
            states.append(state)
        if isinstance(reserve_tokens, int):
            reserve = dict.fromkeys(session_ids, reserve_tokens)
        else:
            reserve = {sid: int(reserve_tokens.get(sid, 0)) for sid in session_ids}
        if self.executor is not None:
            caches = self.executor.restore_contexts(
                self.hcache,
                [s.session_id for s in states],
                reserve_tokens=reserve,
                shards=shards,
            )
            for state in states:
                state.kv_cache = caches[state.session_id]
        else:
            for state in states:
                state.kv_cache = self.hcache.restore(
                    state.session_id, reserve[state.session_id], shards=shards
                )

    def evict(self, session_id: str) -> None:
        """Drop a session's GPU state; host storage keeps everything."""
        state = self.session(session_id)
        if not state.on_gpu:
            raise StateError(f"session {session_id!r} is already evicted")
        self.hcache.seal(session_id)
        assert state.kv_cache is not None
        state.kv_cache.release_block_slot()
        state.kv_cache = None

    def close_session(self, session_id: str) -> None:
        """End a conversation and free its storage."""
        state = self.session(session_id)
        if state.kv_cache is not None:
            state.kv_cache.release_block_slot()
        state.kv_cache = None
        self.hcache.drop_context(session_id)
        del self._sessions[session_id]

    def gpu_resident_sessions(self) -> tuple[str, ...]:
        return tuple(s for s, st in self._sessions.items() if st.on_gpu)
