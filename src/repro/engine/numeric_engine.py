"""Numeric serving engine: real forward passes with HCache state handling.

Where :mod:`repro.engine.serving` models *time*, this engine models
*values*: it runs the numpy transformer for actual multi-round sessions,
saves hidden states through the HCache engine as tokens are produced,
evicts GPU state between rounds, restores it on the next round, and
generates real tokens.  Correctness tests compare its outputs against an
uninterrupted run of the same conversation — they must match exactly,
which is the paper's losslessness claim in executable form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.hcache import HCacheEngine
from repro.errors import ConfigError, StateError
from repro.models.hidden_capture import HiddenCapture
from repro.models.kv_cache import KVCache
from repro.models.transformer import Transformer
from repro.runtime.executor import RestoreExecutor


@dataclass
class SessionState:
    """One conversation's numeric state.

    Attributes:
        session_id: Stable identity (doubles as the storage context id).
        tokens: All tokens of the conversation so far, in order.
        kv_cache: GPU-resident cache, or ``None`` while evicted.
    """

    session_id: str
    tokens: list[int] = field(default_factory=list)
    kv_cache: KVCache | None = None

    @property
    def on_gpu(self) -> bool:
        return self.kv_cache is not None


class NumericServingEngine:
    """Executes stateful multi-round generation with HCache restoration."""

    def __init__(
        self,
        transformer: Transformer,
        hcache: HCacheEngine,
        executor: RestoreExecutor | None = None,
    ) -> None:
        """Wrap a transformer and its HCache engine.

        ``executor`` (optional) is a shared :class:`RestoreExecutor`:
        every restoration this engine performs then overlaps its storage
        reads with projection compute on the executor's IO worker pool,
        and :meth:`restore_sessions` brings several evicted sessions back
        concurrently through that one pool.  Restored values are
        bit-identical either way.
        """
        if hcache.transformer is not transformer:
            raise ConfigError("HCache engine must wrap the same transformer")
        self.transformer = transformer
        self.hcache = hcache
        self.executor = executor
        self._sessions: dict[str, SessionState] = {}

    def open_session(self, session_id: str) -> SessionState:
        """Start a new conversation."""
        if session_id in self._sessions:
            raise StateError(f"session {session_id!r} already open")
        state = SessionState(session_id=session_id)
        self._sessions[session_id] = state
        self.hcache.register_context(session_id)
        return state

    def session(self, session_id: str) -> SessionState:
        if session_id not in self._sessions:
            raise StateError(f"session {session_id!r} not open")
        return self._sessions[session_id]

    def chat_round(
        self, session_id: str, prompt_tokens: np.ndarray, n_output_tokens: int
    ) -> list[int]:
        """Serve one conversation round, restoring evicted state if needed.

        Returns the generated token ids.  States of the new prompt and the
        generated tokens are saved to host storage as they are produced
        (layer by layer during the forward pass, matching the paper's
        saving path).
        """
        state = self.session(session_id)
        prompt_tokens = np.asarray(prompt_tokens)
        if prompt_tokens.ndim != 1 or prompt_tokens.size == 0:
            raise ConfigError("prompt must be a non-empty 1-D token array")
        if n_output_tokens <= 0:
            raise ConfigError("output length must be positive")

        # The round's final length is known up front: restore into (or
        # reserve) a cache sized for the whole round and one shared capture
        # buffer, so the per-token appends and hidden-state writes below
        # never allocate or recopy history.
        round_tokens = len(state.tokens) + prompt_tokens.size + n_output_tokens
        if not state.on_gpu:
            if state.tokens:
                state.kv_cache = self.hcache.restore(
                    session_id, reserve_tokens=round_tokens, executor=self.executor
                )
            else:
                state.kv_cache = KVCache(self.transformer.config)
        cache = state.kv_cache
        assert cache is not None
        if len(cache) != len(state.tokens):
            raise StateError(
                f"session {session_id!r}: cache holds {len(cache)} tokens, "
                f"log has {len(state.tokens)}"
            )
        cache.reserve(round_tokens)
        capture = HiddenCapture(
            self.transformer.config.n_layers, self.transformer.config.hidden_size
        )
        capture.reserve(prompt_tokens.size + n_output_tokens)

        result = self.transformer.forward(prompt_tokens, cache, capture=capture)
        assert result.hidden_states is not None
        self.hcache.save_states(session_id, result.hidden_states, prompt_tokens, kv_cache=cache)
        state.tokens.extend(int(t) for t in prompt_tokens)

        generated: list[int] = []
        logits = result.logits[-1]
        for _ in range(n_output_tokens):
            token = int(np.argmax(logits))
            generated.append(token)
            step = self.transformer.forward(np.array([token]), cache, capture=capture)
            assert step.hidden_states is not None
            self.hcache.save_states(
                session_id, step.hidden_states, np.array([token]), kv_cache=cache
            )
            state.tokens.append(token)
            logits = step.logits[-1]
        return generated

    def restore_sessions(
        self, session_ids: Sequence[str], reserve_tokens: int = 0
    ) -> None:
        """Bring several evicted sessions back onto the GPU at once.

        The serving-layer admission burst: when a batch of requests with
        evicted history is admitted together, their restorations contend
        for one IO path.  With a shared :class:`RestoreExecutor` the
        sessions restore concurrently through its worker pool (each one
        still projecting in deterministic granule order); without one
        they restore sequentially.  Either way every session's cache is
        bit-identical to an individual ``chat_round`` restore.

        ``reserve_tokens`` (the expected context length after the
        upcoming round, when the caller knows it) sizes each restored
        cache up front so the history is not recopied by the first
        post-restore growth — the same reservation ``chat_round`` makes
        for its own restores.
        """
        states = []
        for session_id in session_ids:
            state = self.session(session_id)
            if state.on_gpu:
                raise StateError(f"session {session_id!r} is already on the GPU")
            if not state.tokens:
                raise StateError(f"session {session_id!r} has no history to restore")
            states.append(state)
        if self.executor is not None:
            caches = self.executor.restore_contexts(
                self.hcache, [s.session_id for s in states], reserve_tokens
            )
            for state in states:
                state.kv_cache = caches[state.session_id]
        else:
            for state in states:
                state.kv_cache = self.hcache.restore(state.session_id, reserve_tokens)

    def evict(self, session_id: str) -> None:
        """Drop a session's GPU state; host storage keeps everything."""
        state = self.session(session_id)
        if not state.on_gpu:
            raise StateError(f"session {session_id!r} is already evicted")
        self.hcache.seal(session_id)
        state.kv_cache = None

    def close_session(self, session_id: str) -> None:
        """End a conversation and free its storage."""
        state = self.session(session_id)
        state.kv_cache = None
        self.hcache.drop_context(session_id)
        del self._sessions[session_id]

    def gpu_resident_sessions(self) -> tuple[str, ...]:
        return tuple(s for s, st in self._sessions.items() if st.on_gpu)
