"""Numeric serving engine: real forward passes with HCache state handling.

Where :mod:`repro.engine.serving` models *time*, this engine models
*values*: it runs the numpy transformer for actual multi-round sessions,
saves hidden states through the HCache engine as tokens are produced,
evicts GPU state between rounds, restores it on the next round, and
generates real tokens.  Correctness tests compare its outputs against an
uninterrupted run of the same conversation — they must match exactly,
which is the paper's losslessness claim in executable form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.hcache import HCacheEngine
from repro.errors import ConfigError, StateError
from repro.models.hidden_capture import HiddenCapture
from repro.models.kv_cache import KVCache, StackedKVCacheBlock
from repro.models.transformer import Transformer
from repro.runtime.executor import RestoreExecutor


@dataclass
class SessionState:
    """One conversation's numeric state.

    Attributes:
        session_id: Stable identity (doubles as the storage context id).
        tokens: All tokens of the conversation so far, in order.
        kv_cache: GPU-resident cache, or ``None`` while evicted.
    """

    session_id: str
    tokens: list[int] = field(default_factory=list)
    kv_cache: KVCache | None = None

    @property
    def on_gpu(self) -> bool:
        return self.kv_cache is not None


class NumericServingEngine:
    """Executes stateful multi-round generation with HCache restoration."""

    def __init__(
        self,
        transformer: Transformer,
        hcache: HCacheEngine,
        executor: RestoreExecutor | None = None,
    ) -> None:
        """Wrap a transformer and its HCache engine.

        ``executor`` (optional) is a shared :class:`RestoreExecutor`:
        every restoration this engine performs then overlaps its storage
        reads with projection compute on the executor's IO worker pool,
        and :meth:`restore_sessions` brings several evicted sessions back
        concurrently through that one pool.  A
        :class:`~repro.runtime.sharded.ShardedRestoreExecutor` goes
        further and partitions each restoration across its
        ``(pipeline, tensor)`` shard grid — ``chat_round``'s implicit
        restores included.  Restored values are bit-identical in every
        case.
        """
        if hcache.transformer is not transformer:
            raise ConfigError("HCache engine must wrap the same transformer")
        self.transformer = transformer
        self.hcache = hcache
        self.executor = executor
        self._sessions: dict[str, SessionState] = {}

    @classmethod
    def recover(
        cls,
        transformer: Transformer,
        hcache: HCacheEngine,
        executor: RestoreExecutor | None = None,
    ) -> "NumericServingEngine":
        """Re-open every session a crash-recovered HCache engine holds.

        ``hcache`` comes from :meth:`HCacheEngine.recover`; each of its
        contexts becomes an evicted session whose token log is the
        durable log — the next :meth:`chat_round` restores its KV cache
        through the completely ordinary restore path.  Tokens past the
        durability boundary (unsealed tail rows lost in the crash) are
        simply absent from the log, as if they were never generated.
        """
        engine = cls(transformer, hcache, executor)
        for context_id in hcache.context_ids():
            engine._sessions[context_id] = SessionState(
                session_id=context_id,
                tokens=list(hcache.token_log(context_id)[: hcache.saved_tokens(context_id)]),
            )
        return engine

    def open_session(self, session_id: str) -> SessionState:
        """Start a new conversation."""
        if session_id in self._sessions:
            raise StateError(f"session {session_id!r} already open")
        state = SessionState(session_id=session_id)
        self._sessions[session_id] = state
        self.hcache.register_context(session_id)
        return state

    def session(self, session_id: str) -> SessionState:
        if session_id not in self._sessions:
            raise StateError(f"session {session_id!r} not open")
        return self._sessions[session_id]

    def chat_round(
        self, session_id: str, prompt_tokens: np.ndarray, n_output_tokens: int
    ) -> list[int]:
        """Serve one conversation round, restoring evicted state if needed.

        Returns the generated token ids.  States of the new prompt and the
        generated tokens are saved to host storage as they are produced
        (layer by layer during the forward pass, matching the paper's
        saving path).
        """
        state = self.session(session_id)
        prompt_tokens = np.asarray(prompt_tokens)
        if prompt_tokens.ndim != 1 or prompt_tokens.size == 0:
            raise ConfigError("prompt must be a non-empty 1-D token array")
        if n_output_tokens <= 0:
            raise ConfigError("output length must be positive")

        # The round's final length is known up front: restore into (or
        # reserve) a cache sized for the whole round and one shared capture
        # buffer, so the per-token appends and hidden-state writes below
        # never allocate or recopy history.
        round_tokens = len(state.tokens) + prompt_tokens.size + n_output_tokens
        if not state.on_gpu:
            if state.tokens:
                state.kv_cache = self.hcache.restore(
                    session_id, reserve_tokens=round_tokens, executor=self.executor
                )
            else:
                state.kv_cache = KVCache(self.transformer.config)
        capture, logits = self._prefill_round(
            state, prompt_tokens, round_tokens, n_output_tokens
        )
        cache = state.kv_cache
        assert cache is not None

        generated: list[int] = []
        for _ in range(n_output_tokens):
            token = int(np.argmax(logits))
            generated.append(token)
            step = self.transformer.forward(np.array([token]), cache, capture=capture)
            assert step.hidden_states is not None
            self.hcache.save_states(
                session_id, step.hidden_states, np.array([token]), kv_cache=cache
            )
            state.tokens.append(token)
            logits = step.logits[-1]
        return generated

    def _prefill_round(
        self,
        state: SessionState,
        prompt_tokens: np.ndarray,
        round_tokens: int,
        n_output_tokens: int,
    ) -> tuple[HiddenCapture, np.ndarray]:
        """Prefill phase shared by :meth:`chat_round` and :meth:`chat_rounds`.

        Checks the cache/token-log agreement, reserves the round's full
        capacity, forwards the prompt into a round-sized capture buffer,
        persists the prompt's states, and extends the token log.
        Returns the capture (decode steps keep appending to it) and the
        prompt's last-token logits.
        """
        cache = state.kv_cache
        assert cache is not None
        if len(cache) != len(state.tokens):
            raise StateError(
                f"session {state.session_id!r}: cache holds {len(cache)} tokens, "
                f"log has {len(state.tokens)}"
            )
        cache.reserve(round_tokens)
        capture = HiddenCapture(
            self.transformer.config.n_layers, self.transformer.config.hidden_size
        )
        capture.reserve(prompt_tokens.size + n_output_tokens)
        result = self.transformer.forward(prompt_tokens, cache, capture=capture)
        assert result.hidden_states is not None
        self.hcache.save_states(
            state.session_id, result.hidden_states, prompt_tokens, kv_cache=cache
        )
        state.tokens.extend(int(t) for t in prompt_tokens)
        return capture, result.logits[-1]

    def chat_rounds(
        self,
        rounds: Sequence[tuple[str, np.ndarray]],
        n_output_tokens: int,
    ) -> dict[str, list[int]]:
        """Serve one round for several sessions, decoding them as one batch.

        The batched counterpart of :meth:`chat_round`, in three phases:

        1. **Restore burst** — every evicted session with history comes
           back through :meth:`restore_sessions` (one shared IO pool
           when an executor is configured).
        2. **Prefill** — each prompt runs a serial block-level forward
           (prompt GEMMs are already batched within a session), saving
           states as usual.
        3. **Batched decode** — the caches are stacked into one
           :class:`StackedKVCacheBlock` and every output token is one
           :meth:`Transformer.decode_batch` call across all sessions,
           instead of ``len(rounds)`` serial steps.  Per-step hidden
           states still flow into per-session capture buffers and the
           per-token HCache saves, so the storage contents match the
           serial path.

        Returns ``{session_id: generated tokens}``.  Numeric state
        matches per-session :meth:`chat_round` calls within the
        documented batched-GEMM tolerance
        (:data:`repro.models.transformer.BATCHED_DECODE_ATOL`); the
        greedy token streams therefore match too *unless* a step's top
        two logits tie within that rounding band — the same caveat any
        GEMM-shape change carries (cf. the ROADMAP's live-cache atol
        note), not an additional batching hazard class.
        """
        if not rounds:
            raise ConfigError("need at least one (session, prompt) round")
        if n_output_tokens <= 0:
            raise ConfigError("output length must be positive")
        session_ids: list[str] = []
        prompts: list[np.ndarray] = []
        for session_id, prompt_tokens in rounds:
            prompt_tokens = np.asarray(prompt_tokens)
            if prompt_tokens.ndim != 1 or prompt_tokens.size == 0:
                raise ConfigError("prompt must be a non-empty 1-D token array")
            session_ids.append(session_id)
            prompts.append(prompt_tokens)
        if len(set(session_ids)) != len(session_ids):
            raise ConfigError("a session cannot appear twice in one batch")
        states = [self.session(session_id) for session_id in session_ids]
        round_totals = [
            len(state.tokens) + prompt.size + n_output_tokens
            for state, prompt in zip(states, prompts)
        ]
        totals_by_session = dict(zip(session_ids, round_totals))
        evicted = [s.session_id for s in states if not s.on_gpu and s.tokens]
        if evicted:
            # Per-session reservations: each restored cache only needs its
            # own round's capacity (the shared *block* is what must fit the
            # largest session, and ensure_stacked below sizes that).
            self.restore_sessions(
                evicted,
                reserve_tokens={sid: totals_by_session[sid] for sid in evicted},
            )
        config = self.transformer.config
        captures: list[HiddenCapture] = []
        logits_rows: list[np.ndarray] = []
        for state, prompt, total in zip(states, prompts, round_totals):
            if not state.on_gpu:
                state.kv_cache = KVCache(config)
            capture, last_logits = self._prefill_round(
                state, prompt, total, n_output_tokens
            )
            captures.append(capture)
            logits_rows.append(last_logits)
        caches = [state.kv_cache for state in states]
        StackedKVCacheBlock.ensure_stacked(caches, reserve_tokens=max(round_totals))
        generated: dict[str, list[int]] = {s: [] for s in session_ids}
        logits = np.stack(logits_rows)
        for _ in range(n_output_tokens):
            step_tokens = np.argmax(logits, axis=1)
            rows = [len(capture) for capture in captures]
            logits = self.transformer.decode_batch(step_tokens, caches, captures=captures)
            for b, state in enumerate(states):
                token = int(step_tokens[b])
                generated[state.session_id].append(token)
                self.hcache.save_states(
                    state.session_id,
                    captures[b].block_views(rows[b], rows[b] + 1),
                    np.array([token]),
                    kv_cache=state.kv_cache,
                )
                state.tokens.append(token)
        return generated

    def decode_iteration(self, tokens_by_session: Mapping[str, int]) -> dict[str, int]:
        """Run one engine iteration's decode batch as a single model call.

        This is the execution half of the continuous-batching plan: the
        scheduler picks the decode set
        (:attr:`repro.engine.splitfuse.IterationPlan.decode_session_ids`),
        and this method feeds each listed session its pending token
        through one :meth:`Transformer.decode_batch` pass, persists the
        captured hidden states, appends to the token logs, and returns
        each session's next greedy token ``{session_id: token}``.

        All sessions must be GPU-resident with non-empty histories (the
        pending token continues a prefilled context).  Caches are
        stacked on first use and the block is reused while the batch
        stays stable; a membership or order change re-stacks (one
        O(batch x history) copy — the numpy analog of remapping KV
        pages into the new batch layout).
        """
        if not tokens_by_session:
            raise ConfigError("decode iteration needs at least one session")
        session_ids = list(tokens_by_session)
        states = [self.session(session_id) for session_id in session_ids]
        for state in states:
            if not state.on_gpu:
                raise StateError(
                    f"session {state.session_id!r} is not GPU-resident; restore it first"
                )
            if not state.tokens:
                raise StateError(
                    f"session {state.session_id!r} has no prefilled context to decode from"
                )
            assert state.kv_cache is not None
            if len(state.kv_cache) != len(state.tokens):
                raise StateError(
                    f"session {state.session_id!r}: cache holds "
                    f"{len(state.kv_cache)} tokens, log has {len(state.tokens)}"
                )
        caches = [state.kv_cache for state in states]
        StackedKVCacheBlock.ensure_stacked(caches)
        config = self.transformer.config
        captures = [
            HiddenCapture(config.n_layers, config.hidden_size) for _ in states
        ]
        step_tokens = np.array(
            [int(tokens_by_session[session_id]) for session_id in session_ids]
        )
        logits = self.transformer.decode_batch(step_tokens, caches, captures=captures)
        for b, state in enumerate(states):
            self.hcache.save_states(
                state.session_id,
                captures[b].block_views(0, 1),
                step_tokens[b : b + 1],
                kv_cache=state.kv_cache,
            )
            state.tokens.append(int(step_tokens[b]))
        return {
            session_id: int(np.argmax(logits[b]))
            for b, session_id in enumerate(session_ids)
        }

    def restore_sessions(
        self,
        session_ids: Sequence[str],
        reserve_tokens: int | Mapping[str, int] = 0,
        shards: "tuple[int, int] | int | None" = None,
    ) -> None:
        """Bring several evicted sessions back onto the GPU at once.

        The serving-layer admission burst: when a batch of requests with
        evicted history is admitted together, their restorations contend
        for one IO path.  With a shared :class:`RestoreExecutor` the
        sessions restore concurrently through its worker pool (each one
        still projecting in deterministic granule order); without one
        they restore sequentially.  Either way every session's cache is
        bit-identical to an individual ``chat_round`` restore.

        ``reserve_tokens`` (the expected context length after the
        upcoming round, when the caller knows it) sizes each restored
        cache up front so the history is not recopied by the first
        post-restore growth — the same reservation ``chat_round`` makes
        for its own restores.  Pass a per-session mapping when the
        sessions' expected lengths differ (missing ids reserve 0): a
        single int would size every cache to the largest session.

        ``shards`` additionally partitions each restoration across a
        ``(pipeline, tensor)`` grid of simulated GPUs (see
        :meth:`HCacheEngine.restore`); a
        :class:`~repro.runtime.sharded.ShardedRestoreExecutor` configured
        as ``self.executor`` shards by its own shape even when this is
        ``None`` — including ``chat_round``'s own restores.
        """
        states = []
        for session_id in session_ids:
            state = self.session(session_id)
            if state.on_gpu:
                raise StateError(f"session {session_id!r} is already on the GPU")
            if not state.tokens:
                raise StateError(f"session {session_id!r} has no history to restore")
            states.append(state)
        if isinstance(reserve_tokens, int):
            reserve = dict.fromkeys(session_ids, reserve_tokens)
        else:
            reserve = {sid: int(reserve_tokens.get(sid, 0)) for sid in session_ids}
        if self.executor is not None:
            caches = self.executor.restore_contexts(
                self.hcache, [s.session_id for s in states], reserve, shards=shards
            )
            for state in states:
                state.kv_cache = caches[state.session_id]
        else:
            for state in states:
                state.kv_cache = self.hcache.restore(
                    state.session_id, reserve[state.session_id], shards=shards
                )

    def evict(self, session_id: str) -> None:
        """Drop a session's GPU state; host storage keeps everything."""
        state = self.session(session_id)
        if not state.on_gpu:
            raise StateError(f"session {session_id!r} is already evicted")
        self.hcache.seal(session_id)
        assert state.kv_cache is not None
        state.kv_cache.release_block_slot()
        state.kv_cache = None

    def close_session(self, session_id: str) -> None:
        """End a conversation and free its storage."""
        state = self.session(session_id)
        if state.kv_cache is not None:
            state.kv_cache.release_block_slot()
        state.kv_cache = None
        self.hcache.drop_context(session_id)
        del self._sessions[session_id]

    def gpu_resident_sessions(self) -> tuple[str, ...]:
        return tuple(s for s, st in self._sessions.items() if st.on_gpu)
