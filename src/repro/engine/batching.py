"""Continuous batching with KV-memory admission control (§2.2).

Requests join and leave the running batch at iteration granularity [Orca].
Admission is gated on GPU memory: a request needs KV room for its whole
context (history + prompt + output budget), which is what limits an
A100-40G to a handful of long contexts (§2.4) and produces the 13B
throughput ceiling in Fig. 9b.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.engine.request import Phase, Request, RequestSpec
from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.simulator.hardware import Platform


@dataclass(frozen=True)
class MemoryBudget:
    """KV-cache capacity of the serving GPUs.

    Attributes:
        capacity_tokens: Tokens of KV cache that fit after weights and an
            activation reserve are subtracted.
    """

    capacity_tokens: int

    def __post_init__(self) -> None:
        if self.capacity_tokens <= 0:
            raise ConfigError("KV capacity must be positive")

    @classmethod
    def for_platform(
        cls, config: ModelConfig, platform: Platform, activation_reserve: float = 0.05
    ) -> "MemoryBudget":
        """Derive the token budget from HBM size, weights, and a reserve.

        Reproduces §2.4's arithmetic: PagedAttention lets an A100-40G hold
        roughly 48K tokens of Llama2-7B KV or 17K of Llama2-13B.
        """
        if not 0 <= activation_reserve < 1:
            raise ConfigError("activation_reserve must be in [0, 1)")
        hbm = platform.gpu.hbm_bytes * platform.n_gpus
        available = hbm * (1 - activation_reserve) - config.weight_bytes
        if available <= 0:
            raise ConfigError(
                f"{config.name} does not fit on {platform.n_gpus}x {platform.gpu.name}"
            )
        return cls(capacity_tokens=int(available // config.kv_bytes_per_token))


class ContinuousBatcher:
    """Tracks queued and running requests against the memory budget."""

    def __init__(self, budget: MemoryBudget, max_running: int = 256) -> None:
        if max_running <= 0:
            raise ConfigError("max_running must be positive")
        self.budget = budget
        self.max_running = max_running
        self.queue: deque[Request] = deque()
        self.running: list[Request] = []
        self._reserved_tokens = 0

    @property
    def reserved_tokens(self) -> int:
        """KV tokens reserved by admitted (running) requests."""
        return self._reserved_tokens

    @property
    def free_tokens(self) -> int:
        return self.budget.capacity_tokens - self._reserved_tokens

    def enqueue(self, request: Request) -> None:
        if request.phase is not Phase.QUEUED:
            raise ConfigError("only queued requests can be enqueued")
        self.queue.append(request)

    def _fits(self, spec: RequestSpec) -> bool:
        return (
            spec.total_context <= self.free_tokens
            and len(self.running) < self.max_running
        )

    def admit(
        self,
        now: float,
        finished_sessions: set[str] | None = None,
        admission_gate: Callable[[RequestSpec], bool] | None = None,
    ) -> list[Request]:
        """Admit queued requests FCFS while memory allows.

        ``finished_sessions`` gates dependent rounds: a round whose
        predecessor has not finished stays queued even if memory is free
        (users do not send round *k+1* before reading round *k*).

        ``admission_gate`` is an extra capacity veto consulted per
        request — the serving front end passes a state-pool pressure
        check (:meth:`repro.state.store.BlockStateStore.admission_headroom`)
        so KV-token accounting and block-pool headroom must *both* admit.
        A gate veto blocks head-of-line exactly like exhausted memory,
        preserving FCFS order.
        """
        admitted: list[Request] = []
        blocked: deque[Request] = deque()
        while self.queue:
            request = self.queue.popleft()
            dep = request.spec.depends_on
            dep_ready = dep is None or (finished_sessions is not None and dep in finished_sessions)
            gate_ok = admission_gate is None or admission_gate(request.spec)
            if dep_ready and gate_ok and self._fits(request.spec):
                self._reserved_tokens += request.spec.total_context
                request.admitted_at = now
                self.running.append(request)
                admitted.append(request)
            else:
                blocked.append(request)
                # FCFS head-of-line: memory-blocked requests keep order,
                # but dependency-blocked ones must not starve later arrivals.
                if not dep_ready:
                    continue
                break
        while blocked:
            self.queue.appendleft(blocked.pop())
        return admitted

    def release(self, request: Request) -> None:
        """Free a finished request's KV reservation."""
        if request not in self.running:
            raise ConfigError(f"request {request.spec.request_id} is not running")
        self.running.remove(request)
        self._reserved_tokens -= request.spec.total_context

    def decoding(self) -> list[Request]:
        return [r for r in self.running if r.phase is Phase.DECODING]

    def decode_batch_sessions(self) -> tuple[str, ...]:
        """Session ids of every running decode-phase request, FCFS order.

        The admission-controlled decode batch: a numeric engine serves
        all of these in one :meth:`Transformer.decode_batch` pass per
        iteration (via
        :meth:`repro.engine.numeric_engine.NumericServingEngine.decode_iteration`)
        rather than looping sessions serially — the whole point of
        continuous batching once memory admission has bounded the set.
        """
        return tuple(r.spec.session_id for r in self.decoding())

    def prefilling(self) -> list[Request]:
        return [r for r in self.running if r.phase is Phase.PREFILLING]

    def restoring(self) -> list[Request]:
        return [r for r in self.running if r.phase is Phase.RESTORING]

    @property
    def idle(self) -> bool:
        return not self.queue and not self.running
