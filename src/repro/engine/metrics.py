"""Serving-quality metric collection (§2.2, §6 "Metrics").

TTFT measures the restoration + prefill + queueing path; TBT measures the
steady decode cadence.  The collector aggregates per-request samples into
the summary statistics the paper plots: mean/median/p95 TTFT, mean TBT,
and sustained throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.request import Phase, Request
from repro.errors import ConfigError, StateError


@dataclass(frozen=True)
class RequestRecord:
    """Immutable per-request measurement.

    ``restore_started_at`` is when the request's restoration IO job got a
    channel; minus the admission time, that is the queueing delay on the
    shared restore IO path — the contention signal
    ``EngineConfig.restore_io_parallelism`` exists to tune.  For requests
    that needed no restoration (no history, ideal method, or a zero-IO
    restore) it equals the admission time; use ``restore_seconds == 0``
    to identify them.
    """

    request_id: str
    session_id: str
    arrival_time: float
    ttft: float
    tbt: float
    queue_delay: float
    restore_seconds: float
    restore_started_at: float
    output_tokens: int
    finished_at: float


@dataclass
class ServingReport:
    """Aggregated serving metrics over one simulation run."""

    n_requests: int
    duration: float
    mean_ttft: float
    p50_ttft: float
    p95_ttft: float
    mean_tbt: float
    p95_tbt: float
    requests_per_second: float
    tokens_per_second: float
    # Tail percentiles the front-end bench plots (defaults keep older
    # pickled/JSON reports loadable).
    p99_ttft: float = 0.0
    p50_tbt: float = 0.0
    p99_tbt: float = 0.0

    def describe(self) -> str:
        return (
            f"{self.n_requests} reqs in {self.duration:.1f}s | "
            f"TTFT mean {self.mean_ttft * 1e3:.1f}ms p95 {self.p95_ttft * 1e3:.1f}ms "
            f"p99 {self.p99_ttft * 1e3:.1f}ms | "
            f"TBT mean {self.mean_tbt * 1e3:.2f}ms | "
            f"{self.requests_per_second:.3f} req/s, {self.tokens_per_second:.1f} tok/s"
        )


@dataclass
class MetricsCollector:
    """Accumulates finished requests and summarizes them."""

    records: list[RequestRecord] = field(default_factory=list)

    def observe(self, request: Request) -> RequestRecord:
        """Record a finished request."""
        if request.phase is not Phase.FINISHED:
            raise StateError("can only observe finished requests")
        restore = 0.0
        if request.restore_finished_at == request.restore_finished_at:  # not NaN
            if request.restore_started_at == request.restore_started_at:
                restore = request.restore_finished_at - request.restore_started_at
        queue_delay = request.admitted_at - request.spec.arrival_time
        record = RequestRecord(
            request_id=request.spec.request_id,
            session_id=request.spec.session_id,
            arrival_time=request.spec.arrival_time,
            ttft=request.ttft,
            tbt=request.tbt,
            queue_delay=queue_delay,
            restore_seconds=restore,
            restore_started_at=request.restore_started_at,
            output_tokens=request.spec.output_tokens,
            finished_at=request.finished_at,
        )
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def summarize(self) -> ServingReport:
        """Aggregate everything observed so far."""
        if not self.records:
            raise StateError("no finished requests to summarize")
        ttfts = np.array([r.ttft for r in self.records])
        tbts = np.array([r.tbt for r in self.records if r.output_tokens > 1])
        if tbts.size == 0:
            tbts = np.array([0.0])
        start = min(r.arrival_time for r in self.records)
        end = max(r.finished_at for r in self.records)
        duration = max(end - start, 1e-9)
        total_tokens = sum(r.output_tokens for r in self.records)
        return ServingReport(
            n_requests=len(self.records),
            duration=duration,
            mean_ttft=float(ttfts.mean()),
            p50_ttft=float(np.percentile(ttfts, 50)),
            p95_ttft=float(np.percentile(ttfts, 95)),
            mean_tbt=float(tbts.mean()),
            p95_tbt=float(np.percentile(tbts, 95)),
            requests_per_second=len(self.records) / duration,
            tokens_per_second=total_tokens / duration,
            p99_ttft=float(np.percentile(ttfts, 99)),
            p50_tbt=float(np.percentile(tbts, 50)),
            p99_tbt=float(np.percentile(tbts, 99)),
        )

    def goodput(self, slo_ttft_s: float) -> float:
        """Output-token rate from requests whose TTFT met the SLO.

        The front-end bench's load sweep plots this against the offered
        rate: past saturation, throughput keeps climbing while goodput
        collapses — the admission-control signal.
        """
        if slo_ttft_s <= 0:
            raise ConfigError("slo_ttft_s must be positive")
        if not self.records:
            raise StateError("no finished requests to summarize")
        start = min(r.arrival_time for r in self.records)
        end = max(r.finished_at for r in self.records)
        duration = max(end - start, 1e-9)
        good_tokens = sum(
            r.output_tokens for r in self.records if r.ttft <= slo_ttft_s
        )
        return good_tokens / duration
