"""SplitFuse chunked-prefill budgeting [Sarathi-Serve / DeepSpeed-FastGen].

Each iteration carries at most ``budget`` tokens of forward work: one token
per decoding sequence plus chunks of pending prefills.  Long prompts are
split across iterations and fused with decoding so prefills do not stall
token generation — the mechanism HCache's serving integration inherits from
DeepSpeed-MII (§5, Request scheduling).  The budget defaults to a
cuBLAS-optimized size, matching §4.1.1's mini-batch observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.request import Phase, Request
from repro.errors import ConfigError
from repro.simulator.gemm import optimal_batch_tokens


@dataclass(frozen=True)
class IterationPlan:
    """Work selected for one engine iteration.

    Attributes:
        decode_requests: Sequences generating one token each.
        prefill_chunks: ``(request, tokens)`` pairs of prompt work.
        budget_used: Total forward tokens this iteration.
    """

    decode_requests: tuple[Request, ...]
    prefill_chunks: tuple[tuple[Request, int], ...]
    budget_used: int

    @property
    def prefill_tokens(self) -> int:
        return sum(tokens for _, tokens in self.prefill_chunks)

    @property
    def has_work(self) -> bool:
        return bool(self.decode_requests or self.prefill_chunks)

    @property
    def decode_session_ids(self) -> tuple[str, ...]:
        """Session ids of this iteration's decode batch, in plan order.

        This is the unit the numeric engine executes as **one** batched
        model call
        (:meth:`repro.engine.numeric_engine.NumericServingEngine.decode_iteration`)
        instead of ``len(decode_requests)`` serial single-token steps —
        the Orca-style iteration batching made real.
        """
        return tuple(r.spec.session_id for r in self.decode_requests)


class SplitFuseScheduler:
    """Selects per-iteration work under a token budget."""

    def __init__(self, budget_tokens: int = 512) -> None:
        if budget_tokens <= 0:
            raise ConfigError("token budget must be positive")
        self.budget_tokens = optimal_batch_tokens(budget_tokens)
        if self.budget_tokens <= 0:
            self.budget_tokens = budget_tokens

    def plan(self, decoding: list[Request], prefilling: list[Request]) -> IterationPlan:
        """Build one iteration: decodes first, then FCFS prefill chunks."""
        for request in decoding:
            if request.phase is not Phase.DECODING:
                raise ConfigError("decode list contains a non-decoding request")
        budget = self.budget_tokens
        # Decoding tokens always fit: generation must not starve (§2.2),
        # so ``budget_used`` may exceed the budget when the decode batch
        # alone overflows it — prefills then get nothing this iteration.
        used = len(decoding)
        chunks: list[tuple[Request, int]] = []
        remaining = max(0, budget - used)
        for request in prefilling:
            if request.phase is not Phase.PREFILLING:
                raise ConfigError("prefill list contains a non-prefilling request")
            if remaining <= 0:
                break
            take = min(request.prefill_remaining, remaining)
            if take > 0:
                chunks.append((request, take))
                remaining -= take
                used += take
        return IterationPlan(
            decode_requests=tuple(decoding),
            prefill_chunks=tuple(chunks),
            budget_used=used,
        )
