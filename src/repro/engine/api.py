"""Typed request/response surface of the serving front end.

The submit/step engine API (PR 10) replaces the ad-hoc ``chat_rounds`` /
``decode_iteration`` call patterns with three small, documented types:

- :class:`ServingRequest` — what a caller submits (one conversation
  round: a prompt continuing a session plus an output budget);
- :class:`ServingResponse` — what a finished request resolves to (the
  generated tokens and the timestamps that define TTFT/TPOT);
- :class:`IterationStats` — what one :meth:`ServingFrontend.step`
  reports (admissions, restore traffic, the fused batch composition,
  and the number of model calls — pinned to at most one per iteration).

:class:`IterationResult` is the engine-level counterpart: what
:meth:`NumericServingEngine.execute_iteration` returns for one fused
prefill+decode model call.

This module's ``__all__`` is pinned by the ``frontend-api`` lint rule;
additions must update the rule's expected surface in the same change.
"""

from __future__ import annotations

from dataclasses import dataclass as _dataclass
from dataclasses import field as _field
from typing import Mapping as _Mapping

import numpy as np

from repro.errors import ConfigError as _ConfigError

__all__ = [
    "IterationResult",
    "IterationStats",
    "ServingRequest",
    "ServingResponse",
]


@_dataclass(frozen=True)
class ServingRequest:
    """One conversation round submitted to the serving front end.

    Attributes:
        session_id: Conversation / storage-context identity.  Rounds of
            one session execute in submission order; history the engine
            evicted between rounds is restored transparently.
        prompt_tokens: The round's new prompt, a non-empty 1-D token
            array (normalized to ``np.ndarray`` on construction).
        max_new_tokens: Greedy tokens to generate (> 0).
        request_id: Stable unique id; ``None`` lets the front end assign
            ``"<session_id>/r<n>"`` at submit time.
        arrival_time: Submission timestamp on the front end's clock;
            ``None`` means "when :meth:`ServingFrontend.submit` runs".
            Trace replays pass explicit arrivals so queueing delay is
            measured against the offered load, not the submit loop.
        slo_ttft_s: Optional time-to-first-token target used for
            SLO-aware scheduling (earliest-deadline-first prefill order)
            and goodput accounting; ``None`` means best effort.
    """

    session_id: str
    prompt_tokens: np.ndarray
    max_new_tokens: int
    request_id: str | None = None
    arrival_time: float | None = None
    slo_ttft_s: float | None = None

    def __post_init__(self) -> None:
        prompt = np.asarray(self.prompt_tokens)
        if prompt.ndim != 1 or prompt.size == 0:
            raise _ConfigError("prompt must be a non-empty 1-D token array")
        object.__setattr__(self, "prompt_tokens", prompt)
        if self.max_new_tokens <= 0:
            raise _ConfigError("max_new_tokens must be positive")
        if self.arrival_time is not None and self.arrival_time < 0:
            raise _ConfigError("arrival time must be non-negative")
        if self.slo_ttft_s is not None and self.slo_ttft_s <= 0:
            raise _ConfigError("slo_ttft_s must be positive when given")


@_dataclass(frozen=True)
class ServingResponse:
    """A finished request: its token stream plus the serving timeline."""

    request_id: str
    session_id: str
    tokens: tuple[int, ...]
    arrival_time: float
    admitted_at: float
    first_token_at: float
    finished_at: float
    restore_seconds: float = 0.0

    @property
    def ttft(self) -> float:
        """Time to first token (arrival to end of prefill)."""
        return self.first_token_at - self.arrival_time

    @property
    def tpot(self) -> float:
        """Mean time per output token after the first one (a.k.a. TBT)."""
        n_gaps = len(self.tokens) - 1
        if n_gaps <= 0:
            return 0.0
        return (self.finished_at - self.first_token_at) / n_gaps


@_dataclass(frozen=True)
class IterationStats:
    """What one :meth:`ServingFrontend.step` did — the iteration event.

    All id tuples hold *request* ids except ``decode_sessions`` (the
    fused batch is keyed by session, matching
    :meth:`IterationPlan.decode_session_ids`).
    """

    index: int
    time: float
    admitted: tuple[str, ...] = ()
    rejected: tuple[str, ...] = ()
    restores_started: tuple[str, ...] = ()
    restores_completed: tuple[str, ...] = ()
    prefill_chunks: tuple[tuple[str, int], ...] = ()
    decode_sessions: tuple[str, ...] = ()
    finished: tuple[str, ...] = ()
    #: Batched transformer calls this iteration issued — 0 (nothing
    #: runnable) or 1 (the fused prefill+decode pass); never more.
    model_calls: int = 0

    @property
    def prefill_tokens(self) -> int:
        return sum(tokens for _, tokens in self.prefill_chunks)

    @property
    def batch_size(self) -> int:
        """Segments in the fused model call (prefill chunks + decodes)."""
        return len(self.prefill_chunks) + len(self.decode_sessions)

    @property
    def has_work(self) -> bool:
        return self.model_calls > 0


@_dataclass(frozen=True)
class IterationResult:
    """Outcome of one :meth:`NumericServingEngine.execute_iteration` call.

    Attributes:
        next_tokens: Each executed session's next greedy token.  For a
            prefill chunk that did not reach the end of its prompt the
            value is the argmax over the chunk's last row — computed for
            free but meaningless mid-prompt; the front end only consumes
            it when the chunk completes the prompt.
        model_calls: Batched transformer calls issued (always 1; typed
            so regression tests pin the fused-iteration contract).
    """

    next_tokens: _Mapping[str, int] = _field(default_factory=dict)
    model_calls: int = 1
