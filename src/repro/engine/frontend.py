"""Async serving front end: submit/step/stream with admission control.

The serving loop the paper's restoration primitive exists to feed (§5):
requests arrive continuously, admission control gates them on KV memory
(and optionally block-pool headroom), evicted histories restore in the
background while resident sessions keep decoding, and every iteration
executes as **one** fused prefill+decode model call
(:meth:`NumericServingEngine.execute_iteration`).

Ownership and threading rules (the event-loop contract):

- **Calling thread owns everything mutable**: the queue, the batcher,
  session states, caches, token logs, and every model call run on
  whichever thread calls :meth:`ServingFrontend.step`.  The front end is
  not itself thread-safe — one driver thread, like an asyncio loop.
- **Restore workers touch only their own restoration**: with
  ``overlap_restores`` and a configured executor, admitted-but-evicted
  sessions restore via
  :meth:`~repro.runtime.executor.RestoreExecutor.restore_contexts_async`
  on driver threads (granule reads on the shared IO pool, projection
  GEMMs under released GILs).  A restoring session sits in the
  RESTORING phase, excluded from every iteration plan, and its finished
  cache is installed by the calling thread when :meth:`step` polls the
  future — workers never mutate session state.
- **Saves vs restores**: decode iterations save *other* sessions' states
  while restores read storage; that concurrency is sanctioned by the
  :meth:`HCacheEngine.restore` contract (distinct contexts only — the
  RESTORING phase guarantees the restoring context gets no saves).

This module's ``__all__`` is pinned by the ``frontend-api`` lint rule.
"""

from __future__ import annotations

import time
from concurrent.futures import Future as _Future
from typing import TYPE_CHECKING as _TYPE_CHECKING
from typing import Callable as _Callable
from typing import Iterator as _Iterator

import numpy as np

from repro.engine.api import IterationStats as _IterationStats
from repro.engine.api import ServingRequest as _ServingRequest
from repro.engine.api import ServingResponse as _ServingResponse
from repro.engine.batching import ContinuousBatcher as _ContinuousBatcher
from repro.engine.batching import MemoryBudget as _MemoryBudget
from repro.engine.metrics import MetricsCollector as _MetricsCollector
from repro.engine.numeric_engine import NumericServingEngine as _NumericServingEngine
from repro.engine.request import Phase as _Phase
from repro.engine.request import Request as _Request
from repro.engine.request import RequestSpec as _RequestSpec
from repro.engine.splitfuse import SplitFuseScheduler as _SplitFuseScheduler
from repro.errors import AdmissionError as _AdmissionError
from repro.errors import ConfigError as _ConfigError
from repro.errors import SchedulingError as _SchedulingError
from repro.errors import StateError as _StateError
from repro.models.kv_cache import KVCache as _KVCache

if _TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.state.store import BlockStateStore

__all__ = [
    "RequestHandle",
    "ServingFrontend",
    "pool_admission_gate",
]


def pool_admission_gate(
    store: "BlockStateStore", *, headroom_blocks: int = 0
) -> _Callable[[_RequestSpec], bool]:
    """Admission veto tied to a shared block pool's real headroom.

    Returns a gate for :class:`ServingFrontend` (and ultimately
    :meth:`ContinuousBatcher.admit`) that only admits a request when the
    pool can absorb its whole context *now* — free blocks plus evictable
    refcount-0 blocks, minus a ``headroom_blocks`` safety margin kept for
    in-flight appends.  Token-budget accounting alone cannot see pool
    pressure from prefix sharing and pinned blocks; this closes that gap
    with :meth:`BlockStateStore.admission_headroom`.
    """
    if headroom_blocks < 0:
        raise _ConfigError("headroom_blocks must be non-negative")

    def gate(spec: _RequestSpec) -> bool:
        margin = headroom_blocks * store.pool.block_tokens
        return store.admission_headroom(spec.total_context + margin)

    return gate


class _Tracked:
    """Front-end bookkeeping for one submitted request."""

    __slots__ = (
        "serving",
        "request",
        "emitted",
        "fed",
        "pending",
        "restore_future",
    )

    def __init__(self, serving: _ServingRequest, request: _Request) -> None:
        self.serving = serving
        self.request = request
        #: Generated tokens visible to :meth:`ServingFrontend.stream`.
        self.emitted: list[int] = []
        #: Generated tokens fed back through the model (every generated
        #: token is fed + saved, including the last — matching
        #: ``chat_round``'s save discipline, so the token log and the
        #: persisted states cover the full stream).
        self.fed = 0
        #: Next token to feed, once decoding.
        self.pending: int | None = None
        self.restore_future: _Future[_KVCache] | None = None


class RequestHandle:
    """Caller-facing view of one submitted request.

    Cheap and read-only: all state lives in the front end; the handle
    only knows its ids and where to look.
    """

    __slots__ = ("_frontend", "request_id", "session_id")

    def __init__(
        self, frontend: "ServingFrontend", request_id: str, session_id: str
    ) -> None:
        self._frontend = frontend
        self.request_id = request_id
        self.session_id = session_id

    def __repr__(self) -> str:
        return f"RequestHandle({self.request_id!r}, session={self.session_id!r})"

    @property
    def phase(self) -> _Phase:
        return self._frontend._tracked[self.request_id].request.phase

    @property
    def finished(self) -> bool:
        return self.phase is _Phase.FINISHED

    def tokens(self) -> tuple[int, ...]:
        """Tokens generated so far (the full stream once finished)."""
        return tuple(self._frontend._tracked[self.request_id].emitted)

    def result(self) -> _ServingResponse:
        """The finished response; raises until the request finishes."""
        response = self._frontend._responses.get(self.request_id)
        if response is None:
            raise _StateError(
                f"request {self.request_id!r} has not finished "
                f"(phase {self.phase.value}); drive step() or stream() first"
            )
        return response


class ServingFrontend:
    """Concurrent request loop over a :class:`NumericServingEngine`.

    ``submit`` enqueues typed requests (rejecting impossible ones with
    :class:`~repro.errors.AdmissionError`), ``step`` runs one
    admission → schedule → fused-iteration → restore-overlap cycle and
    reports it as an :class:`~repro.engine.api.IterationStats`, and
    ``stream`` yields a request's tokens as iterations produce them.

    Args:
        engine: The numeric engine whose sessions this loop serves.
            Sessions are opened lazily at first submit; pre-existing
            sessions (and their evicted histories) are picked up as-is.
        budget: KV-token capacity gating admission
            (:class:`~repro.engine.batching.MemoryBudget`).
        scheduler: SplitFuse chunked-prefill budgeter; default budget.
        max_running: Cap on concurrently admitted requests.
        max_queue: Arrival-queue bound; submits beyond it are rejected
            with :class:`AdmissionError` (typed back-pressure).
        admission_gate: Extra per-request admission veto, e.g.
            :func:`pool_admission_gate`; consulted by every admit pass.
        overlap_restores: Restore admitted-but-evicted sessions in the
            background through ``engine.executor`` while decode
            continues (requires an executor; without one, restores run
            synchronously in the admitting step).  The shimmed
            ``chat_rounds`` path disables this to keep the legacy
            burst-then-prefill ordering.
        evict_on_finish: Seal + drop a session's GPU cache when its last
            in-flight request finishes (the next round restores it) —
            the high-churn configuration a million-session trace needs.
            Default keeps finished sessions resident.
        clock: Timestamp source (seconds, monotonic); default
            ``time.perf_counter``.  Injectable for deterministic tests.
    """

    def __init__(
        self,
        engine: _NumericServingEngine,
        budget: _MemoryBudget,
        *,
        scheduler: _SplitFuseScheduler | None = None,
        max_running: int = 256,
        max_queue: int = 4096,
        admission_gate: _Callable[[_RequestSpec], bool] | None = None,
        overlap_restores: bool = True,
        evict_on_finish: bool = False,
        clock: _Callable[[], float] | None = None,
    ) -> None:
        if max_queue < 1:
            raise _ConfigError("max_queue must be at least 1")
        self.engine = engine
        self.batcher = _ContinuousBatcher(budget, max_running=max_running)
        self.scheduler = scheduler if scheduler is not None else _SplitFuseScheduler()
        self.metrics = _MetricsCollector()
        self.max_queue = max_queue
        self.admission_gate = admission_gate
        self.overlap_restores = overlap_restores
        self.evict_on_finish = evict_on_finish
        self._clock = clock if clock is not None else time.perf_counter
        self._tracked: dict[str, _Tracked] = {}
        self._responses: dict[str, _ServingResponse] = {}
        self._finished_ids: set[str] = set()
        self._rejected = 0
        self._iteration = 0
        #: Last submitted (not yet finished) request id per session — the
        #: dependency chain that keeps a session's rounds in order.
        self._session_tail: dict[str, str] = {}
        #: Token-log length each session will have reached once all its
        #: submitted rounds run — the history the *next* round sees.
        self._projected_len: dict[str, int] = {}
        self._round_counter: dict[str, int] = {}

    # -- submission ----------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self.batcher.queue)

    @property
    def n_running(self) -> int:
        return len(self.batcher.running)

    @property
    def rejected_requests(self) -> int:
        """Requests :meth:`submit` refused with :class:`AdmissionError`."""
        return self._rejected

    @property
    def idle(self) -> bool:
        return self.batcher.idle

    def submit(self, request: _ServingRequest) -> RequestHandle:
        """Enqueue one round; typed rejection instead of a deep crash.

        Raises:
            AdmissionError: if the request's full context could never fit
                the KV budget (it would queue forever), or the arrival
                queue is at ``max_queue`` (back-pressure: retry later).
            ConfigError: on a duplicate ``request_id``.
        """
        session_id = request.session_id
        if request.request_id is None:
            n = self._round_counter.get(session_id, 0)
            self._round_counter[session_id] = n + 1
            request_id = f"{session_id}/r{n}"
        else:
            request_id = request.request_id
        if request_id in self._tracked:
            raise _ConfigError(f"request id {request_id!r} was already submitted")

        if not self.engine.has_session(session_id):
            self.engine.open_session(session_id)
        if session_id not in self._session_tail:
            # No in-flight rounds: (re-)base the projection on the real
            # log, in case the session was served outside this front end.
            self._projected_len[session_id] = len(
                self.engine.session(session_id).tokens
            )
        history = self._projected_len[session_id]
        now = self._clock()
        arrival = request.arrival_time if request.arrival_time is not None else now
        spec = _RequestSpec(
            request_id=request_id,
            session_id=session_id,
            arrival_time=arrival,
            history_tokens=history,
            input_tokens=int(request.prompt_tokens.size),
            output_tokens=request.max_new_tokens,
            depends_on=self._session_tail.get(session_id),
        )
        if spec.total_context > self.batcher.budget.capacity_tokens:
            self._rejected += 1
            raise _AdmissionError(
                f"request {request_id!r} needs {spec.total_context} KV tokens; "
                f"the budget holds {self.batcher.budget.capacity_tokens} — "
                "it can never be admitted"
            )
        if self.queue_depth >= self.max_queue:
            self._rejected += 1
            raise _AdmissionError(
                f"arrival queue is full ({self.max_queue} requests); retry later"
            )
        tracked = _Tracked(request, _Request(spec=spec))
        self.batcher.enqueue(tracked.request)
        self._tracked[request_id] = tracked
        self._session_tail[session_id] = request_id
        self._projected_len[session_id] = (
            history + spec.input_tokens + spec.output_tokens
        )
        return RequestHandle(self, request_id, session_id)

    # -- the iteration loop --------------------------------------------

    def step(self) -> _IterationStats:
        """Run one serving iteration; at most one batched model call.

        Order within the step: finished background restores are settled
        (caches installed, sessions become schedulable), queued requests
        are admitted FCFS under the KV budget + gate, newly admitted
        evicted sessions start restoring (async when overlapping),
        SplitFuse plans the token budget over decoding + prefilling
        requests — prefills in earliest-TTFT-deadline order — and the
        plan executes as one fused :meth:`execute_iteration` call.
        """
        now = self._clock()
        index = self._iteration
        self._iteration += 1
        restores_completed = self._settle_restores()
        admitted = self.batcher.admit(
            now, finished_sessions=self._finished_ids, admission_gate=self.admission_gate
        )
        restores_started = self._start_admitted(admitted, now)
        plan = self.scheduler.plan(
            self.batcher.decoding(), self._prefill_order(self.batcher.prefilling())
        )
        if not plan.has_work:
            if self.batcher.restoring():
                # Only background restores are runnable: yield briefly so
                # the poll loop does not spin a core against the futures.
                time.sleep(0.0002)  # lint: disable=exception-safety -- genuine wall-clock backoff while polling restore futures, not modelled latency
            return _IterationStats(
                index=index,
                time=now,
                admitted=tuple(r.spec.request_id for r in admitted),
                restores_started=restores_started,
                restores_completed=restores_completed,
                model_calls=0,
            )

        chunks: list[tuple[str, np.ndarray]] = []
        for request, take in plan.prefill_chunks:
            tracked = self._tracked[request.spec.request_id]
            done = request.spec.input_tokens - request.prefill_remaining
            chunks.append(
                (request.spec.session_id, tracked.serving.prompt_tokens[done : done + take])
            )
        decode_tokens: dict[str, int] = {}
        for request in plan.decode_requests:
            tracked = self._tracked[request.spec.request_id]
            assert tracked.pending is not None
            decode_tokens[request.spec.session_id] = tracked.pending

        result = self.engine.execute_iteration(chunks, decode_tokens)

        finished: list[str] = []
        for request, take in plan.prefill_chunks:
            tracked = self._tracked[request.spec.request_id]
            request.prefill_remaining -= take
            if request.prefill_remaining == 0:
                token = int(result.next_tokens[request.spec.session_id])
                request.mark_first_token(self._clock())
                tracked.emitted.append(token)
                tracked.pending = token
        for request in plan.decode_requests:
            tracked = self._tracked[request.spec.request_id]
            tracked.fed += 1
            if tracked.fed < request.spec.output_tokens:
                token = int(result.next_tokens[request.spec.session_id])
                tracked.emitted.append(token)
                tracked.pending = token
                request.decoded_tokens += 1
            else:
                self._finish(tracked)
                finished.append(request.spec.request_id)
        return _IterationStats(
            index=index,
            time=now,
            admitted=tuple(r.spec.request_id for r in admitted),
            restores_started=restores_started,
            restores_completed=restores_completed,
            prefill_chunks=tuple(
                (r.spec.request_id, take) for r, take in plan.prefill_chunks
            ),
            decode_sessions=plan.decode_session_ids,
            finished=tuple(finished),
            model_calls=result.model_calls,
        )

    def _prefill_order(self, prefilling: list[_Request]) -> list[_Request]:
        """SLO-aware prefill order: earliest TTFT deadline first.

        Requests without an SLO sort last among themselves in FCFS order
        (the sort is stable), so mixing SLO and best-effort traffic keeps
        the legacy behaviour for the latter.
        """
        deadline: dict[str, float] = {}
        for request in prefilling:
            slo = self._tracked[request.spec.request_id].serving.slo_ttft_s
            deadline[request.spec.request_id] = (
                float("inf") if slo is None else request.spec.arrival_time + slo
            )
        return sorted(prefilling, key=lambda r: deadline[r.spec.request_id])

    def _start_admitted(
        self, admitted: list[_Request], now: float
    ) -> tuple[str, ...]:
        """Move admitted requests into RESTORING or PREFILLING."""
        config = self.engine.transformer.config
        sync_restore: list[_Request] = []
        started: list[str] = []
        for request in admitted:
            state = self.engine.session(request.spec.session_id)
            if state.tokens and not state.on_gpu:
                request.phase = _Phase.RESTORING
                request.restore_started_at = now
                started.append(request.spec.request_id)
                sync_restore.append(request)
            else:
                if not state.on_gpu:
                    state.kv_cache = _KVCache(config)
                state.kv_cache.reserve(request.spec.total_context)
                request.phase = _Phase.PREFILLING
        if not sync_restore:
            return tuple(started)
        reserve = {
            r.spec.session_id: r.spec.total_context for r in sync_restore
        }
        if self.overlap_restores and self.engine.executor is not None:
            futures = self.engine.executor.restore_contexts_async(
                self.engine.hcache,
                [r.spec.session_id for r in sync_restore],
                reserve_tokens=reserve,
            )
            for request in sync_restore:
                tracked = self._tracked[request.spec.request_id]
                tracked.restore_future = futures[request.spec.session_id]
        else:
            # One synchronous burst through the shared pool (or serially
            # without an executor) — the legacy chat_rounds ordering.
            self.engine.restore_sessions(
                [r.spec.session_id for r in sync_restore], reserve_tokens=reserve
            )
            done = self._clock()
            for request in sync_restore:
                request.restore_finished_at = done
                request.phase = _Phase.PREFILLING
        return tuple(started)

    def _settle_restores(self) -> tuple[str, ...]:
        """Install finished background restores (calling thread only)."""
        completed: list[str] = []
        for request in self.batcher.restoring():
            tracked = self._tracked[request.spec.request_id]
            future = tracked.restore_future
            if future is None or not future.done():
                continue
            tracked.restore_future = None
            cache = future.result()  # a failed restore propagates here
            state = self.engine.session(request.spec.session_id)
            state.kv_cache = cache
            request.restore_finished_at = self._clock()
            request.phase = _Phase.PREFILLING
            completed.append(request.spec.request_id)
        return tuple(completed)

    def _finish(self, tracked: _Tracked) -> None:
        request = tracked.request
        session_id = request.spec.session_id
        request.mark_finished(self._clock())
        self.batcher.release(request)
        self._finished_ids.add(request.spec.request_id)
        self.metrics.observe(request)
        if self._session_tail.get(session_id) == request.spec.request_id:
            del self._session_tail[session_id]
        restore_seconds = 0.0
        if request.restore_finished_at == request.restore_finished_at:  # not NaN
            if request.restore_started_at == request.restore_started_at:
                restore_seconds = (
                    request.restore_finished_at - request.restore_started_at
                )
        self._responses[request.spec.request_id] = _ServingResponse(
            request_id=request.spec.request_id,
            session_id=session_id,
            tokens=tuple(tracked.emitted),
            arrival_time=request.spec.arrival_time,
            admitted_at=request.admitted_at,
            first_token_at=request.first_token_at,
            finished_at=request.finished_at,
            restore_seconds=restore_seconds,
        )
        if self.evict_on_finish and session_id not in self._session_tail:
            self.engine.evict(session_id)

    # -- draining ------------------------------------------------------

    def stream(self, handle: RequestHandle) -> _Iterator[int]:
        """Yield ``handle``'s tokens, driving :meth:`step` while starved."""
        tracked = self._tracked[handle.request_id]
        emitted = 0
        while True:
            while emitted < len(tracked.emitted):
                yield tracked.emitted[emitted]
                emitted += 1
            if tracked.request.phase is _Phase.FINISHED:
                return
            self._checked_step()

    def run_until_idle(self, max_steps: int | None = None) -> list[_IterationStats]:
        """Drive :meth:`step` until every submitted request finished."""
        stats: list[_IterationStats] = []
        while not self.batcher.idle:
            if max_steps is not None and len(stats) >= max_steps:
                raise _SchedulingError(
                    f"serving loop still busy after {max_steps} steps "
                    f"({self.n_running} running, {self.queue_depth} queued)"
                )
            stats.append(self._checked_step())
        return stats

    def _checked_step(self) -> _IterationStats:
        """One step that refuses to spin forever on a stalled loop."""
        stats = self.step()
        if (
            not stats.has_work
            and not stats.admitted
            and not stats.restores_started
            and not stats.restores_completed
            and not self.batcher.restoring()
            and not self.batcher.idle
        ):
            raise _SchedulingError(
                "serving loop stalled: queued work exists but nothing can be "
                "admitted or executed (check the admission gate and budget)"
            )
        return stats
