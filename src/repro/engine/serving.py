"""Discrete-event LLM serving simulation.

Reproduces the serving stack HCache was implemented in (DeepSpeed-MII with
continuous batching and SplitFuse, §5) as an iteration-level event
simulation:

- Requests arrive, wait for admission (KV memory), and move through the
  restoration -> prefill -> decode phases.
- Every iteration carries one token per decoding sequence plus SplitFuse
  chunks of pending prefills; its duration comes from the decode bandwidth
  model plus the chunk compute.
- Restoration is split into an **IO job** (serialized on the PCIe/storage
  path — or spread over ``restore_io_parallelism`` channels modelling the
  shared IO worker pool — overlapping decode compute) and **compute work** (consumed inside
  iterations under the same token budget, contending with decode — which
  is why recomputation hurts TBT and TTFT while KV offload hurts only
  TTFT, and why HCache's small projection cost leaves TBT within a few
  percent of ideal, Fig. 9d-f).
- The recomputation baseline folds history into the prompt (that *is* its
  restoration, §2.4), so it pays the quadratic prefill through SplitFuse
  exactly like DeepSpeed-MII does.

The numeric transformer is not executed here — this module is about
*when* work happens; :mod:`repro.engine.numeric_engine` is about *what*
it computes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.base import RestorationMethod
from repro.baselines.ideal import IdealMethod
from repro.baselines.recomputation import RecomputationMethod
from repro.engine.batching import ContinuousBatcher, MemoryBudget
from repro.engine.metrics import MetricsCollector, ServingReport
from repro.engine.request import Phase, Request, RequestSpec
from repro.engine.splitfuse import SplitFuseScheduler
from repro.errors import ConfigError, SimulationError
from repro.models.config import ModelConfig
from repro.simulator.costs import decode_iteration_time, full_layer_flops
from repro.simulator.hardware import Platform


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the serving simulation.

    Attributes:
        budget_tokens: SplitFuse per-iteration token budget.
        activation_reserve: HBM fraction reserved for activations.
        max_running: Concurrency cap of the running batch.
        max_sim_seconds: Safety horizon; the run aborts past it.
        restore_io_parallelism: Concurrent restoration IO channels — the
            timing-model counterpart of the numeric engines' shared
            :class:`repro.runtime.IOWorkerPool`.  With 1 (the default,
            and the paper's single PCIe/storage path) restoration IO jobs
            serialize behind each other; with ``k`` an admitted burst of
            ``k`` restores starts transferring at once and only the
            ``k+1``-th waits.
    """

    budget_tokens: int = 512
    activation_reserve: float = 0.05
    max_running: int = 256
    max_sim_seconds: float = 24 * 3600.0
    restore_io_parallelism: int = 1


class ServingSimulator:
    """Iteration-level serving simulation for one restoration method."""

    def __init__(
        self,
        config: ModelConfig,
        platform: Platform,
        method: RestorationMethod,
        engine_config: EngineConfig | None = None,
    ) -> None:
        self.config = config
        self.platform = platform
        self.method = method
        self.engine_config = engine_config or EngineConfig()
        budget = MemoryBudget.for_platform(
            config, platform, self.engine_config.activation_reserve
        )
        self.batcher = ContinuousBatcher(budget, self.engine_config.max_running)
        self.splitfuse = SplitFuseScheduler(self.engine_config.budget_tokens)
        flops_per_token = config.n_layers * full_layer_flops(config, 1)
        self._prefill_sec_per_token = flops_per_token / (
            platform.total_flops * platform.prefill_efficiency
        )
        if self.engine_config.restore_io_parallelism < 1:
            raise ConfigError("restore_io_parallelism must be at least 1")
        #: One entry per restoration IO channel: when it frees up next.
        self._io_free_at = [0.0] * self.engine_config.restore_io_parallelism
        self._now = 0.0
        self.metrics = MetricsCollector()
        self._finished_sessions: set[str] = set()

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------

    def _make_request(self, spec: RequestSpec) -> Request:
        request = Request(spec=spec)
        if spec.history_tokens == 0 or isinstance(self.method, IdealMethod):
            request.restore_io_remaining = 0.0
            request.restore_compute_remaining = 0.0
        elif isinstance(self.method, RecomputationMethod):
            # History becomes prompt work: the prefill *is* the restoration.
            request.prefill_remaining = spec.history_tokens + spec.input_tokens
        else:
            timing = self.method.restoration_timing(spec.history_tokens)
            request.restore_io_remaining = timing.io_busy
            request.restore_compute_remaining = timing.compute_busy
        return request

    def _admit(self) -> None:
        for request in self.batcher.admit(self._now, self._finished_sessions):
            needs_restore = (
                request.restore_io_remaining > 0 or request.restore_compute_remaining > 0
            )
            if needs_restore:
                request.phase = Phase.RESTORING
                if request.restore_io_remaining > 0:
                    # Earliest-free IO channel; with parallelism 1 this is
                    # the single serialized PCIe/storage path.
                    channel = min(
                        range(len(self._io_free_at)), key=self._io_free_at.__getitem__
                    )
                    start = max(self._now, self._io_free_at[channel])
                    request.restore_started_at = start
                    request.restore_io_done_at = start + request.restore_io_remaining
                    self._io_free_at[channel] = request.restore_io_done_at
                else:
                    # Zero-IO restorations (e.g. pure-recompute schemes or
                    # DRAM-warm reads with negligible transfer) never touch
                    # the IO path: their compute may start immediately and
                    # they must not serialize behind other requests' IO.
                    request.restore_started_at = self._now
                    request.restore_io_done_at = self._now
            else:
                request.phase = Phase.PREFILLING
                request.restore_started_at = self._now
                request.restore_finished_at = self._now

    def _complete_restorations(self) -> None:
        for request in self.batcher.restoring():
            io_done = self._now + 1e-12 >= request.restore_io_done_at
            compute_done = request.restore_compute_remaining <= 1e-12
            if io_done and compute_done:
                request.restore_finished_at = max(
                    request.restore_io_done_at, request.restore_started_at, self._now
                )
                request.phase = Phase.PREFILLING

    # ------------------------------------------------------------------
    # iterations
    # ------------------------------------------------------------------

    def _iteration(self) -> bool:
        """Run one iteration; returns False when there was nothing to do."""
        decoding = self.batcher.decoding()
        prefilling = self.batcher.prefilling()
        restoring = [
            r
            for r in self.batcher.restoring()
            if r.restore_compute_remaining > 1e-12
            and self._now + 1e-12 >= request_io_start(r)
        ]
        plan = self.splitfuse.plan(decoding, prefilling)
        if not plan.has_work and not restoring:
            return False

        duration = self.platform.iteration_overhead
        context_tokens = sum(r.context_tokens for r in decoding)
        if decoding:
            duration += decode_iteration_time(
                self.config, self.platform, len(decoding), context_tokens
            )
        if plan.prefill_tokens:
            duration += plan.prefill_tokens * self._prefill_sec_per_token

        # Restoration compute shares the leftover SplitFuse budget so it
        # cannot starve decoding (the projection GEMMs are a few hundred
        # microseconds; recompute-prefix work is bigger but still bounded).
        budget_left = max(0, self.splitfuse.budget_tokens - plan.budget_used)
        restore_capacity = budget_left * self._prefill_sec_per_token
        if not plan.has_work:
            restore_capacity = self.splitfuse.budget_tokens * self._prefill_sec_per_token
        for request in restoring:
            if restore_capacity <= 0:
                break
            slice_sec = min(request.restore_compute_remaining, restore_capacity)
            request.restore_compute_remaining -= slice_sec
            restore_capacity -= slice_sec
            duration += slice_sec

        self._now += duration

        for request, tokens in plan.prefill_chunks:
            request.prefill_remaining -= tokens
            if request.prefill_remaining < 0:
                raise SimulationError("prefill chunk exceeded the remaining prompt")
            if request.prefill_remaining == 0:
                request.mark_first_token(self._now)
                if request.decoded_tokens >= request.spec.output_tokens:
                    self._finish(request)
        for request in plan.decode_requests:
            request.decoded_tokens += 1
            if request.decoded_tokens >= request.spec.output_tokens:
                request.mark_finished(self._now)
                self._release(request)
        return True

    def _finish(self, request: Request) -> None:
        request.mark_finished(self._now)
        self._release(request)

    def _release(self, request: Request) -> None:
        self.batcher.release(request)
        self.metrics.observe(request)
        self._finished_sessions.add(request.spec.request_id)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, specs: list[RequestSpec]) -> ServingReport:
        """Simulate serving ``specs`` to completion and summarize."""
        if not specs:
            raise ConfigError("no requests to serve")
        pending = sorted(specs, key=lambda s: s.arrival_time)
        capacity = self.batcher.budget.capacity_tokens
        for spec in pending:
            if spec.total_context > capacity:
                raise ConfigError(
                    f"request {spec.request_id} needs {spec.total_context} KV tokens; "
                    f"capacity is {capacity} (shrink the trace or the model)"
                )
        idx = 0
        horizon = self.engine_config.max_sim_seconds
        while idx < len(pending) or not self.batcher.idle:
            if self._now > horizon:
                raise SimulationError(f"simulation exceeded {horizon}s; likely overload")
            while idx < len(pending) and pending[idx].arrival_time <= self._now + 1e-12:
                self.batcher.enqueue(self._make_request(pending[idx]))
                idx += 1
            self._admit()
            self._complete_restorations()
            progressed = self._iteration()
            if progressed:
                continue
            # Nothing computable: advance to the next event.
            next_times = []
            if idx < len(pending):
                next_times.append(pending[idx].arrival_time)
            for request in self.batcher.restoring():
                next_times.append(request.restore_io_done_at)
            if not next_times:
                if self.batcher.queue:
                    # Memory/dependency deadlock cannot resolve on its own.
                    raise SimulationError(
                        "queued requests can never be admitted "
                        "(memory too small or dependency missing)"
                    )
                break
            next_time = min(next_times)
            if next_time <= self._now:
                next_time = self._now + 1e-6
            self._now = next_time
        return self.metrics.summarize()


def request_io_start(request: Request) -> float:
    """When a restoring request's pipelined compute may begin.

    HCache's projections start as soon as the first hidden-state chunks
    arrive, i.e. with the IO job's start rather than its completion.
    """
    return request.restore_started_at


def simulate_methods(
    config: ModelConfig,
    platform: Platform,
    methods: dict[str, RestorationMethod],
    specs: list[RequestSpec],
    engine_config: EngineConfig | None = None,
) -> dict[str, ServingReport]:
    """Run the same trace through several restoration methods."""
    reports: dict[str, ServingReport] = {}
    for name, method in methods.items():
        simulator = ServingSimulator(config, platform, method, engine_config)
        reports[name] = simulator.run(list(specs))
    return reports


def max_context_tokens(
    config: ModelConfig, platform: Platform, activation_reserve: float = 0.05
) -> int:
    """Convenience: the §2.4 KV-capacity arithmetic, in tokens."""
    return MemoryBudget.for_platform(config, platform, activation_reserve).capacity_tokens


def concurrent_context_estimate(
    config: ModelConfig, platform: Platform, context_len: int
) -> int:
    """How many contexts of ``context_len`` fit on the GPU at once (§2.4)."""
    if context_len <= 0:
        raise ConfigError("context_len must be positive")
    return int(math.floor(max_context_tokens(config, platform) / context_len))
