"""Request and session abstractions for the serving engine.

A request is one round of a stateful interaction: it arrives with some
amount of evicted history (zero for the first round), a fresh prompt, and
a target output length.  The engine moves it through the restoration,
prefill, and decode phases (§5, Request scheduling), recording the
timestamps that define TTFT and TBT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigError, StateError


class Phase(str, Enum):
    """Lifecycle of a request inside the engine."""

    QUEUED = "queued"
    RESTORING = "restoring"
    PREFILLING = "prefilling"
    DECODING = "decoding"
    FINISHED = "finished"


@dataclass(frozen=True)
class RequestSpec:
    """Immutable description of one request (one conversation round).

    Attributes:
        request_id: Unique id.
        session_id: Conversation / context identity; rounds of one session
            share it and execute in order.
        arrival_time: When the user submits the round (seconds).
        history_tokens: Evicted context that must be restored first.
        input_tokens: New prompt length.
        output_tokens: Tokens the model will generate.
        depends_on: Optional id of the session's previous round; the engine
            will not start this request before that one finishes.
    """

    request_id: str
    session_id: str
    arrival_time: float
    history_tokens: int
    input_tokens: int
    output_tokens: int
    depends_on: str | None = None

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ConfigError("arrival time must be non-negative")
        if self.history_tokens < 0 or self.input_tokens <= 0 or self.output_tokens <= 0:
            raise ConfigError(
                "history must be >= 0 and input/output lengths must be positive"
            )

    @property
    def total_context(self) -> int:
        """Context size once the request finishes (history + in + out)."""
        return self.history_tokens + self.input_tokens + self.output_tokens


@dataclass
class Request:
    """Mutable runtime state of a request inside the engine."""

    spec: RequestSpec
    phase: Phase = Phase.QUEUED
    prefill_remaining: int = field(default=0)
    restore_io_remaining: float = 0.0
    restore_compute_remaining: float = 0.0
    restore_io_done_at: float = float("inf")
    decoded_tokens: int = 0
    admitted_at: float = float("nan")
    restore_started_at: float = float("nan")
    restore_finished_at: float = float("nan")
    first_token_at: float = float("nan")
    finished_at: float = float("nan")

    def __post_init__(self) -> None:
        self.prefill_remaining = self.spec.input_tokens

    @property
    def context_tokens(self) -> int:
        """Tokens of context currently attended over while decoding."""
        done_prefill = self.spec.input_tokens - self.prefill_remaining
        return self.spec.history_tokens + done_prefill + self.decoded_tokens

    @property
    def ttft(self) -> float:
        """Time to first token (arrival to end of prefill)."""
        if self.phase not in (Phase.DECODING, Phase.FINISHED):
            raise StateError(f"request {self.spec.request_id} has no first token yet")
        return self.first_token_at - self.spec.arrival_time

    @property
    def tbt(self) -> float:
        """Mean time between tokens after the first one."""
        if self.phase is not Phase.FINISHED:
            raise StateError(f"request {self.spec.request_id} has not finished")
        n_gaps = self.spec.output_tokens - 1
        if n_gaps <= 0:
            return 0.0
        return (self.finished_at - self.first_token_at) / n_gaps

    def mark_first_token(self, now: float) -> None:
        if self.phase is not Phase.PREFILLING:
            raise StateError("first token must come from the prefill phase")
        self.first_token_at = now
        self.decoded_tokens = 1
        self.phase = Phase.DECODING

    def mark_finished(self, now: float) -> None:
        if self.phase is not Phase.DECODING:
            raise StateError("only decoding requests can finish")
        self.finished_at = now
        self.phase = Phase.FINISHED
