"""LLM serving substrate.

Three layers share the request/batching machinery:

- :class:`ServingSimulator` — discrete-event timing simulation with
  continuous batching and SplitFuse (reproduces TTFT/TBT under load).
- :class:`NumericServingEngine` — real numpy forward passes with HCache
  save/evict/restore (reproduces losslessness end to end); its
  :meth:`execute_iteration` is the fused prefill+decode primitive.
- :class:`ServingFrontend` — the submit/step/stream request loop with
  admission control, SLO-aware scheduling, and restore/decode overlap
  (typed surface in :mod:`repro.engine.api`).
"""

from repro.engine.api import (
    IterationResult,
    IterationStats,
    ServingRequest,
    ServingResponse,
)
from repro.engine.batching import ContinuousBatcher, MemoryBudget
from repro.engine.frontend import RequestHandle, ServingFrontend, pool_admission_gate
from repro.engine.metrics import MetricsCollector, RequestRecord, ServingReport
from repro.engine.numeric_engine import NumericServingEngine, SessionState
from repro.engine.request import Phase, Request, RequestSpec
from repro.engine.serving import (
    EngineConfig,
    ServingSimulator,
    concurrent_context_estimate,
    max_context_tokens,
    simulate_methods,
)
from repro.engine.splitfuse import IterationPlan, SplitFuseScheduler

__all__ = [
    "ContinuousBatcher",
    "EngineConfig",
    "IterationPlan",
    "IterationResult",
    "IterationStats",
    "MemoryBudget",
    "MetricsCollector",
    "NumericServingEngine",
    "Phase",
    "Request",
    "RequestHandle",
    "RequestRecord",
    "RequestSpec",
    "ServingFrontend",
    "ServingReport",
    "ServingRequest",
    "ServingResponse",
    "ServingSimulator",
    "SessionState",
    "SplitFuseScheduler",
    "concurrent_context_estimate",
    "max_context_tokens",
    "pool_admission_gate",
    "simulate_methods",
]
