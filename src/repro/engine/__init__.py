"""LLM serving substrate.

Two engines share the request/batching machinery:

- :class:`ServingSimulator` — discrete-event timing simulation with
  continuous batching and SplitFuse (reproduces TTFT/TBT under load).
- :class:`NumericServingEngine` — real numpy forward passes with HCache
  save/evict/restore (reproduces losslessness end to end).
"""

from repro.engine.batching import ContinuousBatcher, MemoryBudget
from repro.engine.metrics import MetricsCollector, RequestRecord, ServingReport
from repro.engine.numeric_engine import NumericServingEngine, SessionState
from repro.engine.request import Phase, Request, RequestSpec
from repro.engine.serving import (
    EngineConfig,
    ServingSimulator,
    concurrent_context_estimate,
    max_context_tokens,
    simulate_methods,
)
from repro.engine.splitfuse import IterationPlan, SplitFuseScheduler

__all__ = [
    "ContinuousBatcher",
    "EngineConfig",
    "IterationPlan",
    "MemoryBudget",
    "MetricsCollector",
    "NumericServingEngine",
    "Phase",
    "Request",
    "RequestRecord",
    "RequestSpec",
    "ServingReport",
    "ServingSimulator",
    "SessionState",
    "SplitFuseScheduler",
    "concurrent_context_estimate",
    "max_context_tokens",
    "simulate_methods",
]
