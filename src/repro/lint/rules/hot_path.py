"""Rule ``hot-path``: no allocation regressions in manifest functions.

PR 1 removed every O(history) allocation from the save/decode hot path
(capacity-doubling buffers, zero-copy views, ``out=`` GEMMs); PR 2 did
the same for the streamed restore projection.  The regressions that
would undo it are syntactically recognizable, and this rule bans them
inside every function listed in :mod:`repro.lint.hotpaths`:

- ``np.concatenate`` / ``np.vstack`` / ``np.hstack`` — the O(n) copy per
  step that made decode O(n^2) pre-PR 1.
- ``.copy()`` — a fresh allocation per call of a per-token function.
- ``np.ascontiguousarray`` — a hidden conditional copy; hot paths must
  arrange layout so it is never needed.
- Appending to a locally created list inside a loop — the
  accumulate-then-concatenate pattern (list growth is O(n) *and* the
  parts get copied again downstream).

An intentional small allocation (e.g. copying a ``(B,)`` index vector,
not an O(tokens) tensor) is waived in place with
``# lint: disable=hot-path -- <why it is O(1) per call>``.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.framework import ModuleInfo, Rule
from repro.lint.hotpaths import HOT_PATHS

_BANNED_NP_CALLS = {"concatenate", "vstack", "hstack", "ascontiguousarray"}
_NP_MODULE_NAMES = {"np", "numpy"}


def _banned_call_name(call: ast.Call) -> str | None:
    """The banned operation a call performs, if any."""
    func = call.func
    if isinstance(func, ast.Attribute):
        if (
            func.attr in _BANNED_NP_CALLS
            and isinstance(func.value, ast.Name)
            and func.value.id in _NP_MODULE_NAMES
        ):
            return f"{func.value.id}.{func.attr}"
        if func.attr == "copy" and not call.args and not call.keywords:
            return ".copy()"
    elif isinstance(func, ast.Name) and func.id in _BANNED_NP_CALLS:
        return func.id
    return None


class HotPathRule(Rule):
    name = "hot-path"
    description = (
        "functions in repro/lint/hotpaths.py may not concatenate/copy/"
        "ascontiguousarray or grow lists in loops"
    )

    def __init__(self, manifest: dict[str, frozenset[str]] | None = None) -> None:
        self.manifest = HOT_PATHS if manifest is None else manifest

    def _manifest_for(self, module: ModuleInfo) -> frozenset[str] | None:
        for suffix, names in self.manifest.items():
            if module.posix_path.endswith(suffix):
                return names
        return None

    def check(self, module: ModuleInfo) -> list[Finding]:
        names = self._manifest_for(module)
        if not names:
            return []
        findings: list[Finding] = []
        seen: set[str] = set()
        self._walk_scope(module.tree.body, "", names, seen, findings, module)
        for missing in sorted(names - seen):
            findings.append(
                Finding(
                    module.path,
                    1,
                    0,
                    self.name,
                    f"hot-path manifest names {missing!r} but this module does "
                    f"not define it",
                    hint="update repro/lint/hotpaths.py when hot-path "
                    "functions move or are renamed",
                )
            )
        return findings

    def _walk_scope(
        self,
        body: list[ast.stmt],
        prefix: str,
        names: frozenset[str],
        seen: set[str],
        findings: list[Finding],
        module: ModuleInfo,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                self._walk_scope(
                    stmt.body, f"{prefix}{stmt.name}.", names, seen, findings, module
                )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}"
                if qualname in names:
                    seen.add(qualname)
                    self._check_function(module, qualname, stmt, findings)
                else:
                    # Nested defs inside a non-hot function may still be
                    # listed individually; keep walking.
                    self._walk_scope(
                        stmt.body,
                        f"{qualname}.",
                        names,
                        seen,
                        findings,
                        module,
                    )

    def _check_function(
        self,
        module: ModuleInfo,
        qualname: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        findings: list[Finding],
    ) -> None:
        local_lists = self._locally_created_lists(func)
        # Nested helpers (e.g. the manager's flush_chunk closure) run on
        # the same hot path: the whole lexical body is in scope.
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                banned = _banned_call_name(node)
                if banned is not None:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"{qualname} is a hot-path function but calls "
                            f"{banned} — an allocation per call",
                            hint="write into a preallocated destination "
                            "(out=, slice assignment, install_view)",
                        )
                    )
        # Nested loops would double-report an append; dedupe by location.
        loop_appends: dict[tuple[int, int], ast.Call] = {}
        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                for inner in ast.walk(node):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr == "append"
                        and isinstance(inner.func.value, ast.Name)
                        and inner.func.value.id in local_lists
                    ):
                        loop_appends[(inner.lineno, inner.col_offset)] = inner
        for inner in loop_appends.values():
            findings.append(
                self.finding(
                    module,
                    inner,
                    f"{qualname} grows list {inner.func.value.id!r} inside a "
                    f"loop — the accumulate-then-concatenate pattern the hot "
                    f"path must not reintroduce",
                    hint="preallocate the destination and assign into slices",
                )
            )

    @staticmethod
    def _locally_created_lists(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> set[str]:
        """Names bound to a fresh list (``x = []`` / ``x = list()``)."""
        names: set[str] = set()
        for node in ast.walk(func):
            value = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None:
                continue
            is_list = isinstance(value, ast.List) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "list"
                and not value.args
            )
            if not is_list:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names
