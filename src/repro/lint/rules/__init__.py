"""The project-specific invariant checkers.

Each rule turns one documented contract (locking discipline, durability
ordering, hot-path allocation budget, failure visibility, export
surface) into an AST check; :data:`default_rules` is the set the CLI and
the CI gate run.
"""

from repro.lint.rules.api_surface import ApiSurfaceRule
from repro.lint.rules.commit_point import CommitPointRule
from repro.lint.rules.exception_safety import ExceptionSafetyRule
from repro.lint.rules.frontend_api import FrontendApiRule
from repro.lint.rules.guarded_by import GuardedByRule
from repro.lint.rules.hot_path import HotPathRule

__all__ = [
    "ApiSurfaceRule",
    "CommitPointRule",
    "ExceptionSafetyRule",
    "FrontendApiRule",
    "GuardedByRule",
    "HotPathRule",
    "default_rules",
]


def default_rules() -> list:
    """Fresh instances of every registered rule, in reporting order."""
    return [
        GuardedByRule(),
        CommitPointRule(),
        HotPathRule(),
        ExceptionSafetyRule(),
        ApiSurfaceRule(),
        FrontendApiRule(),
    ]
