"""Rule ``api-surface``: ``__all__`` and the public namespace agree.

PR 4 shipped (and then fixed) the bug class this rule retires: a name
re-exported by a package ``__init__`` but missing from its ``__all__``
(``StorageArray``), which makes ``from repro.storage import *`` and
documentation tooling silently disagree with the real surface.  For
every module that declares ``__all__``:

- every ``__all__`` entry must be bound at module top level (a def,
  class, assignment, or import) — no phantom exports;
- every *public* top-level binding (no leading underscore; plain
  ``import x`` module bindings and ``__future__`` imports excluded)
  must appear in ``__all__`` — no accidental exports;
- entries must be unique.

Modules without ``__all__`` are not checked: the contract is opt-in per
module, and in this repo every package ``__init__`` opts in.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.framework import ModuleInfo, Rule


def _all_assignment(tree: ast.Module) -> ast.Assign | None:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return stmt
    return None


def _top_level_bindings(tree: ast.Module) -> set[str]:
    """Names bound by direct module-body statements (no conditionals)."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module == "__future__":
                continue
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.Import):
            # `import x.y` binds the module `x`; module bindings are not
            # part of the re-export surface this rule polices.
            continue
    return names


class ApiSurfaceRule(Rule):
    name = "api-surface"
    description = (
        "__all__ must list exactly the module's public top-level bindings"
    )

    def check(self, module: ModuleInfo) -> list[Finding]:
        assignment = _all_assignment(module.tree)
        if assignment is None:
            return []
        findings: list[Finding] = []
        if not isinstance(assignment.value, (ast.List, ast.Tuple)):
            return [
                self.finding(
                    module,
                    assignment,
                    "__all__ must be a literal list/tuple of names so the "
                    "surface is statically checkable",
                )
            ]
        exported: list[str] = []
        for element in assignment.value.elts:
            if not (
                isinstance(element, ast.Constant) and isinstance(element.value, str)
            ):
                findings.append(
                    self.finding(
                        module, element, "__all__ entries must be string literals"
                    )
                )
                continue
            exported.append(element.value)
        bound = _top_level_bindings(module.tree)
        seen: set[str] = set()
        for name in exported:
            if name in seen:
                findings.append(
                    self.finding(
                        module, assignment, f"__all__ lists {name!r} twice"
                    )
                )
            seen.add(name)
            if name not in bound:
                findings.append(
                    self.finding(
                        module,
                        assignment,
                        f"__all__ exports {name!r} but the module never binds "
                        f"it at top level",
                        hint="remove the entry or add the missing "
                        "definition/import",
                    )
                )
        public = {
            name
            for name in bound
            if not name.startswith("_") and name != "annotations"
        }
        for name in sorted(public - seen):
            findings.append(
                self.finding(
                    module,
                    assignment,
                    f"public name {name!r} is bound at top level but missing "
                    f"from __all__ (the PR-4 StorageArray bug class)",
                    hint="add it to __all__, or rename it with a leading "
                    "underscore if it is internal",
                )
            )
        return findings
