"""Rule ``frontend-api``: the serving front-end surface stays pinned.

PR 10 redesigned the engine entry points around ``submit``/``step``/
``stream`` and demoted ``chat_rounds``/``decode_iteration`` to
deprecation shims.  Two drifts would silently undo that redesign:

- the typed surface growing (or shrinking) ad hoc — so the ``__all__``
  of :mod:`repro.engine.api` and :mod:`repro.engine.frontend` is pinned
  to an explicit expected list here; additions must edit this rule in
  the same change, making surface growth a reviewed decision;
- new *internal* callers of the deprecated entry points — so any
  ``.chat_rounds(...)`` / ``.decode_iteration(...)`` call in checked
  code is flagged, except inside the shim module itself
  (``repro/engine/numeric_engine.py``).  Tests and benchmarks are
  outside the ``src`` gate and may keep exercising the shims.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.framework import ModuleInfo, Rule

#: Pinned ``__all__`` per module (posix path suffix -> exact surface).
PINNED_SURFACES: dict[str, tuple[str, ...]] = {
    "repro/engine/api.py": (
        "IterationResult",
        "IterationStats",
        "ServingRequest",
        "ServingResponse",
    ),
    "repro/engine/frontend.py": (
        "RequestHandle",
        "ServingFrontend",
        "pool_admission_gate",
    ),
}

#: Deprecated entry points and their replacements.
DEPRECATED_CALLS: dict[str, str] = {
    "chat_rounds": "ServingFrontend.submit + run_until_idle",
    "decode_iteration": "NumericServingEngine.execute_iteration",
}

#: The shim module — the only checked code allowed to name the legacy
#: entry points (it defines them).
SHIM_MODULE_SUFFIX = "repro/engine/numeric_engine.py"


def _literal_all(tree: ast.Module) -> tuple[ast.Assign, list[str]] | None:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if not isinstance(stmt.value, (ast.List, ast.Tuple)):
                        return stmt, []
                    names = [
                        element.value
                        for element in stmt.value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    ]
                    return stmt, names
    return None


class FrontendApiRule(Rule):
    name = "frontend-api"
    description = (
        "the serving front-end __all__ is pinned and deprecated entry "
        "points are not called from src"
    )

    def check(self, module: ModuleInfo) -> list[Finding]:
        findings = self._check_pinned_surface(module)
        if not module.posix_path.endswith(SHIM_MODULE_SUFFIX):
            findings.extend(self._check_deprecated_calls(module))
        return findings

    def _check_pinned_surface(self, module: ModuleInfo) -> list[Finding]:
        expected = None
        for suffix, surface in PINNED_SURFACES.items():
            if module.posix_path.endswith(suffix):
                expected = surface
                break
        if expected is None:
            return []
        declared = _literal_all(module.tree)
        if declared is None:
            return [
                self.finding(
                    module,
                    module.tree,
                    "front-end module must declare the pinned __all__ "
                    f"({', '.join(expected)})",
                    hint="the typed serving surface is an explicit contract; "
                    "declare __all__ with exactly the pinned names",
                )
            ]
        assignment, names = declared
        if sorted(names) != sorted(expected):
            extra = sorted(set(names) - set(expected))
            missing = sorted(set(expected) - set(names))
            detail = "; ".join(
                part
                for part in (
                    f"unexpected: {', '.join(extra)}" if extra else "",
                    f"missing: {', '.join(missing)}" if missing else "",
                )
                if part
            )
            return [
                self.finding(
                    module,
                    assignment,
                    f"__all__ drifted from the pinned front-end surface ({detail})",
                    hint="changing the serving API surface is deliberate: "
                    "update PINNED_SURFACES in repro/lint/rules/frontend_api.py "
                    "in the same change",
                )
            ]
        return []

    def _check_deprecated_calls(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            replacement = DEPRECATED_CALLS.get(func.attr)
            if replacement is None:
                continue
            findings.append(
                self.finding(
                    module,
                    node,
                    f"call to deprecated entry point {func.attr!r} outside "
                    f"the shim module",
                    hint=f"use {replacement} (see docs/MIGRATION.md)",
                )
            )
        return findings
