"""Rule ``commit-point``: journal records obey the durability ordering.

``docs/ARCHITECTURE.md`` §6.2 states the crash-consistency contract PR 6
built: a chunk's device write strictly precedes the journal record that
claims it (so the journal never over-claims — an unjournaled device chunk
is a sweepable orphan, a journaled-but-unwritten chunk would be data
loss), and a ``free`` record precedes the deletions it describes (so a
replayed prefix never resurrects a half-deleted context).  Reordering
either side is a one-line refactor that passes every test that doesn't
crash mid-operation.

This rule re-derives the ordering from the AST, per function, over a
simplified control-flow graph:

- Statements evaluate in order; ``if``/``try`` branches fork and merge
  ("a device write happened" holds after the merge only if it held on
  every branch; "a deletion happened" holds if it held on any).
- Loop bodies are assumed to execute at least once (the regression class
  is *reordering*, which this catches; a zero-iteration loop writes no
  chunk and journals an empty record).
- Nested functions are independent scopes (the manager's ``flush_chunk``
  closure contains its own write-then-journal pair).

Checked events:

- ``<anything-not-journal>.write(...)`` marks the device write done.
- ``<...>journal.append({"op": "chunk" | "seal", ...})`` must be
  write-dominated; ``{"op": "free"}`` must precede any ``.delete(...)``
  or ``.free_context(...)`` call.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.findings import Finding
from repro.lint.framework import ModuleInfo, Rule

_RECORD_OPS_NEEDING_WRITE = {"chunk", "seal"}
_DELETE_CALLS = {"delete", "free_context"}


@dataclass
class _State:
    write_done: bool = False
    deleted: bool = False

    def copy(self) -> "_State":
        return _State(self.write_done, self.deleted)

    def merge(self, other: "_State") -> "_State":
        return _State(
            write_done=self.write_done and other.write_done,
            deleted=self.deleted or other.deleted,
        )


def _journal_op(call: ast.Call) -> str | None:
    """The ``op`` of a ``journal.append({...})`` call, else ``None``."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "append"):
        return None
    receiver = func.value
    recv_name = None
    if isinstance(receiver, ast.Attribute):
        recv_name = receiver.attr
    elif isinstance(receiver, ast.Name):
        recv_name = receiver.id
    if recv_name != "journal":
        return None
    if not call.args or not isinstance(call.args[0], ast.Dict):
        return "<unknown>"
    record = call.args[0]
    for key, value in zip(record.keys, record.values):
        if (
            isinstance(key, ast.Constant)
            and key.value == "op"
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return value.value
    return "<unknown>"


def _is_device_write(call: ast.Call) -> bool:
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "write"):
        return False
    # `journal.write(...)` (if it existed) would not be a payload write.
    receiver = func.value
    name = receiver.attr if isinstance(receiver, ast.Attribute) else (
        receiver.id if isinstance(receiver, ast.Name) else ""
    )
    return name != "journal"


def _is_delete(call: ast.Call) -> bool:
    func = call.func
    return isinstance(func, ast.Attribute) and func.attr in _DELETE_CALLS


class CommitPointRule(Rule):
    name = "commit-point"
    description = (
        "journal 'chunk'/'seal' records must follow the device write on every "
        "path; 'free' records must precede the deletions they describe"
    )

    def check(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._eval_block(module, node.body, _State(), findings)
        return findings

    # -- mini-CFG evaluation -------------------------------------------
    #
    # ast.walk above visits nested functions on its own, so _eval_*
    # deliberately does not descend into FunctionDef/Lambda bodies.

    def _eval_block(
        self,
        module: ModuleInfo,
        stmts: list[ast.stmt],
        state: _State,
        findings: list[Finding],
    ) -> _State:
        for stmt in stmts:
            state = self._eval_stmt(module, stmt, state, findings)
        return state

    def _eval_stmt(
        self,
        module: ModuleInfo,
        stmt: ast.stmt,
        state: _State,
        findings: list[Finding],
    ) -> _State:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return state
        if isinstance(stmt, ast.If):
            state = self._eval_expr(module, stmt.test, state, findings)
            then = self._eval_block(module, stmt.body, state.copy(), findings)
            other = self._eval_block(module, stmt.orelse, state.copy(), findings)
            return then.merge(other)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            state = self._eval_expr(module, stmt.iter, state, findings)
            after_body = self._eval_block(module, stmt.body, state.copy(), findings)
            return self._eval_block(module, stmt.orelse, after_body, findings)
        if isinstance(stmt, ast.While):
            state = self._eval_expr(module, stmt.test, state, findings)
            after_body = self._eval_block(module, stmt.body, state.copy(), findings)
            return self._eval_block(module, stmt.orelse, after_body, findings)
        if isinstance(stmt, ast.Try):
            body_state = self._eval_block(module, stmt.body, state.copy(), findings)
            merged = body_state
            for handler in stmt.handlers:
                # A handler may run after any prefix of the body: start it
                # from the conservative pre-body state.
                handler_state = self._eval_block(
                    module, handler.body, state.copy(), findings
                )
                merged = merged.merge(handler_state)
            merged = self._eval_block(module, stmt.orelse, merged, findings)
            return self._eval_block(module, stmt.finalbody, merged, findings)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                state = self._eval_expr(module, item.context_expr, state, findings)
            return self._eval_block(module, stmt.body, state, findings)
        # Plain statement: evaluate contained expressions in source order.
        for child in ast.iter_child_nodes(stmt):
            state = self._eval_expr(module, child, state, findings)
        return state

    def _eval_expr(
        self,
        module: ModuleInfo,
        node: ast.AST,
        state: _State,
        findings: list[Finding],
    ) -> _State:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return state
        if isinstance(node, ast.Call):
            # Arguments evaluate before the call fires.
            for child in ast.iter_child_nodes(node):
                state = self._eval_expr(module, child, state, findings)
            op = _journal_op(node)
            if op is not None:
                if op in _RECORD_OPS_NEEDING_WRITE and not state.write_done:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"journal {op!r} record appended before the chunk's "
                            f"device write on at least one path — the journal "
                            f"would over-claim after a crash here",
                            hint="write the payload to its device first; the "
                            "record is the commit point (ARCHITECTURE §6.2)",
                        )
                    )
                elif op == "free" and state.deleted:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "journal 'free' record appended after a deletion — "
                            "a crash in between resurrects half-deleted state "
                            "on replay",
                            hint="journal the free first, then delete "
                            "(ARCHITECTURE §6.2)",
                        )
                    )
            if _is_device_write(node):
                state = state.copy()
                state.write_done = True
            if _is_delete(node):
                state = state.copy()
                state.deleted = True
            return state
        for child in ast.iter_child_nodes(node):
            state = self._eval_expr(module, child, state, findings)
        return state
    # NOTE: `state` is treated as immutable across branches via copy();
    # _eval_expr only mutates fresh copies.
