"""Rule ``exception-safety``: no silent failure, no stray sleeps.

Two contracts, both stated in PR 3/PR 6 docstrings and both trivially
violated by a hurried ``try/except`` during a refactor:

- **No bare ``except:`` and no ``except BaseException:``** — a handler
  that can swallow ``KeyboardInterrupt``/``SystemExit`` (or any fault it
  did not anticipate) turns crash-consistency bugs into silent state
  corruption.  The one sanctioned pattern is the restore executor's
  drain containment, which *settles in-flight reads and re-raises*; that
  site carries an explicit waiver naming the reason, and any new site
  must do the same.

- **``time.sleep`` only in the latency-emulation module**
  (``repro/storage/device.py``) — everywhere else a sleep either fakes
  a latency the timing model should charge (corrupting benchmarks) or
  papers over a race the locks should prevent.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.framework import ModuleInfo, Rule

_DEFAULT_SLEEP_MODULES = ("repro/storage/device.py",)


class ExceptionSafetyRule(Rule):
    name = "exception-safety"
    description = (
        "no bare except / except BaseException (waive sanctioned drain "
        "paths); time.sleep only in the latency-emulation module"
    )

    def __init__(self, sleep_modules: tuple[str, ...] | None = None) -> None:
        self.sleep_modules = (
            _DEFAULT_SLEEP_MODULES if sleep_modules is None else sleep_modules
        )

    def check(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        sleep_allowed = module.posix_path.endswith(self.sleep_modules)
        from_time_sleep = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "time"
            and any(alias.name == "sleep" for alias in node.names)
            for node in ast.walk(module.tree)
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                findings.extend(self._check_handler(module, node))
            elif isinstance(node, ast.Call) and not sleep_allowed:
                if self._is_sleep_call(node, from_time_sleep):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "time.sleep outside the latency-emulation module "
                            "(repro/storage/device.py) — real delays belong to "
                            "the emulator, which charges them to the timing "
                            "model",
                            hint="route modelled latency through "
                            "LatencyEmulator.charge, or waive with the reason "
                            "if this is genuinely wall-clock control",
                        )
                    )
        return findings

    def _check_handler(
        self, module: ModuleInfo, handler: ast.ExceptHandler
    ) -> list[Finding]:
        if handler.type is None:
            return [
                self.finding(
                    module,
                    handler,
                    "bare `except:` catches BaseException — SystemExit and "
                    "KeyboardInterrupt included — and hides faults the "
                    "durability contracts rely on seeing",
                    hint="catch the narrowest exception the operation can "
                    "raise; re-raise what you cannot handle",
                )
            ]
        if isinstance(handler.type, ast.Name) and handler.type.id == "BaseException":
            return [
                self.finding(
                    module,
                    handler,
                    "`except BaseException:` outside a sanctioned drain path — "
                    "only containment code that settles in-flight work and "
                    "re-raises may do this, with a waiver naming the reason",
                    hint="see RestoreExecutor.drain for the sanctioned pattern",
                )
            ]
        return []

    @staticmethod
    def _is_sleep_call(call: ast.Call, from_time_sleep: bool) -> bool:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            return True
        return (
            from_time_sleep and isinstance(func, ast.Name) and func.id == "sleep"
        )
