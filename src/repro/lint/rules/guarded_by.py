"""Rule ``guarded-by``: lock-annotated attributes need their lock held.

The threaded surfaces grown in PRs 3 and 6 (device stat counters, fault
ordinals, replication degraded-read counts, IO pool accounting) protect
their mutable state with per-object locks — an invariant stated in
docstrings and exercised only under rare interleavings, i.e. exactly the
kind of contract a refactor silently breaks.  This rule makes it
mechanical:

- A ``self.<attr> = ...`` line in a class carrying the comment
  ``# guarded-by: <lock>`` declares the attribute lock-protected.
- Outside ``__init__``, every read or write of that attribute must sit
  lexically inside a ``with self.<lock>:`` block.
- A method whose ``def`` line carries ``# holds: <lock>`` asserts the
  caller already holds the lock (the ``_locked``-helper pattern); the
  rule treats the lock as held for the whole body.
- Code inside nested ``def``/``lambda`` does not inherit an enclosing
  ``with`` — closures outlive the locked region (e.g. when submitted to
  a worker pool), so they must take the lock themselves or be waived.

Deliberate unguarded access (e.g. a monotonic flag read) takes a
``# lint: disable=guarded-by -- <reason>`` waiver.
"""

from __future__ import annotations

import ast
import re

from repro.lint.findings import Finding
from repro.lint.framework import ModuleInfo, Rule

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_HOLDS_RE = re.compile(r"#\s*holds:\s*([A-Za-z_][A-Za-z0-9_]*)")


def _self_attr(node: ast.AST) -> str | None:
    """The ``X`` of a ``self.X`` attribute expression, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _assigned_self_attrs(stmt: ast.stmt) -> list[str]:
    """``self.X`` targets of an assignment statement."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    names = []
    for target in targets:
        attr = _self_attr(target)
        if attr is not None:
            names.append(attr)
    return names


class GuardedByRule(Rule):
    name = "guarded-by"
    description = (
        "attributes annotated `# guarded-by: <lock>` may only be touched "
        "inside `with self.<lock>:` (or in __init__)"
    )

    def check(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    # -- per-class analysis --------------------------------------------

    def _check_class(self, module: ModuleInfo, cls: ast.ClassDef) -> list[Finding]:
        guarded, assigned_attrs = self._collect_annotations(module, cls)
        findings: list[Finding] = []
        if not guarded:
            return findings
        for attr, (lock, decl_line) in guarded.items():
            if lock not in assigned_attrs:
                findings.append(
                    Finding(
                        module.path,
                        decl_line,
                        0,
                        self.name,
                        f"{cls.name}.{attr} is guarded by {lock!r}, but the class "
                        f"never assigns self.{lock}",
                        hint="create the lock in __init__ or fix the annotation",
                    )
                )
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_method(module, cls, stmt, guarded))
        return findings

    def _collect_annotations(
        self, module: ModuleInfo, cls: ast.ClassDef
    ) -> tuple[dict[str, tuple[str, int]], set[str]]:
        """Map guarded attr -> (lock name, annotation line); all self attrs."""
        guarded: dict[str, tuple[str, int]] = {}
        assigned: set[str] = set()
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(method):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    continue
                attrs = _assigned_self_attrs(stmt)
                assigned.update(attrs)
                match = _GUARDED_RE.search(module.comment_on(stmt.lineno))
                if match is None:
                    continue
                for attr in attrs:
                    guarded[attr] = (match.group(1), stmt.lineno)
        return guarded, assigned

    def _check_method(
        self,
        module: ModuleInfo,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        guarded: dict[str, tuple[str, int]],
    ) -> list[Finding]:
        if method.name == "__init__":
            return []
        held: set[str] = set()
        holds = _HOLDS_RE.search(module.comment_on(method.lineno))
        if holds is not None:
            held.add(holds.group(1))
        findings: list[Finding] = []
        self._visit(module, cls, method.body, held, guarded, findings)
        return findings

    def _visit(
        self,
        module: ModuleInfo,
        cls: ast.ClassDef,
        body: list[ast.stmt],
        held: set[str],
        guarded: dict[str, tuple[str, int]],
        findings: list[Finding],
    ) -> None:
        for stmt in body:
            self._visit_node(module, cls, stmt, held, guarded, findings)

    def _visit_node(
        self,
        module: ModuleInfo,
        cls: ast.ClassDef,
        node: ast.AST,
        held: set[str],
        guarded: dict[str, tuple[str, int]],
        findings: list[Finding],
    ) -> None:
        if isinstance(node, ast.With):
            acquired: set[str] = set()
            for item in node.items:
                # The `self.<lock>` expression itself is lock management,
                # not guarded-state access; check only non-lock items.
                lock = _self_attr(item.context_expr)
                if lock is not None:
                    acquired.add(lock)
                else:
                    self._visit_node(
                        module, cls, item.context_expr, held, guarded, findings
                    )
                if item.optional_vars is not None:
                    self._visit_node(
                        module, cls, item.optional_vars, held, guarded, findings
                    )
            inner = held | acquired
            self._visit(module, cls, node.body, inner, guarded, findings)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A closure may run after the enclosing `with` exits (worker
            # pools, callbacks): locks held at the def site don't count.
            inner_held: set[str] = set()
            holds = _HOLDS_RE.search(
                module.comment_on(getattr(node, "lineno", 0))
            )
            if holds is not None:
                inner_held.add(holds.group(1))
            body = node.body if isinstance(body := node.body, list) else [body]
            for child in body:
                self._visit_node(module, cls, child, inner_held, guarded, findings)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None and attr in guarded:
                lock, _ = guarded[attr]
                if lock not in held:
                    action = (
                        "written" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
                    )
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"{cls.name}.{attr} is {action} without holding "
                            f"self.{lock} (declared `# guarded-by: {lock}`)",
                            hint=f"wrap the access in `with self.{lock}:`, or mark "
                            f"the method `# holds: {lock}` if every caller "
                            f"already owns the lock",
                        )
                    )
        for child in ast.iter_child_nodes(node):
            self._visit_node(module, cls, child, held, guarded, findings)
