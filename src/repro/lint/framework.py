"""Checker framework: module model, waivers, rule base, and the runner.

The analyzer parses each file once into a :class:`ModuleInfo` (AST +
comment map + waiver table) and hands it to every registered rule.  Rules
are pure functions of that structure — no imports of the checked code, so
the linter can analyze broken or heavyweight modules safely.

Waivers
-------
A deliberate exception to a rule is written on (or directly above) the
offending line as::

    # lint: disable=<rule>[,<rule>...] -- <reason>

The reason is **mandatory**: a waiver without one is itself reported
(rule id ``bad-waiver``, not waivable).  This keeps every exception to an
enforced invariant self-documenting at the point of use — the same
contract ``docs/ARCHITECTURE.md`` states in prose, in machine-checked
form.

Annotations
-----------
Two structured comments feed individual rules (see their modules):

- ``# guarded-by: <lock>`` on a ``self.<attr> = ...`` line declares the
  attribute lock-protected (:mod:`repro.lint.rules.guarded_by`).
- ``# holds: <lock>`` on a ``def`` line asserts the method is only
  called with ``<lock>`` already held by the caller.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding

#: ``# lint: disable=rule-a,rule-b -- reason`` (reason may follow ``--``,
#: ``:`` or a second ``#``; it is required and checked by the runner).
_WAIVER_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
    r"\s*(?:(?:--|#|:)\s*(?P<reason>.*?))?\s*$"
)


@dataclass(frozen=True)
class Waiver:
    """One parsed ``# lint: disable=...`` comment."""

    line: int
    rules: frozenset[str]
    reason: str
    #: True when the comment sits alone on its line, in which case the
    #: waiver covers the *next* line as well (for statements too long to
    #: carry a trailing comment).
    standalone: bool


@dataclass
class ModuleInfo:
    """Everything a rule may inspect about one source file."""

    path: str
    #: Posix-style path used for suffix matching against rule manifests
    #: (``repro/storage/manager.py`` matches any checkout root).
    posix_path: str
    source: str
    tree: ast.Module
    #: line -> comment text (including the ``#``), from tokenize.
    comments: dict[int, str] = field(default_factory=dict)
    #: Lines holding nothing but a comment.
    comment_only_lines: frozenset[int] = frozenset()
    waivers: list[Waiver] = field(default_factory=list)

    def comment_on(self, line: int) -> str:
        return self.comments.get(line, "")

    def waived_rules(self, line: int) -> frozenset[str]:
        """Rules waived for findings reported at ``line``."""
        waived: set[str] = set()
        for waiver in self.waivers:
            if waiver.line == line or (waiver.standalone and waiver.line + 1 == line):
                waived |= waiver.rules
        return frozenset(waived)


class Rule:
    """Base class for one invariant checker.

    Subclasses set :attr:`name` (the rule id used in findings and
    waivers) and implement :meth:`check`.  Rules must not import or
    execute the code under analysis.
    """

    name: str = ""
    description: str = ""

    def check(self, module: ModuleInfo) -> list[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleInfo, node: ast.AST, message: str, hint: str = ""
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
            hint=hint,
        )


def _parse_comments(source: str) -> tuple[dict[int, str], frozenset[int]]:
    """Map line -> comment text, noting comment-only lines, via tokenize."""
    comments: dict[int, str] = {}
    comment_only: set[int] = set()
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            line = tok.start[0]
            comments[line] = tok.string
            before = lines[line - 1][: tok.start[1]] if line <= len(lines) else ""
            if not before.strip():
                comment_only.add(line)
    except tokenize.TokenError:
        pass  # the AST parse reports the real syntax problem
    return comments, frozenset(comment_only)


def _parse_waivers(
    comments: dict[int, str], comment_only: frozenset[int]
) -> list[Waiver]:
    waivers = []
    for line, text in comments.items():
        match = _WAIVER_RE.search(text)
        if match is None:
            continue
        rules = frozenset(r.strip() for r in match.group(1).split(","))
        waivers.append(
            Waiver(
                line=line,
                rules=rules,
                reason=(match.group("reason") or "").strip(),
                standalone=line in comment_only,
            )
        )
    return waivers


def load_module(path: Path, display_path: str | None = None) -> ModuleInfo | Finding:
    """Parse one file into a :class:`ModuleInfo`, or a parse-error finding."""
    display = display_path if display_path is not None else str(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return Finding(display, 1, 0, "parse-error", f"cannot read file: {exc}")
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return Finding(
            display, exc.lineno or 1, (exc.offset or 1) - 1, "parse-error", exc.msg or "syntax error"
        )
    comments, comment_only = _parse_comments(source)
    return ModuleInfo(
        path=display,
        posix_path=path.as_posix(),
        source=source,
        tree=tree,
        comments=comments,
        comment_only_lines=comment_only,
        waivers=_parse_waivers(comments, comment_only),
    )


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into the sorted ``.py`` file list."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        else:
            files.append(path)
    return files


def check_module(module: ModuleInfo, rules: Iterable[Rule]) -> list[Finding]:
    """Run ``rules`` over one module, applying waivers.

    Waived findings are dropped; waivers missing the mandatory reason are
    reported as ``bad-waiver`` findings (which no waiver can suppress).
    """
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(module):
            if rule.name in module.waived_rules(finding.line):
                continue
            findings.append(finding)
    for waiver in module.waivers:
        if not waiver.reason:
            findings.append(
                Finding(
                    module.path,
                    waiver.line,
                    0,
                    "bad-waiver",
                    "waiver must carry a reason: "
                    "`# lint: disable=<rule> -- <why this is safe>`",
                    hint="an undocumented exception to an invariant is "
                    "indistinguishable from a silenced bug",
                )
            )
    return findings


def check_paths(
    paths: Sequence[str | Path], rules: Iterable[Rule]
) -> list[Finding]:
    """Run ``rules`` over every ``.py`` file reachable from ``paths``."""
    rules = list(rules)
    findings: list[Finding] = []
    for path in collect_files(paths):
        module = load_module(path)
        if isinstance(module, Finding):
            findings.append(module)
            continue
        findings.extend(check_module(module, rules))
    return sorted(findings)
