"""Manifest of hot-path functions under the no-allocation contract.

These are the per-token / per-chunk code paths PR 1 and PR 2 made O(n):
one stray ``np.concatenate`` or ``.copy()`` here reintroduces the exact
O(n^2) save/decode regressions those PRs eliminated — and shows up only
as slow bench drift, never as a test failure.  The ``hot-path`` rule
(:mod:`repro.lint.rules.hot_path`) forbids the known regression-causing
allocation patterns inside every function listed here.

Keys are posix path suffixes (matched against the end of each analyzed
file's path, so any checkout root works); values are the qualified
function names (``Class.method`` or a module-level ``function``) the
contract covers in that module.

When a new function joins a hot path, add it here in the same PR — the
manifest is the machine-readable version of the "zero allocations on the
hot path" claim in ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

HOT_PATHS: dict[str, frozenset[str]] = {
    # Decode fast paths: the per-token attention kernels (PR 1/PR 4).
    "repro/models/attention.py": frozenset(
        {
            "scaled_dot_product_attention",
            "batched_decode_attention",
        }
    ),
    # Batched decode iteration + the fused restore projections (PR 2/PR 4;
    # the sharded variant is PR 9's per-granule merge path).
    "repro/models/transformer.py": frozenset(
        {
            "Transformer.decode_batch",
            "Transformer.project_kv_chunk",
            "Transformer.project_kv_chunk_sharded",
        }
    ),
    # Per-step cache writes: O(1) amortized appends, zero-copy views.
    # install_packed_head_rows is the tensor-shard merge primitive — one
    # call per (granule, head range) on the sharded restore path.
    "repro/models/kv_cache.py": frozenset(
        {
            "KVCache.append",
            "KVCache.install_view",
            "KVCache.install_rows",
            "KVCache.install_packed_head_rows",
            "StackedKVCacheBlock.append_token",
        }
    ),
    "repro/models/hidden_capture.py": frozenset(
        {
            "HiddenCapture.extend",
            "HiddenCapture.write",
        }
    ),
    # The fused elementwise kernels project_kv_chunk relies on.
    "repro/models/tensor_ops.py": frozenset(
        {
            "rmsnorm_into",
            "layernorm_into",
        }
    ),
    "repro/models/rope.py": frozenset(
        {
            "rope_rotate_into",
            "rope_rotate_fullwidth_into",
        }
    ),
    # Block-paged state store (PR 8): per-save block writes, admission
    # probes, and the pool-served restore reads run once per append /
    # per block — rows move by slice assignment into preallocated pool
    # arrays, never through fresh concatenations.
    "repro/state/pool.py": frozenset(
        {
            "BlockPool.lookup",
            "BlockPool.adopt_committed",
            "BlockPool.kv_views",
            "BlockPool.hidden_view",
        }
    ),
    "repro/state/store.py": frozenset(
        {
            "BlockStateStore.append",
            "BlockStateStore._write_rows",
            "BlockStateStore.hidden_rows",
            "BlockStateStore.kv_rows",
        }
    ),
    # Pool-served shared-prefix gather on the restore path.
    "repro/core/hcache.py": frozenset({"HCacheEngine._gather_pool_hidden"}),
    # Sharded restoration planning (PR 9): shard plans run once per
    # restore but feed every granule of it; keeping them allocation-lean
    # keeps the dispatch half of the executor-overhead budget flat.
    "repro/core/gqa.py": frozenset({"partition_kv_heads"}),
    "repro/runtime/sharded.py": frozenset({"partition_layers"}),
    # Storage granule loop: chunk reads land straight in staging slots.
    "repro/storage/device.py": frozenset({"StorageDevice.read_into"}),
    "repro/storage/manager.py": frozenset(
        {
            "StorageManager.append",
            "StorageManager.load_layer",
            "StorageManager.read_granule_into",
        }
    ),
}
