"""``repro.lint`` — AST-based checker for this repo's load-bearing invariants.

The codebase accumulates contracts that tests cannot reliably enforce: a
missed lock only fails under rare interleavings, a reordered journal
append only loses data when a crash lands between two lines, a stray
``.copy()`` on the decode path only shows up as bench drift.  This
package turns each documented contract into a static rule and runs as a
zero-findings gate in ``scripts/check.sh`` and CI::

    python -m repro.lint [paths...]     # default: src

Rules (see ``docs/ARCHITECTURE.md`` "Enforced invariants" for the
design contract behind each):

- ``guarded-by`` — ``# guarded-by: <lock>``-annotated attributes are
  only touched under ``with self.<lock>:``.
- ``commit-point`` — journal 'chunk'/'seal' records follow the device
  write on every path; 'free' records precede their deletions.
- ``hot-path`` — functions in ``repro/lint/hotpaths.py`` perform no
  per-call allocations (concatenate/copy/list-growth).
- ``exception-safety`` — no bare/BaseException handlers outside waived
  drain paths; ``time.sleep`` only in the latency emulator.
- ``api-surface`` — every ``__all__`` matches the module's public
  bindings.
- ``frontend-api`` — the serving front-end ``__all__`` is pinned to an
  explicit surface, and the deprecated ``chat_rounds`` /
  ``decode_iteration`` entry points are not called outside their shim
  module.

Deliberate exceptions are waived in place, with a mandatory reason::

    # lint: disable=<rule> -- <why this is safe>
"""

from repro.lint.findings import Finding
from repro.lint.framework import (
    ModuleInfo,
    Rule,
    Waiver,
    check_module,
    check_paths,
    collect_files,
    load_module,
)
from repro.lint.hotpaths import HOT_PATHS
from repro.lint.rules import (
    ApiSurfaceRule,
    CommitPointRule,
    ExceptionSafetyRule,
    FrontendApiRule,
    GuardedByRule,
    HotPathRule,
    default_rules,
)

__all__ = [
    "HOT_PATHS",
    "ApiSurfaceRule",
    "CommitPointRule",
    "ExceptionSafetyRule",
    "Finding",
    "FrontendApiRule",
    "GuardedByRule",
    "HotPathRule",
    "ModuleInfo",
    "Rule",
    "Waiver",
    "check_module",
    "check_paths",
    "collect_files",
    "default_rules",
    "load_module",
]
