"""CLI: ``python -m repro.lint [paths...]``.

Exit codes: 0 — clean; 1 — findings reported; 2 — usage error (bad
path, unknown rule).  The CI gate runs ``python -m repro.lint src`` and
requires 0.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.lint.framework import check_paths
from repro.lint.rules import default_rules


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant checker for the HCache repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE",
        help="run only this rule id (repeatable); default: all rules",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.name}: {rule.description}")
        return 0
    if args.rule:
        known = {rule.name: rule for rule in rules}
        unknown = [name for name in args.rule if name not in known]
        if unknown:
            print(
                f"unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
        rules = [known[name] for name in args.rule]

    try:
        findings = check_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        count = len(findings)
        print(
            f"\n{count} finding{'s' if count != 1 else ''} — each is either a "
            f"real invariant violation (fix it) or a deliberate exception "
            f"(waive it in place: `# lint: disable=<rule> -- <reason>`)."
        )
        return 1
    print(f"repro.lint: clean ({', '.join(rule.name for rule in rules)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
