"""The finding record every lint rule reports.

A finding pins one invariant violation to a source location, names the
rule that owns the invariant, and carries a fix hint so the diagnostic
reads as "here is the contract you broke and what restoring it looks
like" — not just "line 42 is bad".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: Repo-relative (or as-given) path of the offending file.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        rule: Rule id (``guarded-by``, ``commit-point``, ...).
        message: What contract was violated, concretely.
        hint: How to fix it — or how to waive it when the violation is
            deliberate (``# lint: disable=<rule> -- <reason>``).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""

    def render(self) -> str:
        """``path:line:col: rule: message`` plus an indented hint line."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text
