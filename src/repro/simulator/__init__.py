"""Hardware performance model: analytic costs, GEMM timing, streams, events.

This package substitutes for the paper's physical testbed (A100/A30/4090/
L20/H800 GPUs, PM9A3 SSDs, PCIe): it reproduces the §3.2 cost equations,
cuBLAS tile quantization (Fig. 13b), CUDA-stream pipelining (Fig. 5/8), and
a discrete event queue for the serving engine.
"""

from repro.simulator.costs import (
    LayerCosts,
    RestorationEstimate,
    decode_iteration_time,
    estimate_restoration,
    layer_costs,
    prefill_time,
    theoretical_compute_speedup,
)
from repro.simulator.events import EventQueue, SimClock
from repro.simulator.gemm import GemmTiming, gemm_time, kv_projection_time, round_up_tokens
from repro.simulator.hardware import (
    GPUS,
    PM9A3,
    DRAMSpec,
    GPUSpec,
    InterconnectSpec,
    Platform,
    SSDSpec,
    platform_preset,
)
from repro.simulator.pipeline import (
    COMPUTE_STREAM,
    IO_STREAM,
    LayerMethod,
    LayerPlan,
    ShardedStageTimeline,
    TokenwiseLayerPlan,
    build_layerwise_schedule,
    build_tokenwise_schedule,
    restoration_makespan,
    sharded_restoration_makespan,
)
from repro.simulator.streams import ScheduleResult, StreamSchedule, Task

__all__ = [
    "COMPUTE_STREAM",
    "GPUS",
    "IO_STREAM",
    "PM9A3",
    "DRAMSpec",
    "EventQueue",
    "GPUSpec",
    "GemmTiming",
    "InterconnectSpec",
    "LayerCosts",
    "LayerMethod",
    "LayerPlan",
    "Platform",
    "RestorationEstimate",
    "SSDSpec",
    "ScheduleResult",
    "ShardedStageTimeline",
    "SimClock",
    "StreamSchedule",
    "Task",
    "TokenwiseLayerPlan",
    "build_layerwise_schedule",
    "build_tokenwise_schedule",
    "decode_iteration_time",
    "estimate_restoration",
    "gemm_time",
    "kv_projection_time",
    "layer_costs",
    "platform_preset",
    "prefill_time",
    "restoration_makespan",
    "round_up_tokens",
    "sharded_restoration_makespan",
    "theoretical_compute_speedup",
]
