"""Discrete-event simulation primitives.

A tiny, deterministic event queue used by the serving engine: events fire in
timestamp order with FIFO tie-breaking, and the clock never moves backwards.
Keeping this generic (payloads are opaque) lets the same queue drive request
arrivals, iteration completions, and background flushes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterator

from repro.errors import SimulationError


class SimClock:
    """A monotonic simulation clock."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self._now - 1e-12:
            raise SimulationError(f"clock cannot move backwards: {time} < {self._now}")
        self._now = max(self._now, float(time))


class EventQueue:
    """A time-ordered queue of opaque events.

    Events scheduled for the same instant fire in insertion order, which
    keeps simulations reproducible regardless of payload contents.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, event: Any) -> None:
        """Schedule ``event`` to fire at ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        heapq.heappush(self._heap, (float(time), next(self._counter), event))

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, event)`` pair."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        time, _, event = heapq.heappop(self._heap)
        return time, event

    def peek_time(self) -> float:
        """Timestamp of the earliest pending event."""
        if not self._heap:
            raise SimulationError("peek on an empty event queue")
        return self._heap[0][0]

    def drain(self) -> Iterator[tuple[float, Any]]:
        """Yield all remaining events in firing order."""
        while self._heap:
            yield self.pop()
