"""CUDA-stream-like schedule computation.

HCache's restoration overlaps work on two hardware queues: an IO stream
moving state from host storage to GPU memory and a compute stream projecting
hidden states into the KV cache (§3.1, Fig. 5).  The implementation section
(§5) describes the real system's use of dedicated CUDA streams with
``cudaEvent`` dependencies; this module reproduces those semantics exactly:

- tasks on one stream execute sequentially in submission order;
- a task additionally waits for all of its cross-stream dependencies;
- bubbles are idle gaps on a stream between its first and last task.

The resulting schedule is what the bubble-free scheduler (§4.1) optimizes:
a partition is bubble-free when neither stream idles while work remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class Task:
    """One unit of work bound to a stream.

    Attributes:
        name: Human-readable label (``"io:L3"``, ``"proj:L3"``, ...).
        stream: Stream identifier; tasks sharing it serialize.
        duration: Execution time in seconds.
        deps: Tasks that must finish before this one starts (cudaEvent
            waits).  Dependencies must be submitted before the dependent.
        start: Assigned start time (filled by :meth:`StreamSchedule.run`).
        end: Assigned completion time.
    """

    name: str
    stream: str
    duration: float
    deps: tuple["Task", ...] = ()
    start: float = field(default=-1.0, compare=False)
    end: float = field(default=-1.0, compare=False)

    @property
    def scheduled(self) -> bool:
        return self.end >= 0.0


class StreamSchedule:
    """Builds and evaluates a multi-stream task schedule."""

    def __init__(self) -> None:
        self._tasks: list[Task] = []
        self._ran = False

    @property
    def tasks(self) -> tuple[Task, ...]:
        return tuple(self._tasks)

    def submit(
        self, name: str, stream: str, duration: float, deps: tuple[Task, ...] = ()
    ) -> Task:
        """Append a task to ``stream`` and return its handle.

        Raises:
            SimulationError: for negative durations or dependencies that
                were not submitted to this schedule first (submission order
                must be a topological order, as it is with CUDA events).
        """
        if duration < 0:
            raise SimulationError(f"task {name!r} has negative duration {duration}")
        known = set(map(id, self._tasks))
        for dep in deps:
            if id(dep) not in known:
                raise SimulationError(
                    f"task {name!r} depends on {dep.name!r} which is not submitted yet"
                )
        task = Task(name=name, stream=stream, duration=float(duration), deps=tuple(deps))
        self._tasks.append(task)
        self._ran = False
        return task

    def run(self, start_time: float = 0.0) -> "ScheduleResult":
        """Assign start/end times to every task and summarize the schedule."""
        tails: dict[str, float] = {}
        for task in self._tasks:
            ready = max((dep.end for dep in task.deps), default=start_time)
            task.start = max(tails.get(task.stream, start_time), ready, start_time)
            task.end = task.start + task.duration
            tails[task.stream] = task.end
        self._ran = True
        return ScheduleResult(tuple(self._tasks), start_time)


@dataclass(frozen=True)
class ScheduleResult:
    """A fully timed schedule with bubble accounting."""

    tasks: tuple[Task, ...]
    start_time: float

    @property
    def makespan(self) -> float:
        """Total wall-clock time from ``start_time`` to the last completion."""
        if not self.tasks:
            return 0.0
        return max(t.end for t in self.tasks) - self.start_time

    @property
    def streams(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for t in self.tasks:
            seen.setdefault(t.stream, None)
        return tuple(seen)

    def stream_tasks(self, stream: str) -> tuple[Task, ...]:
        return tuple(t for t in self.tasks if t.stream == stream)

    def busy_time(self, stream: str) -> float:
        """Total execution time on a stream."""
        return sum(t.duration for t in self.stream_tasks(stream))

    def bubble_time(self, stream: str) -> float:
        """Idle time on ``stream`` between its first task start and the
        schedule's completion.

        This is the quantity the bubble-free scheduler drives to zero on the
        bottleneck stream: a restoration is bubble-free when the slower
        stream never waits.
        """
        tasks = self.stream_tasks(stream)
        if not tasks:
            return 0.0
        first_start = min(t.start for t in tasks)
        span = (self.start_time + self.makespan) - first_start
        return span - self.busy_time(stream)

    def bubble_fraction(self, stream: str) -> float:
        """Bubble time as a fraction of the schedule makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.bubble_time(stream) / self.makespan

    def validate(self) -> None:
        """Check stream serialization and dependency ordering.

        Raises:
            SimulationError: if any invariant is violated.
        """
        tails: dict[str, float] = {}
        for task in self.tasks:
            if not task.scheduled:
                raise SimulationError(f"task {task.name!r} was never scheduled")
            if task.start + 1e-12 < tails.get(task.stream, self.start_time):
                raise SimulationError(f"task {task.name!r} overlaps its stream predecessor")
            for dep in task.deps:
                if task.start + 1e-12 < dep.end:
                    raise SimulationError(
                        f"task {task.name!r} starts before dependency {dep.name!r} ends"
                    )
            tails[task.stream] = task.end
