"""GEMM timing model with tile quantization.

§4.1.1 of the paper observes that cuBLAS GEMM execution time does not vary
proportionally with the number of tokens: kernels are tiled in the token
(``m``) dimension, so a GEMM over 794 tokens costs about the same as one over
the next tile boundary (the paper rounds to 768/832-style "optimized sizes").
Figure 13b plots this step curve for the 13B K/V restoration GEMM.

This module models that effect: the token dimension is rounded up to a tile
multiple, and the model-FLOPS-utilization (MFU) ramps from a small-batch
floor towards the platform's large-GEMM efficiency with a saturating curve.
The resulting times land in the window implied by Fig. 13b (a 1024-token
K/V projection for the 13B model on an A100 takes roughly 300-400 us).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simulator.hardware import Platform

#: cuBLAS-style tile size in the token dimension.  The paper's "optimized
#: sizes" (e.g. 768) are multiples of this.
DEFAULT_TILE = 128

#: Token count at which the MFU ramp reaches half of its range.
_MFU_HALF_TOKENS = 32

#: MFU floor for a single-token GEMM (launch-bound).
_MFU_FLOOR = 0.05


def round_up_tokens(n_tokens: int, tile: int = DEFAULT_TILE) -> int:
    """Round a token count up to the next GEMM tile boundary.

    This is the "round-up optimization" evaluated in Fig. 13a: issuing a
    GEMM at the tile boundary wastes the padding rows but runs at the
    optimized kernel's speed.
    """
    if n_tokens < 0:
        raise ConfigError("token count must be non-negative")
    if n_tokens == 0:
        return 0
    return int(math.ceil(n_tokens / tile)) * tile


def gemm_mfu(n_tokens: int, platform: Platform) -> float:
    """MFU achieved by a GEMM with ``n_tokens`` rows.

    Saturates towards ``platform.gemm_eff`` as the token dimension
    grows; tiny GEMMs are launch-latency bound and achieve only a small
    fraction of peak.
    """
    if n_tokens <= 0:
        return _MFU_FLOOR
    ceiling = platform.gemm_eff
    ramp = n_tokens / (n_tokens + _MFU_HALF_TOKENS)
    return _MFU_FLOOR + (ceiling - _MFU_FLOOR) * ramp


@dataclass(frozen=True)
class GemmTiming:
    """Breakdown of one GEMM invocation's modelled execution.

    Attributes:
        n_tokens: Requested row count.
        padded_tokens: Row count after tile quantization.
        flops: FLOPs actually executed (padded).
        mfu: Model-FLOPS-utilization applied.
        seconds: Wall-clock execution time.
    """

    n_tokens: int
    padded_tokens: int
    flops: float
    mfu: float
    seconds: float


def gemm_time(
    n_tokens: int,
    in_features: int,
    out_features: int,
    platform: Platform,
    tile: int = DEFAULT_TILE,
) -> GemmTiming:
    """Model the execution of an ``(n_tokens x in) @ (in x out)`` GEMM.

    A multiply-add counts as 2 FLOPs (paper §3.2, footnote 1).  The token
    dimension is padded to the tile boundary, reproducing the step curve of
    Fig. 13b, and the launch overhead is included so that zero-token calls
    are not free.
    """
    if in_features <= 0 or out_features <= 0:
        raise ConfigError("GEMM features must be positive")
    padded = round_up_tokens(n_tokens, tile)
    flops = 2.0 * padded * in_features * out_features
    mfu = gemm_mfu(padded, platform)
    seconds = platform.kernel_overhead + flops / (platform.total_flops * mfu)
    return GemmTiming(n_tokens, padded, flops, mfu, seconds)


def kv_projection_time(
    n_tokens: int,
    hidden_size: int,
    kv_size: int,
    platform: Platform,
    tile: int = DEFAULT_TILE,
) -> GemmTiming:
    """Time to project hidden states into K and V for one layer.

    This is HCache's restoration compute: two GEMMs of shape
    ``(n x D) @ (D x kv)``, i.e. ``4 * n * D * kv`` FLOPs for MHA where
    ``kv == D`` — the paper's ``C_hidden`` term.
    """
    padded = round_up_tokens(n_tokens, tile)
    flops = 4.0 * padded * hidden_size * kv_size
    mfu = gemm_mfu(padded, platform)
    seconds = 2 * platform.kernel_overhead + flops / (platform.total_flops * mfu)
    return GemmTiming(n_tokens, padded, flops, mfu, seconds)


def optimal_batch_tokens(max_tokens: int, tile: int = DEFAULT_TILE) -> int:
    """Largest tile-aligned token count not exceeding ``max_tokens``.

    §4.1.1: serving engines cap the mini-batch at a fixed length; HCache
    sets that length to an optimized cuBLAS size.
    """
    if max_tokens < tile:
        return max_tokens
    return (max_tokens // tile) * tile
