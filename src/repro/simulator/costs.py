"""Analytic restoration cost model — the equations of §3.2.

For one transformer layer with MHA over a history of ``N`` tokens and hidden
dimension ``D`` (FP16):

- HCache transmission:      ``IO_hidden = N * D * b / BW``
- HCache recomputation:     ``C_hidden = 4 * N * D^2 / FLOPS``
- KV offload transmission:  ``IO_kv    = 2 * N * D * b / BW``
- Token recomputation:      ``C_token  = (24 * N * D^2 + N^2 * D) / FLOPS``

The pipelined HCache restoration time is ``max(IO_hidden, C_hidden)`` per
layer; KV offload is pure IO; recomputation is pure compute.  The relative
compute saving of HCache over recomputation is ``6 + N / (4 * D)`` — at
least 6x, growing with context length because the quadratic attention term
disappears (§3.2 "Comparison").

These closed forms feed the bubble-free scheduler's offline profile and the
first-order analysis benchmarks (Fig. 1); the event-driven pipeline in
:mod:`repro.simulator.pipeline` layers chunked IO, GEMM quantization, and
per-layer synchronization on top of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.simulator.gemm import kv_projection_time
from repro.simulator.hardware import Platform


def hidden_bytes(config: ModelConfig, n_tokens: int, n_layers: int | None = None) -> int:
    """Bytes of hidden states for ``n_tokens`` across ``n_layers`` layers."""
    layers = config.n_layers if n_layers is None else n_layers
    return n_tokens * config.hidden_bytes_per_token_layer * layers


def kv_bytes(config: ModelConfig, n_tokens: int, n_layers: int | None = None) -> int:
    """Bytes of KV cache for ``n_tokens`` across ``n_layers`` layers."""
    layers = config.n_layers if n_layers is None else n_layers
    return n_tokens * config.kv_bytes_per_token_layer * layers


def kv_projection_flops(config: ModelConfig, n_tokens: int) -> float:
    """FLOPs to project hidden states into K and V for one layer.

    ``4 * N * D * kv_size`` — the paper's ``4 N D^2`` for MHA.
    """
    return 4.0 * n_tokens * config.hidden_size * config.kv_size


def attention_flops(config: ModelConfig, n_tokens: int) -> float:
    """FLOPs of one layer's attention module over ``n_tokens`` (prefill).

    ``8 N D^2`` for the Q/K/V/Out projections plus the paper's quadratic
    ``N^2 D`` score/weighted-average term.
    """
    d = config.hidden_size
    proj = 4.0 * 2.0 * n_tokens * d * d
    quad = float(n_tokens) * n_tokens * d
    return proj + quad


def ffn_flops(config: ModelConfig, n_tokens: int) -> float:
    """FLOPs of one layer's FFN over ``n_tokens``.

    ``2 * n_mats * N * D * D_ffn`` — equal to the paper's ``16 N D^2`` when
    ``D_ffn = 4 D`` with two matrices (OPT) and nearly identical for
    Llama2's three-matrix SwiGLU.
    """
    return 2.0 * config.n_ffn_mats * n_tokens * config.hidden_size * config.ffn_hidden_size


def full_layer_flops(config: ModelConfig, n_tokens: int) -> float:
    """FLOPs of one full transformer layer over ``n_tokens``."""
    return attention_flops(config, n_tokens) + ffn_flops(config, n_tokens)


@dataclass(frozen=True)
class LayerCosts:
    """Per-layer restoration costs for a given context length (seconds).

    This is exactly the profile the bubble-free scheduler consumes
    (§4.1.2): ``io_hidden``/``io_kv`` are transmission times and
    ``compute_hidden``/``compute_token`` are recomputation times, all for a
    single layer over the full history.
    """

    n_tokens: int
    io_hidden: float
    io_kv: float
    compute_hidden: float
    compute_token: float

    @property
    def hcache_layer_time(self) -> float:
        """Pipelined per-layer HCache time: ``max(IO_hidden, C_hidden)``."""
        return max(self.io_hidden, self.compute_hidden)

    @property
    def compute_bound(self) -> bool:
        """True when the KV projection dominates the hidden transmission."""
        return self.compute_hidden > self.io_hidden


def layer_costs(
    config: ModelConfig,
    platform: Platform,
    n_tokens: int,
    use_gemm_model: bool = True,
) -> LayerCosts:
    """Profile one layer's restoration costs on a platform.

    With ``use_gemm_model`` (the default), compute terms go through the
    tile-quantized GEMM model; otherwise the pure §3.2 closed forms with the
    platform's prefill efficiency are used (useful for the analytic
    benchmarks that mirror the paper's formulas verbatim).
    """
    if n_tokens <= 0:
        raise ConfigError("n_tokens must be positive")
    bw = platform.storage_read_bandwidth
    io_hidden = hidden_bytes(config, n_tokens, 1) / bw
    io_kv = kv_bytes(config, n_tokens, 1) / bw
    if use_gemm_model:
        compute_hidden = kv_projection_time(
            n_tokens, config.hidden_size, config.kv_size, platform
        ).seconds
    else:
        compute_hidden = kv_projection_flops(config, n_tokens) / (
            platform.total_flops * platform.gemm_eff
        )
    compute_token = full_layer_flops(config, n_tokens) / (
        platform.total_flops * platform.prefill_efficiency
    )
    return LayerCosts(n_tokens, io_hidden, io_kv, compute_hidden, compute_token)


@dataclass(frozen=True)
class RestorationEstimate:
    """First-order full-model restoration estimates (no pipelining detail).

    All times in seconds; these reproduce the paper's Fig. 1 resource
    comparison and bound the event-driven results.
    """

    n_tokens: int
    hcache: float
    kv_offload: float
    recompute: float

    @property
    def speedup_vs_offload(self) -> float:
        return self.kv_offload / self.hcache

    @property
    def speedup_vs_recompute(self) -> float:
        return self.recompute / self.hcache


def estimate_restoration(
    config: ModelConfig, platform: Platform, n_tokens: int
) -> RestorationEstimate:
    """Closed-form restoration time for all three methods (full model).

    HCache is the per-layer max of IO and compute (perfect pipeline), KV
    offload is pure transmission, recomputation is a full prefill's compute.
    """
    costs = layer_costs(config, platform, n_tokens, use_gemm_model=False)
    n = config.n_layers
    return RestorationEstimate(
        n_tokens=n_tokens,
        hcache=n * costs.hcache_layer_time,
        kv_offload=n * costs.io_kv,
        recompute=n * costs.compute_token,
    )


def theoretical_compute_speedup(config: ModelConfig, n_tokens: int) -> float:
    """The paper's ``6 + N / (4 D)`` compute-saving ratio (§3.2).

    Computed from the actual FLOP counts rather than the simplified
    constants so architectures with ``D_ffn != 4 D`` report their true
    ratio; for OPT-style models it equals the formula exactly.
    """
    return full_layer_flops(config, n_tokens) / kv_projection_flops(config, n_tokens)


def prefill_time(config: ModelConfig, platform: Platform, n_tokens: int) -> float:
    """Time of a full prefill forward pass over ``n_tokens``.

    Includes the LM-head projection and per-layer kernel overheads; used
    both for the recomputation baseline and the new-prompt prefill that
    every method performs after restoration.
    """
    if n_tokens <= 0:
        return 0.0
    flops = config.n_layers * full_layer_flops(config, n_tokens)
    flops += 2.0 * n_tokens * config.hidden_size * config.vocab_size
    compute = flops / (platform.total_flops * platform.prefill_efficiency)
    return compute + config.n_layers * platform.kernel_overhead


def decode_iteration_time(
    config: ModelConfig,
    platform: Platform,
    batch_size: int,
    context_tokens: int,
) -> float:
    """Time of one decode iteration for a batch.

    Decoding is bandwidth-bound: every layer's weights are read once per
    iteration and each sequence streams its KV cache through the attention
    kernel.  ``context_tokens`` is the total context length across the
    batch (sum over sequences).
    """
    if batch_size <= 0:
        return 0.0
    hbm = platform.total_hbm_bandwidth
    weight_read = config.weight_bytes / hbm
    kv_read = context_tokens * config.kv_bytes_per_token_layer * config.n_layers / hbm
    compute = 2.0 * batch_size * config.param_count / (
        platform.total_flops * platform.gemm_eff
    )
    overhead = config.n_layers * platform.kernel_overhead
    return max(weight_read + kv_read, compute) + overhead
