"""Multi-GPU restoration timing (§5, "Multi-GPU support").

With tensor parallelism every GPU needs the full hidden states to compute
its KV shard.  HCache lets all GPUs read *disjoint token shards*
concurrently — aggregating read bandwidth with no amplification — then
runs an all-gather over NVLink to reassemble the full hidden states.  With
pipeline parallelism each GPU independently restores its own layers, so
restoration scales embarrassingly.

This module prices both patterns on top of the single-GPU pipeline model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.simulator.hardware import InterconnectSpec, Platform

#: Per-GPU NVLink bandwidth used for the all-gather (A100 SXM4: 600 GB/s
#: total; ring all-gather moves (n-1)/n of the data at link speed).
#: Kept as the ``allgather_time`` default so existing callers (and tests
#: that monkeypatch these) are unaffected; platform-aware callers pass
#: ``platform.interconnect`` instead.
NVLINK_BANDWIDTH = 600e9

#: Fixed latency of launching one collective.
ALLGATHER_LATENCY = 20e-6


@dataclass(frozen=True)
class MultiGPURestoration:
    """Timing of a tensor-parallel restoration.

    Attributes:
        read_seconds: Sharded hidden-state read (aggregated bandwidth).
        allgather_seconds: Reassembly collective per layer batch.
        compute_seconds: Per-GPU KV projection over the full token run
            (each GPU projects its own head shard: full tokens, 1/n of
            the output channels).
        makespan: Pipelined total.
    """

    read_seconds: float
    allgather_seconds: float
    compute_seconds: float
    makespan: float


def allgather_time(
    nbytes: int, n_gpus: int, interconnect: InterconnectSpec | None = None
) -> float:
    """Ring all-gather time for ``nbytes`` of gathered payload.

    ``interconnect`` prices the link; ``None`` falls back to the module
    constants (the historical behaviour — and what the existing tests
    monkeypatch).
    """
    if n_gpus < 1:
        raise ConfigError("n_gpus must be >= 1")
    if n_gpus == 1:
        return 0.0
    moved = nbytes * (n_gpus - 1) / n_gpus
    if interconnect is None:
        return ALLGATHER_LATENCY + moved / NVLINK_BANDWIDTH
    return interconnect.collective_latency + moved / interconnect.bandwidth


def tensor_parallel_restoration(
    config: ModelConfig, platform: Platform, n_tokens: int
) -> MultiGPURestoration:
    """Price a tensor-parallel HCache restoration (§5).

    Reads shard by token across GPUs (aggregate PCIe/storage bandwidth —
    already reflected in ``platform.storage_read_bandwidth``); each layer
    then all-gathers its hidden states before the per-GPU projections.
    The collective is tiny next to the transmission ("only a small
    overhead compared with the transmission part"), which this model
    makes quantitative.
    """
    if n_tokens <= 0:
        raise ConfigError("n_tokens must be positive")
    layer_bytes = n_tokens * config.hidden_bytes_per_token_layer
    read = config.n_layers * layer_bytes / platform.storage_read_bandwidth
    gather = config.n_layers * allgather_time(
        layer_bytes, platform.n_gpus, platform.interconnect
    )
    # Each GPU projects the full token run into its head shard: the work
    # divides across GPUs exactly like the aggregate-FLOPS model assumes.
    from repro.simulator.gemm import kv_projection_time

    compute = (
        config.n_layers
        * kv_projection_time(n_tokens, config.hidden_size, config.kv_size, platform).seconds
    )
    makespan = max(read + gather, compute + gather)
    return MultiGPURestoration(
        read_seconds=read,
        allgather_seconds=gather,
        compute_seconds=compute,
        makespan=makespan,
    )


@dataclass(frozen=True)
class ShardedRestoration:
    """Timing of a ``pipeline x tensor`` sharded restoration.

    Attributes:
        pipeline_shards: Stage count along the layer dimension.
        tensor_shards: Rank count along the KV-head dimension.
        read_seconds: Largest stage's sharded hidden-state read (its
            tensor ranks' aggregated bandwidth — ``1/pipeline_shards`` of
            the platform total).
        allgather_seconds: Largest stage's per-layer reassembly
            collectives.
        compute_seconds: Largest stage's per-rank KV projection (full
            tokens, the widest head range's output channels).
        stage_makespans: Pipelined makespan of every stage; stages are
            independent, so the restoration finishes with the slowest.
        makespan: ``max(stage_makespans)``.
    """

    pipeline_shards: int
    tensor_shards: int
    read_seconds: float
    allgather_seconds: float
    compute_seconds: float
    stage_makespans: tuple[float, ...]
    makespan: float


def sharded_restoration(
    config: ModelConfig,
    platform: Platform,
    n_tokens: int,
    pipeline_shards: int,
    tensor_shards: int,
) -> ShardedRestoration:
    """Price a ``pipeline x tensor`` sharded HCache restoration.

    Generalizes §5's two patterns onto one GPU grid of
    ``pipeline_shards * tensor_shards`` devices (which must equal
    ``platform.n_gpus`` — the grid *is* the platform):

    - Layers split into contiguous balanced stages; each stage restores
      independently on its own tensor group (pipeline dimension), so the
      makespan is the slowest stage's.
    - Within a stage, the ``tensor_shards`` ranks read disjoint token
      shards at aggregated bandwidth, all-gather each layer's hidden
      states over ``platform.interconnect``, then project their own
      KV-head ranges (full tokens, ``1/tensor_shards`` of the output
      channels, GQA-group-aligned).

    Degenerate shapes recover the existing models: ``(1, N)`` is
    :func:`tensor_parallel_restoration` exactly (equal reads, gathers,
    and — for head counts divisible by ``N`` — compute), and ``(N, 1)``
    matches :func:`pipeline_parallel_restoration`'s per-stage structure
    with zero gather.
    """
    if n_tokens <= 0:
        raise ConfigError("n_tokens must be positive")
    if pipeline_shards < 1 or tensor_shards < 1:
        raise ConfigError("shard counts must be positive")
    if platform.n_gpus != pipeline_shards * tensor_shards:
        raise ConfigError(
            f"shard grid {pipeline_shards}x{tensor_shards} needs "
            f"{pipeline_shards * tensor_shards} GPUs, platform has {platform.n_gpus}"
        )
    if tensor_shards > config.n_kv_heads:
        raise ConfigError(
            f"{tensor_shards} tensor shards over {config.n_kv_heads} KV heads "
            "would split a GQA group across shards"
        )
    from repro.simulator.gemm import kv_projection_time

    n_stages = min(pipeline_shards, config.n_layers)
    base, extra = divmod(config.n_layers, n_stages)
    stage_sizes = [base + (1 if s < extra else 0) for s in range(n_stages)]
    layer_bytes = n_tokens * config.hidden_bytes_per_token_layer
    # Each stage owns tensor_shards of the platform's GPUs, hence that
    # fraction of the aggregate storage/PCIe read bandwidth.
    stage_read_bw = platform.storage_read_bandwidth / pipeline_shards
    gather_per_layer = allgather_time(
        layer_bytes, tensor_shards, platform.interconnect
    )
    # Widest head range of the GQA-aligned split: full token run,
    # ceil(n_kv_heads / tensor_shards) heads of output channels, on one GPU.
    per_gpu = replace(platform, n_gpus=1)
    rank_heads = -(-config.n_kv_heads // tensor_shards)
    rank_kv = rank_heads * config.head_dim
    compute_per_layer = kv_projection_time(
        n_tokens, config.hidden_size, rank_kv, per_gpu
    ).seconds

    stage_makespans = tuple(
        max(
            n * layer_bytes / stage_read_bw + n * gather_per_layer,
            n * compute_per_layer + n * gather_per_layer,
        )
        for n in stage_sizes
    )
    widest = stage_sizes[0]
    return ShardedRestoration(
        pipeline_shards=pipeline_shards,
        tensor_shards=tensor_shards,
        read_seconds=widest * layer_bytes / stage_read_bw,
        allgather_seconds=widest * gather_per_layer,
        compute_seconds=widest * compute_per_layer,
        stage_makespans=stage_makespans,
        makespan=max(stage_makespans),
    )


def pipeline_parallel_restoration(
    config: ModelConfig, platform: Platform, n_tokens: int
) -> float:
    """Price a pipeline-parallel restoration: each GPU restores its own
    ``n_layers / n_gpus`` layers independently and concurrently (§5)."""
    if platform.n_gpus < 1:
        raise ConfigError("platform needs at least one GPU")
    per_gpu = replace(platform, n_gpus=1)
    layers_per_gpu = -(-config.n_layers // platform.n_gpus)  # ceil
    layer_bytes = n_tokens * config.hidden_bytes_per_token_layer
    read = layers_per_gpu * layer_bytes / per_gpu.storage_read_bandwidth
    from repro.simulator.gemm import kv_projection_time

    compute = layers_per_gpu * kv_projection_time(
        n_tokens, config.hidden_size, config.kv_size, per_gpu
    ).seconds
    return max(read, compute)
