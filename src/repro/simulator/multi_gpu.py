"""Multi-GPU restoration timing (§5, "Multi-GPU support").

With tensor parallelism every GPU needs the full hidden states to compute
its KV shard.  HCache lets all GPUs read *disjoint token shards*
concurrently — aggregating read bandwidth with no amplification — then
runs an all-gather over NVLink to reassemble the full hidden states.  With
pipeline parallelism each GPU independently restores its own layers, so
restoration scales embarrassingly.

This module prices both patterns on top of the single-GPU pipeline model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.simulator.hardware import Platform

#: Per-GPU NVLink bandwidth used for the all-gather (A100 SXM4: 600 GB/s
#: total; ring all-gather moves (n-1)/n of the data at link speed).
NVLINK_BANDWIDTH = 600e9

#: Fixed latency of launching one collective.
ALLGATHER_LATENCY = 20e-6


@dataclass(frozen=True)
class MultiGPURestoration:
    """Timing of a tensor-parallel restoration.

    Attributes:
        read_seconds: Sharded hidden-state read (aggregated bandwidth).
        allgather_seconds: Reassembly collective per layer batch.
        compute_seconds: Per-GPU KV projection over the full token run
            (each GPU projects its own head shard: full tokens, 1/n of
            the output channels).
        makespan: Pipelined total.
    """

    read_seconds: float
    allgather_seconds: float
    compute_seconds: float
    makespan: float


def allgather_time(nbytes: int, n_gpus: int) -> float:
    """Ring all-gather time for ``nbytes`` of gathered payload."""
    if n_gpus < 1:
        raise ConfigError("n_gpus must be >= 1")
    if n_gpus == 1:
        return 0.0
    moved = nbytes * (n_gpus - 1) / n_gpus
    return ALLGATHER_LATENCY + moved / NVLINK_BANDWIDTH


def tensor_parallel_restoration(
    config: ModelConfig, platform: Platform, n_tokens: int
) -> MultiGPURestoration:
    """Price a tensor-parallel HCache restoration (§5).

    Reads shard by token across GPUs (aggregate PCIe/storage bandwidth —
    already reflected in ``platform.storage_read_bandwidth``); each layer
    then all-gathers its hidden states before the per-GPU projections.
    The collective is tiny next to the transmission ("only a small
    overhead compared with the transmission part"), which this model
    makes quantitative.
    """
    if n_tokens <= 0:
        raise ConfigError("n_tokens must be positive")
    layer_bytes = n_tokens * config.hidden_bytes_per_token_layer
    read = config.n_layers * layer_bytes / platform.storage_read_bandwidth
    gather = config.n_layers * allgather_time(layer_bytes, platform.n_gpus)
    # Each GPU projects the full token run into its head shard: the work
    # divides across GPUs exactly like the aggregate-FLOPS model assumes.
    from repro.simulator.gemm import kv_projection_time

    compute = (
        config.n_layers
        * kv_projection_time(n_tokens, config.hidden_size, config.kv_size, platform).seconds
    )
    makespan = max(read + gather, compute + gather)
    return MultiGPURestoration(
        read_seconds=read,
        allgather_seconds=gather,
        compute_seconds=compute,
        makespan=makespan,
    )


def pipeline_parallel_restoration(
    config: ModelConfig, platform: Platform, n_tokens: int
) -> float:
    """Price a pipeline-parallel restoration: each GPU restores its own
    ``n_layers / n_gpus`` layers independently and concurrently (§5)."""
    if platform.n_gpus < 1:
        raise ConfigError("platform needs at least one GPU")
    per_gpu = replace(platform, n_gpus=1)
    layers_per_gpu = -(-config.n_layers // platform.n_gpus)  # ceil
    layer_bytes = n_tokens * config.hidden_bytes_per_token_layer
    read = layers_per_gpu * layer_bytes / per_gpu.storage_read_bandwidth
    from repro.simulator.gemm import kv_projection_time

    compute = layers_per_gpu * kv_projection_time(
        n_tokens, config.hidden_size, config.kv_size, per_gpu
    ).seconds
    return max(read, compute)
