"""Restoration pipeline construction (Fig. 5 and Fig. 8 of the paper).

Given per-layer IO and compute durations, these builders lay tasks onto the
two hardware streams exactly as §4.1 describes:

- **HCache layers**: the layer's hidden states are transmitted on the IO
  stream; its K/V projection runs on the compute stream once the data has
  arrived (Fig. 5).
- **KV-complement mode** (fast IO): hidden layers are transmitted first,
  back to back; the KV cache of the remaining layers is fetched in the IO
  time left over while projections drain (Fig. 8d).
- **Recompute-complement mode** (fast compute): the first ``L_O`` layers are
  recomputed from tokens while the hidden states of the later layers
  prefetch; projections start when the recomputation finishes (§4.1.2).
- **Token-wise partition** (Fig. 8c): every layer carries a hidden-state
  shard and a KV shard; the per-layer IO moves both, and the projection
  covers only the hidden shard.

All builders return a :class:`~repro.simulator.streams.ScheduleResult`, so
makespan and bubble accounting come for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import SchedulingError
from repro.simulator.streams import ScheduleResult, StreamSchedule

IO_STREAM = "io"
COMPUTE_STREAM = "compute"


class LayerMethod(str, Enum):
    """How one layer's state is restored."""

    HIDDEN = "hidden"
    KV = "kv"
    RECOMPUTE = "recompute"


@dataclass(frozen=True)
class LayerPlan:
    """One layer's restoration work items.

    Attributes:
        layer: Layer index (0-based).
        method: Restoration method for this layer.
        io_time: Transmission time on the IO stream (0 for recompute).
        compute_time: Time on the compute stream (projection for HIDDEN,
            full-layer forward for RECOMPUTE, 0 for KV).
    """

    layer: int
    method: LayerMethod
    io_time: float
    compute_time: float

    def __post_init__(self) -> None:
        if self.io_time < 0 or self.compute_time < 0:
            raise SchedulingError(f"layer {self.layer}: negative task duration")
        if self.method is LayerMethod.RECOMPUTE and self.io_time > 0:
            raise SchedulingError("recompute layers move no state over IO")
        if self.method is LayerMethod.KV and self.compute_time > 0:
            raise SchedulingError("KV-offloaded layers need no compute")


def _check_plans(plans: list[LayerPlan]) -> None:
    if not plans:
        raise SchedulingError("restoration plan is empty")
    layers = [p.layer for p in plans]
    if sorted(layers) != list(range(len(plans))):
        raise SchedulingError(f"layer plans must cover 0..{len(plans) - 1}, got {layers}")
    recompute = [p.layer for p in plans if p.method is LayerMethod.RECOMPUTE]
    if recompute and recompute != list(range(len(recompute))):
        raise SchedulingError(
            "token-recomputed layers must be a prefix of the model "
            f"(they need the embedding forward), got layers {recompute}"
        )


def build_layerwise_schedule(plans: list[LayerPlan]) -> ScheduleResult:
    """Lay out a layer-wise partitioned restoration (§4.1.1, Fig. 8b/d).

    Ordering rules derived from the paper:

    1. Token-recomputed layers (a prefix) run first on the compute stream.
    2. Hidden-state transmissions run back to back on the IO stream starting
       at time zero (prefetch during recomputation is explicit in §4.1.2).
    3. Each hidden layer's projection waits for its transmission and, for
       the first one, the end of token recomputation (projections continue
       the forward pass, so they follow recompute on the same stream).
    4. KV-offloaded layers transmit after all hidden states (they fill the
       IO bubble while projections drain).
    """
    _check_plans(plans)
    ordered = sorted(plans, key=lambda p: p.layer)
    schedule = StreamSchedule()

    recompute_tasks = [
        schedule.submit(f"recompute:L{p.layer}", COMPUTE_STREAM, p.compute_time)
        for p in ordered
        if p.method is LayerMethod.RECOMPUTE
    ]

    hidden = [p for p in ordered if p.method is LayerMethod.HIDDEN]
    io_tasks = {
        p.layer: schedule.submit(f"io:L{p.layer}", IO_STREAM, p.io_time) for p in hidden
    }
    barrier = (recompute_tasks[-1],) if recompute_tasks else ()
    for p in hidden:
        deps = (io_tasks[p.layer],) + barrier
        schedule.submit(f"proj:L{p.layer}", COMPUTE_STREAM, p.compute_time, deps=deps)

    for p in ordered:
        if p.method is LayerMethod.KV:
            schedule.submit(f"kv:L{p.layer}", IO_STREAM, p.io_time)

    result = schedule.run()
    result.validate()
    return result


@dataclass(frozen=True)
class TokenwiseLayerPlan:
    """One layer of a token-wise partitioned restoration (Fig. 8a/c).

    ``io_time`` covers the combined transfer of the hidden-state shard and
    the complementary KV shard; ``compute_time`` is the (tile-quantized)
    projection over the hidden shard only.  Per-layer synchronization is
    required because the next layer's buffers reuse the same staging space.
    """

    layer: int
    io_time: float
    compute_time: float


def build_tokenwise_schedule(plans: list[TokenwiseLayerPlan]) -> ScheduleResult:
    """Lay out a token-wise partitioned restoration.

    Layer ``i``'s projection overlaps layer ``i+1``'s transmission, but each
    projection waits for its own layer's combined transfer — the structure
    shown in Fig. 8c.
    """
    if not plans:
        raise SchedulingError("restoration plan is empty")
    ordered = sorted(plans, key=lambda p: p.layer)
    schedule = StreamSchedule()
    for p in ordered:
        io = schedule.submit(f"io:L{p.layer}", IO_STREAM, p.io_time)
        schedule.submit(f"proj:L{p.layer}", COMPUTE_STREAM, p.compute_time, deps=(io,))
    result = schedule.run()
    result.validate()
    return result


def restoration_makespan(plans: list[LayerPlan]) -> float:
    """Convenience wrapper returning only the layer-wise makespan."""
    return build_layerwise_schedule(plans).makespan


@dataclass(frozen=True)
class ShardedStageTimeline:
    """One pipeline stage's granule timeline in a sharded restoration.

    Built from a measured :class:`~repro.runtime.sharded.StageTrace` (or
    synthetic durations in tests): per consumed granule, the modelled
    single-link IO seconds, the measured consume seconds, and the gather
    seconds the tensor dimension adds (zero for KV installs or a single
    tensor rank).

    Attributes:
        stage: Stage index along the pipeline dimension.
        io_seconds: Per-granule device IO at single-link bandwidth.
        compute_seconds: Per-granule projection/install time.
        gather_seconds: Per-granule all-gather reassembly time.
    """

    stage: int
    io_seconds: tuple[float, ...]
    compute_seconds: tuple[float, ...]
    gather_seconds: tuple[float, ...]

    def __post_init__(self) -> None:
        lengths = {
            len(self.io_seconds),
            len(self.compute_seconds),
            len(self.gather_seconds),
        }
        if len(lengths) != 1:
            raise SchedulingError(
                f"stage {self.stage}: io/compute/gather series must align, got "
                f"{len(self.io_seconds)}/{len(self.compute_seconds)}/"
                f"{len(self.gather_seconds)} entries"
            )
        for series in (self.io_seconds, self.compute_seconds, self.gather_seconds):
            if any(t < 0 for t in series):
                raise SchedulingError(f"stage {self.stage}: negative task duration")


def sharded_restoration_makespan(
    stages: "list[ShardedStageTimeline] | tuple[ShardedStageTimeline, ...]",
    tensor_shards: int,
) -> float:
    """Makespan of a sharded drain: parallel IO streams, one merge stream.

    This models what :class:`~repro.runtime.sharded.ShardedRestoreExecutor`
    actually executes — which is *not* a grid of fully independent GPUs
    (that idealization is :func:`repro.simulator.multi_gpu.sharded_restoration`):

    - **IO**: each pipeline stage owns an independent IO stream, and the
      tensor dimension is folded in on it — each granule's single-link IO
      is divided by ``tensor_shards`` (the ranks read disjoint shards at
      aggregated bandwidth) and followed by its gather before the merge
      can start.  Stage streams advance concurrently.
    - **Compute**: every stage's granules merge through *one* compute
      stream (the §4.1 recurrence), because the executor's bit-exactness
      contract runs all projection/install work on the single calling
      thread.  Granules enter the merge stream as their stage IO streams
      deliver them (readiness order — the executor's rotation services
      whichever stage has a granule ready).

    Sharding therefore accelerates the IO side of the §4.1 pipeline; the
    makespan floors at the total single-stream merge compute, which is
    exactly how the measured harness behaves.
    """
    if tensor_shards < 1:
        raise SchedulingError("tensor_shards must be >= 1")
    if not stages:
        raise SchedulingError("sharded restoration plan is empty")
    ready_times = []
    for timeline in stages:
        io_done = 0.0
        for io, compute, gather in zip(
            timeline.io_seconds, timeline.compute_seconds, timeline.gather_seconds
        ):
            io_done += io / tensor_shards + gather
            ready_times.append((io_done, compute))
    compute_done = 0.0
    for ready, compute in sorted(ready_times, key=lambda event: event[0]):
        compute_done = max(compute_done, ready) + compute
    return compute_done
