"""Hardware descriptions used by the performance model.

The specs mirror Table 2 of the paper plus the storage devices of the default
testbed (Samsung PM9A3 enterprise SSDs, §6).  Every quantity is in SI base
units: bytes, seconds, FLOP/s, bytes/s.

The paper's evaluation spans five GPUs (A100, A30, RTX 4090, L20, H800) with
their FP16 peak FLOPS and host-to-GPU transmission speed, one SSD model, and
a host-DRAM storage backend used on cloud platforms.  :func:`platform_preset`
builds the named platforms used throughout the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

GIB = 1024**3
GB = 1000**3
TFLOPS = 1e12


@dataclass(frozen=True)
class GPUSpec:
    """A single GPU's performance-relevant characteristics.

    Attributes:
        name: Marketing name, e.g. ``"A100"``.
        hbm_bytes: On-device memory capacity in bytes.
        peak_flops: Peak FP16 tensor throughput in FLOP/s (Table 2).
        pcie_bandwidth: Host-to-device transmission speed in bytes/s
            (Table 2's "Transmission Speed").
        hbm_bandwidth: Device memory bandwidth in bytes/s.  Decode iterations
            are weight-read bound, so this drives TBT.
        gemm_mfu: Model-FLOPS-utilization ceiling achieved by large,
            restoration-sized GEMMs on this GPU.  Calibrated against the
            paper's measurements: the A100 value makes the 13B schedule
            land on Table 3's "36 H + 4 KV", and the A30 value reproduces
            HCache-O trailing KV offload in the IO-sufficient ablation
            (§6.3.1).  Smaller-SM parts sustain lower utilization on the
            skinny K/V-projection GEMMs.
    """

    name: str
    hbm_bytes: int
    peak_flops: float
    pcie_bandwidth: float
    hbm_bandwidth: float
    gemm_mfu: float = 0.70

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.pcie_bandwidth <= 0:
            raise ConfigError(f"GPU {self.name!r} must have positive speeds")
        if self.hbm_bytes <= 0 or self.hbm_bandwidth <= 0:
            raise ConfigError(f"GPU {self.name!r} must have positive memory specs")


@dataclass(frozen=True)
class SSDSpec:
    """A storage device's performance characteristics.

    Attributes:
        name: Device model name.
        read_bandwidth: Sequential read bandwidth in bytes/s.
        write_bandwidth: Sequential write bandwidth in bytes/s.
        io_latency: Fixed per-I/O overhead in seconds for well-formed
            (chunk-sized) requests issued at moderate queue depth.
        small_write_latency: Latency of a small synchronous write, used by
            the DirectIO ablation (§6.3.3) where per-sequence hidden states
            are written without chunk coalescing.
        small_write_bandwidth: Streaming bandwidth achieved by small
            synchronous writes.
        capacity_bytes: Usable capacity.
    """

    name: str
    read_bandwidth: float
    write_bandwidth: float
    io_latency: float = 5e-6
    small_write_latency: float = 22e-6
    small_write_bandwidth: float = 1.0 * GB
    capacity_bytes: int = 4000 * GB

    def __post_init__(self) -> None:
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ConfigError(f"SSD {self.name!r} must have positive bandwidth")

    def read_time(self, nbytes: int, n_ios: int = 1) -> float:
        """Time to read ``nbytes`` issued as ``n_ios`` requests."""
        return n_ios * self.io_latency + nbytes / self.read_bandwidth

    def write_time(self, nbytes: int, n_ios: int = 1) -> float:
        """Time to write ``nbytes`` issued as ``n_ios`` chunk-sized requests."""
        return n_ios * self.io_latency + nbytes / self.write_bandwidth

    def small_write_time(self, nbytes: int) -> float:
        """Time of one small synchronous write (DirectIO path)."""
        return self.small_write_latency + nbytes / self.small_write_bandwidth


@dataclass(frozen=True)
class DRAMSpec:
    """Host DRAM used as the storage backend on cloud platforms (§6).

    Reads are limited by the GPU's transmission (PCIe/NVLink-C2C) speed, so
    the device itself is modelled with a bandwidth high enough not to be the
    bottleneck, plus a tiny per-IO cost.
    """

    name: str = "host-dram"
    bandwidth: float = 200 * GB
    io_latency: float = 1e-6
    capacity_bytes: int = 256 * GIB

    def read_time(self, nbytes: int, n_ios: int = 1) -> float:
        return n_ios * self.io_latency + nbytes / self.bandwidth

    def write_time(self, nbytes: int, n_ios: int = 1) -> float:
        return n_ios * self.io_latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class InterconnectSpec:
    """The GPU-to-GPU interconnect used by restoration collectives (§5).

    Sharded restoration reassembles each layer's hidden states with an
    all-gather over this link before the per-GPU projections.  Lifting the
    numbers into the platform (instead of module constants in
    :mod:`repro.simulator.multi_gpu`) makes the benchmarks and the
    modelled timeline price the *same* hardware; the defaults equal the
    former constants (A100 SXM4 NVLink3), so existing platforms are
    unchanged.

    Attributes:
        name: Interconnect generation, e.g. ``"nvlink3"``.
        bandwidth: Per-GPU link bandwidth in bytes/s.
        collective_latency: Fixed latency of launching one collective, in
            seconds.
    """

    name: str = "nvlink3"
    bandwidth: float = 600e9
    collective_latency: float = 20e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigError(f"interconnect {self.name!r} must have positive bandwidth")
        if self.collective_latency < 0:
            raise ConfigError(
                f"interconnect {self.name!r} must have non-negative latency"
            )


#: GPU presets from Table 2 of the paper.  HBM bandwidths come from the
#: public datasheets; they only affect decode (TBT) modelling.
GPUS: dict[str, GPUSpec] = {
    "A100": GPUSpec("A100", 40 * GIB, 312 * TFLOPS, 32 * GB, 1555 * GB, gemm_mfu=0.73),
    "A30": GPUSpec("A30", 24 * GIB, 165 * TFLOPS, 32 * GB, 933 * GB, gemm_mfu=0.55),
    "4090": GPUSpec("4090", 24 * GIB, 330 * TFLOPS, 32 * GB, 1008 * GB, gemm_mfu=0.65),
    "L20": GPUSpec("L20", 48 * GIB, 120 * TFLOPS, 32 * GB, 864 * GB, gemm_mfu=0.65),
    "H800": GPUSpec("H800", 80 * GIB, 990 * TFLOPS, 64 * GB, 3350 * GB, gemm_mfu=0.60),
}

#: The default testbed's SSD (§6: Samsung PM9A3, 6.9 GB/s read per device).
PM9A3 = SSDSpec(
    name="PM9A3",
    read_bandwidth=6.9 * GB,
    write_bandwidth=4.0 * GB,
)


@dataclass(frozen=True)
class Platform:
    """A complete hardware platform: GPU(s) plus a storage backend.

    Attributes:
        gpu: The GPU spec (per device).
        n_gpus: Number of GPUs used with tensor parallelism.  Peak FLOPS and
            transmission bandwidth aggregate across GPUs (§5, multi-GPU
            support: each GPU fetches a disjoint shard of hidden states).
        ssds: SSD devices attached to the host (empty when DRAM is used).
        dram: Host DRAM backend, used when ``ssds`` is empty.
        interconnect: GPU-to-GPU link pricing the restoration collectives
            (all-gather of the tensor dimension's hidden states).
        gemm_efficiency: Optional override of the GPU's large-GEMM MFU
            ceiling; ``None`` (the default) uses ``gpu.gemm_mfu``.
        prefill_efficiency: MFU of a full prefill forward pass, lower than a
            single dense GEMM because of attention/softmax/norm overheads.
        iteration_overhead: Fixed per-iteration scheduling overhead of the
            serving engine, in seconds.
        kernel_overhead: Fixed per-layer kernel launch overhead, in seconds.
        request_overhead: Fixed per-request serving overhead (tokenization,
            scheduling, batching queue entry); part of every TTFT,
            including the ideal system's.
    """

    gpu: GPUSpec
    n_gpus: int = 1
    ssds: tuple[SSDSpec, ...] = ()
    dram: DRAMSpec = field(default_factory=DRAMSpec)
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)
    gemm_efficiency: float | None = None
    prefill_efficiency: float = 0.55
    iteration_overhead: float = 2e-3
    kernel_overhead: float = 8e-6
    request_overhead: float = 30e-3

    def __post_init__(self) -> None:
        if self.n_gpus < 1:
            raise ConfigError("n_gpus must be >= 1")
        if self.gemm_efficiency is not None and not 0 < self.gemm_efficiency <= 1:
            raise ConfigError("gemm_efficiency must be in (0, 1]")
        if not 0 < self.prefill_efficiency <= 1:
            raise ConfigError("prefill_efficiency must be in (0, 1]")

    @property
    def gemm_eff(self) -> float:
        """Effective large-GEMM MFU ceiling for this platform."""
        if self.gemm_efficiency is not None:
            return self.gemm_efficiency
        return self.gpu.gemm_mfu

    @property
    def total_flops(self) -> float:
        """Aggregate FP16 FLOP/s across all GPUs."""
        return self.gpu.peak_flops * self.n_gpus

    @property
    def total_hbm_bandwidth(self) -> float:
        """Aggregate HBM bandwidth across all GPUs."""
        return self.gpu.hbm_bandwidth * self.n_gpus

    @property
    def uses_dram_backend(self) -> bool:
        """True when hidden states / KV are stored in host DRAM."""
        return not self.ssds

    @property
    def storage_read_bandwidth(self) -> float:
        """Aggregate storage-to-GPU read bandwidth in bytes/s.

        Reads are capped by the transmission (PCIe) bandwidth of the GPUs;
        with 4x PM9A3 on an A100 the SSDs saturate PCIe, matching §6.2.2.
        """
        link = self.gpu.pcie_bandwidth * self.n_gpus
        if self.uses_dram_backend:
            return min(link, self.dram.bandwidth)
        return min(link, sum(ssd.read_bandwidth for ssd in self.ssds))

    @property
    def storage_write_bandwidth(self) -> float:
        """Aggregate GPU/host-to-storage write bandwidth in bytes/s."""
        link = self.gpu.pcie_bandwidth * self.n_gpus
        if self.uses_dram_backend:
            return min(link, self.dram.bandwidth)
        return min(link, sum(ssd.write_bandwidth for ssd in self.ssds))

    def with_ssds(self, count: int, spec: SSDSpec = PM9A3) -> "Platform":
        """Return a copy of this platform with ``count`` identical SSDs."""
        if count < 0:
            raise ConfigError("SSD count must be non-negative")
        return replace(self, ssds=tuple(spec for _ in range(count)))


def platform_preset(name: str) -> Platform:
    """Build one of the named platforms used in the paper's evaluation.

    Supported names (case-insensitive):

    - ``"default"`` / ``"a100-4ssd"``: one A100 with 4x PM9A3 (the default
      testbed for 7B/13B models).
    - ``"a100x4-4ssd"``: four A100s with tensor parallelism and 4 SSDs (the
      OPT-30B testbed; one SSD per GPU).
    - ``"a100-dram"``, ``"a30-dram"``, ``"4090-dram"``, ``"l20-dram"``,
      ``"h800-dram"``: single GPU with the host-DRAM backend (Fig. 11a-c).
    - ``"h800x2-dram"``, ``"a100x4-dram"``: multi-GPU DRAM platforms
      (Fig. 11c).
    - ``"io-sufficient"``: A30 + 4 SSDs (Fig. 12).
    - ``"compute-sufficient"``: A100 + 1 SSD (Fig. 12).
    - ``"balanced"``: A100 + 4 SSDs (Fig. 12, used with the 13B model).
    """
    key = name.lower()
    presets: dict[str, Platform] = {
        "default": Platform(GPUS["A100"]).with_ssds(4),
        "a100-4ssd": Platform(GPUS["A100"]).with_ssds(4),
        "a100-1ssd": Platform(GPUS["A100"]).with_ssds(1),
        "a100x4-4ssd": Platform(GPUS["A100"], n_gpus=4).with_ssds(4),
        "a100-dram": Platform(GPUS["A100"]),
        "a30-dram": Platform(GPUS["A30"]),
        "4090-dram": Platform(GPUS["4090"]),
        "l20-dram": Platform(GPUS["L20"]),
        "h800-dram": Platform(GPUS["H800"]),
        "h800x2-dram": Platform(GPUS["H800"], n_gpus=2),
        "a100x4-dram": Platform(GPUS["A100"], n_gpus=4),
        "io-sufficient": Platform(GPUS["A30"]).with_ssds(4),
        "compute-sufficient": Platform(GPUS["A100"]).with_ssds(1),
        "balanced": Platform(GPUS["A100"]).with_ssds(4),
    }
    if key not in presets:
        raise ConfigError(f"unknown platform preset {name!r}; choose from {sorted(presets)}")
    return presets[key]
