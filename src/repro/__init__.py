"""HCache reproduction: fast LLM state restoration from hidden states.

Reproduction of *Fast State Restoration in LLM Serving with HCache*
(Gao, Chen, Shu — EuroSys 2025).  The package provides:

- :mod:`repro.core` — the HCache engine, bubble-free restoration
  scheduler, chunk-oriented storage management, and two-stage saving.
- :mod:`repro.models` — model configs plus a real numpy transformer that
  demonstrates lossless restoration.
- :mod:`repro.simulator` — the hardware performance model standing in for
  the paper's GPU/SSD testbed.
- :mod:`repro.storage` — chunked host storage substrate.
- :mod:`repro.engine` — serving engines (timing simulation + numeric).
- :mod:`repro.runtime` — threaded restore executor + shared IO worker
  pool (real wall-clock IO/compute overlap).
- :mod:`repro.baselines` — token recomputation, KV offload, naive hybrid,
  and the ideal lower bound.
- :mod:`repro.traces` — ShareGPT4/L-Eval-shaped workload generators.
- :mod:`repro.cache` — GPU-resident KV reuse (LRU) experiments.

Quickstart::

    from repro import quickstart_demo
    quickstart_demo()
"""

from repro.baselines import (
    HCacheMethod,
    IdealMethod,
    KVOffloadMethod,
    NaiveHybridMethod,
    RecomputationMethod,
    default_methods,
)
from repro.core import (
    BubbleFreeScheduler,
    HCacheEngine,
    PartitionScheme,
    hcache_timing,
    profile_platform,
)
from repro.engine import NumericServingEngine, ServingSimulator
from repro.models import KVCache, ModelConfig, Transformer, model_preset
from repro.runtime import IOWorkerPool, RestoreExecutor
from repro.simulator import Platform, platform_preset
from repro.storage import StorageManager

__version__ = "1.0.0"

__all__ = [
    "BubbleFreeScheduler",
    "HCacheEngine",
    "HCacheMethod",
    "IOWorkerPool",
    "IdealMethod",
    "KVCache",
    "KVOffloadMethod",
    "ModelConfig",
    "NaiveHybridMethod",
    "NumericServingEngine",
    "PartitionScheme",
    "Platform",
    "RecomputationMethod",
    "RestoreExecutor",
    "ServingSimulator",
    "StorageManager",
    "Transformer",
    "default_methods",
    "hcache_timing",
    "model_preset",
    "platform_preset",
    "profile_platform",
    "quickstart_demo",
]


def quickstart_demo() -> None:
    """Smallest end-to-end demonstration: save, evict, restore, compare.

    Runs a tiny model for real, restores its KV cache from hidden states,
    and prints the restoration-time comparison for Llama2-7B on the
    paper's default testbed.
    """
    import numpy as np

    from repro.core.profiler import build_storage_array

    config = model_preset("tiny-llama")
    model = Transformer.from_seed(config, seed=0)
    platform = platform_preset("default")
    storage = StorageManager(build_storage_array(platform))
    engine = HCacheEngine(model, storage)
    engine.register_context("demo")
    prompt = np.arange(24) % config.vocab_size
    result, cache = model.prefill(prompt, capture_hidden=True)
    assert result.hidden_states is not None
    engine.save_states("demo", result.hidden_states, prompt, kv_cache=cache)
    engine.seal("demo")
    restored = engine.restore("demo")
    print(f"lossless restore: {cache.equals(restored)}")

    seven_b = model_preset("llama2-7b")
    for name, method in default_methods(seven_b, platform).items():
        if name == "ideal":
            continue
        timing = method.restoration_timing(2048)
        print(
            f"{name:>11}: restore 2048 tokens of {seven_b.name} in "
            f"{timing.makespan * 1e3:7.2f} ms "
            f"({timing.restoration_speed / 1e3:6.1f}K tokens/s)"
        )
