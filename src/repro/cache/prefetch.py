"""Prefetching HCache: DRAM-warm restoration for predictable reuse.

§4 of the paper notes that AttentionStore-style hierarchical backends with
"prefetching and caching strategies, allowing frequently accessed
contextual states to reside in the host DRAM" are orthogonal to HCache and
can be incorporated.  This module incorporates them: after a conversation
round ends, the session's hidden states are prefetched from the SSD array
into a bounded DRAM tier (the 30-second round interval of §6.1.1 leaves
ample time); the next round's restoration then streams at host-link speed
instead of SSD speed, and the bubble-free scheduler re-balances the
partition for the faster IO.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profiler import HardwareProfile, build_storage_array, profile_platform
from repro.core.restoration import RestorationTiming, scheme_timing
from repro.core.scheduler import BubbleFreeScheduler
from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.simulator.hardware import Platform
from repro.storage.streaming import pipelined_makespan
from repro.storage.tiered import TieredBackend


@dataclass(frozen=True)
class WarmRestoration:
    """One restoration outcome under the prefetching backend.

    Attributes:
        timing: The pipelined restoration timing (layer granularity).
        tier: ``"dram"`` (prefetch hit) or ``"ssd"`` (cold).
        scheme: Partition the scheduler chose for this tier's IO speed.
        chunk_pipelined_s: Makespan of the same restoration at chunk
            granularity — per-chunk reads from the tiered backend
            overlapped with per-chunk projection compute through the
            same :func:`repro.storage.streaming.pipelined_makespan`
            timeline the numeric engine's streamed restore reports, so
            DRAM-warm and SSD reads are costed by identical code.
    """

    timing: RestorationTiming
    tier: str
    scheme_description: str
    chunk_pipelined_s: float = 0.0


class PrefetchingHCache:
    """HCache restoration in front of a DRAM-over-SSD tier."""

    def __init__(
        self,
        config: ModelConfig,
        platform: Platform,
        dram_capacity_bytes: int = 64 * 1024**3,
        io_parallelism: int = 1,
    ) -> None:
        """``io_parallelism`` is forwarded to the :class:`TieredBackend`:
        it models the shared restore IO worker pool keeping that many
        chunk reads in flight on the SSD tier, which amortizes per-IO
        latency in the warm/cold timing this class reports."""
        self.config = config
        self.platform = platform
        self.backend = TieredBackend(
            build_storage_array(platform),
            dram_capacity_bytes=dram_capacity_bytes,
            link_bandwidth=platform.gpu.pcie_bandwidth * platform.n_gpus,
            io_parallelism=io_parallelism,
        )
        self._scheduler = BubbleFreeScheduler(config.n_layers)

    def _context_bytes(self, n_tokens: int) -> int:
        # Prefetch moves the scheduler-stored state; approximate with the
        # pure hidden-state footprint (the dominant component).
        return n_tokens * self.config.hidden_bytes_per_token_layer * self.config.n_layers

    def finish_round(self, context_id: str, n_tokens: int) -> float:
        """Called when a round ends: warm the context for its next round.

        Returns the background SSD-to-DRAM copy time, which must fit in
        the think-time gap (30 s in the paper's workload) to be free.
        """
        if n_tokens <= 0:
            raise ConfigError("n_tokens must be positive")
        return self.backend.prefetch(context_id, self._context_bytes(n_tokens))

    def _profile_for_tier(self, n_tokens: int, tier: str) -> HardwareProfile:
        base = profile_platform(self.config, self.platform, n_tokens)
        if tier == "ssd":
            return base
        bw = min(self.backend.link_bandwidth, self.backend.dram.bandwidth)
        hidden_layer_bytes = n_tokens * self.config.hidden_bytes_per_token_layer
        return HardwareProfile(
            model=base.model,
            n_tokens=n_tokens,
            io_hidden=hidden_layer_bytes / bw,
            io_kv=2 * hidden_layer_bytes / bw,
            compute_hidden=base.compute_hidden,
            compute_token=base.compute_token,
        )

    def restore(self, context_id: str, n_tokens: int) -> WarmRestoration:
        """Restore a context, at DRAM speed when the prefetch landed."""
        if n_tokens <= 0:
            raise ConfigError("n_tokens must be positive")
        read = self.backend.read_streamed(
            context_id,
            self._context_bytes(n_tokens),
            chunk_bytes=64 * self.config.hidden_bytes_per_token_layer,
        )
        profile = self._profile_for_tier(n_tokens, read.tier)
        decision = self._scheduler.schedule(profile)
        timing = scheme_timing(
            self.config, self.platform, n_tokens, decision.scheme, profile=profile
        )
        return WarmRestoration(
            timing=timing,
            tier=read.tier,
            scheme_description=decision.scheme.describe(),
            chunk_pipelined_s=self._chunk_pipeline_s(read.chunk_seconds, profile, decision),
        )

    def _chunk_pipeline_s(
        self,
        chunk_seconds: tuple[float, ...],
        profile: HardwareProfile,
        decision,
    ) -> float:
        """Chunk-granular restoration makespan for this tier.

        Streams the scheme's *actually stored* bytes chunk by chunk and
        overlaps each chunk's share of the hidden-layer projection with
        the remaining transfer — the same two-stream timeline the numeric
        engine's :class:`~repro.core.hcache.RestoreBreakdown` reports.
        The backend's per-chunk times cover the all-hidden footprint
        (:meth:`_context_bytes`), so they are rescaled to the partition's
        stored bytes — hidden layers move ``D`` per token, KV layers
        ``2D``, recompute layers nothing — keeping this figure consistent
        with the layer-granular ``timing`` beside it.  A recompute prefix
        contributes a leading compute item that needs no stored bytes, so
        it overlaps the stream from the first read.
        """
        scheme = decision.scheme
        n_chunks = len(chunk_seconds)
        stored_ratio = (scheme.n_hidden + 2 * scheme.n_kv) / self.config.n_layers
        projection_total = profile.compute_hidden * scheme.n_hidden
        per_chunk = projection_total / n_chunks if n_chunks else 0.0
        recompute_total = scheme.n_recompute * profile.compute_token
        io_times = [0.0] + [s * stored_ratio for s in chunk_seconds]
        compute_times = [recompute_total] + [per_chunk] * n_chunks
        return pipelined_makespan(io_times, compute_times)

    @property
    def dram_hit_ratio(self) -> float:
        return self.backend.dram_hit_ratio
