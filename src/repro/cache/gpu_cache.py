"""GPU-resident KV reuse in front of state restoration (§6.4, Fig. 15).

Real serving systems keep hot contexts' KV on the GPU (SGLang, Prompt
Cache); restoration only runs on a miss.  This module replays a stream of
context references through an LRU over the GPU's KV budget and charges
each request either a prefill-only TTFT (hit) or restoration + prefill
(miss), reproducing how rising skew shrinks — but does not eliminate —
HCache's advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.baselines.base import RestorationMethod
from repro.cache.lru import LRUCache
from repro.engine.batching import MemoryBudget
from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.simulator.costs import prefill_time
from repro.simulator.hardware import Platform
from repro.traces.leval import LEvalRequest
from repro.traces.zipf import ZipfianSampler


@dataclass(frozen=True)
class CachedServingResult:
    """Outcome of one cached-serving replay.

    Attributes:
        method: Restoration method name.
        alpha: Zipf skew (``None`` = uniform).
        hit_ratio: LRU hit ratio over the replay.
        mean_ttft: Mean TTFT across requests (seconds).
        n_requests: Requests replayed.
    """

    method: str
    alpha: float | None
    hit_ratio: float
    mean_ttft: float
    n_requests: int


class GPUCacheSimulator:
    """LRU-fronted restoration over a pool of reusable contexts."""

    def __init__(
        self,
        config: ModelConfig,
        platform: Platform,
        capacity_tokens: int | None = None,
        activation_reserve: float = 0.05,
    ) -> None:
        self.config = config
        self.platform = platform
        if capacity_tokens is None:
            capacity_tokens = MemoryBudget.for_platform(
                config, platform, activation_reserve
            ).capacity_tokens
        self.capacity_tokens = capacity_tokens

    def replay(
        self,
        contexts: list[LEvalRequest],
        method: RestorationMethod,
        n_requests: int,
        alpha: float | None,
        seed: int = 0,
        shared_prefix: Mapping[str, int] | None = None,
    ) -> CachedServingResult:
        """Replay Zipf-distributed references through an LRU cache.

        Each reference targets one context from the pool; hits reuse the
        GPU-resident KV, misses restore it with ``method`` first.
        ``shared_prefix`` maps context ids to tokens already resident in
        the block pool (:class:`repro.state.BlockStateStore`); a miss only
        pays restoration for the non-shared suffix, the way the engine's
        restore path skips pool-served prefix rows.
        """
        if not contexts:
            raise ConfigError("context pool is empty")
        sampler = ZipfianSampler(len(contexts), alpha, seed)
        cache = LRUCache(self.capacity_tokens)
        draws = sampler.sample(n_requests)
        total_ttft = 0.0
        for draw in draws:
            ctx = contexts[int(draw)]
            size = ctx.context_tokens + ctx.input_tokens
            hit = cache.lookup(ctx.context_id, size)
            if hit:
                ttft = self.platform.request_overhead + prefill_time(
                    self.config, self.platform, ctx.input_tokens
                )
            else:
                shared = 0
                if shared_prefix is not None:
                    shared = int(shared_prefix.get(ctx.context_id, 0))
                    if shared < 0:
                        raise ConfigError("shared prefix tokens must be >= 0")
                    shared = min(shared, ctx.context_tokens)
                ttft = method.ttft(ctx.context_tokens - shared, ctx.input_tokens)
            total_ttft += ttft
        return CachedServingResult(
            method=method.name,
            alpha=alpha,
            hit_ratio=cache.stats.hit_ratio,
            mean_ttft=total_ttft / n_requests,
            n_requests=n_requests,
        )

    def sweep_skew(
        self,
        contexts: list[LEvalRequest],
        methods: dict[str, RestorationMethod],
        alphas: tuple[float | None, ...] = (None, 1.2, 1.4, 1.6, 1.8, 2.0),
        n_requests: int = 2000,
        seed: int = 0,
    ) -> list[CachedServingResult]:
        """The Fig. 15 sweep: every method at every skew level."""
        results = []
        for alpha in alphas:
            for method in methods.values():
                results.append(
                    self.replay(contexts, method, n_requests, alpha, seed=seed)
                )
        return results
