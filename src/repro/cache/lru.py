"""Size-aware and pin-aware LRU eviction orders.

:class:`LRUCache` drives GPU-resident KV reuse (§6.4): entries are
contexts whose size is their KV footprint in tokens; capacity is the
GPU's free KV budget.  :class:`PinnedLRU` is the recency order behind the
block-paged state store's refcount-aware eviction
(:class:`repro.state.BlockPool`): entries pinned by a live refcount are
never eviction candidates, and victims come strictly from the unpinned
(refcount-0) tail, least recently used first.  Both are generic so tests
can drive them with arbitrary keys and sizes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from repro.errors import CapacityError, ConfigError


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class LRUCache:
    """LRU with per-entry sizes and a total capacity."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigError("cache capacity must be positive")
        self.capacity = int(capacity)
        self._entries: OrderedDict[Hashable, int] = OrderedDict()
        self._used = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def lookup(self, key: Hashable, size: int) -> bool:
        """Touch ``key``; insert (evicting LRU entries) on a miss.

        Returns True on a hit.  A re-access with a different size resizes
        the entry (a conversation's context grows between rounds); either
        way the entry becomes most recently used.

        Raises:
            CapacityError: if a single entry exceeds the whole capacity.
        """
        if size <= 0:
            raise ConfigError("entry size must be positive")
        if size > self.capacity:
            raise CapacityError(f"entry of size {size} exceeds capacity {self.capacity}")
        hit = key in self._entries
        if hit:
            self.stats.hits += 1
            self._used -= self._entries.pop(key)
        else:
            self.stats.misses += 1
        self._evict_until(size)
        self._entries[key] = size
        self._used += size
        return hit

    def _evict_until(self, incoming: int) -> None:
        while self._used + incoming > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self._used -= evicted
            self.stats.evictions += 1

    def evict(self, key: Hashable) -> int:
        """Explicitly drop an entry, returning its size."""
        if key not in self._entries:
            raise ConfigError(f"key {key!r} not cached")
        size = self._entries.pop(key)
        self._used -= size
        self.stats.evictions += 1
        return size

    def keys_lru_order(self) -> tuple[Hashable, ...]:
        """Keys from least to most recently used."""
        return tuple(self._entries)


class PinnedLRU:
    """An LRU recency order whose pinned entries cannot be evicted.

    The block store's eviction policy in isolation: every tracked key is
    either *pinned* (some live block table still references it) or an
    eviction candidate.  :meth:`pop_lru` returns the least recently used
    unpinned key — never a pinned one, however old — which is exactly the
    "evict the refcount-0 tail first" contract the block pool needs.
    Pinning is idempotent per key (the pool owns the refcount; this class
    only tracks the boolean), and recency is updated with :meth:`touch`.
    """

    def __init__(self) -> None:
        self._entries: OrderedDict[Hashable, bool] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def add(self, key: Hashable, pinned: bool = False) -> None:
        """Track ``key`` as most recently used."""
        if key in self._entries:
            raise ConfigError(f"key {key!r} already tracked")
        self._entries[key] = pinned

    def discard(self, key: Hashable) -> None:
        """Stop tracking ``key`` (no-op when absent)."""
        self._entries.pop(key, None)

    def touch(self, key: Hashable) -> None:
        """Mark ``key`` most recently used."""
        if key not in self._entries:
            raise ConfigError(f"key {key!r} not tracked")
        self._entries.move_to_end(key)

    def is_pinned(self, key: Hashable) -> bool:
        if key not in self._entries:
            raise ConfigError(f"key {key!r} not tracked")
        return self._entries[key]

    def pin(self, key: Hashable) -> None:
        """Exempt ``key`` from eviction until :meth:`unpin`."""
        if key not in self._entries:
            raise ConfigError(f"key {key!r} not tracked")
        self._entries[key] = True

    def unpin(self, key: Hashable) -> None:
        """Return ``key`` to the eviction-candidate pool (as MRU)."""
        if key not in self._entries:
            raise ConfigError(f"key {key!r} not tracked")
        self._entries[key] = False
        self._entries.move_to_end(key)

    def pop_lru(self) -> Hashable | None:
        """Evict and return the least recently used *unpinned* key.

        Pinned entries are skipped regardless of age; returns ``None``
        when every tracked key is pinned (the caller must then fail or
        grow — evicting pinned state is never an option).
        """
        for key, pinned in self._entries.items():
            if not pinned:
                del self._entries[key]
                self.stats.evictions += 1
                return key
        return None

    def unpinned_lru_order(self) -> tuple[Hashable, ...]:
        """Unpinned keys from least to most recently used."""
        return tuple(k for k, pinned in self._entries.items() if not pinned)
