"""Context reuse layers: GPU-resident KV (LRU, §6.4) and DRAM prefetching
in front of HCache restoration (§4 extension)."""

from repro.cache.gpu_cache import CachedServingResult, GPUCacheSimulator
from repro.cache.lru import CacheStats, LRUCache, PinnedLRU
from repro.cache.prefetch import PrefetchingHCache, WarmRestoration

__all__ = [
    "CacheStats",
    "CachedServingResult",
    "GPUCacheSimulator",
    "LRUCache",
    "PinnedLRU",
    "PrefetchingHCache",
    "WarmRestoration",
]
