"""Concurrency layer for the restore pipeline.

:mod:`repro.runtime` turns the chunk-streamed restoration of §4.1 from a
structurally overlapped (but single-threaded) pipeline into one whose
IO/compute overlap is real wall clock:

- :class:`IOWorkerPool` — shareable background threads that fill staging
  buffers (device ``read_into`` memcpys and emulated-latency sleeps both
  release the GIL).
- :class:`RestoreExecutor` — drives ``HCacheEngine.restore`` with that
  pool: granule reads run ahead on workers while the calling thread
  projects, in the exact single-threaded order, so every pool size stays
  bit-exact with the naive reference.  Also restores multiple contexts
  concurrently through one shared pool for the serving layer.
- :class:`ShardedRestoreExecutor` — partitions *one* restoration across
  ``pipeline x tensor`` simulated GPUs: contiguous layer stages drain
  concurrently (:func:`partition_layers`), KV-head ranges merge through
  disjoint slices, and the result stays bit-exact with the single-shard
  path for every shard shape.

The single-threaded path remains the default everywhere; pass an executor
to opt in.  See ``docs/ARCHITECTURE.md`` for the pipeline timeline.
"""

from repro.runtime.executor import RestoreExecutor
from repro.runtime.io_pool import IOWorkerPool
from repro.runtime.sharded import ShardedRestoreExecutor, StageTrace, partition_layers

__all__ = [
    "IOWorkerPool",
    "RestoreExecutor",
    "ShardedRestoreExecutor",
    "StageTrace",
    "partition_layers",
]
