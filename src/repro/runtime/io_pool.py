"""Background IO worker pool for the threaded restore pipeline.

The pool is the "transmission stream" of §4.1 made executable: restore
coordinators submit granule reads
(:meth:`repro.storage.manager.StorageManager.read_granule_into`) and keep
projecting on their own thread while workers fill staging buffers in the
background.  The operations a worker runs — ``np.copyto`` into a staging
slot, and (under latency emulation) ``time.sleep`` of the modelled device
seconds — all release the GIL, so the overlap is real wall clock, not just
pipeline structure.

One pool is meant to be **shared**: a serving engine creates it once and
every concurrent restoration draws from the same workers, which is exactly
the contention surface a real deployment has on its PCIe/NVMe path.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from time import perf_counter
from typing import Any, Callable

from repro.errors import ConfigError, StateError


class IOWorkerPool:
    """A small, shareable pool of background IO threads.

    Thin wrapper over :class:`concurrent.futures.ThreadPoolExecutor` that
    adds validation, task accounting, and context-manager lifetime.  Tasks
    must be *leaf* work (device reads, host copies): a task never blocks
    on another task's future, so the pool is deadlock-free at any size —
    including ``size=1``, which degenerates to an ordered background
    queue and is the recommended setting for single-core hosts.
    """

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise ConfigError("IO worker pool needs at least one worker")
        self.size = size
        self._executor = ThreadPoolExecutor(
            max_workers=size, thread_name_prefix="hcache-io"
        )
        self._lock = threading.Lock()
        self._submitted = 0  # guarded-by: _lock
        self._dispatch_s = 0.0  # guarded-by: _lock
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "IOWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def tasks_submitted(self) -> int:
        """Total read tasks ever submitted (contention telemetry)."""
        with self._lock:
            return self._submitted

    @property
    def dispatch_s(self) -> float:
        """Cumulative wall time spent inside :meth:`submit`.

        The pool-side half of the executor-overhead accounting: queue
        handoff to the worker threads (lock + deque + condition wake).
        Compare against a restore's ``stats.dispatch_s`` (which also
        covers staging-slot acquisition) to localize submit-side
        overhead.
        """
        with self._lock:
            return self._dispatch_s

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting tasks; optionally wait for in-flight ones."""
        self._closed = True
        self._executor.shutdown(wait=wait)

    # -- work ----------------------------------------------------------

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        """Queue ``fn(*args, **kwargs)`` on a worker; returns its future.

        The caller owns any buffer reachable from ``args`` until the
        future resolves (the staging-slot ownership rule).
        """
        if self._closed:
            raise StateError("IO worker pool is shut down")
        t0 = perf_counter()
        with self._lock:
            self._submitted += 1
        future = self._executor.submit(fn, *args, **kwargs)
        with self._lock:
            self._dispatch_s += perf_counter() - t0
        return future
