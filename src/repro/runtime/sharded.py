"""Sharded parallel restoration across simulated GPUs (§5 extension).

The threaded executor (:mod:`repro.runtime.executor`) overlaps one
restoration's IO with its projections, but both still flow through a
single stream pair — one simulated GPU.  This module partitions one
restoration across ``pipeline_shards x tensor_shards`` simulated GPUs:

- **Pipeline dimension** (:func:`partition_layers`): the drain's layers
  split into contiguous stages.  Stages share nothing but the IO worker
  pool, so their granule streams progress independently — the per-stage
  independence the modelled timeline takes a ``max`` over
  (:func:`repro.simulator.pipeline.sharded_restoration_makespan`).
- **Tensor dimension** (:func:`repro.core.gqa.partition_kv_heads`): KV
  heads split into GQA-group-aligned contiguous ranges.  Each rank of a
  stage contributes one read channel (granule reads fan out at
  aggregated bandwidth) and owns one head range of the merge
  (:meth:`Transformer.project_kv_chunk_sharded` /
  :meth:`KVCache.install_packed_head_rows` write disjoint head slices).

**Merge discipline / bit-exactness.**  Restored bytes must be
bit-identical to the single-shard path for *every* shard shape, and
``project_kv_chunk`` is chunk-partition-sensitive in the last ulp — so
sharding changes *where bytes move*, never *what gets computed*:
granule plans per stage are byte-identical sub-sequences of the
single-shard plan, all projection compute runs at full GEMM width on
the one consuming thread, and the tensor dimension only partitions the
strictly elementwise merge (RoPE rotation, head-slice installs).  The
property tests sweep (pipeline x tensor) shapes against the naive
reference to pin this.

The executor's *measured* concurrency comes from the reads: device
latency emulation with ``channels=p*t``
(:meth:`repro.storage.array.StorageArray.emulate_latency`) sleeps the
shards' reads on independent channels, so wall clock genuinely floors
at the aggregated-bandwidth ``io_total / (p*t)`` the model prices.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field
from itertools import accumulate
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import ConfigError
from repro.runtime.executor import RestoreExecutor
from repro.runtime.io_pool import IOWorkerPool
from repro.storage.manager import StorageManager
from repro.storage.streaming import LayerChunk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.hcache import RestoreBreakdown


def partition_layers(
    layers: Sequence[int], n_stages: int
) -> tuple[tuple[int, ...], ...]:
    """Split ``layers`` into contiguous, balanced pipeline stages.

    Stage sizes differ by at most one (larger stages first).  A stage
    count above ``len(layers)`` is **clamped** — unlike the tensor
    dimension (where an over-split silently misprojects and is
    rejected), extra pipeline stages would merely be empty, so the plan
    degrades to one layer per stage.  Preserves the given layer order
    (the §4.1 drain order).

    Raises:
        ConfigError: for a non-positive stage count.
    """
    if n_stages < 1:
        raise ConfigError(f"pipeline shard count must be positive, got {n_stages}")
    layers = tuple(layers)
    if not layers:
        return ()
    n = min(n_stages, len(layers))
    base, extra = divmod(len(layers), n)
    bounds = list(
        accumulate((base + (1 if s < extra else 0) for s in range(n)), initial=0)
    )
    return tuple(layers[a:b] for a, b in zip(bounds[:-1], bounds[1:]))


@dataclass
class StageTrace:
    """Per-granule accounting of one pipeline stage of a sharded drain.

    Filled by :meth:`ShardedRestoreExecutor.drain_sharded` (when timing)
    in that stage's consumption order; the engine turns it into the
    per-stage :class:`~repro.simulator.pipeline.ShardedStageTimeline`
    the modelled sharded makespan is computed from.
    """

    stage: int
    io_seconds: list[float] = field(default_factory=list)
    compute_seconds: list[float] = field(default_factory=list)
    rows: list[int] = field(default_factory=list)


class ShardedRestoreExecutor(RestoreExecutor):
    """Drives one restoration as ``pipeline x tensor`` concurrent shards.

    Subclasses :class:`RestoreExecutor` (pool ownership, context-manager
    lifetime, ``restore_contexts``) and adds :meth:`drain_sharded`, the
    multi-stage granule loop.  An engine handed a sharded executor
    restores through it automatically
    (:meth:`HCacheEngine.restore` resolves ``shards`` from
    :attr:`shard_shape` when not given explicitly), so
    ``restore_contexts`` and :class:`NumericServingEngine` shard with
    zero call-site changes.

    Args:
        shards: ``(pipeline_shards, tensor_shards)`` — the simulated GPU
            grid one restoration is partitioned over.
        pool: Shared :class:`IOWorkerPool`, an int size, or ``None`` for
            an owned pool with one worker per simulated GPU (``p * t`` —
            each shard's ingest link gets a thread, so emulated-latency
            reads genuinely overlap across shards).
        inflight_per_shard: Granule-read lookahead *per shard*.  Each
            pipeline stage keeps ``tensor_shards * inflight_per_shard``
            reads outstanding — its tensor ranks' aggregated read
            channels — bounded per stage so one stage's burst cannot
            starve the others' staging windows.
        max_concurrent_restores: As in :class:`RestoreExecutor`.
    """

    def __init__(
        self,
        shards: tuple[int, int],
        pool: IOWorkerPool | int | None = None,
        inflight_per_shard: int = 4,
        max_concurrent_restores: int = 4,
    ) -> None:
        pipeline_shards, tensor_shards = shards
        if pipeline_shards < 1 or tensor_shards < 1:
            raise ConfigError(
                f"shard shape {shards} needs positive pipeline and tensor counts"
            )
        if inflight_per_shard < 1:
            raise ConfigError("inflight_per_shard must be at least 1")
        if pool is None:
            pool = pipeline_shards * tensor_shards
        super().__init__(pool, max_concurrent_restores=max_concurrent_restores)
        self.pipeline_shards = pipeline_shards
        self.tensor_shards = tensor_shards
        self.inflight_per_shard = inflight_per_shard

    @property
    def shard_shape(self) -> tuple[int, int]:
        """``(pipeline_shards, tensor_shards)``."""
        return (self.pipeline_shards, self.tensor_shards)

    # -- the sharded drain ---------------------------------------------

    def drain_sharded(
        self,
        storage: StorageManager,
        context_id: str,
        stage_layers: Sequence[Sequence[int]],
        kind: str,
        granule_chunks: int,
        consume: Callable[[LayerChunk], None],
        stats: "RestoreBreakdown | None" = None,
        io_times: list[float] | None = None,
        compute_times: list[float] | None = None,
        start_tokens: int = 0,
        traces: list[StageTrace] | None = None,
    ) -> None:
        """Drain several pipeline stages' granule streams concurrently.

        Each entry of ``stage_layers`` (one per pipeline stage, from
        :func:`partition_layers`) gets its own granule plan, staging
        ring, and submission window of ``tensor_shards *
        inflight_per_shard`` in-flight reads — the stage's tensor ranks
        pulling at aggregated bandwidth.  Reads across all stages share
        the IO pool; consumption runs on the calling thread, within each
        stage strictly in plan order (bit-exactness: granule boundaries
        and per-granule consume calls are identical to the single-shard
        drain of that stage's layers), across stages interleaved by
        readiness (whichever stage's next granule has landed).  All
        head-range slicing lives in ``consume`` — this loop only routes
        granules.

        Accounting mirrors :meth:`RestoreExecutor.drain`; ``traces``
        (optional, filled only when ``stats`` is given) additionally
        records each stage's per-granule io/compute/rows for the
        modelled sharded makespan.
        """
        plans = [
            storage.granule_plan(context_id, list(layers), kind, granule_chunks, start_tokens)
            for layers in stage_layers
            if len(layers)
        ]
        plans = [plan for plan in plans if plan]
        if not plans:
            return
        timed = stats is not None
        if timed:
            io_times = io_times if io_times is not None else []
            compute_times = compute_times if compute_times is not None else []
        window = self.tensor_shards * self.inflight_per_shard
        rings = [
            storage.staging_ring(
                context_id, kind, depth=max(2, window + 1), granule_chunks=granule_chunks
            )
            for _ in plans
        ]
        stage_traces: list[StageTrace] | None = None
        if traces is not None and timed:
            stage_traces = [StageTrace(stage=s) for s in range(len(plans))]
            traces.extend(stage_traces)
        pending: list[deque] = [deque() for _ in plans]
        next_index = [0] * len(plans)

        def submit_next(s: int) -> None:
            if next_index[s] >= len(plans[s]):
                return
            spec = plans[s][next_index[s]]
            next_index[s] += 1
            t0 = perf_counter() if timed else 0.0
            view = rings[s].acquire()[: spec.n_tokens]
            future = self.pool.submit(storage.read_granule_into, context_id, spec, view)
            pending[s].append((spec, view, future))
            if timed:
                stats.dispatch_s += perf_counter() - t0

        # Prime every stage's window.  Per-stage outstanding reads never
        # exceed `window` (one refill per consume below), and each ring
        # is `window + 1` deep, so the slot a refill recycles was
        # acquired window + 1 submissions earlier in the same stage —
        # always a granule that stage has already consumed.
        for s in range(len(plans)):
            for _ in range(window):
                submit_next(s)
        rotation = 0
        try:
            while any(pending):
                live = [s for s in range(len(plans)) if pending[s]]
                ready = -1
                for offset in range(len(live)):
                    s = live[(rotation + offset) % len(live)]
                    if pending[s][0][2].done():
                        ready = s
                        break
                if ready < 0:
                    # No stage's head granule has landed: a genuine
                    # cross-stage stall (the IO every shard failed to
                    # hide).  Wake on the first head to complete.
                    t0 = perf_counter() if timed else 0.0
                    wait(
                        [pending[s][0][2] for s in live],
                        return_when=FIRST_COMPLETED,
                    )
                    if timed:
                        stats.read_s += perf_counter() - t0
                    continue
                rotation = ready + 1
                spec, view, future = pending[ready].popleft()
                io_seconds, device_reads = future.result()
                if timed:
                    stats.granules += 1
                    stats.device_reads += device_reads
                    io_times.append(io_seconds)
                # Refill this stage's window before consuming, so the
                # next read runs under this granule's projection.
                submit_next(ready)
                t0 = perf_counter() if timed else 0.0
                consume(
                    LayerChunk(
                        layer=spec.layer,
                        kind=spec.kind,
                        start=spec.start,
                        stop=spec.stop,
                        data=view,
                        io_seconds=io_seconds,
                        device_reads=device_reads,
                    )
                )
                if timed:
                    consume_s = perf_counter() - t0
                    compute_times.append(consume_s)
                    if stage_traces is not None:
                        trace = stage_traces[ready]
                        trace.io_seconds.append(io_seconds)
                        trace.compute_seconds.append(consume_s)
                        trace.rows.append(spec.n_tokens)
        # lint: disable=exception-safety -- sanctioned drain containment: settles in-flight reads across all stages, then re-raises
        except BaseException:
            # Containment, as in RestoreExecutor.drain: no abandoned
            # worker may keep filling a staging slot of any stage.
            for stage_pending in pending:
                for _, _, future in stage_pending:
                    future.cancel()
                    try:
                        future.result()
                    # lint: disable=exception-safety -- settling a cancelled future; the original fault re-raises below
                    except BaseException:
                        pass
            raise
