"""Threaded restore executor: real wall-clock IO/compute overlap (§4.1).

PR 2 gave restoration the *shape* of the paper's pipeline — granule
streams, double buffering, a modelled two-stream makespan — but executed
it on one thread, so measured wall clock stayed the serial sum.  This
module adds the missing concurrency: a :class:`RestoreExecutor` walks the
storage manager's granule plan, keeps up to ``inflight`` granule reads
running on a background :class:`~repro.runtime.io_pool.IOWorkerPool`, and
projects each granule on the calling thread as soon as its read resolves.
Layer ``k``'s projection now genuinely overlaps layer ``k+1``'s read.

Determinism and bit-exactness: the executor consumes granules in exactly
the order :meth:`StorageManager.granule_plan` enumerates them — the same
order the single-threaded stream yields — and all projection compute runs
on the single calling thread into disjoint KV-cache row slices.  Worker
threads only ever fill staging slots they exclusively own (see the
threading rules on :class:`repro.storage.streaming.StagingRing`), so the
restored bytes are identical to the single-threaded path for every pool
size, and the tests assert exactly that against the naive reference.

Concurrent restorations of *different* contexts may share one executor:
each ``restore`` call brings its own staging ring and workspace, devices
are read-only during restoration, and the pool is the only shared
resource — which is the point, since a shared IO path is the contention a
real serving system sees.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from functools import partial
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.errors import ConfigError
from repro.runtime.io_pool import IOWorkerPool
from repro.storage.manager import StorageManager
from repro.storage.streaming import LayerChunk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.hcache import HCacheEngine, RestoreBreakdown
    from repro.models.kv_cache import KVCache


class RestoreExecutor:
    """Drives granule-streamed restores with background IO workers.

    Args:
        pool: The shared :class:`IOWorkerPool`, or an int to create an
            owned pool of that size.  ``close`` only shuts down owned
            pools.
        inflight: Maximum granule reads outstanding (submitted but not
            yet consumed).  Defaults to ``pool.size + lookahead``; an
            explicit value wins over ``lookahead``.  Memory cost is one
            staging slot per inflight granule; the staging ring is sized
            ``inflight + 1`` deep, which makes slot reuse safe (see
            :class:`StagingRing`).
        lookahead: Granules kept in flight *beyond* one per pool worker
            (default 6, the knob behind the former hard-coded ``pool.size
            + 6``).  Beyond keeping every worker busy, the lookahead is
            the elasticity buffer that absorbs bursty IO completion —
            real NVMe latency jitter, or the quantum-batched sleeps of
            device latency emulation — without stalling the projection
            stream: with ``lookahead=0`` (inflight equal to the pool
            size) there is no runway of completed-but-unconsumed
            granules, so every multi-granule completion burst stalls the
            consumer and the pipeline measurably serializes (a regression
            test pins this).  Ignored when ``inflight`` is given.
        max_concurrent_restores: Cap on driver threads used by
            :meth:`restore_contexts`.
    """

    def __init__(
        self,
        pool: IOWorkerPool | int = 2,
        inflight: int | None = None,
        max_concurrent_restores: int = 4,
        lookahead: int = 6,
    ) -> None:
        if isinstance(pool, int):
            pool = IOWorkerPool(pool)
            self._owns_pool = True
        else:
            self._owns_pool = False
        if lookahead < 0:
            raise ConfigError("lookahead must be non-negative")
        if inflight is None:
            inflight = pool.size + lookahead
        if inflight < 1:
            raise ConfigError("executor needs at least one granule in flight")
        if max_concurrent_restores < 1:
            raise ConfigError("max_concurrent_restores must be at least 1")
        self.pool = pool
        self.inflight = inflight
        self.lookahead = lookahead
        self.max_concurrent_restores = max_concurrent_restores
        #: Lazily created driver pool for :meth:`restore_contexts_async`;
        #: ``restore_contexts`` keeps its per-call pool (simpler lifetime).
        self._async_drivers: ThreadPoolExecutor | None = None

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "RestoreExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the async driver pool, and the IO pool if owned."""
        if self._async_drivers is not None:
            self._async_drivers.shutdown(wait=True)
            self._async_drivers = None
        if self._owns_pool:
            self.pool.shutdown()

    # -- the threaded drain --------------------------------------------

    def drain(
        self,
        storage: StorageManager,
        context_id: str,
        layers: Sequence[int],
        kind: str,
        granule_chunks: int,
        consume: Callable[[LayerChunk], None],
        stats: "RestoreBreakdown | None" = None,
        io_times: list[float] | None = None,
        compute_times: list[float] | None = None,
        start_tokens: int = 0,
    ) -> None:
        """Threaded counterpart of ``HCacheEngine._drain_stream``.

        Walks the granule plan, keeps up to ``self.inflight`` reads
        running on the pool, and calls ``consume`` (projection or KV
        install) on the calling thread in plan order.  Accounting matches
        the single-threaded drain: ``io_times`` get each granule's
        modelled device seconds, ``compute_times`` the measured consume
        wall clock, and ``stats.read_s`` accumulates the time this thread
        actually *stalled* waiting for a read — i.e. the IO the pipeline
        failed to hide, which is 0 in the ideal §4.1 timeline.
        ``stats.dispatch_s`` gets the submit-side overhead (staging-slot
        acquisition + pool handoff per granule) — together with
        ``read_s`` it itemizes the executor-overhead gap between wall
        clock and the modelled makespan.  ``start_tokens``
        (chunk-aligned) skips every layer's shared-prefix rows, exactly
        like the single-threaded stream.
        """
        plan = storage.granule_plan(
            context_id, layers, kind, granule_chunks, start_tokens
        )
        if not plan:
            return
        timed = stats is not None
        if timed:
            io_times = io_times if io_times is not None else []
            compute_times = compute_times if compute_times is not None else []
        ring = storage.staging_ring(
            context_id,
            kind,
            depth=max(2, self.inflight + 1),
            granule_chunks=granule_chunks,
        )
        pending: deque = deque()
        next_index = 0

        def submit_next() -> None:
            nonlocal next_index
            if next_index >= len(plan):
                return
            spec = plan[next_index]
            next_index += 1
            t0 = perf_counter() if timed else 0.0
            view = ring.acquire()[: spec.n_tokens]
            future = self.pool.submit(storage.read_granule_into, context_id, spec, view)
            pending.append((spec, view, future))
            if timed:
                stats.dispatch_s += perf_counter() - t0

        for _ in range(self.inflight):
            submit_next()
        try:
            while pending:
                spec, view, future = pending.popleft()
                t0 = perf_counter() if timed else 0.0
                io_seconds, device_reads = future.result()
                if timed:
                    stats.read_s += perf_counter() - t0
                    stats.granules += 1
                    stats.device_reads += device_reads
                    io_times.append(io_seconds)
                # Refill the window before consuming, so the next read runs
                # under this granule's projection — the §4.1 overlap.  Ring
                # depth is inflight + 1, so the slot this submit recycles
                # was acquired inflight + 1 submissions earlier — the
                # granule consumed in the previous loop iteration, never the
                # live `view` (which was acquired only inflight ago).
                submit_next()
                t0 = perf_counter() if timed else 0.0
                consume(
                    LayerChunk(
                        layer=spec.layer,
                        kind=spec.kind,
                        start=spec.start,
                        stop=spec.stop,
                        data=view,
                        io_seconds=io_seconds,
                        device_reads=device_reads,
                    )
                )
                if timed:
                    compute_times.append(perf_counter() - t0)
        # lint: disable=exception-safety -- sanctioned drain containment: settles in-flight reads, then re-raises
        except BaseException:
            # Containment: a failed read (e.g. every replica of a device
            # faulted) or a failed consume must not leave in-flight workers
            # filling staging slots this drain abandoned.  Settle every
            # outstanding future before propagating, so the pool is clean
            # for the next restore.  (CancelledError is a BaseException.)
            for _, _, future in pending:
                future.cancel()
                try:
                    future.result()
                # lint: disable=exception-safety -- settling a cancelled future; the original fault re-raises below
                except BaseException:
                    pass
            raise

    # -- concurrent multi-context restore ------------------------------

    def restore_contexts(
        self,
        engine: "HCacheEngine",
        context_ids: Sequence[str],
        *,
        reserve_tokens: "int | Mapping[str, int]" = 0,
        shards: "tuple[int, int] | int | None" = None,
    ) -> dict[str, "KVCache"]:
        """Restore several contexts concurrently through the shared pool.

        Each context gets a driver thread (at most
        ``max_concurrent_restores`` at once) running the ordinary
        ``engine.restore(..., executor=self)``; their granule reads all
        contend for the same IO workers, which is the serving-layer
        scenario the simulator's ``restore_io_parallelism`` models in
        time.  Per-context results are bit-identical to restoring them
        one by one — restores share no mutable state but the pool and the
        read-only storage.  ``reserve_tokens`` is one capacity for every
        context or a per-context mapping (missing ids reserve 0 — only
        each context's own expected length is worth preallocating).
        ``shards`` forwards a ``(pipeline, tensor)`` shard shape to every
        ``engine.restore`` (see :meth:`HCacheEngine.restore`); a
        :class:`~repro.runtime.sharded.ShardedRestoreExecutor` shards by
        its own shape even when this is ``None``.
        Returns ``{context_id: KVCache}``; the first failure propagates
        after the remaining drivers finish.
        """
        ids = list(context_ids)
        if len(set(ids)) != len(ids):
            raise ConfigError("restore_contexts needs distinct context ids")
        if not ids:
            return {}
        if isinstance(reserve_tokens, int):
            reserve = dict.fromkeys(ids, reserve_tokens)
        else:
            reserve = {cid: int(reserve_tokens.get(cid, 0)) for cid in ids}
        # Build the shared projection-weight stacks once, up front; the
        # lazy build is idempotent but racing it wastes work.
        engine.transformer._projection_stack()
        if len(ids) == 1:
            return {
                ids[0]: engine.restore(
                    ids[0], reserve[ids[0]], executor=self, shards=shards
                )
            }
        with ThreadPoolExecutor(
            max_workers=min(self.max_concurrent_restores, len(ids)),
            thread_name_prefix="hcache-restore",
        ) as drivers:
            futures = {
                cid: drivers.submit(
                    partial(
                        engine.restore,
                        cid,
                        reserve[cid],
                        executor=self,
                        shards=shards,
                    )
                )
                for cid in ids
            }
            return {cid: futures[cid].result() for cid in ids}

    def restore_contexts_async(
        self,
        engine: "HCacheEngine",
        context_ids: Sequence[str],
        *,
        reserve_tokens: "int | Mapping[str, int]" = 0,
        shards: "tuple[int, int] | int | None" = None,
    ) -> dict[str, "Future[KVCache]"]:
        """Like :meth:`restore_contexts`, but non-blocking.

        Returns ``{context_id: Future[KVCache]}`` immediately; each
        restoration runs on a persistent driver pool (at most
        ``max_concurrent_restores`` concurrently) and the caller installs
        the finished cache whenever it polls the future.  This is the
        serving front end's restore/decode overlap: admitted-but-evicted
        sessions restore in the background — their granule reads on the
        shared :class:`IOWorkerPool`, their projection GEMMs on the
        driver threads (numpy BLAS releases the GIL) — while the calling
        thread keeps issuing fused decode iterations for GPU-resident
        sessions.  Restored bytes are bit-identical to a blocking
        restore; only completion *timing* differs.

        Safety: the restored context must not be saved to or dropped
        while its future is outstanding (the front end keeps such
        sessions in the RESTORING phase, outside every iteration plan);
        concurrent saves of *other* contexts are fine, per the
        :meth:`HCacheEngine.restore` concurrency contract.
        """
        ids = list(context_ids)
        if len(set(ids)) != len(ids):
            raise ConfigError("restore_contexts_async needs distinct context ids")
        if not ids:
            return {}
        if isinstance(reserve_tokens, int):
            reserve = dict.fromkeys(ids, reserve_tokens)
        else:
            reserve = {cid: int(reserve_tokens.get(cid, 0)) for cid in ids}
        engine.transformer._projection_stack()
        if self._async_drivers is None:
            self._async_drivers = ThreadPoolExecutor(
                max_workers=self.max_concurrent_restores,
                thread_name_prefix="hcache-restore-async",
            )
        return {
            cid: self._async_drivers.submit(
                partial(
                    engine.restore,
                    cid,
                    reserve[cid],
                    executor=self,
                    shards=shards,
                )
            )
            for cid in ids
        }
