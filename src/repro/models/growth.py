"""Shared amortized-doubling growth policy for state buffers.

Both the KV cache and the hidden-state capture grow their backing
buffers with the same policy; keeping it here means a future tuning of
the doubling factor or minimum allocation applies to every buffer at
once.
"""

from __future__ import annotations

#: Smallest non-zero token capacity allocated by the doubling policy.
MIN_CAPACITY = 16


def grown_capacity(current: int, required: int) -> int:
    """Next capacity: at least ``required``, at least double ``current``."""
    return max(required, 2 * current, MIN_CAPACITY)
