"""Multi-head attention with KV-cache semantics.

Implements the attention equations of §2.1: per-token Q/K/V projections,
softmaxed scaled dot-product over all cached positions, weighted average of
values, and the output projection.  Supports GQA by repeating KV heads,
which the paper lists as an extension (§7); all paper experiments use MHA.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.models.tensor_ops import causal_mask, softmax


def split_heads(x: np.ndarray, n_heads: int) -> np.ndarray:
    """Reshape ``(n, heads * head_dim)`` to ``(n, heads, head_dim)``."""
    n, width = x.shape
    if width % n_heads != 0:
        raise ConfigError(f"width {width} not divisible by {n_heads} heads")
    return x.reshape(n, n_heads, width // n_heads)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_heads`."""
    n, heads, head_dim = x.shape
    return x.reshape(n, heads * head_dim)


def repeat_kv(x: np.ndarray, n_rep: int) -> np.ndarray:
    """Repeat KV heads for grouped-query attention."""
    if n_rep == 1:
        return x
    return np.repeat(x, n_rep, axis=1)


def scaled_dot_product_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    query_offset: int,
) -> np.ndarray:
    """Causal attention over cached keys/values.

    Args:
        queries: ``(n_q, n_heads, head_dim)`` for the new tokens.
        keys: ``(n_k, n_heads, head_dim)`` — full history including the new
            tokens' own keys.
        values: Same shape as ``keys``.
        query_offset: Absolute position of the first query token; query
            ``i`` may attend to key positions ``<= query_offset + i``.

    Returns:
        ``(n_q, n_heads, head_dim)`` attention output.
    """
    n_q, n_heads, head_dim = queries.shape
    n_k = keys.shape[0]
    if keys.shape != values.shape:
        raise ConfigError("keys and values must share a shape")
    if keys.shape[1] != n_heads:
        raise ConfigError(f"key heads {keys.shape[1]} mismatch query heads {n_heads}")
    scale = 1.0 / np.sqrt(head_dim)
    if n_q == 1 and query_offset == n_k - 1:
        # Decode fast path: the single query may attend to every cached
        # position, so no mask is needed, and head-major BLAS matmuls over
        # transposed views replace the einsum contraction.  Strided batch
        # slices map directly onto BLAS leading dimensions, so this reads
        # the token-major cache without any transposition copy.
        q0 = queries[0]  # (heads, head_dim)
        scores = np.matmul(keys.transpose(1, 0, 2), q0[:, :, None])[:, :, 0]
        scores *= scale  # (heads, n_k)
        shifted = scores - np.max(scores, axis=-1, keepdims=True)
        np.exp(shifted, out=shifted)
        probs = shifted / np.sum(shifted, axis=-1, keepdims=True)
        out = np.matmul(probs[:, None, :], values.transpose(1, 0, 2))
        return out.transpose(1, 0, 2).astype(np.float32)
    # (heads, n_q, n_k)
    scores = np.einsum("qhd,khd->hqk", queries, keys) * scale
    mask = causal_mask(n_q, n_k, query_offset)[None, :, :]
    scores = np.where(mask, scores, np.float32(-1e30))
    probs = softmax(scores, axis=-1)
    out = np.einsum("hqk,khd->qhd", probs, values)
    return out.astype(np.float32)


def attention_module(
    hidden_norm: np.ndarray,
    wq: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
    config: ModelConfig,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Project normalized hidden states into per-head Q, K, V.

    Returns Q of shape ``(n, n_heads, head_dim)`` and K/V of shape
    ``(n, n_kv_heads, head_dim)`` — RoPE is applied by the caller because
    it needs absolute positions (the detail HCache's restoration kernel
    must replay, §5).
    """
    q = split_heads(hidden_norm @ wq, config.n_heads)
    k = split_heads(hidden_norm @ wk, config.n_kv_heads)
    v = split_heads(hidden_norm @ wv, config.n_kv_heads)
    return q, k, v
