"""Multi-head attention with KV-cache semantics.

Implements the attention equations of §2.1: per-token Q/K/V projections,
softmaxed scaled dot-product over all cached positions, weighted average of
values, and the output projection.  Supports GQA by repeating KV heads,
which the paper lists as an extension (§7); all paper experiments use MHA.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.models.tensor_ops import causal_mask, softmax


def split_heads(x: np.ndarray, n_heads: int) -> np.ndarray:
    """Reshape ``(n, heads * head_dim)`` to ``(n, heads, head_dim)``."""
    n, width = x.shape
    if width % n_heads != 0:
        raise ConfigError(f"width {width} not divisible by {n_heads} heads")
    return x.reshape(n, n_heads, width // n_heads)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_heads`."""
    n, heads, head_dim = x.shape
    return x.reshape(n, heads * head_dim)


def repeat_kv(x: np.ndarray, n_rep: int, axis: int = 1) -> np.ndarray:
    """Repeat KV heads for grouped-query attention.

    ``axis`` is the head axis: 1 for the per-session ``(n, heads,
    head_dim)`` layout, 2 for the batched ``(B, n, heads, head_dim)``
    stacked layout.
    """
    if n_rep == 1:
        return x
    return np.repeat(x, n_rep, axis=axis)


def scaled_dot_product_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    query_offset: int,
) -> np.ndarray:
    """Causal attention over cached keys/values.

    Args:
        queries: ``(n_q, n_heads, head_dim)`` for the new tokens.
        keys: ``(n_k, n_heads, head_dim)`` — full history including the new
            tokens' own keys.
        values: Same shape as ``keys``.
        query_offset: Absolute position of the first query token; query
            ``i`` may attend to key positions ``<= query_offset + i``.

    Returns:
        ``(n_q, n_heads, head_dim)`` attention output.
    """
    n_q, n_heads, head_dim = queries.shape
    n_k = keys.shape[0]
    if keys.shape != values.shape:
        raise ConfigError("keys and values must share a shape")
    if keys.shape[1] != n_heads:
        raise ConfigError(f"key heads {keys.shape[1]} mismatch query heads {n_heads}")
    scale = 1.0 / np.sqrt(head_dim)
    if n_q == 1 and query_offset == n_k - 1:
        # Decode fast path: the single query may attend to every cached
        # position, so no mask is needed, and head-major BLAS matmuls over
        # transposed views replace the einsum contraction.  Strided batch
        # slices map directly onto BLAS leading dimensions, so this reads
        # the token-major cache without any transposition copy.
        q0 = queries[0]  # (heads, head_dim)
        scores = np.matmul(keys.transpose(1, 0, 2), q0[:, :, None])[:, :, 0]
        scores *= scale  # (heads, n_k)
        shifted = scores - np.max(scores, axis=-1, keepdims=True)
        np.exp(shifted, out=shifted)
        probs = shifted / np.sum(shifted, axis=-1, keepdims=True)
        out = np.matmul(probs[:, None, :], values.transpose(1, 0, 2))
        return out.transpose(1, 0, 2).astype(np.float32)
    # (heads, n_q, n_k)
    scores = np.einsum("qhd,khd->hqk", queries, keys) * scale
    mask = causal_mask(n_q, n_k, query_offset)[None, :, :]
    scores = np.where(mask, scores, np.float32(-1e30))
    probs = softmax(scores, axis=-1)
    out = np.einsum("hqk,khd->qhd", probs, values)
    return out.astype(np.float32)


def batched_decode_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    lengths: np.ndarray,
) -> np.ndarray:
    """Single-token causal attention for a batch of sessions at once.

    The multi-session generalization of the decode fast path in
    :func:`scaled_dot_product_attention`: every session contributes one
    query token that may attend to its whole cached history, so no
    causal mask is needed — only a *length* mask, because the sessions
    sit at different positions and share one padded key/value stack.

    Args:
        queries: ``(B, n_heads, head_dim)`` — one decode token per session.
        keys: ``(B, max_len, n_heads, head_dim)`` stacked histories
            (GQA already repeated), where ``max_len >= lengths.max()``.
            Rows at or beyond a session's length are padding; they must
            be finite (the stacked block zero-fills) but their values
            are irrelevant.
        values: Same shape as ``keys``.
        lengths: ``(B,)`` valid key counts per session, each ``>= 1``
            (the decode token's own key is already appended).

    Returns:
        ``(B, n_heads, head_dim)`` attention output.  Row ``b`` is
        computed with the same shapes and reduction order as the
        per-session fast path up to the padded tail, whose scores are
        masked to ``-1e30`` (their softmax terms underflow to exactly
        ``0.0``, and summing extra zeros can differ from the unpadded
        reduction only in the last ulp — see the batched-decode
        equivalence note in :mod:`repro.models.transformer`).
    """
    if queries.ndim != 3:
        raise ConfigError(f"queries must be (B, heads, head_dim), got {queries.shape}")
    n_batch, n_heads, head_dim = queries.shape
    if keys.shape != values.shape:
        raise ConfigError("keys and values must share a shape")
    if keys.ndim != 4 or keys.shape[0] != n_batch or keys.shape[2:] != (n_heads, head_dim):
        raise ConfigError(
            f"keys must be ({n_batch}, max_len, {n_heads}, {head_dim}), got {keys.shape}"
        )
    lengths = np.asarray(lengths)
    max_len = keys.shape[1]
    if lengths.shape != (n_batch,) or lengths.min() < 1 or lengths.max() > max_len:
        raise ConfigError(
            f"lengths must be (B,) in [1, {max_len}], got {lengths!r}"
        )
    scale = np.float32(1.0 / np.sqrt(head_dim))
    # (B, heads, max_len, head_dim) @ (B, heads, head_dim, 1): per-session,
    # per-head matvecs over the token-major stacked views, no copies.
    # Every elementwise stage below runs in place on the scores buffer —
    # same operations in the same order as the per-session fast path, so
    # each row's arithmetic is unchanged; only the temporaries disappear.
    scores4 = np.empty((n_batch, n_heads, max_len, 1), dtype=np.float32)
    np.matmul(keys.transpose(0, 2, 1, 3), queries[:, :, :, None], out=scores4)
    scores = scores4[..., 0]
    scores *= scale  # (B, heads, max_len)
    if int(lengths.min()) < max_len:
        # Length mask: sessions shorter than the longest one get their
        # padded tail pinned to -1e30 (softmax weight underflows to an
        # exact 0.0), equivalent to the all-valid case with no padding.
        for b in range(n_batch):
            n_valid = int(lengths[b])
            if n_valid < max_len:
                scores[b, :, n_valid:] = np.float32(-1e30)
    peak = np.max(scores, axis=-1, keepdims=True)
    np.subtract(scores, peak, out=scores)
    np.exp(scores, out=scores)
    np.sum(scores, axis=-1, keepdims=True, out=peak)
    np.divide(scores, peak, out=scores)
    out = np.empty((n_batch, n_heads, 1, head_dim), dtype=np.float32)
    np.matmul(scores[:, :, None, :], values.transpose(0, 2, 1, 3), out=out)
    return out[:, :, 0, :]


def attention_module(
    hidden_norm: np.ndarray,
    wq: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
    config: ModelConfig,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Project normalized hidden states into per-head Q, K, V.

    Returns Q of shape ``(n, n_heads, head_dim)`` and K/V of shape
    ``(n, n_kv_heads, head_dim)`` — RoPE is applied by the caller because
    it needs absolute positions (the detail HCache's restoration kernel
    must replay, §5).
    """
    q = split_heads(hidden_norm @ wq, config.n_heads)
    k = split_heads(hidden_norm @ wk, config.n_kv_heads)
    v = split_heads(hidden_norm @ wv, config.n_kv_heads)
    return q, k, v
