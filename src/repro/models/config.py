"""Model configurations.

The paper evaluates Llama2-7B, Llama2-13B (one A100 each), and OPT-30B (four
A100s with tensor parallelism), with the maximum context expanded to 16K.
These presets carry the real architectural dimensions and are used by the
performance model; the ``tiny-*`` presets are small enough to execute for
real with the numpy transformer in correctness tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Bytes per element for the FP16 precision used by the serving system.
FP16_BYTES = 2


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of a decoder-only transformer LLM.

    Attributes:
        name: Preset name.
        n_layers: Number of transformer layers.
        hidden_size: Residual-stream width ``D`` (the paper's D_hidden).
        n_heads: Attention heads (MHA: ``n_kv_heads == n_heads``).
        n_kv_heads: Key/value heads; ``< n_heads`` models GQA (a paper §7
            extension; every paper experiment uses MHA).
        ffn_hidden_size: Intermediate FFN width.
        n_ffn_mats: Linear projections inside the FFN.  2 for the classic
            GELU FFN (OPT), 3 for SwiGLU (Llama2).
        vocab_size: Vocabulary size (affects weight bytes and embeddings).
        max_context: Maximum supported context length (expanded to 16K+ in
            the paper's setup).
        dtype_bytes: Bytes per parameter / activation element.
        norm: ``"rmsnorm"`` (Llama2) or ``"layernorm"`` (OPT).
        rope: Whether rotary position embeddings are applied to Q/K.
    """

    name: str
    n_layers: int
    hidden_size: int
    n_heads: int
    n_kv_heads: int
    ffn_hidden_size: int
    n_ffn_mats: int
    vocab_size: int
    max_context: int = 16384
    dtype_bytes: int = FP16_BYTES
    norm: str = "rmsnorm"
    rope: bool = True

    def __post_init__(self) -> None:
        if self.n_layers <= 0 or self.hidden_size <= 0:
            raise ConfigError("model must have positive layers and hidden size")
        if self.hidden_size % self.n_heads != 0:
            raise ConfigError(
                f"hidden_size {self.hidden_size} not divisible by n_heads {self.n_heads}"
            )
        if self.n_heads % self.n_kv_heads != 0:
            raise ConfigError("n_heads must be a multiple of n_kv_heads")
        if self.norm not in ("rmsnorm", "layernorm"):
            raise ConfigError(f"unknown norm {self.norm!r}")
        if self.n_ffn_mats not in (2, 3):
            raise ConfigError("n_ffn_mats must be 2 (GELU FFN) or 3 (SwiGLU)")

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_size // self.n_heads

    @property
    def kv_size(self) -> int:
        """Width of the concatenated K (or V) projection output."""
        return self.n_kv_heads * self.head_dim

    @property
    def kv_bytes_per_token_layer(self) -> int:
        """KV-cache bytes for one token at one layer (K and V)."""
        return 2 * self.kv_size * self.dtype_bytes

    @property
    def hidden_bytes_per_token_layer(self) -> int:
        """Hidden-state bytes for one token at one layer.

        This is the quantity HCache stores instead of the KV pair; with MHA
        it is exactly half of :attr:`kv_bytes_per_token_layer` (§3.2).
        """
        return self.hidden_size * self.dtype_bytes

    @property
    def kv_bytes_per_token(self) -> int:
        """Full-model KV-cache bytes for one token."""
        return self.kv_bytes_per_token_layer * self.n_layers

    @property
    def hidden_bytes_per_token(self) -> int:
        """Full-model hidden-state bytes for one token."""
        return self.hidden_bytes_per_token_layer * self.n_layers

    @property
    def layer_param_count(self) -> int:
        """Parameters in one transformer layer (attention + FFN + norms)."""
        d = self.hidden_size
        attn = d * d * 2 + d * self.kv_size * 2  # Wq, Wo, Wk, Wv
        ffn = self.n_ffn_mats * d * self.ffn_hidden_size
        norms = 2 * d
        return attn + ffn + norms

    @property
    def param_count(self) -> int:
        """Total parameter count including embeddings and the LM head."""
        embed = 2 * self.vocab_size * self.hidden_size
        return self.n_layers * self.layer_param_count + embed + self.hidden_size

    @property
    def weight_bytes(self) -> int:
        """Total model weight footprint in bytes."""
        return self.param_count * self.dtype_bytes

    @property
    def layer_weight_bytes(self) -> int:
        """Weight bytes of a single layer (drives decode time per layer)."""
        return self.layer_param_count * self.dtype_bytes


#: Presets used throughout the paper's evaluation plus tiny test models.
MODELS: dict[str, ModelConfig] = {
    "llama2-7b": ModelConfig(
        name="llama2-7b",
        n_layers=32,
        hidden_size=4096,
        n_heads=32,
        n_kv_heads=32,
        ffn_hidden_size=11008,
        n_ffn_mats=3,
        vocab_size=32000,
    ),
    "llama2-13b": ModelConfig(
        name="llama2-13b",
        n_layers=40,
        hidden_size=5120,
        n_heads=40,
        n_kv_heads=40,
        ffn_hidden_size=13824,
        n_ffn_mats=3,
        vocab_size=32000,
    ),
    "opt-30b": ModelConfig(
        name="opt-30b",
        n_layers=48,
        hidden_size=7168,
        n_heads=56,
        n_kv_heads=56,
        ffn_hidden_size=28672,
        n_ffn_mats=2,
        vocab_size=50272,
        max_context=32768,
        norm="layernorm",
        rope=False,
    ),
    "tiny-llama": ModelConfig(
        name="tiny-llama",
        n_layers=4,
        hidden_size=64,
        n_heads=4,
        n_kv_heads=4,
        ffn_hidden_size=172,
        n_ffn_mats=3,
        vocab_size=256,
        max_context=512,
    ),
    "tiny-opt": ModelConfig(
        name="tiny-opt",
        n_layers=3,
        hidden_size=48,
        n_heads=4,
        n_kv_heads=4,
        ffn_hidden_size=192,
        n_ffn_mats=2,
        vocab_size=128,
        max_context=256,
        norm="layernorm",
        rope=False,
    ),
}


def model_preset(name: str) -> ModelConfig:
    """Return a named model preset, raising :class:`ConfigError` if unknown."""
    key = name.lower()
    if key not in MODELS:
        raise ConfigError(f"unknown model {name!r}; choose from {sorted(MODELS)}")
    return MODELS[key]
