"""A numpy decoder-only transformer with hidden-state capture.

This is the executable substrate behind HCache's correctness story.  The
model runs real forward passes (prefill and decode) over a KV cache and can
*capture* the hidden states that enter each layer — exactly the tensors
HCache persists.  Its :meth:`Transformer.project_kv` method is the paper's
restoration operator (Eq. in §3.1):

    ``K_L = RoPE(W_k . norm(H_L))``,  ``V_L = W_v . norm(H_L)``

where ``H_L`` is the residual-stream input of layer ``L``.  Because the
projection replays the very computation the forward pass performed, the
restored KV cache matches the original exactly — the losslessness property
the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.models.attention import (
    attention_module,
    merge_heads,
    repeat_kv,
    scaled_dot_product_attention,
)
from repro.models.config import ModelConfig
from repro.models.ffn import ffn_forward
from repro.models.kv_cache import KVCache
from repro.models.rope import apply_rope
from repro.models.tensor_ops import layernorm, rmsnorm
from repro.models.weights import LayerWeights, ModelWeights, init_weights


@dataclass
class ForwardResult:
    """Output of one forward pass over a block of new tokens.

    Attributes:
        logits: ``(n_tokens, vocab)`` next-token logits.
        hidden_states: When captured, one ``(n_tokens, hidden)`` array per
            layer holding the residual-stream input of that layer — the
            state HCache saves.  ``None`` otherwise.
    """

    logits: np.ndarray
    hidden_states: list[np.ndarray] | None = None


class Transformer:
    """Decoder-only transformer executing real numpy arithmetic."""

    def __init__(self, config: ModelConfig, weights: ModelWeights) -> None:
        if len(weights.layers) != config.n_layers:
            raise ConfigError(
                f"weights have {len(weights.layers)} layers, config wants {config.n_layers}"
            )
        self.config = config
        self.weights = weights

    @classmethod
    def from_seed(cls, config: ModelConfig, seed: int = 0) -> "Transformer":
        """Build a model with deterministic random weights."""
        return cls(config, init_weights(config, seed))

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------

    def _norm(self, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        if self.config.norm == "rmsnorm":
            return rmsnorm(x, weight)
        return layernorm(x, weight)

    def embed(self, tokens: np.ndarray) -> np.ndarray:
        """Look up token embeddings, shape ``(n, hidden)``."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 1:
            raise ConfigError("tokens must be a 1-D array of ids")
        if tokens.size and (tokens.min() < 0 or tokens.max() >= self.config.vocab_size):
            raise ConfigError("token id out of vocabulary range")
        return self.weights.embedding[tokens]

    def compute_qkv(
        self, layer: int, hidden: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project a layer's input hidden states into rotated Q, K, V."""
        w = self.weights.layers[layer]
        normed = self._norm(hidden, w.attn_norm)
        q, k, v = attention_module(normed, w.wq, w.wk, w.wv, self.config)
        if self.config.rope:
            q = apply_rope(q, positions)
            k = apply_rope(k, positions)
        return q, k, v

    def project_kv(
        self, layer: int, hidden: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """HCache's restoration operator: hidden states -> (K, V).

        This is the lightweight GEMM pair (plus RoPE on K) that replaces a
        full prefill when restoring layer ``layer`` — no attention, no FFN.
        """
        w = self.weights.layers[layer]
        normed = self._norm(np.asarray(hidden, dtype=np.float32), w.attn_norm)
        from repro.models.attention import split_heads  # local to avoid cycle noise

        k = split_heads(normed @ w.wk, self.config.n_kv_heads)
        v = split_heads(normed @ w.wv, self.config.n_kv_heads)
        if self.config.rope:
            k = apply_rope(k, positions)
        return k, v

    def layer_forward(
        self,
        layer: int,
        hidden: np.ndarray,
        kv_cache: KVCache,
        positions: np.ndarray,
    ) -> np.ndarray:
        """Run one transformer layer over a block of new tokens.

        Appends the block's K/V to the cache, attends over the whole cached
        history, and returns the next layer's input hidden states.
        Positions must be the contiguous range continuing the cache.
        """
        positions = np.asarray(positions)
        if kv_cache.layer_len(layer) != positions[0]:
            raise ConfigError(
                f"layer {layer}: cache has {kv_cache.layer_len(layer)} tokens but "
                f"block starts at position {positions[0]}"
            )
        w: LayerWeights = self.weights.layers[layer]
        q, k, v = self.compute_qkv(layer, hidden, positions)
        kv_cache.append(layer, k, v)
        keys, values = kv_cache.get(layer)
        n_rep = self.config.n_heads // self.config.n_kv_heads
        attn = scaled_dot_product_attention(
            q, repeat_kv(keys, n_rep), repeat_kv(values, n_rep), query_offset=int(positions[0])
        )
        hidden = hidden + merge_heads(attn) @ w.wo
        normed = self._norm(hidden, w.ffn_norm)
        return hidden + ffn_forward(normed, w, self.config.n_ffn_mats)

    # ------------------------------------------------------------------
    # forward passes
    # ------------------------------------------------------------------

    def forward(
        self,
        tokens: np.ndarray,
        kv_cache: KVCache,
        capture_hidden: bool = False,
    ) -> ForwardResult:
        """Process a block of new tokens on top of the cached history.

        The block's absolute positions continue the cache: token ``i`` of
        the block sits at position ``len(kv_cache) + i``.
        """
        tokens = np.asarray(tokens)
        start = len(kv_cache)
        if start + tokens.size > self.config.max_context:
            raise ConfigError(
                f"context {start + tokens.size} exceeds max {self.config.max_context}"
            )
        positions = np.arange(start, start + tokens.size)
        hidden = self.embed(tokens)
        captured: list[np.ndarray] | None = [] if capture_hidden else None
        for layer in range(self.config.n_layers):
            if captured is not None:
                captured.append(np.array(hidden, copy=True))
            hidden = self.layer_forward(layer, hidden, kv_cache, positions)
        final = self._norm(hidden, self.weights.final_norm)
        logits = final @ self.weights.lm_head
        return ForwardResult(logits=logits, hidden_states=captured)

    def prefill(
        self, tokens: np.ndarray, kv_cache: KVCache | None = None, capture_hidden: bool = False
    ) -> tuple[ForwardResult, KVCache]:
        """Convenience: forward a prompt into a (new) cache."""
        cache = kv_cache if kv_cache is not None else KVCache(self.config)
        result = self.forward(tokens, cache, capture_hidden=capture_hidden)
        return result, cache

    def decode_step(
        self, token: int, kv_cache: KVCache, capture_hidden: bool = False
    ) -> ForwardResult:
        """Autoregressively process one token."""
        return self.forward(np.array([token]), kv_cache, capture_hidden=capture_hidden)

    # ------------------------------------------------------------------
    # restoration helpers
    # ------------------------------------------------------------------

    def restore_cache_from_hidden(
        self, hidden_states: list[np.ndarray], positions: np.ndarray | None = None
    ) -> KVCache:
        """Rebuild a full KV cache from per-layer hidden states.

        ``hidden_states[L]`` must be the ``(n, hidden)`` residual input of
        layer ``L`` for the whole history (what ``capture_hidden`` returns
        and what the storage manager persists).
        """
        if len(hidden_states) != self.config.n_layers:
            raise ConfigError(
                f"need hidden states for all {self.config.n_layers} layers, "
                f"got {len(hidden_states)}"
            )
        n = hidden_states[0].shape[0]
        pos = np.arange(n) if positions is None else np.asarray(positions)
        cache = KVCache(self.config)
        for layer, hidden in enumerate(hidden_states):
            if hidden.shape[0] != n:
                raise ConfigError("all layers must cover the same tokens")
            k, v = self.project_kv(layer, hidden, pos)
            cache.install(layer, k, v)
        return cache

    def recompute_prefix(
        self, tokens: np.ndarray, n_prefix_layers: int
    ) -> tuple[KVCache, np.ndarray]:
        """Token-recompute the first ``n_prefix_layers`` layers.

        Used by the bubble-free scheduler's recompute-complement mode: the
        prefix layers' KV comes from a partial forward pass over the
        original tokens.  Returns a cache filled for the prefix layers only
        plus the hidden states entering layer ``n_prefix_layers``.
        """
        if not 0 <= n_prefix_layers <= self.config.n_layers:
            raise ConfigError(f"prefix layer count {n_prefix_layers} out of range")
        tokens = np.asarray(tokens)
        positions = np.arange(tokens.size)
        cache = KVCache(self.config)
        hidden = self.embed(tokens)
        for layer in range(n_prefix_layers):
            hidden = self.layer_forward(layer, hidden, cache, positions)
        return cache, hidden

    def generate(
        self,
        prompt: np.ndarray,
        n_new_tokens: int,
        kv_cache: KVCache | None = None,
        capture_hidden: bool = False,
    ) -> tuple[list[int], KVCache, list[np.ndarray] | None]:
        """Greedy generation, optionally capturing all hidden states.

        Returns the generated token ids, the final cache, and — when
        capturing — per-layer hidden states covering prompt plus generated
        tokens in position order.
        """
        cache = kv_cache if kv_cache is not None else KVCache(self.config)
        captured: list[np.ndarray] | None = None
        result = self.forward(np.asarray(prompt), cache, capture_hidden=capture_hidden)
        if capture_hidden and result.hidden_states is not None:
            captured = [np.array(h, copy=True) for h in result.hidden_states]
        tokens: list[int] = []
        logits = result.logits[-1]
        for _ in range(n_new_tokens):
            token = int(np.argmax(logits))
            tokens.append(token)
            step = self.decode_step(token, cache, capture_hidden=capture_hidden)
            if captured is not None and step.hidden_states is not None:
                for layer in range(self.config.n_layers):
                    captured[layer] = np.concatenate(
                        [captured[layer], step.hidden_states[layer]], axis=0
                    )
            logits = step.logits[-1]
        return tokens, cache, captured
